// Finding the single most cohesive group: maximum k-plex search.
//
// Social-network analysis often wants *the* tightest community rather
// than all of them (the maximum-k-plex problem surveyed in Section 2 of
// the paper). This example finds the maximum k-plex of a scale-free
// network for k = 1..4 and contrasts sizes: relaxing k grows the best
// group, while the greedy lower bound shows how much the exact search
// adds over a cheap heuristic.
//
//   build/examples/densest_group

#include <cstdio>

#include "core/kplex_verify.h"
#include "core/max_kplex.h"
#include "graph/generators.h"

int main() {
  using namespace kplex;
  Graph graph = GenerateBarabasiAlbert(2500, 12, 31337);
  std::printf("scale-free network: %zu vertices, %zu edges\n\n",
              graph.NumVertices(), graph.NumEdges());

  std::printf("%-4s %-14s %-14s %-8s %-10s\n", "k", "greedy bound",
              "maximum size", "passes", "time (s)");
  for (uint32_t k = 1; k <= 4; ++k) {
    auto greedy = GreedyKPlexLowerBound(graph, k, 16);
    auto result = FindMaximumKPlex(graph, k);
    if (!result.ok()) {
      std::fprintf(stderr, "k=%u failed: %s\n", k,
                   result.status().ToString().c_str());
      return 1;
    }
    if (!result->found) {
      std::printf("%-4u %-14zu %-14s\n", k, greedy.size(), "(none)");
      continue;
    }
    if (!IsMaximalKPlex(graph, result->plex, k)) {
      std::fprintf(stderr, "BUG: reported maximum is not maximal\n");
      return 1;
    }
    std::printf("%-4u %-14zu %-14zu %-8u %-10.3f\n", k, greedy.size(),
                result->plex.size(), result->passes, result->seconds);
  }
  std::printf(
      "\nExpected: the maximum size grows with k (every (k)-plex is a\n"
      "(k+1)-plex), and the exact search beats or matches the greedy\n"
      "bound at every k.\n");
  return 0;
}
