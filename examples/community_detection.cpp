// Community detection with k-plexes (the paper's Section 1 motivation:
// real communities rarely form perfect cliques, so clique mining misses
// them, while k-plex mining recovers them despite missing edges).
//
// We plant noisy communities with known membership — every community is
// a clique with up to (k-1) intra-community edges deleted per member —
// and compare what maximal-clique mining (k = 1) and maximal-k-plex
// mining recover. The k-plex miner should find every planted community
// as one cohesive subgraph; the clique miner fragments them.
//
//   build/examples/community_detection

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"

namespace {

// Fraction of planted communities recovered exactly as one result set.
double RecoveryRate(const kplex::PlantedCommunityGraph& planted,
                    std::size_t num_communities,
                    const std::vector<std::vector<kplex::VertexId>>& results) {
  std::set<std::vector<kplex::VertexId>> result_set(results.begin(),
                                                    results.end());
  std::size_t recovered = 0;
  for (uint32_t c = 0; c < num_communities; ++c) {
    std::vector<kplex::VertexId> members;
    for (kplex::VertexId v = 0; v < planted.graph.NumVertices(); ++v) {
      if (planted.community[v] == c) members.push_back(v);
    }
    std::sort(members.begin(), members.end());
    if (result_set.count(members) > 0) ++recovered;
  }
  return static_cast<double>(recovered) / num_communities;
}

}  // namespace

int main() {
  using namespace kplex;

  PlantedCommunityConfig config;
  config.num_communities = 40;
  config.community_size = 10;
  config.missing_per_vertex = 2;  // every community is a 3-plex
  config.background_vertices = 400;
  config.noise_probability = 0.01;
  PlantedCommunityGraph planted = GeneratePlantedCommunities(config, 2024);

  std::printf("planted %zu communities of size %zu in a graph with "
              "%zu vertices / %zu edges\n",
              config.num_communities, config.community_size,
              planted.graph.NumVertices(), planted.graph.NumEdges());
  std::printf("each member may miss up to %zu intra-community edges, so "
              "communities are %zu-plexes but NOT cliques\n\n",
              config.missing_per_vertex, config.missing_per_vertex + 1);

  const uint32_t q = static_cast<uint32_t>(config.community_size);
  for (uint32_t k = 1; k <= 3; ++k) {
    if (q + 1 < 2 * k) continue;
    CollectingSink sink;
    auto result =
        EnumerateMaximalKPlexes(planted.graph, EnumOptions::Ours(k, q), sink);
    if (!result.ok()) {
      std::fprintf(stderr, "k=%u failed: %s\n", k,
                   result.status().ToString().c_str());
      return 1;
    }
    const double rate =
        RecoveryRate(planted, config.num_communities, sink.SortedResults());
    std::printf("k = %u (q = %u): %6llu maximal k-plexes, "
                "%.0f%% of planted communities recovered exactly, %.3fs\n",
                k, q, static_cast<unsigned long long>(result->num_plexes),
                rate * 100.0, result->seconds);
  }

  std::printf(
      "\nExpected: k = 1 (cliques) recovers 0%% — noise deletions break\n"
      "every community; k = 3 recovers 100%% — each planted community is\n"
      "a maximal 3-plex of size >= q.\n");
  return 0;
}
