// Parallel mining with straggler elimination (Section 6 of the paper).
//
// Mines a large synthetic social network with 1..N threads and shows
// (a) the speedup of the staged task-parallel engine, and (b) the effect
// of the timeout mechanism: with tau = infinity one monster task can
// serialize a stage; with the default tau = 0.1 ms it is decomposed and
// spread across workers.
//
//   build/examples/parallel_mining [k] [q]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/sink.h"
#include "graph/generators.h"
#include "parallel/parallel_enumerator.h"

int main(int argc, char** argv) {
  using namespace kplex;
  const uint32_t k = argc > 1 ? std::atoi(argv[1]) : 3;
  const uint32_t q = argc > 2 ? std::atoi(argv[2]) : 12;

  Graph graph = GenerateBarabasiAlbert(6000, 20, 99);
  std::printf("graph: %zu vertices, %zu edges; mining maximal %u-plexes "
              "with >= %u vertices\n\n",
              graph.NumVertices(), graph.NumEdges(), k, q);

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  double base_seconds = 0;
  uint64_t expected = 0;

  std::printf("%-10s %-12s %-10s %-10s %-16s\n", "threads", "tau (ms)",
              "plexes", "time (s)", "speedup vs 1thr");
  for (uint32_t threads : {1u, 2u, hw, 2 * hw}) {
    for (double tau_ms : {0.1, -1.0}) {  // -1: timeout disabled
      if (threads == 1 && tau_ms < 0) continue;
      ParallelOptions parallel;
      parallel.num_threads = threads;
      parallel.timeout_ms = tau_ms;
      CountingSink sink;
      auto result = ParallelEnumerateMaximalKPlexes(
          graph, EnumOptions::Ours(k, q), parallel, sink);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        base_seconds = result->seconds;
        expected = result->num_plexes;
      } else if (result->num_plexes != expected) {
        std::fprintf(stderr, "BUG: thread count changed the result set!\n");
        return 1;
      }
      char tau_label[32];
      if (tau_ms < 0) {
        std::snprintf(tau_label, sizeof(tau_label), "off");
      } else {
        std::snprintf(tau_label, sizeof(tau_label), "%.1f", tau_ms);
      }
      std::printf("%-10u %-12s %-10llu %-10.3f %-16.2f\n", threads,
                  tau_label,
                  static_cast<unsigned long long>(result->num_plexes),
                  result->seconds,
                  base_seconds > 0 ? base_seconds / result->seconds : 1.0);
    }
  }
  std::printf("\n(threads beyond the %u available cores cannot add real "
              "speedup)\n", hw);
  return 0;
}
