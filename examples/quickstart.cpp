// Quickstart: load a graph, enumerate its large maximal k-plexes, print
// them. This is the 20-line tour of the public API.
//
//   build/examples/quickstart [k] [q]
//
// Defaults: k = 2, q = 6, on the bundled Zachary karate-club graph.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/edge_list_io.h"

int main(int argc, char** argv) {
  const uint32_t k = argc > 1 ? std::atoi(argv[1]) : 2;
  const uint32_t q = argc > 2 ? std::atoi(argv[2]) : 6;

  auto graph = kplex::LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  if (!graph.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("karate club: %zu vertices, %zu edges\n",
              graph->NumVertices(), graph->NumEdges());

  // Print every maximal k-plex with at least q vertices as it is found.
  kplex::CallbackSink sink([](std::span<const kplex::VertexId> plex) {
    std::printf("  k-plex of size %zu: {", plex.size());
    for (std::size_t i = 0; i < plex.size(); ++i) {
      std::printf("%s%u", i == 0 ? "" : ", ", plex[i]);
    }
    std::printf("}\n");
  });

  auto result = kplex::EnumerateMaximalKPlexes(
      *graph, kplex::EnumOptions::Ours(k, q), sink);
  if (!result.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("found %llu maximal %u-plexes with >= %u vertices in %.3fs\n",
              static_cast<unsigned long long>(result->num_plexes), k, q,
              result->seconds);
  return 0;
}
