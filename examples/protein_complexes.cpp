// Protein-complex discovery in a noisy interaction network (the paper's
// Section 1 biological motivation: PPI data has false-negative edges, so
// complexes appear as near-cliques).
//
// We simulate a protein-protein interaction (PPI) network: complexes are
// planted as dense modules, then edges are *dropped* uniformly at random
// to model experimental false negatives. The example sweeps the
// false-negative rate and reports how many complexes survive as maximal
// 2-plexes vs as maximal cliques — showing why the relaxation matters
// more as data gets noisier.
//
//   build/examples/protein_complexes

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

using kplex::Graph;
using kplex::GraphBuilder;
using kplex::VertexId;

struct Ppi {
  Graph graph;
  std::vector<std::vector<VertexId>> complexes;
};

// Plants perfect-clique complexes plus background, then deletes each
// edge independently with probability `false_negative_rate`.
Ppi SimulatePpi(std::size_t num_complexes, std::size_t complex_size,
                std::size_t background, double noise_probability,
                double false_negative_rate, uint64_t seed) {
  kplex::Rng rng(seed);
  const std::size_t n = num_complexes * complex_size + background;
  std::vector<std::pair<VertexId, VertexId>> edges;
  Ppi ppi;
  for (std::size_t c = 0; c < num_complexes; ++c) {
    const VertexId base = static_cast<VertexId>(c * complex_size);
    std::vector<VertexId> members;
    for (std::size_t i = 0; i < complex_size; ++i) {
      members.push_back(base + static_cast<VertexId>(i));
      for (std::size_t j = i + 1; j < complex_size; ++j) {
        edges.push_back({base + static_cast<VertexId>(i),
                         base + static_cast<VertexId>(j)});
      }
    }
    ppi.complexes.push_back(std::move(members));
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const bool same_complex = u / complex_size == v / complex_size &&
                                u < num_complexes * complex_size &&
                                v < num_complexes * complex_size;
      if (same_complex) continue;
      if (rng.NextBernoulli(noise_probability)) edges.push_back({u, v});
    }
  }
  // Experimental false negatives: drop observed interactions.
  std::vector<std::pair<VertexId, VertexId>> observed;
  for (const auto& e : edges) {
    if (!rng.NextBernoulli(false_negative_rate)) observed.push_back(e);
  }
  ppi.graph = GraphBuilder::FromEdges(n, observed);
  return ppi;
}

// A complex counts as "detected" if some result contains >= 90% of it.
std::size_t CountDetected(const Ppi& ppi,
                          const std::vector<std::vector<VertexId>>& results) {
  std::size_t detected = 0;
  for (const auto& complex : ppi.complexes) {
    const std::size_t need = (complex.size() * 9 + 9) / 10;
    for (const auto& plex : results) {
      std::size_t overlap = 0;
      std::set<VertexId> members(plex.begin(), plex.end());
      for (VertexId v : complex) {
        if (members.count(v)) ++overlap;
      }
      if (overlap >= need) {
        ++detected;
        break;
      }
    }
  }
  return detected;
}

}  // namespace

int main() {
  using namespace kplex;
  constexpr std::size_t kComplexes = 25;
  constexpr std::size_t kComplexSize = 9;

  std::printf("simulated PPI network: %zu complexes of size %zu, "
              "sweeping the false-negative rate\n\n",
              kComplexes, kComplexSize);
  std::printf("%-18s %-22s %-22s\n", "false-neg rate", "cliques (k=1) found",
              "2-plexes (k=2) found");

  for (double fn_rate : {0.0, 0.05, 0.10, 0.15}) {
    Ppi ppi = SimulatePpi(kComplexes, kComplexSize, 300, 0.008, fn_rate,
                          7777 + static_cast<uint64_t>(fn_rate * 100));
    std::string cells[2];
    for (uint32_t k = 1; k <= 2; ++k) {
      CollectingSink sink;
      auto result = EnumerateMaximalKPlexes(
          ppi.graph, EnumOptions::Ours(k, kComplexSize - 2), sink);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const std::size_t detected = CountDetected(ppi, sink.SortedResults());
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%zu/%zu", detected, kComplexes);
      cells[k - 1] = buf;
    }
    std::printf("%-18.2f %-22s %-22s\n", fn_rate, cells[0].c_str(),
                cells[1].c_str());
  }

  std::printf(
      "\nExpected: with no noise both detect everything; as interactions\n"
      "go missing, clique mining loses complexes while 2-plex mining\n"
      "keeps detecting them (the clique-relaxation argument of the\n"
      "paper's introduction).\n");
  return 0;
}
