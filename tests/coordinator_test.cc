// End-to-end tests of the coordinator daemon (src/coord/): a
// coordinated chunked mine over in-process TCP workers must reproduce
// a single-process run bit-exactly; a cost-skewed seed space triggers
// work-stealing whose merged prefix + requeued tail stays exact; a
// worker killed mid-chunk is requeued on the survivor; a worker that
// registers mid-job joins it; and the CoordSession speaks the daemon
// verbs over a real socket.

#include "coord/coordinator.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_TEST_SOCKETS 1
#endif

#if KPLEX_TEST_SOCKETS

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coord/coord_session.h"
#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "service/service_api.h"
#include "service/tcp_client.h"
#include "service/tcp_server.h"

namespace kplex {
namespace {

/// One in-process "worker process": its own ServiceApi behind its own
/// TCP server — what a separate `serve --listen` process exposes.
struct Worker {
  explicit Worker(uint32_t dispatcher_workers = 2) {
    ServiceApiOptions options;
    options.workers = dispatcher_workers;
    api = std::make_shared<ServiceApi>(options);
    server = std::make_unique<TcpServer>(api, TcpServerOptions{});
  }

  Status StartWith(const std::string& name, Graph graph) {
    KPLEX_RETURN_IF_ERROR(
        api->catalog().RegisterGraph(name, std::move(graph)));
    return server->Start();
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  std::shared_ptr<ServiceApi> api;
  std::unique_ptr<TcpServer> server;
};

struct Reference {
  uint64_t count = 0;
  uint64_t fingerprint = 0;
  std::size_t max_size = 0;
};

Reference FullRun(const Graph& graph, uint32_t k, uint32_t q) {
  HashingSink hashing;
  CountingSink counting;
  CallbackSink tee([&](std::span<const VertexId> plex) {
    hashing.Emit(plex);
    counting.Emit(plex);
  });
  auto result = EnumerateMaximalKPlexes(graph, EnumOptions::Ours(k, q), tee);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return Reference{counting.count(), hashing.fingerprint(),
                   counting.max_size()};
}

QueryRequest MakeQuery(uint32_t k, uint32_t q) {
  QueryRequest query;
  query.graph = "g";
  query.k = k;
  query.q = q;
  return query;
}

/// A seed-cost adversary: a dense Erdos-Renyi block (expensive seeds,
/// last in degeneracy order) glued to a long 4-regular ring whose seeds
/// survive the (q-k)-core at q=5 but emit nothing — hundreds of
/// near-free seeds followed by a block holding virtually all the work.
Graph BuildSkewedGraph(std::size_t dense, std::size_t ring, uint64_t seed) {
  const Graph block = GenerateErdosRenyi(dense, 0.35, seed);
  GraphBuilder builder(dense + ring);
  for (VertexId u = 0; u < block.NumVertices(); ++u) {
    for (VertexId v : block.Neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  const VertexId base = static_cast<VertexId>(dense);
  const VertexId n = static_cast<VertexId>(ring);
  for (VertexId i = 0; i < n; ++i) {
    builder.AddEdge(base + i, base + (i + 1) % n);
    builder.AddEdge(base + i, base + (i + 2) % n);
  }
  return builder.Build();
}

TEST(Coordinator, ChunkedMineMatchesSingleProcessRun) {
  const Graph graph = GenerateErdosRenyi(220, 0.08, 11);
  Worker a, b, c;
  ASSERT_TRUE(a.StartWith("g", graph).ok());
  ASSERT_TRUE(b.StartWith("g", graph).ok());
  ASSERT_TRUE(c.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 2, 5);

  Coordinator coordinator;
  ASSERT_TRUE(coordinator.AddWorker(a.endpoint()).ok());
  ASSERT_TRUE(coordinator.AddWorker(b.endpoint()).ok());
  ASSERT_TRUE(coordinator.AddWorker(c.endpoint()).ok());

  auto id = coordinator.Submit(MakeQuery(2, 5));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto job = coordinator.Wait(*id);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_EQ(job->state, "done") << job->status.ToString();
  EXPECT_EQ(job->num_plexes, reference.count);
  EXPECT_EQ(job->fingerprint, reference.fingerprint);
  EXPECT_EQ(job->max_plex_size, reference.max_size);
  EXPECT_TRUE(job->cost_planned);
  EXPECT_NE(job->content_hash, 0u);
  // Two-level scheduling: many more chunks than workers.
  EXPECT_GT(job->chunks, 3u);
  EXPECT_EQ(job->requeues, 0u);
  // The merged outcomes partition implies the counts add up.
  uint64_t outcome_sum = 0;
  for (const CoordChunkOutcome& outcome : job->outcomes) {
    outcome_sum += outcome.plexes;
  }
  EXPECT_EQ(outcome_sum, reference.count);
}

TEST(Coordinator, SkewedSeedCostsTriggerStealingAndStayExact) {
  // ctcp forces the uniform-chunk fallback, so the dense block lands in
  // the last chunks and the ring lanes go idle early — the deterministic
  // setup for a steal. The merged result must still be bit-exact.
  const Graph graph = BuildSkewedGraph(95, 600, 17);
  const Reference reference = FullRun(graph, 2, 5);

  Worker a, b, c, d;
  for (Worker* worker : {&a, &b, &c, &d}) {
    ASSERT_TRUE(worker->StartWith("g", graph).ok());
  }

  CoordinatorOptions options;
  options.chunks_per_worker = 2;
  options.steal_min_seconds = 0.0;
  Coordinator coordinator(options);
  for (Worker* worker : {&a, &b, &c, &d}) {
    ASSERT_TRUE(coordinator.AddWorker(worker->endpoint()).ok());
  }

  QueryRequest query = MakeQuery(2, 5);
  query.use_ctcp = true;
  auto id = coordinator.Submit(query);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto job = coordinator.Wait(*id);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_EQ(job->state, "done") << job->status.ToString();
  EXPECT_EQ(job->num_plexes, reference.count);
  EXPECT_EQ(job->fingerprint, reference.fingerprint);
  EXPECT_EQ(job->max_plex_size, reference.max_size);
  EXPECT_FALSE(job->cost_planned);  // ctcp fell back to uniform chunks
  // Stealing split at least one straggler chunk: the yielded prefix
  // and its requeued tail both merged.
  EXPECT_GE(job->steals, 1u);
  bool saw_yielded_outcome = false;
  for (const CoordChunkOutcome& outcome : job->outcomes) {
    saw_yielded_outcome = saw_yielded_outcome || outcome.yielded;
  }
  EXPECT_TRUE(saw_yielded_outcome);
}

TEST(Coordinator, KilledWorkerMidChunkRequeuesOnTheSurvivor) {
  // Slow enough (~2.5s single-threaded) that worker B is mid-chunk
  // when killed. Stop() closes B's sockets before cancelling its jobs,
  // so the lane observes a transport failure, requeues the chunk, and
  // the job completes exactly on A.
  Graph graph = GenerateBarabasiAlbert(1000, 12, 9);
  Worker a, b;
  ASSERT_TRUE(a.StartWith("g", graph).ok());
  ASSERT_TRUE(b.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 3, 6);

  CoordinatorOptions options;
  options.chunks_per_worker = 4;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddWorker(a.endpoint()).ok());
  ASSERT_TRUE(coordinator.AddWorker(b.endpoint()).ok());

  auto id = coordinator.Submit(MakeQuery(3, 6));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Kill B once it is running a real chunk (not the admission probe).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool b_running_chunk = false;
  while (!b_running_chunk && std::chrono::steady_clock::now() < deadline) {
    for (const JobInfo& job : b.api->dispatcher().Jobs()) {
      b_running_chunk =
          b_running_chunk || (job.state == JobState::kRunning &&
                              job.request.seed_end > job.request.seed_begin);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(b_running_chunk) << "worker B never picked up a chunk";
  b.server->Stop();

  auto job = coordinator.Wait(*id);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_EQ(job->state, "done") << job->status.ToString();
  EXPECT_EQ(job->num_plexes, reference.count);
  EXPECT_EQ(job->fingerprint, reference.fingerprint);
  EXPECT_GE(job->requeues, 1u);
  // B is dead in the roster; its chunk finished on A.
  for (const WorkerRecord& worker : coordinator.Workers()) {
    if (worker.endpoint == b.endpoint()) {
      EXPECT_EQ(worker.state, WorkerState::kDead);
    }
  }
}

TEST(Coordinator, LateRegisteredWorkerJoinsTheRunningJob) {
  Graph graph = GenerateBarabasiAlbert(1000, 12, 21);
  Worker a, b;
  ASSERT_TRUE(a.StartWith("g", graph).ok());
  ASSERT_TRUE(b.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 3, 6);

  CoordinatorOptions options;
  options.chunks_per_worker = 8;
  Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.AddWorker(a.endpoint()).ok());

  auto id = coordinator.Submit(MakeQuery(3, 6));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Register B once A is actually mining, so B provably joins late.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool a_running_chunk = false;
  while (!a_running_chunk && std::chrono::steady_clock::now() < deadline) {
    for (const JobInfo& job : a.api->dispatcher().Jobs()) {
      a_running_chunk =
          a_running_chunk || (job.state == JobState::kRunning &&
                              job.request.seed_end > job.request.seed_begin);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(a_running_chunk) << "worker A never picked up a chunk";
  ASSERT_TRUE(coordinator.AddWorker(b.endpoint()).ok());

  auto job = coordinator.Wait(*id);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_EQ(job->state, "done") << job->status.ToString();
  EXPECT_EQ(job->num_plexes, reference.count);
  EXPECT_EQ(job->fingerprint, reference.fingerprint);
  // The late joiner completed at least one chunk: with 8 chunks per
  // worker and seconds of work left, an idle lane cannot stay empty.
  bool b_participated = false;
  for (const CoordChunkOutcome& outcome : job->outcomes) {
    b_participated = b_participated || outcome.endpoint == b.endpoint();
  }
  EXPECT_TRUE(b_participated);
}

TEST(Coordinator, StructuralRefusals) {
  Coordinator coordinator;
  // No workers registered: the job fails structurally, not silently.
  auto id = coordinator.Submit(MakeQuery(2, 5));
  ASSERT_TRUE(id.ok());
  auto job = coordinator.Wait(*id);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->state, "failed");
  EXPECT_EQ(job->status.code(), StatusCode::kFailedPrecondition);

  // A query carrying its own seed range is refused: the coordinator
  // owns the split.
  QueryRequest ranged = MakeQuery(2, 5);
  ranged.seed_begin = 0;
  ranged.seed_end = 10;
  EXPECT_EQ(coordinator.Submit(ranged).status().code(),
            StatusCode::kInvalidArgument);

  // Unknown job ids and endpoints.
  EXPECT_EQ(coordinator.Wait(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(coordinator.Heartbeat(999).code(), StatusCode::kNotFound);
  EXPECT_FALSE(coordinator.AddWorker("not-an-endpoint").ok());
  EXPECT_FALSE(coordinator.AddWorker("host:0").ok());
}

TEST(CoordSession, ServesTheDaemonVerbsOverTheWire) {
  const Graph graph = GenerateErdosRenyi(150, 0.1, 5);
  Worker worker;
  ASSERT_TRUE(worker.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 2, 5);

  auto coordinator = std::make_shared<Coordinator>();
  TcpServer daemon(
      [coordinator](std::ostream& out) -> std::unique_ptr<WireSession> {
        return std::make_unique<CoordSession>(out, coordinator);
      },
      [coordinator] { coordinator->Stop(); }, TcpServerOptions{});
  ASSERT_TRUE(daemon.Start().ok());

  TcpClient client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", daemon.port(), /*timeout=*/30).ok());
  ASSERT_TRUE(client
                  .SendLine("hello proto=" +
                            std::to_string(kProtocolVersion) + " mode=framed")
                  .ok());
  auto hello = client.ReadLine();
  ASSERT_TRUE(hello.ok());
  auto version = ParseFramedHelloVersion(*hello);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, kProtocolVersion);

  // register the worker over the wire.
  Request reg;
  reg.id = 2;
  reg.payload = RegisterRequest{worker.endpoint()};
  ASSERT_TRUE(client.SendLine(FormatFramedRequest(reg)).ok());
  auto reg_line = client.ReadLine();
  ASSERT_TRUE(reg_line.ok());
  auto ack = ParseFramedWorkerAck(*reg_line);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->state, "idle");

  // mine end-to-end: the response is a plain mine verdict.
  Request mine;
  mine.id = 3;
  mine.payload = MineRequest{MakeQuery(2, 5)};
  ASSERT_TRUE(client.SendLine(FormatFramedRequest(mine)).ok());
  auto mine_line = client.ReadLine();
  ASSERT_TRUE(mine_line.ok());
  auto verdict = ParseFramedMineResult(*mine_line);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->state, "done");
  EXPECT_EQ(verdict->plexes, reference.count);
  EXPECT_EQ(verdict->fingerprint, reference.fingerprint);

  // Worker-holding verbs are refused by name.
  Request load;
  load.id = 4;
  load.payload = StatsRequest{};
  ASSERT_TRUE(client.SendLine(FormatFramedRequest(load)).ok());
  auto refused = client.ReadLine();
  ASSERT_TRUE(refused.ok());
  // Error frames parse as their embedded status, so peeking the type
  // must fail; the raw frame names the refused verb.
  EXPECT_FALSE(PeekFramedResponseType(*refused).ok());
  EXPECT_NE(refused->find("\"ok\":false"), std::string::npos) << *refused;
  EXPECT_NE(refused->find("not a coordinator command"), std::string::npos)
      << *refused;

  daemon.Stop();
}

}  // namespace
}  // namespace kplex

#else

namespace kplex {
TEST(Coordinator, SkippedWithoutPosixSockets) { GTEST_SKIP(); }
}  // namespace kplex

#endif  // KPLEX_TEST_SOCKETS
