// End-to-end tests of the shard coordinator: a 4-shard coordinated
// mine over two TCP worker processes must reproduce a single-process
// run exactly (count, fingerprint, max size) on multiple datasets; a
// worker killed mid-shard is retried on the surviving worker with the
// total still exact; mismatched snapshots are refused through the
// content-hash admission check; and endpoint parsing rejects garbage.

#include "service/shard_coordinator.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_TEST_SOCKETS 1
#endif

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "service/service_api.h"
#include "service/tcp_server.h"

namespace kplex {
namespace {

TEST(ShardEndpoints, ParseEndpointList) {
  auto two = ParseEndpointList("127.0.0.1:4000,worker-2:5000");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[0], "127.0.0.1:4000");
  EXPECT_FALSE(ParseEndpointList("").ok());
  EXPECT_FALSE(ParseEndpointList("noport").ok());
  EXPECT_FALSE(ParseEndpointList("host:").ok());
  EXPECT_FALSE(ParseEndpointList(":123").ok());
  EXPECT_FALSE(ParseEndpointList("host:0").ok());
  EXPECT_FALSE(ParseEndpointList("host:99999").ok());
  EXPECT_FALSE(ParseEndpointList("ok:1,bad").ok());
}

#if KPLEX_TEST_SOCKETS

/// One in-process "worker process": its own ServiceApi (catalog, cache,
/// dispatcher) behind its own TCP server — exactly what a separate
/// `serve --listen` process exposes.
struct Worker {
  explicit Worker(uint32_t dispatcher_workers = 2) {
    ServiceApiOptions options;
    options.workers = dispatcher_workers;
    api = std::make_shared<ServiceApi>(options);
    server = std::make_unique<TcpServer>(api, TcpServerOptions{});
  }

  Status StartWith(const std::string& name, Graph graph) {
    KPLEX_RETURN_IF_ERROR(api->catalog().RegisterGraph(name, std::move(graph)));
    return server->Start();
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  std::shared_ptr<ServiceApi> api;
  std::unique_ptr<TcpServer> server;
};

struct Reference {
  uint64_t count = 0;
  uint64_t fingerprint = 0;
  std::size_t max_size = 0;
};

Reference FullRun(const Graph& graph, uint32_t k, uint32_t q) {
  HashingSink hashing;
  CountingSink counting;
  CallbackSink tee([&](std::span<const VertexId> plex) {
    hashing.Emit(plex);
    counting.Emit(plex);
  });
  auto result = EnumerateMaximalKPlexes(graph, EnumOptions::Ours(k, q), tee);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return Reference{counting.count(), hashing.fingerprint(),
                   counting.max_size()};
}

TEST(ShardCoordinator, FourShardsOverTwoWorkersMatchSingleProcessRun) {
  // Two datasets (the acceptance bar): an Erdos-Renyi and a
  // Barabasi-Albert graph, mined at different (k, q).
  const struct {
    Graph graph;
    uint32_t k, q;
  } datasets[] = {
      {GenerateErdosRenyi(220, 0.08, 11), 2, 5},
      {GenerateBarabasiAlbert(300, 8, 7), 2, 6},
  };
  for (const auto& dataset : datasets) {
    Worker a, b;
    ASSERT_TRUE(a.StartWith("g", dataset.graph).ok());
    ASSERT_TRUE(b.StartWith("g", dataset.graph).ok());

    const Reference reference = FullRun(dataset.graph, dataset.k, dataset.q);

    ShardCoordinatorOptions options;
    options.query.graph = "g";
    options.query.k = dataset.k;
    options.query.q = dataset.q;
    options.shards = 4;
    options.endpoints = {a.endpoint(), b.endpoint()};
    auto result = CoordinateShardedMine(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    EXPECT_EQ(result->num_plexes, reference.count);
    EXPECT_EQ(result->fingerprint, reference.fingerprint);
    EXPECT_EQ(result->max_plex_size, reference.max_size);
    EXPECT_EQ(result->retries, 0u);
    EXPECT_NE(result->content_hash, 0u);
    ASSERT_EQ(result->shards.size(), 4u);
    uint64_t shard_sum = 0;
    for (const ShardOutcome& shard : result->shards) {
      shard_sum += shard.plexes;
      EXPECT_EQ(shard.attempts, 1u);
    }
    EXPECT_EQ(shard_sum, reference.count);
    // Every shard ran on one of the two workers. (Which lane pops
    // which shard is a scheduling race — one fast lane legitimately
    // may drain the whole queue — so participation of *both* is
    // deliberately not asserted.)
    for (const ShardOutcome& shard : result->shards) {
      EXPECT_TRUE(shard.endpoint == a.endpoint() ||
                  shard.endpoint == b.endpoint())
          << shard.endpoint;
    }
  }
}

TEST(ShardCoordinator, ManyShardsOneRepeatedEndpointStillExact) {
  // One worker process, listed twice: two lanes into one catalog, more
  // shards than lanes — the queue drains correctly and merges exactly.
  Graph graph = GenerateErdosRenyi(220, 0.08, 29);
  Worker solo(/*dispatcher_workers=*/4);
  ASSERT_TRUE(solo.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 2, 4);

  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 2;
  options.query.q = 4;
  options.shards = 9;
  options.endpoints = {solo.endpoint(), solo.endpoint()};
  auto result = CoordinateShardedMine(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_plexes, reference.count);
  EXPECT_EQ(result->fingerprint, reference.fingerprint);
}

TEST(ShardCoordinator, KilledWorkerMidShardRetriesAndStaysExact) {
  // A workload slow enough (~2.5s single-threaded) that worker B is
  // guaranteed to be mid-shard when it is killed.
  Graph graph = GenerateBarabasiAlbert(1000, 12, 9);
  Worker a, b;
  ASSERT_TRUE(a.StartWith("g", graph).ok());
  ASSERT_TRUE(b.StartWith("g", graph).ok());
  const Reference reference = FullRun(graph, 3, 6);

  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 3;
  options.query.q = 6;
  options.shards = 8;
  options.max_attempts = 3;
  options.endpoints = {a.endpoint(), b.endpoint()};

  StatusOr<CoordinatedMineResult> result = Status::Internal("not run");
  std::thread coordination(
      [&] { result = CoordinateShardedMine(options); });

  // Wait until B is actually running a *real* shard — a job with a
  // non-empty seed range, not the empty-range admission probe (killing
  // B during planning would just drop its lane with zero retries) —
  // then kill it. Stop() closes B's sockets before cancelling its
  // jobs, so the coordinator observes a transport failure (never a
  // partial result) and retries the shard on A.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool b_running_shard = false;
  while (!b_running_shard && std::chrono::steady_clock::now() < deadline) {
    for (const JobInfo& job : b.api->dispatcher().Jobs()) {
      b_running_shard =
          b_running_shard || (job.state == JobState::kRunning &&
                              job.request.seed_end > job.request.seed_begin);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(b_running_shard) << "worker B never picked up a shard";
  b.server->Stop();

  coordination.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_plexes, reference.count);
  EXPECT_EQ(result->fingerprint, reference.fingerprint);
  EXPECT_EQ(result->max_plex_size, reference.max_size);
  EXPECT_GE(result->retries, 1u);
  // Every shard that survived B's death completed on A.
  for (const ShardOutcome& shard : result->shards) {
    if (shard.attempts > 1) {
      EXPECT_EQ(shard.endpoint, a.endpoint());
    }
  }
}

TEST(ShardCoordinator, LoneEndpointDeathFailsFastInsteadOfBurningRetries) {
  // With a single endpoint configured, a transport failure has nowhere
  // to retry: the coordination must fail immediately with a structural
  // explanation, not redial the dead endpoint --max-attempts times.
  Graph graph = GenerateBarabasiAlbert(1000, 12, 9);
  Worker solo;
  ASSERT_TRUE(solo.StartWith("g", graph).ok());

  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 3;
  options.query.q = 6;
  options.shards = 4;
  options.max_attempts = 100;  // must NOT be consumed
  options.endpoints = {solo.endpoint()};

  StatusOr<CoordinatedMineResult> result = Status::Internal("not run");
  std::thread coordination(
      [&] { result = CoordinateShardedMine(options); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool running_shard = false;
  while (!running_shard && std::chrono::steady_clock::now() < deadline) {
    for (const JobInfo& job : solo.api->dispatcher().Jobs()) {
      running_shard =
          running_shard || (job.state == JobState::kRunning &&
                            job.request.seed_end > job.request.seed_begin);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(running_shard) << "the worker never picked up a shard";
  solo.server->Stop();

  coordination.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("no other endpoint is live"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ShardCoordinator, TimedOutShardNeverEntersTheMerge) {
  // A per-shard time limit that trips leaves the job kDone with
  // timed_out=true — a *partial* shard. The coordinator must abort the
  // coordination, never silently merge a truncated total.
  Graph graph = GenerateErdosRenyi(220, 0.08, 11);
  Worker a;
  ASSERT_TRUE(a.StartWith("g", graph).ok());

  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 2;
  options.query.q = 4;
  options.query.time_limit_seconds = 1e-9;  // trips after the first seed
  options.shards = 2;
  options.endpoints = {a.endpoint()};
  auto result = CoordinateShardedMine(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("not a complete answer"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("time limit hit"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ShardCoordinator, MismatchedSnapshotIsRefusedThroughTheHash) {
  // Worker B holds different bytes under the same name: the admission
  // check must fail the whole coordination, not merge garbage.
  Worker a, b;
  ASSERT_TRUE(a.StartWith("g", GenerateErdosRenyi(220, 0.08, 11)).ok());
  ASSERT_TRUE(b.StartWith("g", GenerateErdosRenyi(220, 0.08, 12)).ok());

  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 2;
  options.query.q = 5;
  options.shards = 4;
  options.endpoints = {a.endpoint(), b.endpoint()};
  auto result = CoordinateShardedMine(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("content hash mismatch"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ShardCoordinator, UnknownGraphFailsStructurally) {
  Worker a;
  ASSERT_TRUE(a.StartWith("g", GenerateErdosRenyi(100, 0.1, 3)).ok());
  ShardCoordinatorOptions options;
  options.query.graph = "nope";
  options.query.k = 2;
  options.query.q = 5;
  options.endpoints = {a.endpoint()};
  auto result = CoordinateShardedMine(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ShardCoordinator, NoReachableWorkerIsAnIoError) {
  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 2;
  options.query.q = 5;
  // Port 1 on loopback: reliably refused.
  options.endpoints = {"127.0.0.1:1"};
  auto result = CoordinateShardedMine(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ShardCoordinator, FpBaselineIsRejectedUpFront) {
  ShardCoordinatorOptions options;
  options.query.graph = "g";
  options.query.k = 2;
  options.query.q = 5;
  options.query.algo = QueryAlgo::kFp;
  options.endpoints = {"127.0.0.1:1"};
  auto result = CoordinateShardedMine(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

#endif  // KPLEX_TEST_SOCKETS

}  // namespace
}  // namespace kplex
