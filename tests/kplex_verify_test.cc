// Unit tests for the definition-level k-plex predicates and the
// theorem-level properties they encode (hereditariness, Theorem 3.3).

#include "core/kplex_verify.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace kplex {
namespace {

Graph Clique(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return GraphBuilder::FromEdges(n, edges);
}

TEST(IsKPlex, CliqueIsOnePlex) {
  Graph g = Clique(5);
  std::vector<VertexId> all = {0, 1, 2, 3, 4};
  EXPECT_TRUE(IsKPlex(g, all, 1));
}

TEST(IsKPlex, EmptyAndSingleton) {
  Graph g = Clique(3);
  EXPECT_TRUE(IsKPlex(g, {}, 1));
  std::vector<VertexId> one = {0};
  EXPECT_TRUE(IsKPlex(g, one, 1));
}

TEST(IsKPlex, StarIsNotATightPlex) {
  // Star K1,3: center 0. Leaves are pairwise non-adjacent.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<VertexId> all = {0, 1, 2, 3};
  EXPECT_FALSE(IsKPlex(g, all, 2));  // leaf 1 misses 2, 3 and itself = 3 > 2
  EXPECT_TRUE(IsKPlex(g, all, 3));
}

TEST(IsKPlex, TwoDisjointEdgesFormTwoPlexOfSizeTwoTimesKMinusOne) {
  // Paper remark: a k-plex of size 2k-2 may be disconnected — two
  // disjoint (k-1)-cliques. For k = 2: two disjoint single edges... each
  // vertex misses the two far vertices plus itself = 3 > 2, so take the
  // canonical example for k = 3: two disjoint K2's, |P| = 4 = 2k - 2.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<VertexId> all = {0, 1, 2, 3};
  EXPECT_TRUE(IsKPlex(g, all, 3));
  EXPECT_FALSE(IsConnectedInduced(g, all));
}

TEST(Hereditariness, AllSubsetsOfAPlexArePlexes) {
  // Theorem 3.2 checked exhaustively on a random 2-plex.
  Graph g = GenerateErdosRenyi(10, 0.6, 77);
  // Find some maximal-ish 2-plex greedily.
  std::vector<VertexId> plex;
  for (VertexId v = 0; v < 10; ++v) {
    plex.push_back(v);
    if (!IsKPlex(g, plex, 2)) plex.pop_back();
  }
  ASSERT_GE(plex.size(), 3u);
  const std::size_t n = plex.size();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<VertexId> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) subset.push_back(plex[i]);
    }
    EXPECT_TRUE(IsKPlex(g, subset, 2));
  }
}

TEST(IsMaximalKPlex, DetectsExtendability) {
  Graph g = Clique(5);
  std::vector<VertexId> sub = {0, 1, 2, 3};
  EXPECT_TRUE(IsKPlex(g, sub, 1));
  EXPECT_FALSE(IsMaximalKPlex(g, sub, 1));
  std::vector<VertexId> all = {0, 1, 2, 3, 4};
  EXPECT_TRUE(IsMaximalKPlex(g, all, 1));
}

TEST(Diameter, PathAndClique) {
  Graph path = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<VertexId> all = {0, 1, 2, 3};
  EXPECT_EQ(InducedDiameter(path, all), 3);
  Graph clique = Clique(4);
  EXPECT_EQ(InducedDiameter(clique, all), 1);
  std::vector<VertexId> single = {2};
  EXPECT_EQ(InducedDiameter(path, single), 0);
}

TEST(Diameter, DisconnectedIsMinusOne) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  std::vector<VertexId> all = {0, 1, 2, 3};
  EXPECT_EQ(InducedDiameter(g, all), -1);
  EXPECT_FALSE(IsConnectedInduced(g, all));
}

TEST(Theorem33, LargePlexesHaveDiameterAtMostTwo) {
  // Any k-plex with |P| >= 2k - 1 has diameter <= 2. Randomized check:
  // grow random k-plexes and verify.
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t k = 1 + trial % 4;
    Graph g = GenerateErdosRenyi(16, 0.55, 1000 + trial);
    std::vector<VertexId> plex;
    std::vector<VertexId> order(16);
    for (VertexId v = 0; v < 16; ++v) order[v] = v;
    // Random insertion order.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (VertexId v : order) {
      plex.push_back(v);
      if (!IsKPlex(g, plex, k)) plex.pop_back();
    }
    if (plex.size() >= 2 * k - 1) {
      std::sort(plex.begin(), plex.end());
      int diameter = InducedDiameter(g, plex);
      ASSERT_GE(diameter, 0);
      EXPECT_LE(diameter, 2) << "k=" << k << " |P|=" << plex.size();
    }
  }
}

}  // namespace
}  // namespace kplex
