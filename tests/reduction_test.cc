// Unit tests for the shared reduction stage: the (q-k)-core and seed
// ordering served from precomputed snapshot sections must agree exactly
// with the recomputed path (same survivors, same order, same results),
// and inconsistent precompute must be ignored, not trusted.

#include "core/reduction.h"

#include <gtest/gtest.h>

#include <string>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/builder.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/precompute.h"
#include "parallel/parallel_enumerator.h"

namespace kplex {
namespace {

Graph KarateGraph() {
  auto graph = LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  EXPECT_TRUE(graph.ok());
  return *std::move(graph);
}

TEST(Reduction, PrecomputedCoreAndOrderingMatchRecomputedExactly) {
  for (const Graph& graph :
       {KarateGraph(), GenerateBarabasiAlbert(1500, 8, 5),
        GenerateErdosRenyi(600, 0.03, 7)}) {
    const GraphPrecompute pre = ComputeGraphPrecompute(graph, {});
    for (uint32_t k : {1u, 2u, 3u}) {
      EnumOptions plain = EnumOptions::Ours(k, 2 * k + 2);
      EnumOptions with_pre = plain;
      with_pre.precompute = &pre;

      AlgoCounters c1, c2;
      const PreparedReduction a = PrepareReduction(graph, plain, c1);
      const PreparedReduction b = PrepareReduction(graph, with_pre, c2);

      EXPECT_FALSE(a.core_precomputed);
      EXPECT_EQ(c1.core_reductions_precomputed, 0u);
      EXPECT_TRUE(b.core_precomputed);
      EXPECT_EQ(c2.core_reductions_precomputed, 1u);

      // Identical survivor sets and identical compacted subgraphs.
      ASSERT_EQ(a.core.to_original, b.core.to_original);
      EXPECT_EQ(a.core.graph.Edges(), b.core.graph.Edges());
      if (a.core.graph.NumVertices() == 0) continue;

      // The restriction of the stored full-graph peel IS the
      // degeneracy ordering of the core (suffix property + preserved
      // tie-breaks), so even order/rank/coreness match field by field.
      EXPECT_TRUE(b.order_precomputed);
      EXPECT_EQ(c2.orderings_precomputed, 1u);
      EXPECT_EQ(a.ordering.order, b.ordering.order);
      EXPECT_EQ(a.ordering.rank, b.ordering.rank);
      EXPECT_EQ(a.ordering.coreness, b.ordering.coreness);
      EXPECT_EQ(a.ordering.degeneracy, b.ordering.degeneracy);
    }
  }
}

TEST(Reduction, StoredMaskIsUsedWhenLevelMatches) {
  Graph graph = GenerateErdosRenyi(400, 0.04, 3);
  // k=2, q=6 -> level 4 stored; level 2 is not.
  const uint32_t levels[] = {4};
  const GraphPrecompute pre = ComputeGraphPrecompute(graph, levels);
  EnumOptions options = EnumOptions::Ours(2, 6);
  options.precompute = &pre;
  AlgoCounters counters;
  const PreparedReduction prepared =
      PrepareReduction(graph, options, counters);
  EXPECT_TRUE(prepared.core_precomputed);

  AlgoCounters plain_counters;
  EnumOptions plain = EnumOptions::Ours(2, 6);
  const PreparedReduction recomputed =
      PrepareReduction(graph, plain, plain_counters);
  EXPECT_EQ(prepared.core.to_original, recomputed.core.to_original);
}

TEST(Reduction, MismatchedPrecomputeFallsBackSilently) {
  Graph graph = GenerateErdosRenyi(200, 0.05, 1);
  // Precompute for a *different* graph (wrong vertex count): must be
  // ignored entirely.
  const GraphPrecompute stale =
      ComputeGraphPrecompute(GenerateErdosRenyi(100, 0.05, 2), {});
  EnumOptions options = EnumOptions::Ours(2, 5);
  options.precompute = &stale;
  AlgoCounters counters;
  const PreparedReduction prepared =
      PrepareReduction(graph, options, counters);
  EXPECT_FALSE(prepared.core_precomputed);
  EXPECT_FALSE(prepared.order_precomputed);
  EXPECT_EQ(counters.core_reductions_precomputed, 0u);

  AlgoCounters plain_counters;
  EnumOptions plain = EnumOptions::Ours(2, 5);
  const PreparedReduction recomputed =
      PrepareReduction(graph, plain, plain_counters);
  EXPECT_EQ(prepared.core.to_original, recomputed.core.to_original);
}

TEST(Reduction, CtcpPreprocessIgnoresPrecompute) {
  Graph graph = KarateGraph();
  const GraphPrecompute pre = ComputeGraphPrecompute(graph, {});
  EnumOptions options = EnumOptions::Ours(2, 6);
  options.use_ctcp_preprocess = true;
  options.precompute = &pre;
  AlgoCounters counters;
  const PreparedReduction prepared =
      PrepareReduction(graph, options, counters);
  EXPECT_FALSE(prepared.core_precomputed);
  EXPECT_EQ(counters.core_reductions_precomputed, 0u);
}

TEST(Reduction, NonDegeneracyOrderingsRecomputeTheOrder) {
  Graph graph = KarateGraph();
  const GraphPrecompute pre = ComputeGraphPrecompute(graph, {});
  EnumOptions options = EnumOptions::Ours(2, 6);
  options.ordering = VertexOrdering::kByDegreeAscending;
  options.precompute = &pre;
  AlgoCounters counters;
  const PreparedReduction prepared =
      PrepareReduction(graph, options, counters);
  EXPECT_TRUE(prepared.core_precomputed);   // membership still served
  EXPECT_FALSE(prepared.order_precomputed); // order honors the request
}

// End to end: same maximal k-plex count and order-independent
// fingerprint with and without precompute, sequential and parallel.
TEST(Reduction, EnumerationResultsIdenticalWithPrecompute) {
  for (const Graph& graph :
       {KarateGraph(), GenerateBarabasiAlbert(900, 10, 13)}) {
    const GraphPrecompute pre = ComputeGraphPrecompute(graph, {});
    EnumOptions plain = EnumOptions::Ours(2, 6);
    EnumOptions with_pre = plain;
    with_pre.precompute = &pre;

    HashingSink h1, h2, h3;
    auto base = EnumerateMaximalKPlexes(graph, plain, h1);
    auto fast = EnumerateMaximalKPlexes(graph, with_pre, h2);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(base->num_plexes, fast->num_plexes);
    EXPECT_EQ(h1.fingerprint(), h2.fingerprint());
    EXPECT_EQ(fast->counters.core_reductions_precomputed, 1u);
    EXPECT_EQ(fast->counters.orderings_precomputed, 1u);
    // Identical ordering implies identical traversal: branch counters
    // agree too.
    EXPECT_EQ(base->counters.branch_calls, fast->counters.branch_calls);

    ParallelOptions parallel;
    parallel.num_threads = 4;
    auto par = ParallelEnumerateMaximalKPlexes(graph, with_pre, parallel, h3);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(par->num_plexes, base->num_plexes);
    EXPECT_EQ(h3.fingerprint(), h1.fingerprint());
    EXPECT_EQ(par->counters.core_reductions_precomputed, 1u);
  }
}

}  // namespace
}  // namespace kplex
