// Unit tests for the CSR Graph and GraphBuilder.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace kplex {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  Graph g = GraphBuilder::FromEdges(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilder, IsolatedVertices) {
  Graph g = GraphBuilder::FromEdges(5, {});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  Graph g = GraphBuilder::FromEdges(
      4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(Graph, NeighborsAreSorted) {
  Graph g = GraphBuilder::FromEdges(6, {{3, 5}, {3, 0}, {3, 4}, {3, 1}});
  auto nbrs = g.Neighbors(3);
  std::vector<VertexId> v(nbrs.begin(), nbrs.end());
  EXPECT_EQ(v, (std::vector<VertexId>{0, 1, 4, 5}));
}

TEST(Graph, DegreesAndMaxDegree) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(Graph, EdgesRoundTrip) {
  std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {0, 3}};
  Graph g = GraphBuilder::FromEdges(4, edges);
  auto out = g.Edges();
  EXPECT_EQ(out.size(), 4u);
  for (const auto& [u, v] : out) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  EXPECT_FALSE(g.HasEdge(0, 7));
  EXPECT_FALSE(g.HasEdge(9, 1));
}

}  // namespace
}  // namespace kplex
