// Theorem-level properties from Sections 3 and 5 of the paper, validated
// directly: the second-order property (Theorem 5.1), core containment
// (Theorem 3.5), the branching-constant gamma_k (Lemma 5.10), and the
// output guarantees of Definition 3.4.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bk_naive.h"
#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "graph/degeneracy.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

// Theorem 5.1: for u, v in a k-plex P with |P| >= q:
//   (u,v) not an edge  =>  |N_P(u) ∩ N_P(v)| >= q - 2k + 2
//   (u,v) an edge      =>  |N_P(u) ∩ N_P(v)| >= q - 2k
TEST(Theorem51, SecondOrderPropertyHoldsOnAllGroundTruthPlexes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = GenerateErdosRenyi(13, 0.75, seed * 131);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 6}, {3, 8}, {4, 9}}) {
      auto truth = BruteForceMaximalKPlexes(g, k, q);
      ASSERT_TRUE(truth.ok());
      for (const auto& plex : *truth) {
        for (std::size_t a = 0; a < plex.size(); ++a) {
          for (std::size_t b = a + 1; b < plex.size(); ++b) {
            int64_t common = 0;
            for (VertexId w : plex) {
              if (w != plex[a] && w != plex[b] &&
                  g.HasEdge(w, plex[a]) && g.HasEdge(w, plex[b])) {
                ++common;
              }
            }
            const int64_t bound =
                g.HasEdge(plex[a], plex[b])
                    ? static_cast<int64_t>(q) - 2 * k
                    : static_cast<int64_t>(q) - 2 * k + 2;
            EXPECT_GE(common, bound)
                << "k=" << k << " q=" << q << " pair (" << plex[a] << ","
                << plex[b] << ")";
          }
        }
      }
    }
  }
}

// Theorem 3.5: all k-plexes with >= q vertices live in the (q-k)-core.
TEST(Theorem35, GroundTruthPlexesSurviveCoreReduction) {
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    Graph g = GenerateErdosRenyi(14, 0.5, seed);
    const uint32_t k = 2, q = 5;
    auto truth = BruteForceMaximalKPlexes(g, k, q);
    ASSERT_TRUE(truth.ok());
    CoreReduction core = ReduceToCore(g, q - k);
    std::vector<char> in_core(g.NumVertices(), 0);
    for (VertexId v : core.to_original) in_core[v] = 1;
    for (const auto& plex : *truth) {
      for (VertexId v : plex) {
        EXPECT_TRUE(in_core[v]) << "vertex " << v << " wrongly peeled";
      }
    }
  }
}

// Lemma 5.10: gamma_k is the largest real root of x^{k+2} - 2x^{k+1} + 1.
// The paper quotes gamma_1 = 1.618, gamma_2 = 1.839, gamma_3 = 1.928.
double GammaK(uint32_t k) {
  // Bisection on (1, 2): f(1) = 0 is a trivial root; the largest root
  // lies strictly between phi-ish values and 2 where f(2) = 1 > 0 and
  // f just below 2 is negative.
  auto f = [&](double x) {
    return std::pow(x, k + 2) - 2 * std::pow(x, k + 1) + 1;
  };
  double lo = 1.2, hi = 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = (lo + hi) / 2;
    if (f(mid) < 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

TEST(Lemma510, GammaConstantsMatchThePaper) {
  EXPECT_NEAR(GammaK(1), 1.618, 0.001);
  EXPECT_NEAR(GammaK(2), 1.839, 0.001);
  EXPECT_NEAR(GammaK(3), 1.928, 0.001);
  // gamma_k < 2 and increases toward 2.
  for (uint32_t k = 1; k <= 8; ++k) {
    EXPECT_LT(GammaK(k), 2.0);
    if (k > 1) {
      EXPECT_GT(GammaK(k), GammaK(k - 1));
    }
  }
}

// Definition 3.4 output guarantees, checked on a real-world graph: every
// result is maximal, has >= q vertices, is connected with diameter <= 2.
TEST(Definition34, OutputGuaranteesOnKarateClub) {
  auto g = LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  ASSERT_TRUE(g.ok());
  for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
           {2, 5}, {3, 6}, {4, 8}}) {
    auto results = RunEngine(*g, EnumOptions::Ours(k, q));
    EXPECT_FALSE(results.empty()) << "k=" << k;
    for (const auto& plex : results) {
      EXPECT_GE(plex.size(), q);
      EXPECT_TRUE(IsMaximalKPlex(*g, plex, k));
      int diameter = InducedDiameter(*g, plex);
      EXPECT_GE(diameter, 0);  // connected
      EXPECT_LE(diameter, 2);  // Theorem 3.3
    }
  }
}

// Monotonicity in q: raising q can only shrink the result set, and
// every size->q' survivor of the q run appears in the q' run.
TEST(Definition34, ResultsMonotoneInQ) {
  Graph g = GenerateBarabasiAlbert(100, 8, 303);
  const uint32_t k = 2;
  auto at_q5 = RunEngine(g, EnumOptions::Ours(k, 5));
  auto at_q7 = RunEngine(g, EnumOptions::Ours(k, 7));
  EXPECT_LE(at_q7.size(), at_q5.size());
  testing_util::ResultSet expected;
  for (const auto& plex : at_q5) {
    if (plex.size() >= 7) expected.push_back(plex);
  }
  EXPECT_EQ(at_q7, expected);
}

// Monotonicity in k: every maximal k-plex is contained in some maximal
// (k+1)-plex (hereditariness lifts containment to maximality).
TEST(Definition34, EveryKPlexContainedInSomeKPlusOnePlex) {
  Graph g = GenerateErdosRenyi(40, 0.3, 304);
  auto k2 = RunEngine(g, EnumOptions::Ours(2, 4));
  auto k3 = RunEngine(g, EnumOptions::Ours(3, 5));
  for (const auto& small : k2) {
    if (small.size() < 5) continue;  // below the k=3 size threshold
    bool contained = false;
    for (const auto& big : k3) {
      if (std::includes(big.begin(), big.end(), small.begin(), small.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
}

}  // namespace
}  // namespace kplex
