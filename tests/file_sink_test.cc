// Unit tests for FileSink and the flag parser (the CLI's building
// blocks).

#include "core/file_sink.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>

#include "util/flags.h"

namespace kplex {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "kplex_" + name;
}

TEST(FileSink, WritesOnePlexPerLine) {
  std::string path = TempPath("file_sink_basic");
  {
    FileSink sink(path);
    ASSERT_TRUE(sink.status().ok());
    std::vector<VertexId> a = {3, 1, 4};
    std::vector<VertexId> b = {10, 20};
    sink.Emit(a);
    sink.Emit(b);
    EXPECT_EQ(sink.count(), 2u);
    EXPECT_TRUE(sink.Finish().ok());
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "3 1 4");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "10 20");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(FileSink, UnwritablePathReportsError) {
  FileSink sink("/nonexistent-dir/out.txt");
  EXPECT_FALSE(sink.status().ok());
  std::vector<VertexId> p = {1};
  sink.Emit(p);  // must not crash
  EXPECT_EQ(sink.count(), 0u);
}

TEST(FileSink, ConcurrentEmitsProduceWholeLines) {
  std::string path = TempPath("file_sink_mt");
  {
    FileSink sink(path);
    ASSERT_TRUE(sink.status().ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < 250; ++i) {
          std::vector<VertexId> p = {static_cast<VertexId>(t),
                                     static_cast<VertexId>(i)};
          sink.Emit(p);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(sink.count(), 1000u);
    EXPECT_TRUE(sink.Finish().ok());
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    // Every line must be exactly "<t> <i>" — no interleaving.
    std::istringstream ss(line);
    unsigned a, b;
    ASSERT_TRUE(static_cast<bool>(ss >> a >> b)) << line;
    EXPECT_LT(a, 4u);
    EXPECT_LT(b, 250u);
  }
  EXPECT_EQ(lines, 1000u);
  std::remove(path.c_str());
}

TEST(FlagParser, PositionalAndFlags) {
  const char* argv[] = {"prog", "mine", "--k", "3", "--q=12",
                        "--output", "out.txt"};
  auto parsed = FlagParser::Parse(7, argv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->positional(), (std::vector<std::string>{"mine"}));
  EXPECT_EQ(parsed->GetInt("k", 0).value(), 3);
  EXPECT_EQ(parsed->GetInt("q", 0).value(), 12);
  EXPECT_EQ(parsed->GetString("output", ""), "out.txt");
  EXPECT_EQ(parsed->GetInt("missing", 42).value(), 42);
}

TEST(FlagParser, BooleanFlagsAndDoubles) {
  const char* argv[] = {"prog", "--verbose", "--tau-ms", "0.25"};
  auto parsed = FlagParser::Parse(4, argv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Has("verbose"));
  EXPECT_EQ(parsed->GetString("verbose", ""), "true");
  EXPECT_DOUBLE_EQ(parsed->GetDouble("tau-ms", 0).value(), 0.25);
}

TEST(FlagParser, MalformedNumbersAreErrors) {
  const char* argv[] = {"prog", "--k", "three", "--tau-ms", "fast"};
  auto parsed = FlagParser::Parse(5, argv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetInt("k", 0).ok());
  EXPECT_FALSE(parsed->GetDouble("tau-ms", 0).ok());
}

TEST(FlagParser, UnknownFlagDetection) {
  const char* argv[] = {"prog", "--k", "2", "--typo-flag", "x"};
  auto parsed = FlagParser::Parse(5, argv);
  ASSERT_TRUE(parsed.ok());
  auto unknown = parsed->UnknownFlags({"k", "q"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo-flag");
}

TEST(FlagParser, BareDoubleDashRejected) {
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, argv).ok());
}

}  // namespace
}  // namespace kplex
