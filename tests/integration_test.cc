// End-to-end integration tests: known results on the real karate-club
// graph, full-variant agreement on every small registry dataset, and a
// larger randomized soak that exercises sequential + parallel paths on
// the same workload.

#include <gtest/gtest.h>

#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "graph/edge_list_io.h"
#include "parallel/parallel_enumerator.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::ResultSet;
using testing_util::RunEngine;
using testing_util::VerifyResultSet;

TEST(Integration, KarateClubKnownStructures) {
  auto g = LoadDataset("karate");
  ASSERT_TRUE(g.ok());

  // The karate club's largest clique has 5 vertices: {0,1,2,3,7} and
  // {0,1,2,3,13} (0-based compacted ids of the published 1-based ids
  // {1,2,3,4,8} / {1,2,3,4,14}).
  ResultSet cliques = RunEngine(*g, EnumOptions::Ours(1, 5));
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<VertexId>{0, 1, 2, 3, 7}));
  EXPECT_EQ(cliques[1], (std::vector<VertexId>{0, 1, 2, 3, 13}));

  // Relaxing to 2-plexes merges both cliques (plus vertex 12) into the
  // well-known 6-vertex 2-plex around the instructor.
  ResultSet plexes = RunEngine(*g, EnumOptions::Ours(2, 6));
  ASSERT_EQ(plexes.size(), 1u);
  EXPECT_EQ(plexes[0], (std::vector<VertexId>{0, 1, 2, 3, 7, 13}));

  VerifyResultSet(*g, plexes, 2, 6);
}

TEST(Integration, AllVariantsAgreeOnSmallRegistryDatasets) {
  for (const auto& spec : DatasetsByCategory("small")) {
    auto g = LoadDataset(spec.name);
    ASSERT_TRUE(g.ok());
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 8}, {3, 10}}) {
      RunOutcome reference = TimeAlgo(*g, MakeSequentialAlgo("Ours", k, q));
      ASSERT_TRUE(reference.ok);
      for (const char* algo :
           {"Ours_P", "Basic", "Ours\\ub", "ListPlex", "FP"}) {
        RunOutcome other = TimeAlgo(*g, MakeSequentialAlgo(algo, k, q));
        ASSERT_TRUE(other.ok) << spec.name << " " << algo;
        EXPECT_EQ(other.fingerprint, reference.fingerprint)
            << spec.name << " k=" << k << " q=" << q << " " << algo;
      }
    }
  }
}

TEST(Integration, SequentialAndParallelAgreeOnMediumRegistryDataset) {
  auto g = LoadDataset("com-dblp-syn");
  ASSERT_TRUE(g.ok());
  const uint32_t k = 2, q = 7;

  CollectingSink sequential_sink;
  auto sequential =
      EnumerateMaximalKPlexes(*g, EnumOptions::Ours(k, q), sequential_sink);
  ASSERT_TRUE(sequential.ok());
  // The planted co-authorship graph has 120 communities of size 8.
  EXPECT_EQ(sequential->num_plexes, 120u);

  for (double tau : {0.0, 0.05}) {
    CollectingSink parallel_sink;
    ParallelOptions parallel;
    parallel.num_threads = 3;
    parallel.timeout_ms = tau;
    auto result = ParallelEnumerateMaximalKPlexes(
        *g, EnumOptions::Ours(k, q), parallel, parallel_sink);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(parallel_sink.SortedResults(), sequential_sink.SortedResults());
  }
}

TEST(Integration, SnapRoundTripThenMine) {
  // Save a registry graph in SNAP format, re-load it, and verify mining
  // results are identical — the I/O path preserves graph semantics.
  auto g = LoadDataset("jazz-syn");
  ASSERT_TRUE(g.ok());
  std::string path = ::testing::TempDir() + "kplex_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(*g, path).ok());
  auto reloaded = LoadEdgeList(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(RunEngine(*reloaded, EnumOptions::Ours(2, 10)),
            RunEngine(*g, EnumOptions::Ours(2, 10)));
  std::remove(path.c_str());
}

TEST(Integration, LargeKSweepOnKarate) {
  // k up to 6 with minimal legal q: results of every variant agree and
  // all outputs verify. Exercises deep S-enumeration (|S| up to k-1).
  auto g = LoadDataset("karate");
  ASSERT_TRUE(g.ok());
  for (uint32_t k = 1; k <= 6; ++k) {
    const uint32_t q = 2 * k - 1 > 3 ? 2 * k - 1 : 3;
    ResultSet ours = RunEngine(*g, EnumOptions::Ours(k, q));
    VerifyResultSet(*g, ours, k, q);
    EXPECT_EQ(RunEngine(*g, EnumOptions::OursP(k, q)), ours) << "k=" << k;
    EXPECT_EQ(RunEngine(*g, ListPlexOptions(k, q)), ours) << "k=" << k;
    CollectingSink fp_sink;
    ASSERT_TRUE(FpEnumerate(*g, k, q, fp_sink).ok());
    EXPECT_EQ(fp_sink.SortedResults(), ours) << "k=" << k;
  }
}

}  // namespace
}  // namespace kplex
