// Deterministic concurrency tests for the ServiceDispatcher: N workers
// over one shared catalog produce bit-identical HashingSink fingerprints
// to serial execution; cancellation of queued and in-flight jobs is
// prompt and never poisons the result cache; and eviction under load
// never unmaps a snapshot an in-flight query still reads (shared_ptr
// pins). These suites are the core of the ThreadSanitizer CI job.

#include "service/dispatcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "util/timer.h"

namespace kplex {
namespace {

Graph SmallGraph(uint64_t seed) { return GenerateErdosRenyi(150, 0.1, seed); }

// Large enough that a k=3 mine runs for many seconds — used to observe
// cancellation mid-flight (the run is never allowed to finish).
Graph SlowGraph() { return GenerateBarabasiAlbert(4000, 24, 9); }

QueryRequest MakeRequest(const std::string& graph, uint32_t k, uint32_t q) {
  QueryRequest request;
  request.graph = graph;
  request.k = k;
  request.q = q;
  return request;
}

// Polls until the job reaches `state` (or a terminal one); false on
// timeout. Cancellation tests need to catch a job while it runs.
bool WaitForState(ServiceDispatcher& dispatcher, uint64_t id, JobState state,
                  double timeout_seconds = 10.0) {
  WallTimer timer;
  while (timer.ElapsedSeconds() < timeout_seconds) {
    auto info = dispatcher.GetJob(id);
    if (!info.ok()) return false;
    if (info->state == state) return true;
    if (info->state != JobState::kQueued &&
        info->state != JobState::kRunning) {
      return false;  // terminal, and not the state we wanted
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(ServiceDispatcher, ConcurrentFingerprintsMatchSerialExecution) {
  // Serial reference: every (graph, q) answer straight from the
  // sequential engine.
  const std::map<std::string, Graph> graphs = {{"a", SmallGraph(21)},
                                               {"b", SmallGraph(22)}};
  struct Query {
    std::string graph;
    uint32_t q;
    uint64_t fingerprint;
    uint64_t count;
  };
  std::vector<Query> queries;
  for (const auto& kv : graphs) {
    for (uint32_t q = 4; q <= 9; ++q) {
      HashingSink sink;
      auto run = EnumerateMaximalKPlexes(kv.second, EnumOptions::Ours(2, q),
                                         sink);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      queries.push_back({kv.first, q, sink.fingerprint(), run->num_plexes});
    }
  }

  GraphCatalog catalog;
  for (const auto& kv : graphs) {
    ASSERT_TRUE(catalog.RegisterGraph(kv.first, Graph(kv.second)).ok());
  }
  QueryEngine engine(catalog);
  DispatcherOptions options;
  options.workers = 4;
  ServiceDispatcher dispatcher(engine, options);
  ASSERT_EQ(dispatcher.num_workers(), 4u);

  std::vector<uint64_t> ids;
  for (const Query& query : queries) {
    auto id = dispatcher.Submit(MakeRequest(query.graph, 2, query.q));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto info = dispatcher.Wait(ids[i]);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ASSERT_EQ(info->state, JobState::kDone)
        << info->status.ToString() << " for " << queries[i].graph
        << " q=" << queries[i].q;
    EXPECT_EQ(info->result.fingerprint, queries[i].fingerprint)
        << queries[i].graph << " q=" << queries[i].q;
    EXPECT_EQ(info->result.num_plexes, queries[i].count);
  }
}

TEST(ServiceDispatcher, DuplicateConcurrentQueriesSingleFlightIdentical) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", SmallGraph(5)).ok());
  QueryEngine engine(catalog);
  DispatcherOptions options;
  options.workers = 8;
  ServiceDispatcher dispatcher(engine, options);

  // Eight identical queries race; the engine's single-flight guarantees
  // one execution and seven hits, all with one fingerprint.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = dispatcher.Submit(MakeRequest("g", 2, 5));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  uint64_t fingerprint = 0;
  for (uint64_t id : ids) {
    auto info = dispatcher.Wait(id);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->state, JobState::kDone);
    if (fingerprint == 0) fingerprint = info->result.fingerprint;
    EXPECT_EQ(info->result.fingerprint, fingerprint);
  }
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServiceDispatcher, CancelRunningJobReturnsPromptlyWithoutCachePoison) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("big", SlowGraph()).ok());
  QueryEngine engine(catalog);
  ServiceDispatcher dispatcher(engine);

  auto id = dispatcher.Submit(MakeRequest("big", 3, 6));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(WaitForState(dispatcher, *id, JobState::kRunning));
  // Give the enumeration time to get deep into its branch tree, so the
  // cancel genuinely interrupts work in progress.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  WallTimer timer;
  ASSERT_TRUE(dispatcher.Cancel(*id).ok());
  auto info = dispatcher.Wait(*id);
  const double cancel_latency = timer.ElapsedSeconds();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_TRUE(info->result.cancelled);
  // The ISSUE 3 acceptance bound: a running query honors cancel within
  // 200ms (the engines poll every few thousand branch calls).
  EXPECT_LT(cancel_latency, 0.2) << "cancel took " << cancel_latency << "s";

  // The partial answer must not have entered the cache.
  EXPECT_EQ(engine.cache_stats().entries, 0u);

  // Cancelling a finished job is refused.
  Status again = dispatcher.Cancel(*id);
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceDispatcher, CancelQueuedJobNeverRuns) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("big", SlowGraph()).ok());
  ASSERT_TRUE(catalog.RegisterGraph("small", SmallGraph(3)).ok());
  QueryEngine engine(catalog);
  ServiceDispatcher dispatcher(engine);  // one worker: strict FIFO

  auto blocker = dispatcher.Submit(MakeRequest("big", 3, 6));
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(WaitForState(dispatcher, *blocker, JobState::kRunning));
  auto queued = dispatcher.Submit(MakeRequest("small", 2, 5));
  ASSERT_TRUE(queued.ok());

  ASSERT_TRUE(dispatcher.Cancel(*queued).ok());
  auto info = dispatcher.Wait(*queued);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_TRUE(info->result.cancelled);
  EXPECT_EQ(info->result.num_plexes, 0u);

  ASSERT_TRUE(dispatcher.Cancel(*blocker).ok());
  auto blocked = dispatcher.Wait(*blocker);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->state, JobState::kCancelled);
}

TEST(ServiceDispatcher, EvictionUnderLoadNeverUnmapsPinnedSnapshot) {
  // A mapped v2 snapshot graph is queried by 4 workers while the main
  // thread hammers Evict: in-flight queries hold shared_ptr pins, so
  // the mapping must survive until each run finishes, and every answer
  // must equal the serial reference.
  Graph graph = GenerateBarabasiAlbert(3000, 10, 17);
  const std::string path = ::testing::TempDir() + "dispatcher_evict.kpx";
  ASSERT_TRUE(SaveSnapshot(graph, path).ok());

  HashingSink reference;
  auto serial = EnumerateMaximalKPlexes(graph, EnumOptions::Ours(2, 8),
                                        reference);
  ASSERT_TRUE(serial.ok());

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("snap", path).ok());
  QueryEngine engine(catalog);
  DispatcherOptions options;
  options.workers = 4;
  ServiceDispatcher dispatcher(engine, options);

  constexpr int kJobs = 16;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    QueryRequest request = MakeRequest("snap", 2, 8);
    request.use_cache = false;  // force a real execution per job
    auto id = dispatcher.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Evict while the workers mine. Each Evict drops the catalog's own
  // reference; queries already holding the graph keep it mapped.
  std::atomic<bool> drained{false};
  std::thread evictor([&] {
    while (!drained.load()) {
      (void)catalog.Evict("snap");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (uint64_t id : ids) {
    auto info = dispatcher.Wait(id);
    ASSERT_TRUE(info.ok());
    ASSERT_EQ(info->state, JobState::kDone) << info->status.ToString();
    EXPECT_EQ(info->result.fingerprint, reference.fingerprint());
    EXPECT_EQ(info->result.num_plexes, serial->num_plexes);
  }
  drained.store(true);
  evictor.join();

  // The evictions really happened: the entry was re-materialized.
  for (const auto& info : catalog.Entries()) {
    if (info.name == "snap") EXPECT_GT(info.loads, 1u);
  }
  std::remove(path.c_str());
}

TEST(ServiceDispatcher, BoundedQueueRejectsWhenFull) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("big", SlowGraph()).ok());
  QueryEngine engine(catalog);
  DispatcherOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  ServiceDispatcher dispatcher(engine, options);

  auto running = dispatcher.Submit(MakeRequest("big", 3, 6));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(WaitForState(dispatcher, *running, JobState::kRunning));

  auto q1 = dispatcher.Submit(MakeRequest("big", 3, 7));
  auto q2 = dispatcher.Submit(MakeRequest("big", 3, 8));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto rejected = dispatcher.Submit(MakeRequest("big", 3, 9));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  // Cancelling a queued job frees a slot.
  ASSERT_TRUE(dispatcher.Cancel(*q2).ok());
  auto accepted = dispatcher.Submit(MakeRequest("big", 3, 9));
  EXPECT_TRUE(accepted.ok());

  ASSERT_TRUE(dispatcher.Cancel(*running).ok());
  // Remaining queued jobs are retired by the destructor.
}

TEST(ServiceDispatcher, DestructorCancelsOutstandingJobs) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("big", SlowGraph()).ok());
  QueryEngine engine(catalog);

  WallTimer timer;
  {
    ServiceDispatcher dispatcher(engine);
    auto running = dispatcher.Submit(MakeRequest("big", 3, 6));
    ASSERT_TRUE(running.ok());
    auto queued = dispatcher.Submit(MakeRequest("big", 3, 7));
    ASSERT_TRUE(queued.ok());
    ASSERT_TRUE(WaitForState(dispatcher, *running, JobState::kRunning));
    // Destructor must flip the running job's cancel flag and retire the
    // queued one instead of mining both to completion (minutes).
  }
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
  EXPECT_EQ(engine.cache_stats().entries, 0u);  // nothing partial cached
}

TEST(ServiceDispatcher, FinishedJobsArePrunedBeyondRetention) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", SmallGraph(2)).ok());
  QueryEngine engine(catalog);
  DispatcherOptions options;
  options.finished_retention = 3;
  ServiceDispatcher dispatcher(engine, options);

  std::vector<uint64_t> ids;
  for (uint32_t q = 4; q <= 9; ++q) {  // 6 jobs through retention 3
    auto id = dispatcher.Submit(MakeRequest("g", 2, q));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  dispatcher.Drain();

  // Only the 3 most recently finished jobs remain queryable; with one
  // worker, completion order is submission order.
  EXPECT_EQ(dispatcher.Jobs().size(), 3u);
  EXPECT_EQ(dispatcher.GetJob(ids.front()).status().code(),
            StatusCode::kNotFound);
  auto newest = dispatcher.GetJob(ids.back());
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->state, JobState::kDone);
}

TEST(ServiceDispatcher, JobBookkeepingAndErrors) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", SmallGraph(1)).ok());
  QueryEngine engine(catalog);
  ServiceDispatcher dispatcher(engine);

  EXPECT_EQ(dispatcher.GetJob(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dispatcher.Wait(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dispatcher.Cancel(42).code(), StatusCode::kNotFound);

  auto ok = dispatcher.Submit(MakeRequest("g", 2, 5));
  ASSERT_TRUE(ok.ok());
  auto missing = dispatcher.Submit(MakeRequest("nosuch", 2, 5));
  ASSERT_TRUE(missing.ok());  // submission succeeds; the *job* fails
  dispatcher.Drain();

  auto done = dispatcher.GetJob(*ok);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kDone);
  EXPECT_GT(done->result.num_plexes, 0u);

  auto failed = dispatcher.GetJob(*missing);
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->status.code(), StatusCode::kNotFound);

  const auto jobs = dispatcher.Jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, *ok);       // submission order
  EXPECT_EQ(jobs[1].id, *missing);
  EXPECT_STREQ(JobStateName(jobs[0].state), "done");
  EXPECT_STREQ(JobStateName(jobs[1].state), "failed");
}

}  // namespace
}  // namespace kplex
