// Unit tests for Status / StatusOr.

#include "util/status.h"

#include <gtest/gtest.h>

namespace kplex {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: k must be positive");
  EXPECT_FALSE(s.ok());
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    KPLEX_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace kplex
