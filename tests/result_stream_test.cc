// Streamed result delivery (protocol v4) — the property battery behind
// ISSUE 7: bounded result_chunk frames reassemble to exactly the
// buffered result set at every chunk size, cursor pagination loses and
// duplicates nothing, server-side selection (filter/contain/top)
// commutes with enumeration, and mode=maximum agrees with the
// FindMaximumKPlex oracle through the full service stack. Plus the
// coordinated-mine compatibility contract: every selection option is
// refused with a structured explanation, not a generic error.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/max_kplex.h"
#include "graph/generators.h"
#include "service/graph_catalog.h"
#include "service/protocol.h"
#include "service/query_engine.h"
#include "service/service_session.h"
#include "service/shard_coordinator.h"

namespace kplex {
namespace {

using Bodies = std::vector<std::vector<VertexId>>;

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Canonical (sorted) view of a result set, for order-independent
/// equality between differently-ordered runs.
Bodies Canon(Bodies bodies) {
  for (auto& plex : bodies) std::sort(plex.begin(), plex.end());
  std::sort(bodies.begin(), bodies.end());
  return bodies;
}

/// One decoded streamed exchange: the chunk frames (validated — seqs
/// contiguous from 0, exactly one final chunk flagged last, every
/// non-final chunk exactly `chunk_size` plexes) and the final verdict.
struct StreamedExchange {
  Bodies bodies;
  uint64_t chunks = 0;
  ParsedMineResult verdict;
};

/// Runs one framed mine line through a fresh cursor in `session`'s
/// output and decodes the chunk frames + final mine frame it produced.
StreamedExchange RunStreamedMine(ServiceSession& session,
                                 std::ostringstream& out,
                                 const std::string& mine_frame,
                                 uint32_t chunk_size) {
  const std::size_t before = Lines(out.str()).size();
  EXPECT_TRUE(session.ExecuteLine(mine_frame));
  std::vector<std::string> lines = Lines(out.str());
  StreamedExchange exchange;
  bool saw_last = false;
  bool saw_verdict = false;
  uint64_t next_seq = 0;
  for (std::size_t i = before; i < lines.size(); ++i) {
    auto type = PeekFramedResponseType(lines[i]);
    EXPECT_TRUE(type.ok()) << lines[i] << ": " << type.status().ToString();
    if (!type.ok()) continue;
    if (*type == "result_chunk") {
      EXPECT_FALSE(saw_last) << "chunk after the last chunk: " << lines[i];
      EXPECT_FALSE(saw_verdict) << "chunk after the verdict: " << lines[i];
      auto chunk = ParseFramedResultChunk(lines[i]);
      EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (!chunk.ok()) continue;
      EXPECT_EQ(chunk->seq, next_seq++) << "out-of-order chunk";
      if (!chunk->last) {
        EXPECT_EQ(chunk->plexes.size(), chunk_size)
            << "undersized non-final chunk " << chunk->seq;
      } else {
        EXPECT_LE(chunk->plexes.size(), chunk_size);
        saw_last = true;
      }
      exchange.bodies.insert(exchange.bodies.end(), chunk->plexes.begin(),
                             chunk->plexes.end());
      ++exchange.chunks;
    } else if (*type == "mine") {
      auto verdict = ParseFramedMineResult(lines[i]);
      EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
      if (!verdict.ok()) continue;
      exchange.verdict = *verdict;
      saw_verdict = true;
    } else {
      ADD_FAILURE() << "unexpected '" << *type << "' frame: " << lines[i];
    }
  }
  EXPECT_TRUE(saw_last) << "stream never terminated with a last chunk";
  EXPECT_TRUE(saw_verdict) << "stream never delivered the final verdict";
  // The verdict's bodies count is the reassembly contract.
  EXPECT_EQ(exchange.bodies.size(), exchange.verdict.bodies);
  return exchange;
}

/// A framed session over `graph`, past the hello handshake.
struct FramedHarness {
  std::ostringstream out;
  ServiceSession session{out};
  explicit FramedHarness(const Graph& graph) {
    EXPECT_TRUE(session.catalog().RegisterGraph("g", graph).ok());
    EXPECT_TRUE(session.ExecuteLine("hello proto=4 mode=framed"));
  }
};

/// The buffered oracle: the engine's own bodies for `request` (exact
/// emission order), bypassing the wire entirely.
Bodies BufferedBodies(const Graph& graph, QueryRequest request) {
  GraphCatalog catalog;
  EXPECT_TRUE(catalog.RegisterGraph("g", graph).ok());
  QueryEngine engine(catalog, 0);
  request.graph = "g";
  request.collect_bodies = true;
  auto result = engine.Run(request);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok() || result->plexes == nullptr) return {};
  return *result->plexes;
}

TEST(ResultStream, EveryChunkSizeReassemblesTheBufferedSetExactly) {
  const Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  QueryRequest oracle_request;
  oracle_request.k = 2;
  oracle_request.q = 5;
  const Bodies oracle = BufferedBodies(graph, oracle_request);
  ASSERT_GT(oracle.size(), 1u) << "test graph produced a trivial answer";

  // {1, 7, default}: a fresh session per size (no cross-run cache
  // coupling of the output stream).
  const std::vector<uint32_t> sizes = {1, 7, 0};
  for (uint32_t size : sizes) {
    FramedHarness harness(graph);
    std::string frame =
        "{\"id\":5,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
        "\"results\":\"stream\"";
    if (size > 0) frame += ",\"chunk\":" + std::to_string(size);
    frame += "}";
    const uint32_t effective = size > 0 ? size : kDefaultResultChunkSize;
    StreamedExchange exchange =
        RunStreamedMine(harness.session, harness.out, frame, effective);
    // Exact, order-preserving reassembly — sequential enumeration is
    // deterministic, so the stream equals the buffered bodies 1:1.
    EXPECT_EQ(exchange.bodies, oracle) << "chunk=" << size;
    EXPECT_EQ(exchange.chunks,
              (oracle.size() + effective - 1) / effective)
        << "chunk=" << size;
    EXPECT_EQ(exchange.verdict.plexes, oracle.size());
    EXPECT_EQ(exchange.verdict.state, "done");
    EXPECT_EQ(harness.session.errors(), 0u) << harness.out.str();
  }
}

TEST(ResultStream, EmptyResultStreamsOneEmptyLastChunk) {
  // No 2-plex of size >= 40 exists in this graph: the filtered stream
  // is empty, and the chunk phase still terminates explicitly.
  const Graph graph = GenerateErdosRenyi(60, 0.05, 7);
  FramedHarness harness(graph);
  StreamedExchange exchange = RunStreamedMine(
      harness.session, harness.out,
      "{\"id\":1,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":4,"
      "\"results\":\"stream\",\"min_size\":40}",
      kDefaultResultChunkSize);
  EXPECT_EQ(exchange.chunks, 1u);
  EXPECT_TRUE(exchange.bodies.empty());
  EXPECT_EQ(exchange.verdict.plexes, 0u);
}

TEST(ResultStream, TextModeStreamsChunkLinesBeforeTheMineLine) {
  const Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  const Bodies oracle = BufferedBodies(graph, [] {
    QueryRequest r;
    r.k = 2;
    r.q = 5;
    return r;
  }());
  std::ostringstream out;
  ServiceSession session(out);
  ASSERT_TRUE(session.catalog().RegisterGraph("g", graph).ok());
  EXPECT_TRUE(session.ExecuteLine("mine g 2 5 results=stream chunk=5"));
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_FALSE(lines.empty());
  // Chunks first, verdict last; ceil(N/5) chunk lines; the final chunk
  // line carries the ' last:' marker.
  EXPECT_EQ(lines.back().rfind("mined g k=2 q=5", 0), 0u) << lines.back();
  const std::size_t chunk_lines = lines.size() - 1;
  EXPECT_EQ(chunk_lines, (oracle.size() + 4) / 5) << out.str();
  for (std::size_t i = 0; i < chunk_lines; ++i) {
    EXPECT_EQ(lines[i].rfind("chunk ", 0), 0u) << lines[i];
    EXPECT_EQ(lines[i].find(" last") != std::string::npos,
              i + 1 == chunk_lines)
        << lines[i];
  }
  EXPECT_EQ(session.errors(), 0u) << out.str();
}

TEST(ResultStream, CursorPaginationLosesAndDuplicatesNothing) {
  const Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  QueryRequest oracle_request;
  oracle_request.k = 2;
  oracle_request.q = 5;
  const Bodies oracle = BufferedBodies(graph, oracle_request);
  ASSERT_GT(oracle.size(), 20u);

  FramedHarness harness(graph);
  Bodies reassembled;
  std::string cursor;  // empty = first page
  uint64_t pages = 0;
  for (;;) {
    ASSERT_LT(pages, oracle.size()) << "pagination failed to converge";
    std::string frame =
        "{\"id\":7,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
        "\"results\":\"stream\",\"chunk\":3,\"max_results\":7,"
        "\"cache\":false";
    if (!cursor.empty()) frame += ",\"cursor\":\"" + cursor + "\"";
    frame += "}";
    StreamedExchange page =
        RunStreamedMine(harness.session, harness.out, frame, 3);
    ++pages;
    reassembled.insert(reassembled.end(), page.bodies.begin(),
                       page.bodies.end());
    if (!page.verdict.has_cursor) {
      EXPECT_FALSE(page.verdict.stopped_early);
      break;
    }
    // A client cancelled at its cap resumes from the returned token —
    // interleave an unrelated mine to show the token is stateless.
    EXPECT_TRUE(page.verdict.stopped_early);
    EXPECT_TRUE(harness.session.ExecuteLine(
        "{\"id\":8,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":1,\"q\":4}"));
    cursor = FormatCursorValue(page.verdict.cursor_seed,
                               page.verdict.cursor_ordinal);
  }
  // Exact reassembly: same bodies, same order, no loss, no duplicates.
  EXPECT_EQ(reassembled, oracle);
  EXPECT_EQ(pages, (oracle.size() + 6) / 7);
  EXPECT_EQ(harness.session.errors(), 0u);
}

TEST(ResultStream, FiltersCommuteWithEnumeration) {
  // Server-side selection must equal client-side selection over the
  // full set, across a (k, q) grid on two generator families.
  const std::vector<Graph> graphs = {GenerateErdosRenyi(150, 0.1, 21),
                                     GenerateBarabasiAlbert(300, 6, 9)};
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const Graph& graph = graphs[g];
    for (uint32_t k = 2; k <= 3; ++k) {
      for (uint32_t q = 2 * k; q <= 2 * k + 2; q += 2) {
        QueryRequest base;
        base.k = k;
        base.q = q;
        const Bodies all = BufferedBodies(graph, base);
        if (all.empty()) continue;
        const std::string tag = "graph " + std::to_string(g) + " k=" +
                                std::to_string(k) + " q=" +
                                std::to_string(q);

        // size>=S, size<=T around the median size, plus contain=V for
        // a vertex known to appear.
        const std::size_t median = all[all.size() / 2].size();
        const VertexId witness = all.front().front();

        QueryRequest filtered = base;
        filtered.filter_min_size = median;
        filtered.filter_max_size = median + 1;
        filtered.has_contain = true;
        filtered.contain = witness;
        const Bodies served = BufferedBodies(graph, filtered);

        Bodies expected;
        for (const auto& plex : all) {
          if (plex.size() < median || plex.size() > median + 1) continue;
          if (std::find(plex.begin(), plex.end(), witness) == plex.end()) {
            continue;
          }
          expected.push_back(plex);
        }
        EXPECT_EQ(Canon(served), Canon(expected)) << tag;

        // top=K equals sorting the full set best-first (size desc,
        // then lexicographic) and truncating.
        QueryRequest top = base;
        top.top_k = 5;
        const Bodies best = BufferedBodies(graph, top);
        Bodies ranked = all;
        std::sort(ranked.begin(), ranked.end(),
                  [](const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b) {
                    if (a.size() != b.size()) return a.size() > b.size();
                    return a < b;
                  });
        ranked.resize(std::min<std::size_t>(5, ranked.size()));
        EXPECT_EQ(best, ranked) << tag;

        // Filtered counts are exact, not post-hoc: a count-only run
        // with the same filter agrees with the served bodies.
        GraphCatalog catalog;
        ASSERT_TRUE(catalog.RegisterGraph("g", graph).ok());
        QueryEngine engine(catalog, 0);
        QueryRequest count_only = filtered;
        count_only.graph = "g";
        count_only.collect_bodies = false;
        auto counted = engine.Run(count_only);
        ASSERT_TRUE(counted.ok()) << tag;
        EXPECT_EQ(counted->num_plexes, served.size()) << tag;
      }
    }
  }
}

TEST(ResultStream, MaximumModeAgreesWithTheOracleThroughTheStack) {
  const Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  for (uint32_t k = 2; k <= 3; ++k) {
    auto oracle = FindMaximumKPlex(graph, k);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    ASSERT_TRUE(oracle->found) << "test graph has no maximum " << k
                               << "-plex";

    FramedHarness harness(graph);
    StreamedExchange exchange = RunStreamedMine(
        harness.session, harness.out,
        "{\"id\":3,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":" +
            std::to_string(k) +
            ",\"q\":0,\"mode\":\"maximum\",\"results\":\"stream\"}",
        kDefaultResultChunkSize);
    EXPECT_EQ(exchange.verdict.plexes, 1u);
    ASSERT_EQ(exchange.bodies.size(), 1u);
    EXPECT_EQ(exchange.bodies.front().size(), oracle->plex.size());
    EXPECT_EQ(Canon(exchange.bodies).front(), oracle->plex);
    EXPECT_EQ(exchange.verdict.max_size, oracle->plex.size());
    EXPECT_EQ(harness.session.errors(), 0u) << harness.out.str();
  }

  // A graph below the 2k-1 connectivity floor answers "none" as an
  // empty stream, not an error.
  const Graph edgeless = GenerateErdosRenyi(10, 0.0, 1);
  FramedHarness harness(edgeless);
  StreamedExchange exchange = RunStreamedMine(
      harness.session, harness.out,
      "{\"id\":4,\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":0,"
      "\"mode\":\"maximum\",\"results\":\"stream\"}",
      kDefaultResultChunkSize);
  EXPECT_EQ(exchange.verdict.plexes, 0u);
  EXPECT_TRUE(exchange.bodies.empty());
  EXPECT_EQ(harness.session.errors(), 0u) << harness.out.str();
}

TEST(ResultStream, SelectionOptionRejectionsAreStructured) {
  // The engine refuses incoherent combinations with explanations.
  GraphCatalog catalog;
  ASSERT_TRUE(
      catalog.RegisterGraph("g", GenerateErdosRenyi(60, 0.1, 3)).ok());
  QueryEngine engine(catalog, 0);

  QueryRequest parallel_cursor;
  parallel_cursor.graph = "g";
  parallel_cursor.k = 2;
  parallel_cursor.q = 4;
  parallel_cursor.has_cursor = true;
  parallel_cursor.threads = 4;
  auto rejected = engine.Run(parallel_cursor);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("sequential run"),
            std::string::npos)
      << rejected.status().ToString();

  QueryRequest cursor_top = parallel_cursor;
  cursor_top.threads = 0;
  cursor_top.top_k = 3;
  rejected = engine.Run(cursor_top);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("top selects over the whole"),
            std::string::npos)
      << rejected.status().ToString();

  QueryRequest maximum_filtered;
  maximum_filtered.graph = "g";
  maximum_filtered.k = 2;
  maximum_filtered.q = 0;
  maximum_filtered.maximum = true;
  maximum_filtered.filter_min_size = 5;
  rejected = engine.Run(maximum_filtered);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("does not compose"),
            std::string::npos)
      << rejected.status().ToString();
}

TEST(ResultStream, CoordinatedMinesRefuseSelectionWithExplanations) {
  // Satellite of ISSUE 7: the sharded path explains *why* an option is
  // incompatible instead of a generic refusal. Message fragments are
  // load-bearing — the CLI prints them verbatim.
  QueryRequest base;
  base.graph = "g";
  base.k = 2;
  base.q = 5;
  EXPECT_TRUE(ValidateCoordinatedQuery(base).ok());

  QueryRequest capped = base;
  capped.max_results = 100;
  Status status = ValidateCoordinatedQuery(capped);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("Coordinated mines are count-exact"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find(
                "run a single-process mine for a truncated answer"),
            std::string::npos)
      << status.ToString();

  QueryRequest streamed = base;
  streamed.collect_bodies = true;
  status = ValidateCoordinatedQuery(streamed);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("Stream from a single worker"),
            std::string::npos)
      << status.ToString();

  QueryRequest filtered = base;
  filtered.filter_min_size = 9;
  status = ValidateCoordinatedQuery(filtered);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("merge algebra is exact only over the "
                                  "full result set"),
            std::string::npos)
      << status.ToString();

  QueryRequest top = base;
  top.top_k = 3;
  EXPECT_FALSE(ValidateCoordinatedQuery(top).ok());

  QueryRequest maximum = base;
  maximum.maximum = true;
  status = ValidateCoordinatedQuery(maximum);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not seed-range partitionable"),
            std::string::npos)
      << status.ToString();

  QueryRequest resumed = base;
  resumed.has_cursor = true;
  status = ValidateCoordinatedQuery(resumed);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sequential single-process enumeration"),
            std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace kplex
