// Seed-ordering invariance: the paper (Section 3) notes that the result
// set is independent of the vertex ordering and that even timing barely
// moves under within-shell shuffles. We verify the hard half — identical
// result sets under all supported orderings — plus early-stop behaviour
// (max_results).

#include "core/ordering.h"

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "graph/generators.h"
#include "parallel/parallel_enumerator.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

TEST(Ordering, MakeSeedOrderingShapes) {
  Graph g = GenerateBarabasiAlbert(50, 4, 3);
  for (auto ordering : {VertexOrdering::kDegeneracy, VertexOrdering::kById,
                        VertexOrdering::kByDegreeAscending}) {
    DegeneracyResult result = MakeSeedOrdering(g, ordering);
    ASSERT_EQ(result.order.size(), g.NumVertices());
    for (uint32_t i = 0; i < g.NumVertices(); ++i) {
      EXPECT_EQ(result.rank[result.order[i]], i);
    }
  }
  // kById is the identity.
  DegeneracyResult by_id = MakeSeedOrdering(g, VertexOrdering::kById);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(by_id.order[v], v);
  }
  // kByDegreeAscending is sorted by degree.
  DegeneracyResult by_degree =
      MakeSeedOrdering(g, VertexOrdering::kByDegreeAscending);
  for (std::size_t i = 1; i < by_degree.order.size(); ++i) {
    EXPECT_LE(g.Degree(by_degree.order[i - 1]),
              g.Degree(by_degree.order[i]));
  }
}

TEST(Ordering, ResultSetInvariantUnderOrdering) {
  for (uint64_t seed : {71ull, 72ull, 73ull}) {
    Graph g = GenerateErdosRenyi(45, 0.3, seed);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 4}, {3, 6}}) {
      EnumOptions base = EnumOptions::Ours(k, q);
      auto reference = RunEngine(g, base);
      for (auto ordering :
           {VertexOrdering::kById, VertexOrdering::kByDegreeAscending}) {
        EnumOptions options = base;
        options.ordering = ordering;
        EXPECT_EQ(RunEngine(g, options), reference)
            << "seed=" << seed << " k=" << k << " q=" << q;
      }
    }
  }
}

TEST(Ordering, ParallelRespectsOrderingOption) {
  Graph g = GenerateBarabasiAlbert(120, 6, 74);
  EnumOptions options = EnumOptions::Ours(2, 6);
  options.ordering = VertexOrdering::kById;
  auto sequential = RunEngine(g, options);
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = 2;
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sink.SortedResults(), sequential);
}

TEST(EarlyStop, MaxResultsCapsOutputCount) {
  Graph g = GenerateErdosRenyi(60, 0.3, 75);
  EnumOptions unbounded = EnumOptions::Ours(2, 4);
  CollectingSink all_sink;
  auto all = EnumerateMaximalKPlexes(g, unbounded, all_sink);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->num_plexes, 10u);

  EnumOptions capped = unbounded;
  capped.max_results = 5;
  CollectingSink capped_sink;
  auto some = EnumerateMaximalKPlexes(g, capped, capped_sink);
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some->num_plexes, 5u);
  EXPECT_TRUE(some->stopped_early);
  EXPECT_FALSE(some->timed_out);
  EXPECT_LT(some->counters.branch_calls, all->counters.branch_calls);
  // Everything emitted under the cap is part of the full result set.
  auto full = all_sink.SortedResults();
  for (const auto& plex : capped_sink.SortedResults()) {
    EXPECT_NE(std::find(full.begin(), full.end(), plex), full.end());
  }
}

TEST(EarlyStop, CapLargerThanResultCountIsNoOp) {
  Graph g = GenerateErdosRenyi(30, 0.3, 76);
  EnumOptions options = EnumOptions::Ours(2, 4);
  auto reference = RunEngine(g, options);
  options.max_results = 1000000;
  CollectingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stopped_early);
  EXPECT_EQ(sink.SortedResults(), reference);
}

}  // namespace
}  // namespace kplex
