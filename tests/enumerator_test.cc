// End-to-end correctness of the enumeration engine and all its variants,
// validated against exhaustive search (small graphs) and against the
// definition-level maximality oracle plus cross-variant agreement
// (larger graphs).

#include "core/enumerator.h"

#include <gtest/gtest.h>

#include "baselines/bk_naive.h"
#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::DiffSets;
using testing_util::ResultSet;
using testing_util::RunEngine;
using testing_util::VerifyResultSet;

TEST(Enumerator, RejectsInvalidOptions) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  CollectingSink sink;
  EnumOptions bad_k = EnumOptions::Ours(0, 3);
  EXPECT_FALSE(EnumerateMaximalKPlexes(g, bad_k, sink).ok());
  EnumOptions bad_q = EnumOptions::Ours(3, 4);  // q < 2k - 1
  EXPECT_FALSE(EnumerateMaximalKPlexes(g, bad_q, sink).ok());
}

TEST(Enumerator, EmptyGraph) {
  Graph g = GraphBuilder::FromEdges(0, {});
  CollectingSink sink;
  auto result = EnumerateMaximalKPlexes(g, EnumOptions::Ours(2, 4), sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_plexes, 0u);
}

TEST(Enumerator, SingleCliqueIsTheOnlyMaximalPlex) {
  // K6: the only maximal 2-plex with >= 4 vertices is the clique itself.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  Graph g = GraphBuilder::FromEdges(6, edges);
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 4));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

TEST(Enumerator, CliqueMinusPerfectMatchingIsATwoPlex) {
  // K6 minus a perfect matching {0-1, 2-3, 4-5}: all 6 vertices form a
  // 2-plex (each vertex misses exactly one neighbor plus itself).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) edges.push_back({u, v});
  }
  auto drop = [&](VertexId a, VertexId b) {
    std::erase(edges, std::make_pair(a, b));
  };
  drop(0, 1);
  drop(2, 3);
  drop(4, 5);
  Graph g = GraphBuilder::FromEdges(6, edges);
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 6));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Exhaustive cross-validation sweep: every engine variant must match the
// brute-force ground truth on random graphs.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::size_t n;
  int edge_percent;
  uint32_t k;
  uint32_t q;
  uint64_t seed;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.n) + "p" + std::to_string(p.edge_percent) +
         "k" + std::to_string(p.k) + "q" + std::to_string(p.q) + "s" +
         std::to_string(p.seed);
}

class BruteForceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BruteForceSweep, AllVariantsMatchGroundTruth) {
  const SweepParam& p = GetParam();
  Graph g = GenerateErdosRenyi(p.n, p.edge_percent / 100.0, p.seed);
  auto truth = BruteForceMaximalKPlexes(g, p.k, p.q);
  ASSERT_TRUE(truth.ok());

  const std::vector<std::pair<std::string, EnumOptions>> variants = {
      {"Ours", EnumOptions::Ours(p.k, p.q)},
      {"Ours_P", EnumOptions::OursP(p.k, p.q)},
      {"Basic", EnumOptions::Basic(p.k, p.q)},
      {"Ours\\ub", EnumOptions::OursNoUb(p.k, p.q)},
      {"Ours\\ub+fp", EnumOptions::OursFpUb(p.k, p.q)},
      {"ListPlex", ListPlexOptions(p.k, p.q)},
  };
  for (const auto& [name, options] : variants) {
    ResultSet results = RunEngine(g, options);
    EXPECT_EQ(results, *truth)
        << name << " disagrees with brute force:\n"
        << DiffSets(*truth, results);
  }
  // FP has its own driver.
  CollectingSink fp_sink;
  auto fp = FpEnumerate(g, p.k, p.q, fp_sink);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp_sink.SortedResults(), *truth)
      << "FP disagrees with brute force:\n"
      << DiffSets(*truth, fp_sink.SortedResults());
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BruteForceSweep,
    ::testing::Values(
        SweepParam{8, 40, 1, 3, 11}, SweepParam{8, 60, 1, 3, 12},
        SweepParam{9, 50, 2, 3, 13}, SweepParam{9, 70, 2, 4, 14},
        SweepParam{10, 30, 2, 3, 15}, SweepParam{10, 50, 2, 4, 16},
        SweepParam{10, 70, 2, 5, 17}, SweepParam{11, 40, 2, 3, 18},
        SweepParam{11, 60, 3, 5, 19}, SweepParam{12, 30, 2, 3, 20},
        SweepParam{12, 50, 3, 5, 21}, SweepParam{12, 70, 3, 6, 22},
        SweepParam{13, 40, 2, 4, 23}, SweepParam{13, 60, 3, 5, 24},
        SweepParam{14, 30, 2, 3, 25}, SweepParam{14, 50, 3, 5, 26},
        SweepParam{14, 45, 4, 7, 27}, SweepParam{12, 80, 4, 8, 28},
        SweepParam{13, 75, 4, 7, 29}, SweepParam{10, 90, 3, 6, 30}),
    SweepName);

// ---------------------------------------------------------------------------
// Larger graphs: variants must agree with each other and with the global
// Bron-Kerbosch reference, and every output must verify as maximal.
// ---------------------------------------------------------------------------

struct MediumParam {
  std::string generator;  // "ba", "er", "ws", "planted"
  uint32_t k;
  uint32_t q;
  uint64_t seed;
};

std::string MediumName(const ::testing::TestParamInfo<MediumParam>& info) {
  const auto& p = info.param;
  return p.generator + "k" + std::to_string(p.k) + "q" + std::to_string(p.q) +
         "s" + std::to_string(p.seed);
}

Graph MakeMediumGraph(const std::string& generator, uint64_t seed) {
  if (generator == "ba") return GenerateBarabasiAlbert(60, 6, seed);
  if (generator == "er") return GenerateErdosRenyi(50, 0.2, seed);
  if (generator == "ws") return GenerateWattsStrogatz(60, 8, 0.2, seed);
  PlantedCommunityConfig config;
  config.num_communities = 5;
  config.community_size = 7;
  config.missing_per_vertex = 1;
  config.background_vertices = 20;
  config.noise_probability = 0.05;
  return GeneratePlantedCommunities(config, seed).graph;
}

class MediumGraphSweep : public ::testing::TestWithParam<MediumParam> {};

TEST_P(MediumGraphSweep, VariantsAgreeAndOutputsVerify) {
  const MediumParam& p = GetParam();
  Graph g = MakeMediumGraph(p.generator, p.seed);

  ResultSet ours = RunEngine(g, EnumOptions::Ours(p.k, p.q));
  VerifyResultSet(g, ours, p.k, p.q);

  CollectingSink bk_sink;
  BkReferenceEnumerate(g, p.k, p.q, bk_sink);
  EXPECT_EQ(ours, bk_sink.SortedResults())
      << "Ours disagrees with the Bron-Kerbosch reference:\n"
      << DiffSets(bk_sink.SortedResults(), ours);

  EXPECT_EQ(RunEngine(g, EnumOptions::OursP(p.k, p.q)), ours);
  EXPECT_EQ(RunEngine(g, EnumOptions::Basic(p.k, p.q)), ours);
  EXPECT_EQ(RunEngine(g, ListPlexOptions(p.k, p.q)), ours);

  CollectingSink fp_sink;
  ASSERT_TRUE(FpEnumerate(g, p.k, p.q, fp_sink).ok());
  EXPECT_EQ(fp_sink.SortedResults(), ours);
}

INSTANTIATE_TEST_SUITE_P(
    MediumGraphs, MediumGraphSweep,
    ::testing::Values(MediumParam{"ba", 2, 5, 101},
                      MediumParam{"ba", 3, 6, 102},
                      MediumParam{"er", 2, 4, 103},
                      MediumParam{"er", 3, 5, 104},
                      MediumParam{"ws", 2, 4, 105},
                      MediumParam{"ws", 3, 5, 106},
                      MediumParam{"planted", 2, 5, 107},
                      MediumParam{"planted", 3, 6, 108},
                      MediumParam{"ba", 4, 8, 109},
                      MediumParam{"planted", 4, 7, 110}),
    MediumName);

}  // namespace
}  // namespace kplex
