// Cross-variant behaviour: pruning rules must shrink the explored search
// space without changing results; the time limit must abort cleanly; the
// counters must be internally consistent.

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

EnumResult RunFor(const Graph& g, const EnumOptions& options,
                  uint64_t* fingerprint = nullptr) {
  HashingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  EXPECT_TRUE(result.ok());
  if (fingerprint != nullptr) *fingerprint = sink.fingerprint();
  return *std::move(result);
}

TEST(Variants, PruningNeverChangesResultsAndShrinksSearch) {
  Graph g = GenerateBarabasiAlbert(250, 9, 61);
  const uint32_t k = 3, q = 8;

  uint64_t fp_ours, fp_basic, fp_noub;
  EnumResult ours = RunFor(g, EnumOptions::Ours(k, q), &fp_ours);
  EnumResult basic = RunFor(g, EnumOptions::Basic(k, q), &fp_basic);
  EnumResult noub = RunFor(g, EnumOptions::OursNoUb(k, q), &fp_noub);

  EXPECT_EQ(fp_ours, fp_basic);
  EXPECT_EQ(fp_ours, fp_noub);
  EXPECT_EQ(ours.num_plexes, basic.num_plexes);

  // The full rule set explores no more branches than Basic, and the ub
  // variant no more than the no-ub variant.
  EXPECT_LE(ours.counters.branch_calls, basic.counters.branch_calls);
  EXPECT_LE(ours.counters.branch_calls, noub.counters.branch_calls);
}

TEST(Variants, UbPrunesFireOnDenseWorkloads) {
  Graph g = GenerateErdosRenyi(80, 0.35, 62);
  EnumResult ours = RunFor(g, EnumOptions::Ours(3, 8));
  EXPECT_GT(ours.counters.ub_prunes, 0u);
  EnumResult noub = RunFor(g, EnumOptions::OursNoUb(3, 8));
  EXPECT_EQ(noub.counters.ub_prunes, 0u);
}

TEST(Variants, PairPruningPopulatesMatrixCounters) {
  Graph g = GenerateBarabasiAlbert(200, 10, 63);
  EnumResult ours = RunFor(g, EnumOptions::Ours(2, 10));
  EXPECT_GT(ours.counters.pair_edges_pruned, 0u);
  EnumResult basic = RunFor(g, EnumOptions::Basic(2, 10));
  EXPECT_EQ(basic.counters.pair_edges_pruned, 0u);
}

TEST(Variants, OursPMatchesOursEverywhere) {
  for (uint64_t seed : {64ull, 65ull, 66ull}) {
    Graph g = GenerateErdosRenyi(35, 0.4, seed);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 4}, {3, 5}, {4, 7}}) {
      EXPECT_EQ(RunEngine(g, EnumOptions::OursP(k, q)),
                RunEngine(g, EnumOptions::Ours(k, q)))
          << "k=" << k << " q=" << q << " seed=" << seed;
    }
  }
}

TEST(Variants, CountersAreConsistent) {
  Graph g = GenerateBarabasiAlbert(150, 7, 67);
  EnumResult r = RunFor(g, EnumOptions::Ours(2, 6));
  EXPECT_EQ(r.num_plexes, r.counters.outputs);
  EXPECT_GE(r.counters.subtasks, r.counters.subtasks_pruned_r1);
  EXPECT_GT(r.counters.seed_graphs, 0u);
  EXPECT_GT(r.counters.branch_calls, 0u);
}

TEST(Variants, TimeLimitAbortsCleanly) {
  // A hard workload with a microscopic budget must stop early, flag
  // timed_out, and report only verified plexes found so far.
  Graph g = GenerateErdosRenyi(120, 0.35, 68);
  EnumOptions options = EnumOptions::Ours(4, 8);
  options.time_limit_seconds = 0.02;
  CollectingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  // Partial output is still sound (every emitted plex is maximal).
  for (const auto& plex : sink.SortedResults()) {
    EXPECT_TRUE(IsMaximalKPlex(g, plex, options.k));
  }
}

TEST(Variants, SeedPruningToggleKeepsResults) {
  Graph g = GenerateBarabasiAlbert(180, 8, 69);
  EnumOptions no_seed_prune = EnumOptions::Ours(2, 8);
  no_seed_prune.use_seed_pruning = false;
  EXPECT_EQ(RunEngine(g, no_seed_prune),
            RunEngine(g, EnumOptions::Ours(2, 8)));
}

}  // namespace
}  // namespace kplex
