// Shard determinism suite: seed-range mining (EnumOptions::seed_range)
// must partition the result set exactly — the union of N disjoint
// shards equals one full run, set-for-set and fingerprint-for-
// fingerprint, for both engines across a (k, q) grid, under precompute
// sections, and under CTCP. Plus the MergeableResult algebra, range
// clamping/validation, and the QueryEngine plumbing (signatures, cache
// isolation, total_seeds/fingerprint_xor reporting).

#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "graph/precompute.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "parallel/parallel_enumerator.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::DiffSets;
using testing_util::ResultSet;
using testing_util::VerifyResultSet;

Graph TestGraph(uint64_t seed) { return GenerateErdosRenyi(220, 0.08, seed); }

struct FullRun {
  uint64_t count = 0;
  uint64_t fingerprint = 0;
  uint64_t total_seeds = 0;
  ResultSet results;
};

FullRun RunFull(const Graph& graph, const EnumOptions& options) {
  FullRun full;
  CollectingSink collecting;
  HashingSink hashing;
  CallbackSink tee([&](std::span<const VertexId> plex) {
    collecting.Emit(plex);
    hashing.Emit(plex);
  });
  auto result = EnumerateMaximalKPlexes(graph, options, tee);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  full.count = result->num_plexes;
  full.fingerprint = hashing.fingerprint();
  full.total_seeds = result->total_seeds;
  full.results = collecting.SortedResults();
  return full;
}

/// Runs `shards` disjoint ranges through the given engine and returns
/// the merged summary plus the unioned result set.
struct ShardedRun {
  MergeableResult merged;
  ResultSet results;
};

ShardedRun RunSharded(const Graph& graph, const EnumOptions& base,
                      uint32_t shards, uint64_t total_seeds,
                      uint32_t parallel_threads) {
  ShardedRun out;
  CollectingSink collecting;
  for (uint32_t i = 0; i < shards; ++i) {
    EnumOptions options = base;
    options.seed_range.begin =
        static_cast<uint32_t>(total_seeds * i / shards);
    options.seed_range.end =
        static_cast<uint32_t>(total_seeds * (i + 1) / shards);
    HashingSink hashing;
    CountingSink counting;
    CallbackSink tee([&](std::span<const VertexId> plex) {
      collecting.Emit(plex);
      hashing.Emit(plex);
      counting.Emit(plex);
    });
    StatusOr<EnumResult> result = Status::Internal("unreachable");
    if (parallel_threads > 0) {
      ParallelOptions parallel;
      parallel.num_threads = parallel_threads;
      result = ParallelEnumerateMaximalKPlexes(graph, options, parallel, tee);
    } else {
      result = EnumerateMaximalKPlexes(graph, options, tee);
    }
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_seeds, total_seeds)
        << "total_seeds must not depend on the shard";
    MergeableResult piece;
    piece.count = hashing.count();
    piece.xor_hash = hashing.xor_hash();
    piece.max_plex_size = counting.max_size();
    out.merged.Merge(piece);
  }
  out.results = collecting.SortedResults();
  return out;
}

TEST(ShardDeterminism, SequentialShardsPartitionTheResultSet) {
  Graph graph = TestGraph(11);
  const struct { uint32_t k, q; } grid[] = {{1, 3}, {2, 4}, {2, 6}, {3, 5}};
  for (const auto& cell : grid) {
    EnumOptions options = EnumOptions::Ours(cell.k, cell.q);
    const FullRun full = RunFull(graph, options);
    ASSERT_GT(full.total_seeds, 0u);
    for (uint32_t shards : {2u, 3u, 7u}) {
      const ShardedRun sharded =
          RunSharded(graph, options, shards, full.total_seeds, 0);
      EXPECT_EQ(sharded.merged.count, full.count)
          << "k=" << cell.k << " q=" << cell.q << " shards=" << shards;
      EXPECT_EQ(sharded.merged.fingerprint(), full.fingerprint)
          << "k=" << cell.k << " q=" << cell.q << " shards=" << shards;
      // Set equality, not just count/fingerprint: shards must neither
      // duplicate nor drop a single plex.
      EXPECT_EQ(sharded.results, full.results)
          << DiffSets(full.results, sharded.results);
      VerifyResultSet(graph, sharded.results, cell.k, cell.q);
    }
  }
}

TEST(ShardDeterminism, ParallelShardsMatchSequentialFullRun) {
  Graph graph = TestGraph(23);
  const struct { uint32_t k, q; } grid[] = {{2, 4}, {2, 6}, {3, 6}};
  for (const auto& cell : grid) {
    EnumOptions options = EnumOptions::Ours(cell.k, cell.q);
    const FullRun full = RunFull(graph, options);
    ASSERT_GT(full.total_seeds, 0u);
    for (uint32_t shards : {2u, 4u}) {
      const ShardedRun sharded =
          RunSharded(graph, options, shards, full.total_seeds,
                     /*parallel_threads=*/4);
      EXPECT_EQ(sharded.merged.count, full.count);
      EXPECT_EQ(sharded.merged.fingerprint(), full.fingerprint);
      EXPECT_EQ(sharded.results, full.results)
          << DiffSets(full.results, sharded.results);
    }
  }
}

TEST(ShardDeterminism, ShardsComposeUnderPrecomputeSections) {
  // A worker serving reduction from v2 snapshot sections must shard
  // identically to one that peels — the canonical order is the same.
  Graph graph = TestGraph(31);
  const uint32_t k = 2, q = 6;
  const std::string path =
      ::testing::TempDir() + "shard_precompute_test.kpx";
  SnapshotWriteOptions write;
  write.include_precompute = true;
  write.core_mask_levels = {q - k};
  ASSERT_TRUE(SaveSnapshot(graph, path, write).ok());
  auto loaded = LoadSnapshotFull(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_FALSE(loaded->precompute.empty());

  EnumOptions plain = EnumOptions::Ours(k, q);
  const FullRun full = RunFull(graph, plain);

  EnumOptions served = plain;
  served.precompute = &loaded->precompute;
  const ShardedRun sharded =
      RunSharded(loaded->graph, served, 3, full.total_seeds, 0);
  EXPECT_EQ(sharded.merged.count, full.count);
  EXPECT_EQ(sharded.merged.fingerprint(), full.fingerprint);
  std::remove(path.c_str());
}

TEST(ShardDeterminism, ShardsComposeUnderCtcp) {
  Graph graph = TestGraph(47);
  EnumOptions options = EnumOptions::Ours(2, 7);
  options.use_ctcp_preprocess = true;
  const FullRun full = RunFull(graph, options);
  const ShardedRun sharded =
      RunSharded(graph, options, 4, full.total_seeds, 0);
  EXPECT_EQ(sharded.merged.count, full.count);
  EXPECT_EQ(sharded.merged.fingerprint(), full.fingerprint);
}

TEST(ShardRange, OutOfRangeClampsAndEmptyRangeIsEmpty) {
  Graph graph = TestGraph(5);
  EnumOptions options = EnumOptions::Ours(2, 4);
  const FullRun full = RunFull(graph, options);

  // A range far past the seed count clamps to "everything after".
  EnumOptions tail = options;
  tail.seed_range.begin = 0;
  tail.seed_range.end = UINT32_MAX;
  HashingSink all;
  auto run = EnumerateMaximalKPlexes(graph, tail, all);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(all.fingerprint(), full.fingerprint);

  // Entirely beyond the seed space: legal, empty.
  EnumOptions beyond = options;
  beyond.seed_range.begin = static_cast<uint32_t>(full.total_seeds);
  beyond.seed_range.end = UINT32_MAX;
  CountingSink none;
  run = EnumerateMaximalKPlexes(graph, beyond, none);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_plexes, 0u);
  EXPECT_EQ(run->total_seeds, full.total_seeds);

  // The planning probe shape: [0, 0) enumerates nothing but still
  // reports the seed-space size.
  EnumOptions probe = options;
  probe.seed_range.begin = 0;
  probe.seed_range.end = 0;
  CountingSink empty;
  run = EnumerateMaximalKPlexes(graph, probe, empty);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_plexes, 0u);
  EXPECT_EQ(run->total_seeds, full.total_seeds);

  // Parallel engine honors the probe shape too.
  ParallelOptions parallel;
  parallel.num_threads = 2;
  CountingSink par_empty;
  auto par = ParallelEnumerateMaximalKPlexes(graph, probe, parallel,
                                             par_empty);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->num_plexes, 0u);
  EXPECT_EQ(par->total_seeds, full.total_seeds);
}

TEST(ShardRange, InvertedRangeIsRejected) {
  Graph graph = TestGraph(5);
  EnumOptions options = EnumOptions::Ours(2, 4);
  options.seed_range.begin = 10;
  options.seed_range.end = 3;
  CountingSink sink;
  auto run = EnumerateMaximalKPlexes(graph, options, sink);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  auto par = ParallelEnumerateMaximalKPlexes(graph, options, {}, sink);
  EXPECT_FALSE(par.ok());
  EXPECT_EQ(par.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeableResult, MergeIsAssociativeAndCommutative) {
  auto make = [](uint64_t count, uint64_t xor_hash, std::size_t max_size) {
    MergeableResult r;
    r.count = count;
    r.xor_hash = xor_hash;
    r.max_plex_size = max_size;
    return r;
  };
  const MergeableResult a = make(3, 0xdeadbeef, 7);
  const MergeableResult b = make(5, 0xc0ffee, 9);
  const MergeableResult c = make(1, 0x1234567890abcdefULL, 4);

  MergeableResult ab = a;
  ab.Merge(b);
  MergeableResult ab_c = ab;
  ab_c.Merge(c);

  MergeableResult bc = b;
  bc.Merge(c);
  MergeableResult a_bc = a;
  a_bc.Merge(bc);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.xor_hash, a_bc.xor_hash);
  EXPECT_EQ(ab_c.max_plex_size, a_bc.max_plex_size);
  EXPECT_EQ(ab_c.fingerprint(), a_bc.fingerprint());

  MergeableResult ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

  // The fingerprint formula matches HashingSink's composite exactly.
  HashingSink sink;
  const std::vector<VertexId> plex = {1, 2, 3, 4};
  sink.Emit(plex);
  MergeableResult one = make(sink.count(), sink.xor_hash(), plex.size());
  EXPECT_EQ(one.fingerprint(), sink.fingerprint());
}

TEST(QueryEngineShards, RangeEntersSignatureAndCacheIsolation) {
  QueryRequest full;
  full.graph = "g";
  full.k = 2;
  full.q = 5;
  QueryRequest shard = full;
  shard.seed_begin = 0;
  shard.seed_end = 10;
  // Distinct signatures: a shard's cached answer must never satisfy the
  // full query (or another shard).
  EXPECT_NE(QueryEngine::CanonicalSignature(full),
            QueryEngine::CanonicalSignature(shard));
  QueryRequest other = shard;
  other.seed_end = 20;
  EXPECT_NE(QueryEngine::CanonicalSignature(shard),
            QueryEngine::CanonicalSignature(other));
  // And the non-sharded signature is byte-identical to the historical
  // one (cache compatibility).
  EXPECT_EQ(QueryEngine::CanonicalSignature(full),
            "g|k=2|q=5|algo=ours|max=0");

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph(3)).ok());
  QueryEngine engine(catalog);

  auto full_result = engine.Run(full);
  ASSERT_TRUE(full_result.ok());
  ASSERT_GT(full_result->total_seeds, 0u);

  // Two halves merge to the full answer through the service types.
  QueryRequest lo = full;
  lo.seed_begin = 0;
  lo.seed_end = static_cast<uint32_t>(full_result->total_seeds / 2);
  QueryRequest hi = full;
  hi.seed_begin = lo.seed_end;
  hi.seed_end = UINT32_MAX;
  auto lo_result = engine.Run(lo);
  auto hi_result = engine.Run(hi);
  ASSERT_TRUE(lo_result.ok());
  ASSERT_TRUE(hi_result.ok());
  EXPECT_FALSE(lo_result->from_cache);
  MergeableResult merged;
  MergeableResult piece;
  piece.count = lo_result->num_plexes;
  piece.xor_hash = lo_result->fingerprint_xor;
  piece.max_plex_size = lo_result->max_plex_size;
  merged.Merge(piece);
  piece.count = hi_result->num_plexes;
  piece.xor_hash = hi_result->fingerprint_xor;
  piece.max_plex_size = hi_result->max_plex_size;
  merged.Merge(piece);
  EXPECT_EQ(merged.count, full_result->num_plexes);
  EXPECT_EQ(merged.fingerprint(), full_result->fingerprint);
  EXPECT_EQ(merged.max_plex_size, full_result->max_plex_size);

  // Warm repeat of a shard hits its own cache entry.
  auto lo_again = engine.Run(lo);
  ASSERT_TRUE(lo_again.ok());
  EXPECT_TRUE(lo_again->from_cache);
  EXPECT_EQ(lo_again->fingerprint_xor, lo_result->fingerprint_xor);
  EXPECT_EQ(lo_again->total_seeds, lo_result->total_seeds);
}

TEST(QueryEngineShards, FpBaselineRejectsSeedRanges) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph(3)).ok());
  QueryEngine engine(catalog);
  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;
  request.algo = QueryAlgo::kFp;
  request.seed_begin = 0;
  request.seed_end = 5;
  auto result = engine.Run(request);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphContentHash, DistinguishesGraphsAndSurvivesReload) {
  Graph a = TestGraph(3);
  Graph b = TestGraph(4);
  EXPECT_NE(GraphContentHash(a), GraphContentHash(b));
  EXPECT_NE(GraphContentHash(a), 0u);
  // Same bytes through a snapshot round trip hash identically (the
  // cross-worker admission property).
  const std::string path = ::testing::TempDir() + "shard_hash_test.kpx";
  ASSERT_TRUE(SaveSnapshot(a, path).ok());
  auto reloaded = LoadSnapshotFull(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(GraphContentHash(a), GraphContentHash(reloaded->graph));
  std::remove(path.c_str());

  // Catalog: lazy, cached while resident, recomputed after a reload.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  // (file was removed; re-save for the catalog's lazy load)
  ASSERT_TRUE(SaveSnapshot(a, path).ok());
  auto hash = catalog.ContentHash("g");
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  EXPECT_EQ(*hash, GraphContentHash(a));
  ASSERT_TRUE(catalog.Evict("g").ok());
  auto again = catalog.ContentHash("g");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *hash);
  // The file is REPLACED behind the catalog's back; after an eviction
  // the hash must track the new bytes (a stale hash would let a
  // mismatched snapshot through shard admission).
  ASSERT_TRUE(catalog.Evict("g").ok());
  ASSERT_TRUE(SaveSnapshot(b, path).ok());
  auto replaced = catalog.ContentHash("g");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*replaced, GraphContentHash(b));
  EXPECT_NE(*replaced, *hash);
  EXPECT_FALSE(catalog.ContentHash("nope").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kplex
