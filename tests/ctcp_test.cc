// Soundness and strength of the CTCP preprocessing: ground-truth plexes
// survive with all their vertices AND edges, the fixpoint is never
// larger than the plain (q-k)-core, and mining results are identical
// with and without it.

#include "graph/ctcp.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/bk_naive.h"
#include "core/enumerator.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "parallel/parallel_enumerator.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

TEST(Ctcp, GroundTruthPlexesSurviveWithAllEdges) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = GenerateErdosRenyi(14, 0.55, 700 + seed);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 6}, {3, 8}}) {
      auto truth = BruteForceMaximalKPlexes(g, k, q);
      ASSERT_TRUE(truth.ok());
      CtcpResult reduced = CtcpReduce(g, k, q);
      std::unordered_map<VertexId, VertexId> to_new;
      for (VertexId i = 0; i < reduced.to_original.size(); ++i) {
        to_new[reduced.to_original[i]] = i;
      }
      for (const auto& plex : *truth) {
        for (std::size_t a = 0; a < plex.size(); ++a) {
          ASSERT_TRUE(to_new.count(plex[a]))
              << "vertex " << plex[a] << " wrongly removed";
          for (std::size_t b = a + 1; b < plex.size(); ++b) {
            if (g.HasEdge(plex[a], plex[b])) {
              EXPECT_TRUE(reduced.graph.HasEdge(to_new[plex[a]],
                                                to_new[plex[b]]))
                  << "edge (" << plex[a] << "," << plex[b]
                  << ") wrongly removed";
            }
          }
        }
      }
    }
  }
}

TEST(Ctcp, NeverLargerThanPlainCore) {
  // The kPlexS claim, at our scale: CTCP <= (q-k)-core in both vertices
  // and edges.
  for (uint64_t seed : {11ull, 12ull, 13ull}) {
    Graph g = GenerateBarabasiAlbert(300, 8, seed);
    const uint32_t k = 2, q = 8;
    CoreReduction core = ReduceToCore(g, q - k);
    CtcpResult ctcp = CtcpReduce(g, k, q);
    EXPECT_LE(ctcp.graph.NumVertices(), core.graph.NumVertices());
    EXPECT_LE(ctcp.graph.NumEdges(), core.graph.NumEdges());
  }
}

TEST(Ctcp, EdgeRuleInactiveAtConnectivityBoundary) {
  // q <= 2k makes the edge threshold non-positive: CTCP degenerates to
  // the plain core.
  Graph g = GenerateErdosRenyi(60, 0.2, 14);
  const uint32_t k = 3, q = 6;  // q - 2k = 0
  CoreReduction core = ReduceToCore(g, q - k);
  CtcpResult ctcp = CtcpReduce(g, k, q);
  EXPECT_EQ(ctcp.edges_pruned, 0u);
  EXPECT_EQ(ctcp.graph.NumVertices(), core.graph.NumVertices());
  EXPECT_EQ(ctcp.graph.NumEdges(), core.graph.NumEdges());
}

TEST(Ctcp, EdgeRuleFiresOnSparseBridges) {
  // Two K8's joined by a single bridge edge: for k = 2, q = 8 the bridge
  // endpoints share no common neighbor (threshold 4), so the bridge is
  // pruned; the cliques survive whole.
  GraphBuilder builder(16);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      builder.AddEdge(u, v);
      builder.AddEdge(u + 8, v + 8);
    }
  }
  builder.AddEdge(0, 8);
  Graph g = builder.Build();
  CtcpResult ctcp = CtcpReduce(g, 2, 8);
  EXPECT_GE(ctcp.edges_pruned, 1u);
  EXPECT_EQ(ctcp.graph.NumVertices(), 16u);
  EXPECT_EQ(ctcp.graph.NumEdges(), 2u * 28);  // both cliques, no bridge
}

TEST(Ctcp, MiningResultsIdenticalWithPreprocessing) {
  for (uint64_t seed : {15ull, 16ull}) {
    Graph g = GenerateBarabasiAlbert(200, 9, seed);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 8}, {3, 10}}) {
      EnumOptions plain = EnumOptions::Ours(k, q);
      EnumOptions with_ctcp = plain;
      with_ctcp.use_ctcp_preprocess = true;
      EXPECT_EQ(RunEngine(g, with_ctcp), RunEngine(g, plain))
          << "seed=" << seed << " k=" << k << " q=" << q;
    }
  }
}

TEST(Ctcp, ParallelHonorsPreprocessing) {
  Graph g = GenerateBarabasiAlbert(150, 8, 17);
  EnumOptions options = EnumOptions::Ours(2, 9);
  options.use_ctcp_preprocess = true;
  auto sequential = RunEngine(g, options);
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = 2;
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sink.SortedResults(), sequential);
}

TEST(Ctcp, EmptyAndTinyGraphs) {
  Graph empty;
  CtcpResult r1 = CtcpReduce(empty, 2, 8);
  EXPECT_EQ(r1.graph.NumVertices(), 0u);
  Graph tiny = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  CtcpResult r2 = CtcpReduce(tiny, 2, 8);
  EXPECT_EQ(r2.graph.NumVertices(), 0u);  // core kills everything
}

}  // namespace
}  // namespace kplex
