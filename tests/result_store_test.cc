// Unit tests for the durable result store: round-trips, reopen
// semantics, the crash battery (simulated kills at every fault point of
// a write via the injectable StoreHooks), index rebuild from a
// directory scan, LRU byte-budget eviction, and EvictAll.

#include "store/result_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/status.h"

namespace kplex {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "kplex_result_store_" + tag + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

StoreKey Key(uint64_t graph_hash, const std::string& signature) {
  StoreKey key;
  key.graph_hash = graph_hash;
  key.signature = signature;
  return key;
}

StoredResult SampleResult(uint64_t salt) {
  StoredResult result;
  result.num_plexes = 100 + salt;
  result.max_plex_size = 7 + salt;
  result.fingerprint = 0xdeadbeef00000000ULL | salt;
  result.fingerprint_xor = 0x1234000000000000ULL ^ salt;
  result.total_seeds = 55 + salt;
  result.compute_seconds = 0.125 * static_cast<double>(salt + 1);
  result.reduction_precomputed = (salt % 2) == 0;
  return result;
}

// Bit-identical comparison, including the double (a warm hit must
// report exactly the persisted answer, not a lossy copy of it).
void ExpectSameResult(const StoredResult& expected,
                      const StoredResult& actual) {
  EXPECT_EQ(expected.num_plexes, actual.num_plexes);
  EXPECT_EQ(expected.max_plex_size, actual.max_plex_size);
  EXPECT_EQ(expected.fingerprint, actual.fingerprint);
  EXPECT_EQ(expected.fingerprint_xor, actual.fingerprint_xor);
  EXPECT_EQ(expected.total_seeds, actual.total_seeds);
  EXPECT_EQ(expected.compute_seconds, actual.compute_seconds);
  EXPECT_EQ(expected.reduction_precomputed, actual.reduction_precomputed);
  ASSERT_EQ(expected.plexes != nullptr, actual.plexes != nullptr);
  if (expected.plexes != nullptr) {
    EXPECT_EQ(*expected.plexes, *actual.plexes);
  }
}

std::unique_ptr<ResultStore> MustOpen(const std::string& dir,
                                      uint64_t byte_budget = 0) {
  StoreOptions options;
  options.directory = dir;
  options.byte_budget = byte_budget;
  auto store = ResultStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TEST(ResultStore, PutThenGetRoundTripsSummary) {
  const std::string dir = FreshDir("roundtrip");
  auto store = MustOpen(dir);
  const StoreKey key = Key(0xabc, "g|k=2|q=5|algo=ours|max=0|pre=none");
  const StoredResult written = SampleResult(3);
  ASSERT_TRUE(store->Put(key, written).ok());

  auto read = store->Get(key);
  ASSERT_TRUE(read.has_value());
  ExpectSameResult(written, *read);

  const ResultStore::Stats stats = store->stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.corrupt_entries, 0u);
  EXPECT_GT(stats.bytes, 0u);
  fs::remove_all(dir);
}

TEST(ResultStore, PutThenGetRoundTripsBodiesInOrder) {
  const std::string dir = FreshDir("bodies");
  auto store = MustOpen(dir);
  const StoreKey key = Key(7, "g|k=2|q=4|algo=ours|max=0|bodies=on|pre=none");
  StoredResult written = SampleResult(1);
  // Deliberately not sorted: emission order must survive the round trip
  // (it is what cursors paginate).
  written.plexes = std::make_shared<const std::vector<std::vector<VertexId>>>(
      std::vector<std::vector<VertexId>>{
          {5, 1, 9, 300000}, {0, 2, 3}, {128, 129, 130, 131}});
  ASSERT_TRUE(store->Put(key, written).ok());

  auto read = store->Get(key);
  ASSERT_TRUE(read.has_value());
  ExpectSameResult(written, *read);
  fs::remove_all(dir);
}

TEST(ResultStore, MissOnUnknownKeyCountsMiss) {
  const std::string dir = FreshDir("miss");
  auto store = MustOpen(dir);
  EXPECT_FALSE(store->Get(Key(1, "nope")).has_value());
  EXPECT_EQ(store->stats().misses, 1u);
  EXPECT_EQ(store->stats().corrupt_entries, 0u);
  fs::remove_all(dir);
}

TEST(ResultStore, ReopenServesDurableEntriesBitIdentically) {
  const std::string dir = FreshDir("reopen");
  const StoreKey key_a = Key(1, "a|k=2|q=4|algo=ours|max=0|pre=none");
  const StoreKey key_b = Key(2, "b|k=3|q=6|algo=basic|max=0|pre=none");
  const StoredResult result_a = SampleResult(10);
  const StoredResult result_b = SampleResult(20);
  {
    auto store = MustOpen(dir);
    ASSERT_TRUE(store->Put(key_a, result_a).ok());
    ASSERT_TRUE(store->Put(key_b, result_b).ok());
  }
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 2u);
  auto read_a = store->Get(key_a);
  auto read_b = store->Get(key_b);
  ASSERT_TRUE(read_a.has_value());
  ASSERT_TRUE(read_b.has_value());
  ExpectSameResult(result_a, *read_a);
  ExpectSameResult(result_b, *read_b);
  fs::remove_all(dir);
}

TEST(ResultStore, OverwriteIsLastWriterWins) {
  const std::string dir = FreshDir("overwrite");
  auto store = MustOpen(dir);
  const StoreKey key = Key(5, "g|k=2|q=4|algo=ours|max=0|pre=none");
  ASSERT_TRUE(store->Put(key, SampleResult(1)).ok());
  const StoredResult second = SampleResult(2);
  ASSERT_TRUE(store->Put(key, second).ok());
  EXPECT_EQ(store->stats().entries, 1u);
  auto read = store->Get(key);
  ASSERT_TRUE(read.has_value());
  ExpectSameResult(second, *read);
  fs::remove_all(dir);
}

// ------------------------------------------------------------ crash battery

TEST(ResultStore, CrashBeforeEntryFlushLeavesNoServableEntry) {
  const std::string dir = FreshDir("crash_flush");
  const StoreKey key = Key(9, "g|k=2|q=4|algo=ours|max=0|pre=none");
  {
    auto store = MustOpen(dir);
    StoreHooks hooks;
    std::string tmp_seen;
    hooks.before_entry_flush = [&](const std::string& tmp) {
      tmp_seen = tmp;
      // Tear the file like a mid-write crash would: truncate whatever
      // the OS had buffered down to a prefix.
      std::FILE* f = std::fopen(tmp.c_str(), "wb");
      if (f != nullptr) {
        std::fputs("torn", f);
        std::fclose(f);
      }
      return false;
    };
    store->SetHooksForTest(hooks);
    Status put = store->Put(key, SampleResult(1));
    EXPECT_FALSE(put.ok());
    EXPECT_EQ(put.code(), StatusCode::kAborted);
    EXPECT_TRUE(fs::exists(tmp_seen));  // the corpse a crash leaves
    store->SetHooksForTest(StoreHooks{});
    EXPECT_FALSE(store->Get(key).has_value());  // never promoted
  }
  // Reopen: the orphaned tmp is swept, the store is empty and usable.
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_FALSE(store->Get(key).has_value());
  for (const auto& dirent : fs::directory_iterator(dir)) {
    EXPECT_NE(dirent.path().extension(), ".tmp") << dirent.path();
  }
  ASSERT_TRUE(store->Put(key, SampleResult(1)).ok());
  EXPECT_TRUE(store->Get(key).has_value());
  fs::remove_all(dir);
}

TEST(ResultStore, CrashBeforeEntryRenameLeavesNoServableEntry) {
  const std::string dir = FreshDir("crash_rename");
  const StoreKey key = Key(11, "g|k=2|q=4|algo=ours|max=0|pre=none");
  {
    auto store = MustOpen(dir);
    StoreHooks hooks;
    std::string tmp_seen;
    hooks.before_entry_rename = [&](const std::string& tmp) {
      tmp_seen = tmp;
      return false;
    };
    store->SetHooksForTest(hooks);
    Status put = store->Put(key, SampleResult(1));
    EXPECT_EQ(put.code(), StatusCode::kAborted);
    // The tmp holds a complete, durable entry — but it was never
    // renamed, so it must never be trusted.
    EXPECT_TRUE(fs::exists(tmp_seen));
    store->SetHooksForTest(StoreHooks{});
    EXPECT_FALSE(store->Get(key).has_value());
  }
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_FALSE(store->Get(key).has_value());
  for (const auto& dirent : fs::directory_iterator(dir)) {
    EXPECT_NE(dirent.path().extension(), ".tmp") << dirent.path();
  }
  fs::remove_all(dir);
}

TEST(ResultStore, CrashMidIndexRewriteEntrySurvivesReopen) {
  const std::string dir = FreshDir("crash_index");
  const StoreKey key = Key(13, "g|k=2|q=4|algo=ours|max=0|pre=none");
  const StoredResult written = SampleResult(4);
  {
    auto store = MustOpen(dir);
    StoreHooks hooks;
    hooks.before_index_rename = [](const std::string&) { return false; };
    store->SetHooksForTest(hooks);
    Status put = store->Put(key, written);
    // The entry itself was promoted; only the index rewrite "crashed".
    EXPECT_EQ(put.code(), StatusCode::kAborted);
    store->SetHooksForTest(StoreHooks{});
    auto read = store->Get(key);
    ASSERT_TRUE(read.has_value());
    ExpectSameResult(written, *read);
  }
  // Reopen with the stale on-disk index (it still says "no entries"):
  // the scan adopts the durable entry and sweeps the index tmp.
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 1u);
  auto read = store->Get(key);
  ASSERT_TRUE(read.has_value());
  ExpectSameResult(written, *read);
  for (const auto& dirent : fs::directory_iterator(dir)) {
    EXPECT_NE(dirent.path().extension(), ".tmp") << dirent.path();
  }
  EXPECT_TRUE(fs::exists(dir + "/store.idx"));  // repaired by Recover
  fs::remove_all(dir);
}

// --------------------------------------------------- index reconciliation

TEST(ResultStore, DeletedIndexIsRebuiltFromDirectoryScan) {
  const std::string dir = FreshDir("rebuild");
  const StoreKey key = Key(17, "g|k=2|q=4|algo=ours|max=0|pre=none");
  const StoredResult written = SampleResult(6);
  {
    auto store = MustOpen(dir);
    ASSERT_TRUE(store->Put(key, written).ok());
  }
  ASSERT_TRUE(fs::remove(dir + "/store.idx"));
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 1u);
  auto read = store->Get(key);
  ASSERT_TRUE(read.has_value());
  ExpectSameResult(written, *read);
  EXPECT_TRUE(fs::exists(dir + "/store.idx"));
  fs::remove_all(dir);
}

TEST(ResultStore, IndexRowWithoutFileIsDropped) {
  const std::string dir = FreshDir("stale_row");
  const StoreKey key = Key(19, "g|k=2|q=4|algo=ours|max=0|pre=none");
  {
    auto store = MustOpen(dir);
    ASSERT_TRUE(store->Put(key, SampleResult(1)).ok());
    ASSERT_TRUE(
        fs::remove(dir + "/" +
                   ResultStore::EntryFileName(ResultStore::KeyHash(key))));
  }
  auto store = MustOpen(dir);
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_EQ(store->stats().bytes, 0u);
  EXPECT_FALSE(store->Get(key).has_value());
  fs::remove_all(dir);
}

// ------------------------------------------------------------------ eviction

TEST(ResultStore, LruEvictionRespectsGetRecency) {
  const std::string dir = FreshDir("lru");
  const StoreKey key_a = Key(1, "a|k=2|q=4|algo=ours|max=0|pre=none");
  const StoreKey key_b = Key(2, "b|k=2|q=4|algo=ours|max=0|pre=none");
  const StoreKey key_c = Key(3, "c|k=2|q=4|algo=ours|max=0|pre=none");
  uint64_t entry_bytes = 0;
  {
    auto probe = MustOpen(dir);
    ASSERT_TRUE(probe->Put(key_a, SampleResult(1)).ok());
    entry_bytes = probe->stats().bytes;
    ASSERT_GT(entry_bytes, 0u);
  }
  fs::remove_all(dir);
  // Budget fits two entries (signatures are same-length so entries are
  // same-size), not three.
  auto store = MustOpen(dir, 2 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(store->Put(key_a, SampleResult(1)).ok());
  ASSERT_TRUE(store->Put(key_b, SampleResult(2)).ok());
  ASSERT_TRUE(store->Get(key_a).has_value());  // bump A over B
  ASSERT_TRUE(store->Put(key_c, SampleResult(3)).ok());

  EXPECT_EQ(store->stats().entries, 2u);
  EXPECT_GE(store->stats().evictions, 1u);
  EXPECT_TRUE(store->Get(key_a).has_value());
  EXPECT_FALSE(store->Get(key_b).has_value());  // the LRU victim
  EXPECT_TRUE(store->Get(key_c).has_value());
  EXPECT_FALSE(fs::exists(
      dir + "/" + ResultStore::EntryFileName(ResultStore::KeyHash(key_b))));
  fs::remove_all(dir);
}

TEST(ResultStore, SoleOversizedEntrySurvivesItsOwnWrite) {
  const std::string dir = FreshDir("oversized");
  auto store = MustOpen(dir, 1);  // absurd budget: smaller than any entry
  const StoreKey key = Key(23, "g|k=2|q=4|algo=ours|max=0|pre=none");
  ASSERT_TRUE(store->Put(key, SampleResult(1)).ok());
  EXPECT_EQ(store->stats().entries, 1u);
  EXPECT_TRUE(store->Get(key).has_value());
  fs::remove_all(dir);
}

TEST(ResultStore, EvictAllEmptiesTheStoreButKeepsItUsable) {
  const std::string dir = FreshDir("evict_all");
  auto store = MustOpen(dir);
  const StoreKey key_a = Key(1, "a|k=2|q=4|algo=ours|max=0|pre=none");
  const StoreKey key_b = Key(2, "b|k=2|q=4|algo=ours|max=0|pre=none");
  ASSERT_TRUE(store->Put(key_a, SampleResult(1)).ok());
  ASSERT_TRUE(store->Put(key_b, SampleResult(2)).ok());
  const uint64_t bytes_before = store->stats().bytes;

  const ResultStore::EvictOutcome outcome = store->EvictAll();
  EXPECT_EQ(outcome.entries, 2u);
  EXPECT_EQ(outcome.bytes, bytes_before);
  EXPECT_EQ(store->stats().entries, 0u);
  EXPECT_EQ(store->stats().bytes, 0u);
  EXPECT_FALSE(store->Get(key_a).has_value());
  EXPECT_FALSE(store->Get(key_b).has_value());

  // Still a working store afterwards, including across a reopen.
  ASSERT_TRUE(store->Put(key_a, SampleResult(9)).ok());
  store.reset();
  auto reopened = MustOpen(dir);
  EXPECT_EQ(reopened->stats().entries, 1u);
  EXPECT_TRUE(reopened->Get(key_a).has_value());
  fs::remove_all(dir);
}

TEST(ResultStore, EntryFileNameMatchesWhatPutCreates) {
  const std::string dir = FreshDir("filename");
  auto store = MustOpen(dir);
  const StoreKey key = Key(29, "g|k=2|q=4|algo=ours|max=0|pre=none");
  ASSERT_TRUE(store->Put(key, SampleResult(1)).ok());
  // The corruption tests and the smoke script locate entries this way;
  // the contract must hold.
  EXPECT_TRUE(fs::exists(
      dir + "/" + ResultStore::EntryFileName(ResultStore::KeyHash(key))));
  fs::remove_all(dir);
}

TEST(ResultStore, OpenRefusesEmptyDirectoryOption) {
  auto store = ResultStore::Open(StoreOptions{});
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kplex
