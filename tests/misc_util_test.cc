// Tests for the remaining utility modules: timers, logging, memory
// probes, graph statistics, the table printer and the bench harness.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/mmap_file.h"
#include "util/timer.h"

namespace kplex {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(WallTimer, NanosMonotone) {
  int64_t a = WallTimer::NowNanos();
  int64_t b = WallTimer::NowNanos();
  EXPECT_LE(a, b);
}

TEST(Memory, RssProbesReturnPlausibleValues) {
  EXPECT_GT(CurrentRssKib(), 0);
  EXPECT_GE(PeakRssKib(), CurrentRssKib() / 2);
}

TEST(MappedFile, OpensAndServesFileBytes) {
  if (!MappedFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = ::testing::TempDir() + "kplex_mmap_probe";
  const std::string payload = "mapped-file-bytes";
  {
    std::ofstream out(path, std::ios::binary);
    out << payload;
  }
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ((*mapped)->size(), payload.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>((*mapped)->data()),
                        (*mapped)->size()),
            payload);
  std::remove(path.c_str());
}

TEST(MappedFile, MissingFileIsIoError) {
  auto mapped = MappedFile::Open("/nonexistent/dir/file");
  EXPECT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().code(), StatusCode::kOk);
}

TEST(MappedFile, EmptyFileMapsToNull) {
  if (!MappedFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  const std::string path = ::testing::TempDir() + "kplex_mmap_empty";
  { std::ofstream out(path, std::ios::binary); }
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), 0u);
  EXPECT_EQ((*mapped)->data(), nullptr);
  std::remove(path.c_str());
}

TEST(Logging, LevelFiltering) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  KPLEX_LOG(Info) << "suppressed";  // must not crash
  KPLEX_LOG(Error) << "emitted";
  SetLogLevel(old_level);
}

TEST(GraphStats, MatchesDirectComputation) {
  Graph g = GenerateBarabasiAlbert(200, 4, 3);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, g.NumVertices());
  EXPECT_EQ(stats.num_edges, g.NumEdges());
  EXPECT_EQ(stats.max_degree, g.MaxDegree());
  EXPECT_GT(stats.degeneracy, 0u);
  EXPECT_NEAR(stats.average_degree, 2.0 * g.NumEdges() / g.NumVertices(),
              1e-9);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "23456"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(FormatSeconds(0.001234), "0.0012");
  EXPECT_EQ(FormatSeconds(1.23456), "1.235");
  EXPECT_EQ(FormatSeconds(123.456), "123.46");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatCount(98765), "98765");
}

TEST(Harness, SequentialVariantsAgreeViaFingerprint) {
  Graph g = GenerateBarabasiAlbert(120, 6, 4);
  RunOutcome ours = TimeAlgo(g, MakeSequentialAlgo("Ours", 2, 6));
  ASSERT_TRUE(ours.ok) << ours.error;
  for (const char* name : {"Ours_P", "Basic", "Basic+R1", "Basic+R2",
                           "Ours\\ub", "Ours\\ub+fp", "ListPlex", "FP"}) {
    RunOutcome other = TimeAlgo(g, MakeSequentialAlgo(name, 2, 6));
    ASSERT_TRUE(other.ok) << name << ": " << other.error;
    EXPECT_EQ(other.num_plexes, ours.num_plexes) << name;
    EXPECT_EQ(other.fingerprint, ours.fingerprint) << name;
  }
}

TEST(Harness, ParallelVariantsAgreeViaFingerprint) {
  Graph g = GenerateBarabasiAlbert(150, 7, 5);
  RunOutcome sequential = TimeAlgo(g, MakeSequentialAlgo("Ours", 2, 6));
  for (const char* name : {"Ours-par", "ListPlex-par", "FP-par"}) {
    RunOutcome parallel = TimeAlgo(g, MakeParallelAlgo(name, 2, 6, 2, 0.1));
    ASSERT_TRUE(parallel.ok) << name << ": " << parallel.error;
    EXPECT_EQ(parallel.fingerprint, sequential.fingerprint) << name;
  }
}

TEST(Harness, MeasurePeakRssIsolatesChild) {
  // MeasurePeakRssKib reports the child's peak-RSS *growth* beyond its
  // inherited pre-fork footprint. An empty workload grows (near) zero.
  int64_t empty_growth = MeasurePeakRssKib([] {});
  ASSERT_GE(empty_growth, 0);
  EXPECT_LT(empty_growth, 8 * 1024);
  const int64_t parent_rss_before = CurrentRssKib();
  int64_t with_allocation = MeasurePeakRssKib([] {
    // Touch ~64 MiB so the child's growth is unmistakable.
    std::vector<char> block(64 << 20, 1);
    volatile char sink = block[block.size() - 1];
    (void)sink;
  });
  EXPECT_GT(with_allocation, 32 * 1024);
  // The parent's own footprint must not have grown by the child's block.
  EXPECT_LT(CurrentRssKib(), parent_rss_before + 32 * 1024);
}

}  // namespace
}  // namespace kplex
