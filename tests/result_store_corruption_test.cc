// Adversarial bytes against the result store: a single bit flip at
// EVERY byte offset of an entry file, truncation at EVERY length of an
// entry file, and the same treatment for store.idx. The invariants
// under attack: the store never crashes, never serves data that fails
// validation, counts and quarantines corrupt entries, and a damaged
// index only ever costs a rebuild-by-scan — never an answer. Plus the
// collision case: a *valid* entry reached through the wrong key
// (filename-hash collision) is a miss, not corruption.

#include "store/result_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace kplex {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "kplex_store_corrupt_" + tag +
                    "_" + std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

StoreKey SampleKey() {
  StoreKey key;
  key.graph_hash = 0x1122334455667788ULL;
  key.signature = "g|k=2|q=4|algo=ours|max=0|pre=none";
  return key;
}

StoredResult SampleResult() {
  StoredResult result;
  result.num_plexes = 114;
  result.max_plex_size = 6;
  result.fingerprint = 0xb4fdf23b5801cfefULL;
  result.fingerprint_xor = 0x0123456789abcdefULL;
  result.total_seeds = 34;
  result.compute_seconds = 0.004;
  result.reduction_precomputed = true;
  result.plexes = std::make_shared<const std::vector<std::vector<VertexId>>>(
      std::vector<std::vector<VertexId>>{{0, 1, 2, 33}, {4, 5, 6}});
  return result;
}

std::vector<unsigned char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<unsigned char>& b,
              std::size_t length) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (length > 0) {
    ASSERT_EQ(std::fwrite(b.data(), 1, length, f), length);
  }
  std::fclose(f);
}

/// Seeds a store directory with one entry and returns its pristine
/// bytes plus the entry path.
struct Seeded {
  std::string dir;
  std::string entry_path;
  std::vector<unsigned char> entry_bytes;
  std::vector<unsigned char> index_bytes;
};

Seeded SeedStore(const std::string& tag) {
  Seeded seeded;
  seeded.dir = FreshDir(tag);
  StoreOptions options;
  options.directory = seeded.dir;
  auto store = ResultStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->Put(SampleKey(), SampleResult()).ok());
  seeded.entry_path =
      seeded.dir + "/" +
      ResultStore::EntryFileName(ResultStore::KeyHash(SampleKey()));
  seeded.entry_bytes = ReadAll(seeded.entry_path);
  seeded.index_bytes = ReadAll(seeded.dir + "/store.idx");
  return seeded;
}

TEST(ResultStoreCorruption, ByteFlipAtEveryEntryOffsetIsRefused) {
  Seeded seeded = SeedStore("flip_entry");
  ASSERT_GT(seeded.entry_bytes.size(), 0u);
  for (std::size_t offset = 0; offset < seeded.entry_bytes.size(); ++offset) {
    std::vector<unsigned char> tampered = seeded.entry_bytes;
    tampered[offset] ^= 0x5a;
    WriteAll(seeded.entry_path, tampered, tampered.size());

    StoreOptions options;
    options.directory = seeded.dir;
    auto store = ResultStore::Open(std::move(options));
    ASSERT_TRUE(store.ok()) << "offset " << offset;
    auto read = (*store)->Get(SampleKey());
    // A flipped checksum field or payload byte can never validate; the
    // only acceptable outcomes are refusal — never wrong data, never a
    // crash.
    EXPECT_FALSE(read.has_value()) << "served tampered bytes, offset "
                                   << offset;
    EXPECT_EQ((*store)->stats().corrupt_entries, 1u) << "offset " << offset;
    // The tampered file was quarantined, not left to fail again.
    EXPECT_FALSE(fs::exists(seeded.entry_path)) << "offset " << offset;
    EXPECT_TRUE(fs::exists(seeded.entry_path + ".bad"))
        << "offset " << offset;

    fs::remove(seeded.entry_path + ".bad");
  }
  fs::remove_all(seeded.dir);
}

TEST(ResultStoreCorruption, TruncationAtEveryEntryLengthIsRefused) {
  Seeded seeded = SeedStore("trunc_entry");
  for (std::size_t length = 0; length < seeded.entry_bytes.size(); ++length) {
    WriteAll(seeded.entry_path, seeded.entry_bytes, length);

    StoreOptions options;
    options.directory = seeded.dir;
    auto store = ResultStore::Open(std::move(options));
    ASSERT_TRUE(store.ok()) << "length " << length;
    auto read = (*store)->Get(SampleKey());
    EXPECT_FALSE(read.has_value()) << "served truncated entry, length "
                                   << length;
    EXPECT_EQ((*store)->stats().corrupt_entries, 1u) << "length " << length;
    EXPECT_FALSE(fs::exists(seeded.entry_path)) << "length " << length;

    fs::remove(seeded.entry_path + ".bad");
  }
  fs::remove_all(seeded.dir);
}

TEST(ResultStoreCorruption, ByteFlipAtEveryIndexOffsetOnlyCostsARebuild) {
  Seeded seeded = SeedStore("flip_index");
  const std::string index_path = seeded.dir + "/store.idx";
  ASSERT_GT(seeded.index_bytes.size(), 0u);
  for (std::size_t offset = 0; offset < seeded.index_bytes.size(); ++offset) {
    std::vector<unsigned char> tampered = seeded.index_bytes;
    tampered[offset] ^= 0x5a;
    WriteAll(index_path, tampered, tampered.size());
    // The entry itself is intact; restore it in case a previous
    // iteration's Get path touched anything.
    WriteAll(seeded.entry_path, seeded.entry_bytes,
             seeded.entry_bytes.size());

    StoreOptions options;
    options.directory = seeded.dir;
    auto store = ResultStore::Open(std::move(options));
    ASSERT_TRUE(store.ok()) << "offset " << offset;
    // Whatever the index claimed, the directory scan is the source of
    // truth: the durable entry must still be served, bit-identically.
    auto read = (*store)->Get(SampleKey());
    ASSERT_TRUE(read.has_value()) << "lost a durable entry to an index "
                                  << "flip at offset " << offset;
    EXPECT_EQ(read->fingerprint, SampleResult().fingerprint);
    EXPECT_EQ(read->num_plexes, SampleResult().num_plexes);
    EXPECT_EQ((*store)->stats().corrupt_entries, 0u) << "offset " << offset;
  }
  fs::remove_all(seeded.dir);
}

TEST(ResultStoreCorruption, TruncationAtEveryIndexLengthOnlyCostsARebuild) {
  Seeded seeded = SeedStore("trunc_index");
  const std::string index_path = seeded.dir + "/store.idx";
  for (std::size_t length = 0; length < seeded.index_bytes.size(); ++length) {
    WriteAll(index_path, seeded.index_bytes, length);
    WriteAll(seeded.entry_path, seeded.entry_bytes,
             seeded.entry_bytes.size());

    StoreOptions options;
    options.directory = seeded.dir;
    auto store = ResultStore::Open(std::move(options));
    ASSERT_TRUE(store.ok()) << "length " << length;
    auto read = (*store)->Get(SampleKey());
    ASSERT_TRUE(read.has_value()) << "lost a durable entry to an index "
                                  << "truncation at length " << length;
    EXPECT_EQ(read->fingerprint, SampleResult().fingerprint);
    EXPECT_EQ((*store)->stats().corrupt_entries, 0u) << "length " << length;
  }
  fs::remove_all(seeded.dir);
}

TEST(ResultStoreCorruption, ValidEntryUnderWrongKeyIsAMissNotCorruption) {
  Seeded seeded = SeedStore("collision");
  // Simulate a filename-hash collision: copy the valid entry for
  // SampleKey onto the filename another key hashes to. The embedded key
  // check must turn the lookup into a plain miss — the entry validates,
  // so it is NOT corruption, and it must never be served for the
  // wrong key.
  StoreKey other = SampleKey();
  other.graph_hash ^= 0xffff;  // same signature, different graph bytes
  const std::string other_path =
      seeded.dir + "/" +
      ResultStore::EntryFileName(ResultStore::KeyHash(other));
  fs::copy_file(seeded.entry_path, other_path);

  StoreOptions options;
  options.directory = seeded.dir;
  auto store = ResultStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Get(other).has_value());
  const ResultStore::Stats stats = (*store)->stats();
  EXPECT_EQ(stats.corrupt_entries, 0u);
  EXPECT_EQ(stats.misses, 1u);
  // The colliding file stays (it is valid — just not ours to serve),
  // and the real key still hits.
  EXPECT_TRUE(fs::exists(other_path));
  EXPECT_TRUE((*store)->Get(SampleKey()).has_value());
  fs::remove_all(seeded.dir);
}

TEST(ResultStoreCorruption, ForeignAndBadFilesAreIgnoredByRecovery) {
  Seeded seeded = SeedStore("foreign");
  // Drop assorted junk into the directory: recovery must skip it all
  // without crashing or counting it as entries.
  WriteAll(seeded.dir + "/README", {'h', 'i'}, 2);
  WriteAll(seeded.dir + "/zzzz.kpr", {'x'}, 1);  // not 16 hex digits
  WriteAll(seeded.dir + "/0123456789abcdef.bad", {'x'}, 1);

  StoreOptions options;
  options.directory = seeded.dir;
  auto store = ResultStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->stats().entries, 1u);  // just the real entry
  EXPECT_TRUE((*store)->Get(SampleKey()).has_value());
  fs::remove_all(seeded.dir);
}

}  // namespace
}  // namespace kplex
