// Unit tests for pivot selection: minimum degree in G[P ∪ C], the
// saturation tie-break, and re-picking from the pivot's non-neighbors.

#include "core/pivot.h"

#include <gtest/gtest.h>

#include "core/seed_graph.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"

namespace kplex {
namespace {

class PivotFixture : public ::testing::Test {
 protected:
  // Builds a seed graph for the first viable seed of a random graph.
  bool Build(uint64_t seed_rng, uint32_t k, uint32_t q) {
    graph_ = GenerateErdosRenyi(24, 0.45, seed_rng);
    options_ = EnumOptions::Ours(k, q);
    auto degeneracy = ComputeDegeneracy(graph_);
    for (VertexId s = 0; s < graph_.NumVertices(); ++s) {
      auto sg = BuildSeedGraph(graph_, {}, degeneracy, degeneracy.order[s],
                               options_, nullptr);
      if (sg.has_value() && sg->num_n1 >= 3) {
        sg_ = std::move(sg);
        return true;
      }
    }
    return false;
  }

  Graph graph_;
  EnumOptions options_;
  std::optional<SeedGraph> sg_;
};

TEST_F(PivotFixture, SelectsMinimumDegreeVertex) {
  ASSERT_TRUE(Build(41, 2, 4));
  TaskState st = TaskState::MakeEmpty(*sg_);
  st.AddToP(*sg_, SeedGraph::kSeed);
  st.c = sg_->n1_mask;

  DynamicBitset pc = st.p;
  pc.OrWith(st.c);
  PivotSelector selector(*sg_);
  PivotResult pivot = selector.Select(st, pc);

  // Verify minimality against a direct computation.
  uint32_t true_min = UINT32_MAX;
  pc.ForEach([&](std::size_t v) {
    true_min = std::min(
        true_min,
        static_cast<uint32_t>(sg_->adj.Row(static_cast<uint32_t>(v)).AndCount(pc)));
  });
  EXPECT_EQ(pivot.min_degree, true_min);
  EXPECT_EQ(selector.DegreePc(pivot.vertex), true_min);
  EXPECT_TRUE(pc.Test(pivot.vertex));
}

TEST_F(PivotFixture, SaturationTieBreakPrefersMoreNonNeighbors) {
  ASSERT_TRUE(Build(43, 3, 5));
  TaskState st = TaskState::MakeEmpty(*sg_);
  st.AddToP(*sg_, SeedGraph::kSeed);
  st.c = sg_->n1_mask;
  DynamicBitset pc = st.p;
  pc.OrWith(st.c);

  PivotSelector with_tiebreak(*sg_, /*saturation_tiebreak=*/true);
  PivotResult pivot = with_tiebreak.Select(st, pc);
  // Among all min-degree vertices, the chosen one maximizes d̄_P.
  pc.ForEach([&](std::size_t v) {
    if (with_tiebreak.DegreePc(static_cast<uint32_t>(v)) == pivot.min_degree) {
      EXPECT_GE(st.NonNeighborsInP(pivot.vertex),
                st.NonNeighborsInP(static_cast<uint32_t>(v)));
    }
  });
}

TEST_F(PivotFixture, NoTieBreakPicksSmallestId) {
  ASSERT_TRUE(Build(47, 2, 4));
  TaskState st = TaskState::MakeEmpty(*sg_);
  st.AddToP(*sg_, SeedGraph::kSeed);
  st.c = sg_->n1_mask;
  DynamicBitset pc = st.p;
  pc.OrWith(st.c);

  PivotSelector plain(*sg_, /*saturation_tiebreak=*/false);
  PivotResult pivot = plain.Select(st, pc);
  // No vertex with the same degree and a smaller id exists.
  pc.ForEach([&](std::size_t v) {
    if (v < pivot.vertex) {
      EXPECT_NE(plain.DegreePc(static_cast<uint32_t>(v)), pivot.min_degree);
    }
  });
}

TEST_F(PivotFixture, RepickReturnsNonNeighborInC) {
  ASSERT_TRUE(Build(53, 2, 4));
  TaskState st = TaskState::MakeEmpty(*sg_);
  st.AddToP(*sg_, SeedGraph::kSeed);
  st.c = sg_->n1_mask;
  // Put one N2 vertex into P to create non-neighbor structure.
  std::size_t n2 = sg_->n2_mask.FindFirst();
  if (n2 == DynamicBitset::kNpos) GTEST_SKIP() << "no N2 vertex";
  st.AddToP(*sg_, static_cast<uint32_t>(n2));

  DynamicBitset pc = st.p;
  pc.OrWith(st.c);
  PivotSelector selector(*sg_);
  selector.Select(st, pc);

  // Re-pick from the non-neighbors of the N2 member (which has at least
  // one non-neighbor in C whenever C ⊄ N(n2)).
  DynamicBitset non_nbrs = st.c;
  non_nbrs.AndNotWith(sg_->adj.Row(static_cast<uint32_t>(n2)));
  if (non_nbrs.None()) GTEST_SKIP() << "no non-neighbor to re-pick";
  uint32_t repicked = selector.RepickFromC(st, static_cast<uint32_t>(n2));
  ASSERT_NE(repicked, UINT32_MAX);
  EXPECT_TRUE(st.c.Test(repicked));
  EXPECT_FALSE(sg_->adj.HasEdge(static_cast<uint32_t>(n2), repicked));
}

}  // namespace
}  // namespace kplex
