// Unit tests for the synthetic graph generators (the dataset stand-ins).

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kplex_verify.h"
#include "graph/degeneracy.h"

namespace kplex {
namespace {

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  const std::size_t n = 400;
  const double p = 0.05;
  Graph g = GenerateErdosRenyi(n, p, 1);
  const double expected = p * n * (n - 1) / 2;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected,
              4 * std::sqrt(expected));
}

TEST(ErdosRenyi, Deterministic) {
  Graph a = GenerateErdosRenyi(100, 0.1, 7);
  Graph b = GenerateErdosRenyi(100, 0.1, 7);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(GenerateErdosRenyi(20, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(GenerateErdosRenyi(20, 1.0, 1).NumEdges(), 190u);
}

TEST(ErdosRenyiM, ExactEdgeCount) {
  Graph g = GenerateErdosRenyiM(50, 300, 9);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(ErdosRenyiM, ClampsToMaximum) {
  Graph g = GenerateErdosRenyiM(5, 1000, 9);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(BarabasiAlbert, SizeAndAttachment) {
  Graph g = GenerateBarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g.NumVertices(), 500u);
  // Every non-seed vertex attaches ~3 edges.
  EXPECT_GT(g.NumEdges(), 3u * 450);
  EXPECT_LT(g.NumEdges(), 3u * 500 + 50);
}

TEST(BarabasiAlbert, HeavyTail) {
  Graph g = GenerateBarabasiAlbert(2000, 4, 13);
  // Preferential attachment: the max degree should far exceed the mean.
  const double mean = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 6 * mean);
}

TEST(WattsStrogatz, DegreeConcentration) {
  Graph g = GenerateWattsStrogatz(300, 6, 0.1, 17);
  EXPECT_EQ(g.NumVertices(), 300u);
  // Rewiring preserves the edge count approximately.
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 300.0 * 3, 40);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Graph g = GenerateWattsStrogatz(20, 4, 0.0, 3);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_TRUE(g.HasEdge(v, (v + 1) % 20));
    EXPECT_TRUE(g.HasEdge(v, (v + 2) % 20));
  }
}

TEST(Rmat, SkewedDegrees) {
  Graph g = GenerateRmat(10, 8000, 0.55, 0.2, 0.2, 23);
  EXPECT_EQ(g.NumVertices(), 1024u);
  const double mean = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 5 * mean);
}

TEST(PlantedCommunities, CommunitiesAreKPlexes) {
  PlantedCommunityConfig config;
  config.num_communities = 6;
  config.community_size = 9;
  config.missing_per_vertex = 2;  // communities are 3-plexes
  config.background_vertices = 30;
  config.noise_probability = 0.01;
  auto planted = GeneratePlantedCommunities(config, 31);
  ASSERT_EQ(planted.graph.NumVertices(), 6 * 9 + 30u);

  for (uint32_t c = 0; c < config.num_communities; ++c) {
    std::vector<VertexId> members;
    for (VertexId v = 0; v < planted.graph.NumVertices(); ++v) {
      if (planted.community[v] == c) members.push_back(v);
    }
    ASSERT_EQ(members.size(), config.community_size);
    EXPECT_TRUE(IsKPlex(planted.graph, members,
                        config.missing_per_vertex + 1))
        << "community " << c;
  }
}

TEST(PlantedCommunities, BackgroundMarkedCorrectly) {
  PlantedCommunityConfig config;
  config.num_communities = 2;
  config.community_size = 5;
  config.background_vertices = 7;
  auto planted = GeneratePlantedCommunities(config, 5);
  std::size_t background = 0;
  for (uint32_t c : planted.community) {
    if (c == PlantedCommunityGraph::kNoCommunity) ++background;
  }
  EXPECT_EQ(background, 7u);
}

TEST(AllGenerators, DegeneracyMuchSmallerThanN) {
  // The structural property all seed-graph size bounds rely on.
  Graph ba = GenerateBarabasiAlbert(1000, 5, 41);
  EXPECT_LT(ComputeDegeneracy(ba).degeneracy, 20u);
  Graph ws = GenerateWattsStrogatz(1000, 8, 0.1, 41);
  EXPECT_LT(ComputeDegeneracy(ws).degeneracy, 16u);
}

}  // namespace
}  // namespace kplex
