// Correctness of the reverse-search enumerator and the D2K baseline —
// both must agree with brute force / the main engine, despite sharing
// no search machinery (reverse search) or pruning rules (D2K).

#include "baselines/reverse_search.h"

#include <gtest/gtest.h>

#include "baselines/bk_naive.h"
#include "baselines/d2k.h"
#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::DiffSets;
using testing_util::RunEngine;

TEST(Maximalize, ExtendsToMaximal) {
  Graph g = GenerateErdosRenyi(20, 0.4, 7);
  for (VertexId v = 0; v < 20; ++v) {
    auto plex = MaximalizeKPlex(g, {v}, 2);
    EXPECT_TRUE(IsMaximalKPlex(g, plex, 2));
    EXPECT_TRUE(std::find(plex.begin(), plex.end(), v) != plex.end());
  }
}

TEST(Maximalize, AlreadyMaximalIsFixpoint) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  auto triangle = MaximalizeKPlex(g, {0, 1, 2}, 1);
  EXPECT_EQ(triangle, (std::vector<VertexId>{0, 1, 2}));
}

struct RsParam {
  std::size_t n;
  int edge_percent;
  uint32_t k;
  uint32_t q;
  uint64_t seed;
};

class ReverseSearchSweep : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReverseSearchSweep, MatchesBruteForce) {
  const auto& p = GetParam();
  Graph g = GenerateErdosRenyi(p.n, p.edge_percent / 100.0, p.seed);
  auto truth = BruteForceMaximalKPlexes(g, p.k, p.q);
  ASSERT_TRUE(truth.ok());
  CollectingSink sink;
  auto count = ReverseSearchEnumerate(g, p.k, p.q, sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, truth->size());
  EXPECT_EQ(sink.SortedResults(), *truth)
      << DiffSets(*truth, sink.SortedResults());
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ReverseSearchSweep,
    ::testing::Values(RsParam{9, 40, 1, 2, 301}, RsParam{9, 60, 2, 3, 302},
                      RsParam{10, 50, 2, 4, 303}, RsParam{10, 30, 2, 2, 304},
                      RsParam{11, 45, 3, 5, 305}, RsParam{11, 65, 3, 4, 306},
                      // q below 2k-1: the partitioned engine cannot run
                      // these, reverse search can (no two-hop property).
                      RsParam{10, 50, 3, 2, 307}, RsParam{9, 55, 4, 3, 308}),
    [](const ::testing::TestParamInfo<RsParam>& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "p" + std::to_string(p.edge_percent) +
             "k" + std::to_string(p.k) + "q" + std::to_string(p.q) + "s" +
             std::to_string(p.seed);
    });

TEST(ReverseSearch, HandlesDisconnectedSolutions) {
  // Two disjoint K2's form a maximal 3-plex of size 4 (each vertex
  // misses 2 others + itself = 3). Reverse search must find it even
  // though it is disconnected — no branch-and-bound variant can.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  CollectingSink sink;
  auto count = ReverseSearchEnumerate(g, 3, 4, sink);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, 1u);
  EXPECT_EQ(sink.SortedResults()[0], (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(ReverseSearch, AgreesWithEngineOnLargerGraph) {
  Graph g = GenerateBarabasiAlbert(40, 4, 309);
  const uint32_t k = 2, q = 4;
  CollectingSink sink;
  ASSERT_TRUE(ReverseSearchEnumerate(g, k, q, sink).ok());
  EXPECT_EQ(sink.SortedResults(), RunEngine(g, EnumOptions::Ours(k, q)));
}

TEST(D2k, MatchesEngineAndBruteForce) {
  for (uint64_t seed : {311ull, 312ull}) {
    Graph g = GenerateErdosRenyi(12, 0.5, seed);
    const uint32_t k = 2, q = 4;
    auto truth = BruteForceMaximalKPlexes(g, k, q);
    ASSERT_TRUE(truth.ok());
    CollectingSink sink;
    auto result = D2kEnumerate(g, k, q, sink);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(sink.SortedResults(), *truth);
  }
  Graph g = GenerateBarabasiAlbert(100, 7, 313);
  CollectingSink sink;
  ASSERT_TRUE(D2kEnumerate(g, 3, 6, sink).ok());
  EXPECT_EQ(sink.SortedResults(), RunEngine(g, EnumOptions::Ours(3, 6)));
}

TEST(D2k, RejectsInvalidParameters) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  CollectingSink sink;
  EXPECT_FALSE(D2kEnumerate(g, 3, 2, sink).ok());
}

}  // namespace
}  // namespace kplex
