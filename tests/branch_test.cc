// Targeted edge-case tests of the branch-and-bound engine: structured
// graphs with hand-computable answers, boundary parameter values, and
// degenerate inputs. These complement the randomized cross-validation
// in enumerator_test.cc with cases whose expected behaviour is knowable
// by inspection.

#include "core/branch.h"

#include <gtest/gtest.h>

#include "baselines/bk_naive.h"
#include "core/enumerator.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::ResultSet;
using testing_util::RunEngine;

Graph Clique(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return GraphBuilder::FromEdges(n, edges);
}

TEST(BranchEdgeCases, KEqualsOneIsMaximalCliqueEnumeration) {
  // Two triangles sharing an edge: maximal cliques of size >= 3 are
  // exactly the triangles.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3},
                                        {2, 3}});
  ResultSet results = RunEngine(g, EnumOptions::Ours(1, 3));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(results[1], (std::vector<VertexId>{1, 2, 3}));
}

TEST(BranchEdgeCases, QAtExactConnectivityBoundary) {
  // q = 2k - 1 is the smallest legal threshold; sweep k at that
  // boundary on a moderately dense random graph vs the BK reference.
  Graph g = GenerateErdosRenyi(25, 0.4, 91);
  for (uint32_t k = 1; k <= 4; ++k) {
    const uint32_t q = 2 * k - 1;
    ResultSet ours = RunEngine(g, EnumOptions::Ours(k, q));
    CollectingSink bk;
    BkReferenceEnumerate(g, k, q, bk);
    EXPECT_EQ(ours, bk.SortedResults()) << "k=" << k;
  }
}

TEST(BranchEdgeCases, CompleteBipartiteGraph) {
  // K_{3,3}: every vertex misses the 2 other same-side vertices plus
  // itself, so the whole graph is a 3-plex of size 6 — and with q = 5
  // (= 2k - 1) it is the unique answer.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId a = 0; a < 3; ++a) {
    for (VertexId b = 3; b < 6; ++b) edges.push_back({a, b});
  }
  Graph g = GraphBuilder::FromEdges(6, edges);
  ResultSet results = RunEngine(g, EnumOptions::Ours(3, 5));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

TEST(BranchEdgeCases, DisjointCliquesDoNotMerge) {
  // Two disjoint K5's: with k = 2, q = 5, each clique alone is maximal
  // (no vertex of the other clique can join: it would miss 5 > 2).
  GraphBuilder builder(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      builder.AddEdge(u, v);
      builder.AddEdge(u + 5, v + 5);
    }
  }
  Graph g = builder.Build();
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 5));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(results[1], (std::vector<VertexId>{5, 6, 7, 8, 9}));
}

TEST(BranchEdgeCases, CliqueWithPendantVertex) {
  // K6 plus a pendant attached to vertex 0: the pendant joins 2-plexes
  // only at sizes where its 5 missing links are tolerable — never for
  // k = 2 — so K6 stays the unique answer; the pendant must also not
  // break maximality detection.
  GraphBuilder builder(7);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(u, v);
  }
  builder.AddEdge(0, 6);
  Graph g = builder.Build();
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 4));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

TEST(BranchEdgeCases, QLargerThanGraph) {
  Graph g = Clique(5);
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 9));
  EXPECT_TRUE(results.empty());
}

TEST(BranchEdgeCases, LargeKRelativeToGraph) {
  // k = 5 on an 8-vertex sparse graph: every vertex tolerates 5 misses,
  // so large chunks qualify. Cross-check against brute force.
  Graph g = GenerateErdosRenyi(8, 0.4, 92);
  auto truth = BruteForceMaximalKPlexes(g, 5, 9);  // q = 2k - 1
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(RunEngine(g, EnumOptions::Ours(5, 9)), *truth);
}

TEST(BranchEdgeCases, RingOfCliquesBridgeVertices) {
  // Cliques of size 5 arranged in a ring, adjacent cliques bridged by
  // one edge. Bridges must not create spurious cross-clique plexes for
  // k = 2, q = 5.
  const std::size_t clique_count = 4, clique_size = 5;
  GraphBuilder builder(clique_count * clique_size);
  for (std::size_t c = 0; c < clique_count; ++c) {
    const VertexId base = static_cast<VertexId>(c * clique_size);
    for (VertexId u = 0; u < clique_size; ++u) {
      for (VertexId v = u + 1; v < clique_size; ++v) {
        builder.AddEdge(base + u, base + v);
      }
    }
    const VertexId next_base =
        static_cast<VertexId>(((c + 1) % clique_count) * clique_size);
    builder.AddEdge(base, next_base);  // bridge
  }
  Graph g = builder.Build();
  ResultSet results = RunEngine(g, EnumOptions::Ours(2, 5));
  ASSERT_EQ(results.size(), clique_count);
  for (const auto& plex : results) {
    EXPECT_EQ(plex.size(), clique_size);
  }
  // Sanity: matches the slow reference.
  CollectingSink bk;
  BkReferenceEnumerate(g, 2, 5, bk);
  EXPECT_EQ(results, bk.SortedResults());
}

TEST(BranchEdgeCases, GraphSmallerThanQYieldsNothingQuickly) {
  Graph g = Clique(3);
  EnumResult result;
  CollectingSink sink;
  auto run = EnumerateMaximalKPlexes(g, EnumOptions::Ours(2, 10), sink);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->num_plexes, 0u);
  EXPECT_EQ(run->counters.branch_calls, 0u);  // core reduction kills all
}

}  // namespace
}  // namespace kplex
