// Tests for the maximum-k-plex solver: exact agreement with brute force
// on small graphs, consistency with enumeration on larger ones, and the
// greedy lower bound's validity.

#include "core/max_kplex.h"

#include <gtest/gtest.h>

#include "baselines/bk_naive.h"
#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

TEST(GreedyLowerBound, ProducesValidKPlex) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = GenerateErdosRenyi(40, 0.25, seed * 7);
    for (uint32_t k = 1; k <= 3; ++k) {
      auto plex = GreedyKPlexLowerBound(g, k, 8);
      EXPECT_TRUE(IsKPlex(g, plex, k)) << "seed=" << seed << " k=" << k;
      EXPECT_FALSE(plex.empty());
    }
  }
}

TEST(MaxKPlex, RejectsInvalidK) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  EXPECT_FALSE(FindMaximumKPlex(g, 0).ok());
}

TEST(MaxKPlex, CliqueIsItsOwnMaximum) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) edges.push_back({u, v});
  }
  Graph g = GraphBuilder::FromEdges(7, edges);
  auto result = FindMaximumKPlex(g, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_EQ(result->plex.size(), 7u);
}

TEST(MaxKPlex, SparseGraphHasNoLargePlex) {
  // A long path: the largest 2-plex is tiny (< 2k - 1 = 3? a path of 3
  // vertices IS a 2-plex of size 3, so found with exactly 3).
  Graph g = GraphBuilder::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                        {4, 5}});
  auto result = FindMaximumKPlex(g, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_EQ(result->plex.size(), 3u);
}

TEST(MaxKPlex, EdgelessGraphReportsNotFound) {
  Graph g = GraphBuilder::FromEdges(5, {});
  auto result = FindMaximumKPlex(g, 2);
  ASSERT_TRUE(result.ok());
  // 2k - 1 = 3 vertices would need some edges; nothing to find.
  EXPECT_FALSE(result->found);
}

struct MaxParam {
  std::size_t n;
  int edge_percent;
  uint32_t k;
  uint64_t seed;
};

class MaxKPlexSweep : public ::testing::TestWithParam<MaxParam> {};

TEST_P(MaxKPlexSweep, MatchesBruteForceMaximumSize) {
  const auto& p = GetParam();
  Graph g = GenerateErdosRenyi(p.n, p.edge_percent / 100.0, p.seed);
  // Ground truth: largest maximal k-plex with >= 2k-1 vertices.
  auto truth = BruteForceMaximalKPlexes(g, p.k, 2 * p.k - 1);
  ASSERT_TRUE(truth.ok());
  std::size_t best = 0;
  for (const auto& plex : *truth) best = std::max(best, plex.size());

  auto result = FindMaximumKPlex(g, p.k);
  ASSERT_TRUE(result.ok());
  if (best == 0) {
    EXPECT_FALSE(result->found);
  } else {
    ASSERT_TRUE(result->found);
    EXPECT_EQ(result->plex.size(), best);
    EXPECT_TRUE(IsKPlex(g, result->plex, p.k));
    EXPECT_TRUE(IsMaximalKPlex(g, result->plex, p.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MaxKPlexSweep,
    ::testing::Values(MaxParam{10, 40, 1, 201}, MaxParam{10, 60, 2, 202},
                      MaxParam{11, 50, 2, 203}, MaxParam{11, 70, 3, 204},
                      MaxParam{12, 40, 2, 205}, MaxParam{12, 60, 3, 206},
                      MaxParam{13, 50, 2, 207}, MaxParam{13, 30, 1, 208},
                      MaxParam{14, 45, 2, 209}, MaxParam{12, 80, 4, 210}));

TEST(MaxKPlex, ConsistentWithEnumerationOnMediumGraph) {
  Graph g = GenerateBarabasiAlbert(150, 8, 404);
  const uint32_t k = 2;
  auto result = FindMaximumKPlex(g, k);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  // Enumerating at q = |max| finds it; at q = |max| + 1 finds nothing.
  const uint32_t size = static_cast<uint32_t>(result->plex.size());
  auto at_size = RunEngine(g, EnumOptions::Ours(k, size));
  EXPECT_FALSE(at_size.empty());
  bool present = false;
  for (const auto& plex : at_size) present = present || plex == result->plex;
  EXPECT_TRUE(present);
  auto above = RunEngine(g, EnumOptions::Ours(k, size + 1));
  EXPECT_TRUE(above.empty());
}

}  // namespace
}  // namespace kplex
