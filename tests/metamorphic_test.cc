// Metamorphic properties of the enumerator: transformations of the
// input with predictable effect on the output. These catch bug classes
// that point comparisons miss (id-dependence, silent reliance on graph
// layout), plus golden regression pins for the dataset registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bench_common/dataset_registry.h"
#include "core/enumerator.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace kplex {
namespace {

using testing_util::ResultSet;
using testing_util::RunEngine;

TEST(Metamorphic, IsolatedVerticesDoNotChangeResults) {
  Graph g = GenerateErdosRenyi(30, 0.3, 601);
  EnumOptions options = EnumOptions::Ours(2, 4);
  ResultSet base = RunEngine(g, options);

  // Same edges, five extra isolated vertices appended.
  Graph padded = GraphBuilder::FromEdges(35, g.Edges());
  EXPECT_EQ(RunEngine(padded, options), base);
}

TEST(Metamorphic, VertexRelabelingPermutesResults) {
  Graph g = GenerateErdosRenyi(25, 0.35, 602);
  EnumOptions options = EnumOptions::Ours(2, 4);
  ResultSet base = RunEngine(g, options);

  // Apply a random permutation pi to the vertex ids.
  Rng rng(603);
  std::vector<VertexId> pi(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) pi[v] = v;
  for (std::size_t i = pi.size(); i > 1; --i) {
    std::swap(pi[i - 1], pi[rng.NextBounded(i)]);
  }
  std::vector<std::pair<VertexId, VertexId>> relabeled;
  for (const auto& [u, v] : g.Edges()) relabeled.push_back({pi[u], pi[v]});
  Graph permuted = GraphBuilder::FromEdges(g.NumVertices(), relabeled);

  ResultSet mapped;
  for (const auto& plex : base) {
    std::vector<VertexId> image;
    for (VertexId v : plex) image.push_back(pi[v]);
    std::sort(image.begin(), image.end());
    mapped.push_back(std::move(image));
  }
  std::sort(mapped.begin(), mapped.end());
  EXPECT_EQ(RunEngine(permuted, options), mapped);
}

TEST(Metamorphic, AddingAnEdgeNeverShrinksTheLargestPlex) {
  Graph g = GenerateErdosRenyi(20, 0.3, 604);
  EnumOptions options = EnumOptions::Ours(2, 3);
  auto largest = [](const ResultSet& results) {
    std::size_t best = 0;
    for (const auto& plex : results) best = std::max(best, plex.size());
    return best;
  };
  std::size_t before = largest(RunEngine(g, options));

  // Add one absent edge.
  auto edges = g.Edges();
  bool added = false;
  for (VertexId u = 0; u < g.NumVertices() && !added; ++u) {
    for (VertexId v = u + 1; v < g.NumVertices() && !added; ++v) {
      if (!g.HasEdge(u, v)) {
        edges.push_back({u, v});
        added = true;
      }
    }
  }
  ASSERT_TRUE(added);
  Graph denser = GraphBuilder::FromEdges(g.NumVertices(), edges);
  EXPECT_GE(largest(RunEngine(denser, options)), before);
}

TEST(Metamorphic, DuplicatingAGraphDoublesResults) {
  // Two disjoint copies: every result appears once per copy.
  Graph g = GenerateErdosRenyi(18, 0.4, 605);
  EnumOptions options = EnumOptions::Ours(2, 4);
  ResultSet base = RunEngine(g, options);

  const VertexId offset = static_cast<VertexId>(g.NumVertices());
  auto edges = g.Edges();
  const std::size_t original_edges = edges.size();
  for (std::size_t i = 0; i < original_edges; ++i) {
    edges.push_back({edges[i].first + offset, edges[i].second + offset});
  }
  Graph doubled = GraphBuilder::FromEdges(2 * g.NumVertices(), edges);
  ResultSet doubled_results = RunEngine(doubled, options);
  EXPECT_EQ(doubled_results.size(), 2 * base.size());
}

// Golden pins: the registry must generate bit-identical graphs forever
// (every bench number depends on it). If a generator changes, these
// values must be consciously re-baselined.
TEST(GoldenStats, RegistryGraphsAreFrozen) {
  const std::map<std::string, std::tuple<std::size_t, std::size_t>>
      expected = {
          {"karate", {34, 78}},
          {"jazz-syn", {198, 2667}},
          {"wiki-vote-syn", {1200, 21429}},
          {"soc-epinions-syn", {3000, 29945}},
          {"soc-slashdot-syn", {4096, 46435}},
          {"email-euall-syn", {4096, 23678}},
          {"enwiki-syn", {6000, 119790}},
          {"soc-pokec-syn", {8000, 95922}},
      };
  for (const auto& [name, nm] : expected) {
    auto g = LoadDataset(name);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_EQ(g->NumVertices(), std::get<0>(nm)) << name;
    EXPECT_EQ(g->NumEdges(), std::get<1>(nm)) << name;
  }
}

TEST(GoldenStats, KnownMiningResultsAreFrozen) {
  // Regression pins for a few headline bench cells (counts only; times
  // vary). If these change, the engine's semantics changed.
  struct Pin {
    const char* dataset;
    uint32_t k, q;
    uint64_t count;
  };
  const Pin pins[] = {
      {"jazz-syn", 2, 12, 398},
      {"wiki-vote-syn", 4, 20, 381},
      {"com-dblp-syn", 2, 7, 120},
      {"karate", 2, 6, 1},
  };
  for (const auto& pin : pins) {
    auto g = LoadDataset(pin.dataset);
    ASSERT_TRUE(g.ok());
    CountingSink sink;
    auto result =
        EnumerateMaximalKPlexes(*g, EnumOptions::Ours(pin.k, pin.q), sink);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_plexes, pin.count)
        << pin.dataset << " k=" << pin.k << " q=" << pin.q;
  }
}

}  // namespace
}  // namespace kplex
