// Protocol v1 codec tests: every request round-trips through both wire
// encodings (format -> parse -> format is the identity on the wire
// bytes), malformed frames come back as structured errors instead of
// crashes, response formatting is pinned against golden strings (the
// byte-compatibility contract of the text wire), and error sanitation
// strips absolute host paths.

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace kplex {
namespace {

// ----------------------------------------------------------- round trips

/// The request corpus: one (or more) of every variant, with token-safe
/// strings (the text grammar splits on whitespace; arbitrary strings
/// are the framed codec's job) and parse-stable numeric values.
std::vector<Request> Corpus() {
  std::vector<Request> corpus;
  auto add = [&corpus](RequestPayload payload, uint64_t id = 0) {
    Request request;
    request.id = id;
    request.payload = std::move(payload);
    corpus.push_back(std::move(request));
  };

  add(HelloRequest{});
  add(HelloRequest{3, WireMode::kFramed}, 11);
  add(HelloRequest{1, WireMode::kText});
  add(LoadRequest{"web", "/data/web.kpx"}, 42);
  add(DatasetRequest{"kc", "karate"});
  add(SnapshotRequest{"web", "/tmp/web.kpx", false, {}});
  add(SnapshotRequest{"web", "/tmp/web.kpx", true, {}});
  add(SnapshotRequest{"web", "/tmp/web.kpx", true, {4, 8, 10}}, 7);

  MineRequest defaults;
  defaults.query.graph = "web";
  defaults.query.k = 2;
  defaults.query.q = 12;
  add(defaults);

  MineRequest loaded;
  loaded.query.graph = "web";
  loaded.query.k = 3;
  loaded.query.q = 9;
  loaded.query.algo = QueryAlgo::kListPlex;
  loaded.query.threads = 8;
  loaded.query.max_results = 1000;
  loaded.query.time_limit_seconds = 2.5;
  loaded.query.tau_ms = 0.25;
  loaded.query.use_ctcp = true;
  loaded.query.use_cache = false;
  add(loaded, 99);

  SubmitRequest submit;
  submit.query.graph = "g";
  submit.query.k = 1;
  submit.query.q = 4;
  submit.query.algo = QueryAlgo::kFp;
  add(submit, 5);

  MineRequest ranged;
  ranged.query.graph = "web";
  ranged.query.k = 2;
  ranged.query.q = 12;
  ranged.query.seed_begin = 100;
  ranged.query.seed_end = 250;
  add(ranged, 6);

  MineShardRequest shard;
  shard.query.graph = "web";
  shard.query.k = 2;
  shard.query.q = 12;
  shard.query.seed_begin = 0;
  shard.query.seed_end = 1000;
  shard.query.threads = 4;
  shard.expected_hash = 0xbe7c0cfa5f1eee74ULL;
  add(shard, 21);

  MineRequest streamed;  // the v4 streamed-selection shape, all options
  streamed.query.graph = "web";
  streamed.query.k = 2;
  streamed.query.q = 12;
  streamed.query.max_results = 50;
  streamed.query.collect_bodies = true;
  streamed.query.chunk_size = 7;
  streamed.query.filter_min_size = 13;
  streamed.query.filter_max_size = 20;
  streamed.query.has_contain = true;
  streamed.query.contain = 33;
  add(streamed, 12);

  MineRequest top;  // top=K implies bodies on the wire
  top.query.graph = "web";
  top.query.k = 2;
  top.query.q = 12;
  top.query.collect_bodies = true;
  top.query.top_k = 5;
  add(top, 13);

  MineRequest maximum;  // FindMaximumKPlex through the service stack
  maximum.query.graph = "web";
  maximum.query.k = 3;
  maximum.query.q = 2;
  maximum.query.collect_bodies = true;
  maximum.query.maximum = true;
  add(maximum, 14);

  MineRequest resumed;  // cursor resume of a truncated run
  resumed.query.graph = "web";
  resumed.query.k = 2;
  resumed.query.q = 12;
  resumed.query.max_results = 7;
  resumed.query.collect_bodies = true;
  resumed.query.has_cursor = true;
  resumed.query.cursor_seed = 17;
  resumed.query.cursor_ordinal = 4;
  add(resumed, 15);

  MineShardRequest probe;  // the coordinator's planning probe shape
  probe.query.graph = "web";
  probe.query.k = 2;
  probe.query.q = 12;
  probe.query.seed_begin = 0;
  probe.query.seed_end = 0;
  add(probe);

  add(CancelRequest{17});
  add(JobsRequest{});
  add(WaitRequest{});
  add(WaitRequest{uint64_t{12}}, 3);
  add(StatsRequest{});
  add(EvictRequest{"web"});
  add(StoreRequest{});
  StoreRequest evict_store;  // v6: `store evict`
  evict_store.evict = true;
  add(evict_store, 16);
  add(HelpRequest{});
  add(QuitRequest{});
  return corpus;
}

TEST(ProtocolText, EveryRequestRoundTrips) {
  for (const Request& request : Corpus()) {
    const std::string wire = FormatTextRequest(request);
    auto parsed = ParseTextRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->payload.index(), request.payload.index()) << wire;
    // Wire-level identity: re-formatting the parse reproduces the line.
    EXPECT_EQ(FormatTextRequest(*parsed), wire);
    // The text wire has no id channel.
    EXPECT_EQ(parsed->id, 0u) << wire;
  }
}

TEST(ProtocolFramed, EveryRequestRoundTrips) {
  for (const Request& request : Corpus()) {
    const std::string wire = FormatFramedRequest(request);
    auto parsed = ParseFramedRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->payload.index(), request.payload.index()) << wire;
    EXPECT_EQ(parsed->id, request.id) << wire;
    EXPECT_EQ(FormatFramedRequest(*parsed), wire);
  }
}

TEST(ProtocolFramed, ArbitraryStringsSurviveFraming) {
  // Paths with spaces, quotes, backslashes, and control bytes cannot
  // ride the text grammar; the framed codec must carry them exactly.
  LoadRequest load;
  load.name = "weird graph";
  load.path = "/data dir/we\"ird\\file\twith\nnewline";
  Request request;
  request.payload = load;
  auto parsed = ParseFramedRequest(FormatFramedRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& round = std::get<LoadRequest>(parsed->payload);
  EXPECT_EQ(round.name, load.name);
  EXPECT_EQ(round.path, load.path);
}

// ------------------------------------------------------- malformed input

TEST(ProtocolText, MalformedLinesAreStructuredErrors) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"frobnicate", "unknown command 'frobnicate' (try 'help')"},
      {"load onlyname", "usage: load NAME PATH"},
      {"dataset a b c", "usage: dataset NAME KEY"},
      {"snapshot g", "usage: snapshot NAME PATH [precompute] "
                     "[levels=C1,C2,...]"},
      {"snapshot g p bogus", "unknown snapshot option 'bogus'"},
      {"mine", "usage: mine NAME K Q [algo=...] [threads=N] "
               "[max-results=N] [time-limit=S] [tau-ms=T] [cache=on|off] "
               "[seed-range=B:E] [results=stream|count] [chunk=N] "
               "[filter=size>=S,size<=T] [contain=V] [top=K] "
               "[mode=enumerate|maximum] [cursor=S:O]"},
      {"mine g -1 5", "malformed value for K: '-1'"},
      {"mine g 2 5 threads=-2", "malformed value for threads: '-2'"},
      {"mine g 2 99999999999",
       "malformed value for Q: '99999999999' (expected 0..4294967295)"},
      {"mine g 2 5 bogus=1", "unknown mine option 'bogus'"},
      {"mine g 2 5 cache=maybe", "cache must be on or off"},
      {"mine g 2 5 ctcp=maybe", "ctcp must be on or off"},
      {"submit g 2 5 bogus=1", "unknown submit option 'bogus'"},
      {"mine g 2 5 seed-range=5",
       "seed-range must be BEGIN:END (half-open; END may be 'end'), "
       "got '5'"},
      {"mine g 2 5 seed-range=x:9", "malformed value for seed-range: 'x'"},
      {"mine g 2 5 seed-range=9:3",
       "seed-range begin must be <= end (got '9:3')"},
      {"mineshard g 2 5 hash=beef",
       "malformed value for hash: 'beef' (expected 0xHEX)"},
      {"mineshard g 2 5 hash=0xzz",
       "malformed value for hash: '0xzz' (expected 0xHEX)"},
      {"mineshard g 2 5 bogus=1", "unknown mineshard option 'bogus'"},
      {"mine g 2 5 results=maybe", "results must be stream or count"},
      {"mine g 2 5 chunk=0", "chunk must be >= 1"},
      {"mine g 2 5 chunk=999999",
       "malformed value for chunk: '999999' (expected 0..65536)"},
      {"mine g 2 5 filter=garbage",
       "malformed filter term 'garbage' (expected size>=S or size<=T)"},
      {"mine g 2 5 filter=size>=0", "filter size bound must be >= 1"},
      {"mine g 2 5 filter=size>=x", "malformed value for filter: 'x'"},
      {"mine g 2 5 filter=size>=9,size<=3",
       "filter size>=9 contradicts size<=3"},
      {"mine g 2 5 contain=x", "malformed value for contain: 'x'"},
      {"mine g 2 5 top=0", "top must be >= 1"},
      {"mine g 2 5 mode=banana", "mode must be enumerate or maximum"},
      {"mine g 2 5 cursor=7",
       "cursor must be SEED:ORDINAL (the resume token a truncated run "
       "returned), got '7'"},
      {"mine g 2 5 cursor=a:3", "malformed value for cursor: 'a'"},
      {"cancel", "usage: cancel ID"},
      {"cancel nope", "malformed value for ID: 'nope'"},
      {"wait 1 2", "usage: wait [ID]"},
      {"evict", "usage: evict NAME"},
      {"store sideways", "usage: store [evict]"},
      {"store evict now", "usage: store [evict]"},
      {"hello proto=x", "malformed value for proto: 'x'"},
      {"hello mode=binary", "mode must be text or framed, got 'binary'"},
      {"hello frob", "usage: hello [proto=N] [mode=text|framed]"},
  };
  for (const auto& [line, message] : cases) {
    auto parsed = ParseTextRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_EQ(parsed.status().message(), message) << line;
  }
}

TEST(ProtocolFramed, MalformedFramesAreStructuredErrorsNeverCrashes) {
  const std::vector<std::string> frames = {
      "",
      "not json at all",
      "{",
      "{}",
      "[]",
      "42",
      "\"just a string\"",
      "{\"cmd\":}",
      "{\"cmd\":42}",
      "{\"cmd\":\"mine\"}",                           // missing graph/k/q
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2}",   // missing q
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":-2,\"q\":5}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2.5,\"q\":5}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"bogus\":1}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":99999999999,\"q\":5}",
      "{\"cmd\":\"load\",\"name\":\"g\"}",            // missing path
      "{\"cmd\":\"load\",\"name\":\"g\",\"path\":7}",
      "{\"cmd\":\"cancel\"}",                         // missing job
      "{\"cmd\":\"jobs\",\"extra\":true}",
      "{\"cmd\":\"nope\"}",
      "{\"id\":\"seven\",\"cmd\":\"jobs\"}",
      "{\"cmd\":\"quit\"} trailing",
      "{\"cmd\":\"quit\",}",
      "{\"cmd\" \"quit\"}",
      "{\"cmd\":\"snapshot\",\"name\":\"g\",\"path\":\"p\","
      "\"levels\":[1,\"x\"]}",
      "{\"cmd\":\"hello\",\"mode\":\"binary\"}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"seed_begin\":9,\"seed_end\":3}",            // inverted range
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"seed_begin\":\"x\"}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"hash\":\"0xbeef\"}",                        // hash is shard-only
      "{\"cmd\":\"mineshard\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"hash\":\"beef\"}",                          // missing 0x
      "{\"cmd\":\"mineshard\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"hash\":12}",                                // hash must be a string
      "{\"cmd\":\"mineshard\",\"graph\":\"g\"}",     // missing k/q
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"results\":\"maybe\"}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"chunk\":0}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"chunk\":\"seven\"}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"min_size\":0}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"min_size\":9,\"max_size\":3}",              // contradictory filter
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"top\":0}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"mode\":\"banana\"}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"cursor\":\"bogus\"}",                       // no SEED:ORDINAL shape
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"cursor\":7}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"cursor\":\"3:x\"}",
      "{\"cmd\":\"store\",\"bogus\":1}",              // unknown field
      "{\"cmd\":\"store\",\"evict\":\"yes\"}",        // evict must be bool
      "{\"cmd\":\"quit\",\"cmd\"",
      "{\"a\":\"\\u12\"}",
      "{\"a\":\"\\q\"}",
      "{\"a\":\"unterminated",
      "{\"a\":truu}",
      "{\"a\":nul}",
      "{\"a\":1e}",
      std::string(64, '['),  // nesting bomb
      std::string("{\"cmd\":\"evict\",\"name\":\"") + std::string(1, '\x01') +
          "\"}",
  };
  for (const std::string& frame : frames) {
    auto parsed = ParseFramedRequest(frame);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << frame;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << frame;
      EXPECT_FALSE(parsed.status().message().empty()) << frame;
    }
  }
}

TEST(ProtocolFramed, FingerprintsAreExactUint64) {
  // 2^53-breaking values must survive the integer path (no double
  // round-trip): job ids and max_results use raw uint64.
  auto parsed = ParseFramedRequest(
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"max_results\":18446744073709551615}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(std::get<MineRequest>(parsed->payload).query.max_results,
            UINT64_MAX);
  // One past UINT64_MAX falls back to double and is rejected as
  // non-integer.
  EXPECT_FALSE(ParseFramedRequest("{\"cmd\":\"cancel\",\"job\":"
                                  "18446744073709551616}")
                   .ok());
}

// ------------------------------------------------------- response goldens

std::string TextOf(ResponsePayload payload) {
  Response response;
  response.payload = std::move(payload);
  std::ostringstream out;
  FormatTextResponse(response, out);
  return out.str();
}

TEST(ProtocolText, ResponseGoldens) {
  LoadResponse loaded;
  loaded.name = "web";
  loaded.num_vertices = 875713;
  loaded.num_edges = 4322051;
  loaded.load_seconds = 0.0021;
  EXPECT_EQ(TextOf(loaded),
            "loaded web: 875713 vertices, 4322051 edges (0.0021s)\n");

  LoadResponse dataset = loaded;
  dataset.name = "kc";
  dataset.num_vertices = 34;
  dataset.num_edges = 78;
  dataset.dataset_key = "karate";
  EXPECT_EQ(TextOf(dataset),
            "loaded kc: 34 vertices, 78 edges (dataset karate)\n");

  SnapshotResponse snapshot;
  snapshot.name = "web";
  snapshot.path = "/tmp/web.kpx";
  snapshot.with_precompute = true;
  EXPECT_EQ(TextOf(snapshot),
            "snapshot web -> /tmp/web.kpx (with precompute sections)\n");

  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 2566;
  done.result.max_plex_size = 14;
  done.result.seconds = 1.8102;
  EXPECT_EQ(TextOf(MineResponse{done}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s\n");
  EXPECT_EQ(TextOf(WaitResponse{done}),
            "job 3: mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s\n");

  JobInfo cached = done;
  cached.result.from_cache = true;
  cached.result.reduction_precomputed = true;  // suppressed when cached
  EXPECT_EQ(TextOf(MineResponse{cached}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s [cached]\n");

  JobInfo partial = done;
  partial.result.timed_out = true;
  partial.result.stopped_early = true;
  EXPECT_EQ(TextOf(MineResponse{partial}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s [time limit hit] [result cap hit]\n");

  JobInfo never_ran = done;
  never_ran.state = JobState::kCancelled;
  never_ran.started = false;
  EXPECT_EQ(TextOf(WaitResponse{never_ran}),
            "job 3: cancelled web k=2 q=12 algo=ours before it started\n");

  JobInfo failed = done;
  failed.state = JobState::kFailed;
  failed.status = Status::NotFound("no graph named 'web' is registered");
  EXPECT_EQ(TextOf(MineResponse{failed}),
            "error: NOT_FOUND: no graph named 'web' is registered\n");

  SubmitResponse submit;
  submit.job = 4;
  submit.query = done.request;
  EXPECT_EQ(TextOf(submit), "job 4 submitted: mine web k=2 q=12 algo=ours\n");

  EXPECT_EQ(TextOf(CancelResponse{4}), "cancel requested for job 4\n");
  EXPECT_EQ(TextOf(EvictResponse{"web"}), "evicted web\n");

  WaitAllResponse all;
  all.counts.done = 2;
  all.counts.cancelled = 1;
  all.counts.failed = 1;
  all.failed_jobs = {9};
  EXPECT_EQ(TextOf(all),
            "all jobs finished: 2 done, 1 cancelled, 1 failed\n");

  EXPECT_EQ(TextOf(ErrorResponse{Status::InvalidArgument("boom")}),
            "error: INVALID_ARGUMENT: boom\n");
  EXPECT_EQ(TextOf(ByeResponse{}), "");  // quit prints nothing on text

  EXPECT_EQ(TextOf(HelloResponse{}), "hello proto=6 mode=text\n");

  // v6 store verbs: status line, evict outcome, and the off state.
  StoreResponse store_status;
  store_status.info.enabled = true;
  store_status.info.entries = 3;
  store_status.info.bytes = 2048;
  store_status.info.byte_budget = 4 << 20;
  store_status.info.hits = 7;
  store_status.info.misses = 2;
  store_status.info.writes = 5;
  store_status.info.evictions = 1;
  store_status.info.corrupt_entries = 0;
  EXPECT_EQ(TextOf(store_status),
            "store: 3 entries, 2.0KiB (budget 4.0MiB), 7 hits, 2 misses, "
            "5 writes, 1 evictions, 0 corrupt\n");

  StoreResponse store_evicted = store_status;
  store_evicted.evicted = true;
  store_evicted.evicted_entries = 3;
  store_evicted.evicted_bytes = 2048;
  store_evicted.info.entries = 0;
  store_evicted.info.bytes = 0;
  store_evicted.info.evictions = 4;
  EXPECT_EQ(TextOf(store_evicted),
            "store evicted: 3 entries, 2.0KiB freed\n"
            "store: 0 entries, 0B (budget 4.0MiB), 7 hits, 2 misses, "
            "5 writes, 4 evictions, 0 corrupt\n");

  StoreResponse store_off;
  EXPECT_EQ(TextOf(store_off), "store: off\n");

  // Shard outcomes carry every number a merge needs.
  JobInfo shard_done = done;
  shard_done.request.seed_begin = 100;
  shard_done.request.seed_end = 200;
  shard_done.result.fingerprint = 0x0123456789abcdefULL;
  shard_done.result.fingerprint_xor = 0x00000000deadbeefULL;
  shard_done.result.total_seeds = 5000;
  ShardResultResponse shard;
  shard.job = shard_done;
  shard.content_hash = 0x00000000c0ffee00ULL;
  EXPECT_EQ(TextOf(shard),
            "shard web k=2 q=12 algo=ours seeds=100:200: 2566 plexes, "
            "max size 14, xor 0x00000000deadbeef, fingerprint "
            "0x0123456789abcdef, total seeds 5000, hash 0x00000000c0ffee00, "
            "1.810s\n");

  ShardResultResponse failed_shard;
  failed_shard.job = failed;
  EXPECT_EQ(TextOf(failed_shard),
            "error: NOT_FOUND: no graph named 'web' is registered\n");
}

TEST(ProtocolFramed, ResponseShape) {
  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 7;
  done.result.fingerprint = 0x0123456789abcdefULL;

  Response response;
  response.request_id = 9;
  response.payload = MineResponse{done};
  const std::string frame = FormatFramedResponse(response);
  EXPECT_EQ(frame.find('\n'), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"id\":9"), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"ok\":true"), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"type\":\"mine\""), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"fingerprint\":\"0x0123456789abcdef\""),
            std::string::npos)
      << frame;

  StoreResponse store_response;
  store_response.info.enabled = true;
  store_response.info.entries = 2;
  store_response.info.bytes = 258;
  store_response.evicted = true;
  store_response.evicted_entries = 1;
  store_response.evicted_bytes = 129;
  response.payload = store_response;
  const std::string store_frame = FormatFramedResponse(response);
  EXPECT_NE(store_frame.find("\"type\":\"store\""), std::string::npos)
      << store_frame;
  EXPECT_NE(store_frame.find("\"evicted\":true"), std::string::npos)
      << store_frame;
  EXPECT_NE(store_frame.find("\"evicted_entries\":1"), std::string::npos)
      << store_frame;
  EXPECT_NE(store_frame.find("\"store\":{\"enabled\":true"),
            std::string::npos)
      << store_frame;

  // A server without --store reports the tier as disabled in stats.
  response.payload = StatsResponse{};
  EXPECT_NE(FormatFramedResponse(response)
                .find("\"store\":{\"enabled\":false}"),
            std::string::npos);

  response.payload = ErrorResponse{Status::NotFound("nope")};
  const std::string error = FormatFramedResponse(response);
  EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << error;
  EXPECT_NE(error.find("\"code\":\"NOT_FOUND\""), std::string::npos)
      << error;
  EXPECT_NE(error.find("\"message\":\"nope\""), std::string::npos) << error;
}

// -------------------------------------------- framed client-side decode

TEST(ProtocolFramed, ShardResultRoundTripsThroughTheClientDecoder) {
  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.request.seed_begin = 100;
  done.request.seed_end = 200;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 2566;
  done.result.max_plex_size = 14;
  done.result.fingerprint = 0x0123456789abcdefULL;
  done.result.fingerprint_xor = 0x00000000deadbeefULL;
  done.result.total_seeds = 5000;
  done.result.seconds = 0.25;

  Response response;
  response.request_id = 7;
  response.payload = ShardResultResponse{done, 0x00000000c0ffee00ULL};
  const std::string frame = FormatFramedResponse(response);
  EXPECT_NE(frame.find("\"type\":\"shard_result\""), std::string::npos)
      << frame;
  EXPECT_NE(frame.find("\"seed_begin\":100"), std::string::npos) << frame;

  auto decoded = ParseFramedShardResult(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->state, "done");
  EXPECT_EQ(decoded->plexes, 2566u);
  EXPECT_EQ(decoded->max_size, 14u);
  EXPECT_EQ(decoded->fingerprint, 0x0123456789abcdefULL);
  EXPECT_EQ(decoded->fingerprint_xor, 0x00000000deadbeefULL);
  EXPECT_EQ(decoded->total_seeds, 5000u);
  EXPECT_EQ(decoded->content_hash, 0x00000000c0ffee00ULL);
  EXPECT_DOUBLE_EQ(decoded->seconds, 0.25);
  EXPECT_TRUE(decoded->IsComplete());

  // Truncation flags survive the decode: a kDone-but-timed-out (or
  // result-capped) shard must never look complete to a coordinator.
  done.result.timed_out = true;
  response.payload = ShardResultResponse{done, 0x00000000c0ffee00ULL};
  decoded = ParseFramedShardResult(FormatFramedResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->timed_out);
  EXPECT_FALSE(decoded->IsComplete());

  done.result.timed_out = false;
  done.result.stopped_early = true;
  response.payload = ShardResultResponse{done, 0x00000000c0ffee00ULL};
  decoded = ParseFramedShardResult(FormatFramedResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->stopped_early);
  EXPECT_FALSE(decoded->IsComplete());
}

TEST(ProtocolFramed, ClientDecoderSurfacesStructuredFailures) {
  // An error frame becomes the embedded Status, code preserved.
  Response response;
  response.payload = ErrorResponse{Status::FailedPrecondition(
      "graph content hash mismatch for 'web'")};
  auto decoded = ParseFramedShardResult(FormatFramedResponse(response));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("hash mismatch"),
            std::string::npos);

  // A failed shard job rides inside an ok frame; the decoder unwraps
  // its error the same way.
  JobInfo failed;
  failed.request.graph = "web";
  failed.state = JobState::kFailed;
  failed.status = Status::NotFound("no graph named 'web' is registered");
  response.payload = ShardResultResponse{failed, 0};
  decoded = ParseFramedShardResult(FormatFramedResponse(response));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);

  // Wrong frame type and garbage are structured errors, never a crash.
  EXPECT_FALSE(ParseFramedShardResult("{\"ok\":true,\"type\":\"mine\"}")
                   .ok());
  EXPECT_FALSE(ParseFramedShardResult("not json").ok());
  EXPECT_FALSE(ParseFramedShardResult("{}").ok());
}

TEST(ProtocolFramed, HelloVersionDecoder) {
  Response response;
  HelloResponse hello;
  hello.version = 2;
  hello.mode = WireMode::kFramed;
  response.payload = hello;
  auto version = ParseFramedHelloVersion(FormatFramedResponse(response));
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);

  // A v1 server's hello decodes to 1 (the coordinator's refusal path).
  hello.version = 1;
  response.payload = hello;
  version = ParseFramedHelloVersion(FormatFramedResponse(response));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);

  EXPECT_FALSE(ParseFramedHelloVersion("{\"ok\":true,\"type\":\"bye\"}")
                   .ok());
  EXPECT_FALSE(ParseFramedHelloVersion("nope").ok());
}

// ------------------------------------------- v4 streamed result delivery

TEST(ProtocolText, ResultChunkGoldens) {
  ResultChunkResponse chunk;
  chunk.job = 3;
  chunk.seq = 0;
  chunk.plexes = {{1, 2, 3}, {4, 5}};
  EXPECT_EQ(TextOf(chunk), "chunk 0: 1 2 3 | 4 5\n");

  ResultChunkResponse last;
  last.job = 3;
  last.seq = 2;
  last.last = true;
  last.plexes = {{7}};
  EXPECT_EQ(TextOf(last), "chunk 2 last: 7\n");

  // An empty result's single terminating chunk.
  ResultChunkResponse empty;
  empty.seq = 0;
  empty.last = true;
  EXPECT_EQ(TextOf(empty), "chunk 0 last:\n");
}

TEST(ProtocolText, TruncatedMineLineCarriesTheResumeCursor) {
  JobInfo truncated;
  truncated.id = 3;
  truncated.request.graph = "web";
  truncated.request.k = 2;
  truncated.request.q = 12;
  truncated.state = JobState::kDone;
  truncated.started = true;
  truncated.result.num_plexes = 7;
  truncated.result.max_plex_size = 9;
  truncated.result.seconds = 0.1;
  truncated.result.stopped_early = true;
  truncated.result.has_cursor = true;
  truncated.result.cursor_seed = 17;
  truncated.result.cursor_ordinal = 4;
  EXPECT_EQ(TextOf(MineResponse{truncated}),
            "mined web k=2 q=12 algo=ours: 7 plexes, max size 9, 0.100s "
            "[result cap hit] [cursor 17:4]\n");
}

TEST(ProtocolFramed, ResultChunkFrameGoldenAndClientDecode) {
  ResultChunkResponse chunk;
  chunk.job = 3;
  chunk.seq = 1;
  chunk.last = true;
  chunk.plexes = {{1, 2, 3}, {4, 5}};
  Response response;
  response.request_id = 9;
  response.payload = chunk;
  const std::string frame = FormatFramedResponse(response);
  // The golden streamed transcript unit: nested vertex-id arrays.
  EXPECT_EQ(frame,
            "{\"id\":9,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
            "\"seq\":1,\"last\":true,\"plexes\":[[1,2,3],[4,5]]}");

  auto type = PeekFramedResponseType(frame);
  ASSERT_TRUE(type.ok()) << type.status().ToString();
  EXPECT_EQ(*type, "result_chunk");

  auto decoded = ParseFramedResultChunk(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 9u);
  EXPECT_EQ(decoded->job, 3u);
  EXPECT_EQ(decoded->seq, 1u);
  EXPECT_TRUE(decoded->last);
  EXPECT_EQ(decoded->plexes, chunk.plexes);

  // An empty chunk round-trips as an empty plexes array.
  ResultChunkResponse empty;
  empty.last = true;
  response.payload = empty;
  const std::string empty_frame = FormatFramedResponse(response);
  EXPECT_NE(empty_frame.find("\"plexes\":[]"), std::string::npos)
      << empty_frame;
  decoded = ParseFramedResultChunk(empty_frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->plexes.empty());
  EXPECT_TRUE(decoded->last);
}

TEST(ProtocolFramed, MalformedResultChunkFramesAreErrorsNeverCrashes) {
  const std::vector<std::string> frames = {
      "",
      "not json",
      "{}",
      "{\"ok\":true,\"type\":\"mine\"}",  // wrong frame type
      // Truncated mid-plexes (a cut TCP stream's final partial line).
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"plexes\":[[1",
      // Missing the plexes array entirely.
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
      "\"seq\":0,\"last\":false}",
      // Flat array where nested vertex-id arrays are required.
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
      "\"seq\":0,\"last\":false,\"plexes\":[1,2]}",
      // Non-numeric vertex id.
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
      "\"seq\":0,\"last\":false,\"plexes\":[[1,\"x\"]]}",
      // Wrong-typed seq / last.
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
      "\"seq\":\"zero\",\"last\":false,\"plexes\":[]}",
      "{\"id\":1,\"ok\":true,\"type\":\"result_chunk\",\"job\":3,"
      "\"seq\":0,\"last\":\"yes\",\"plexes\":[]}",
      // An error frame surfaces as its embedded status, not a chunk.
      "{\"id\":1,\"ok\":false,\"type\":\"error\","
      "\"code\":\"INTERNAL\",\"message\":\"boom\"}",
  };
  for (const std::string& frame : frames) {
    auto decoded = ParseFramedResultChunk(frame);
    EXPECT_FALSE(decoded.ok()) << "accepted: " << frame;
  }
}

TEST(ProtocolFramed, MineResultDecoderReadsBodiesAndCursor) {
  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.request.collect_bodies = true;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 7;
  done.result.max_plex_size = 9;
  done.result.fingerprint = 0x0123456789abcdefULL;
  done.result.seconds = 0.25;
  done.result.stopped_early = true;
  done.result.plexes =
      std::make_shared<std::vector<std::vector<VertexId>>>(
          std::vector<std::vector<VertexId>>{{1, 2}, {3, 4}, {5, 6}});
  done.result.has_cursor = true;
  done.result.cursor_seed = 17;
  done.result.cursor_ordinal = 4;

  Response response;
  response.request_id = 2;
  response.payload = MineResponse{done};
  const std::string frame = FormatFramedResponse(response);
  EXPECT_NE(frame.find("\"bodies\":3"), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"cursor\":\"17:4\""), std::string::npos) << frame;

  auto decoded = ParseFramedMineResult(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, 2u);
  EXPECT_EQ(decoded->state, "done");
  EXPECT_EQ(decoded->plexes, 7u);
  EXPECT_EQ(decoded->max_size, 9u);
  EXPECT_EQ(decoded->bodies, 3u);
  EXPECT_EQ(decoded->fingerprint, 0x0123456789abcdefULL);
  EXPECT_TRUE(decoded->stopped_early);
  EXPECT_TRUE(decoded->has_cursor);
  EXPECT_EQ(decoded->cursor_seed, 17u);
  EXPECT_EQ(decoded->cursor_ordinal, 4u);

  // Without bodies or truncation both extras are absent and default.
  done.result.plexes = nullptr;
  done.result.has_cursor = false;
  done.result.stopped_early = false;
  response.payload = MineResponse{done};
  decoded = ParseFramedMineResult(FormatFramedResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bodies, 0u);
  EXPECT_FALSE(decoded->has_cursor);

  // A failed mine surfaces its embedded status.
  JobInfo failed;
  failed.request.graph = "web";
  failed.state = JobState::kFailed;
  failed.status = Status::NotFound("no graph named 'web' is registered");
  response.payload = MineResponse{failed};
  auto error = ParseFramedMineResult(FormatFramedResponse(response));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);

  // Wrong type / garbage / bogus cursor token are structured errors.
  EXPECT_FALSE(ParseFramedMineResult("{\"ok\":true,\"type\":\"hello\"}")
                   .ok());
  EXPECT_FALSE(ParseFramedMineResult("nope").ok());
  EXPECT_FALSE(
      ParseFramedMineResult(
          "{\"id\":1,\"ok\":true,\"type\":\"mine\",\"state\":\"done\","
          "\"cursor\":\"bogus\"}")
          .ok());
  EXPECT_FALSE(
      ParseFramedMineResult(
          "{\"id\":1,\"ok\":true,\"type\":\"mine\",\"state\":\"done\","
          "\"cursor\":7}")
          .ok());
}

TEST(ProtocolText, CursorTextParser) {
  auto cursor = ParseCursorText("17:4");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_EQ(cursor->seed, 17u);
  EXPECT_EQ(cursor->ordinal, 4u);
  EXPECT_EQ(FormatCursorValue(cursor->seed, cursor->ordinal), "17:4");
  EXPECT_FALSE(ParseCursorText("17").ok());
  EXPECT_FALSE(ParseCursorText("x:4").ok());
  EXPECT_FALSE(ParseCursorText("17:y").ok());
  EXPECT_FALSE(ParseCursorText("").ok());
}

TEST(ProtocolText, SeedRangeTextParser) {
  auto range = ParseSeedRangeText("100:200");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->begin, 100u);
  EXPECT_EQ(range->end, 200u);
  range = ParseSeedRangeText("0:end");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->begin, 0u);
  EXPECT_EQ(range->end, UINT32_MAX);
  EXPECT_TRUE(range->IsFull());
  EXPECT_FALSE(ParseSeedRangeText("5").ok());
  EXPECT_FALSE(ParseSeedRangeText("9:3").ok());
  EXPECT_FALSE(ParseSeedRangeText("a:b").ok());
}

// ------------------------------------------------------------- sanitation

TEST(ProtocolSanitize, AbsolutePathsLoseTheirDirectories) {
  EXPECT_EQ(SanitizeErrorMessage(
                "cannot open '/srv/secret/layout/web.txt' for reading: "
                "No such file or directory"),
            "cannot open 'web.txt' for reading: No such file or directory");
  EXPECT_EQ(SanitizeErrorMessage("cannot map /var/data/g.kpx: EACCES"),
            "cannot map g.kpx: EACCES");
  // Relative paths, options, and fractions pass through untouched.
  EXPECT_EQ(SanitizeErrorMessage("cannot open 'data/karate.txt'"),
            "cannot open 'data/karate.txt'");
  EXPECT_EQ(SanitizeErrorMessage("cache must be on or off"),
            "cache must be on or off");
  EXPECT_EQ(SanitizeErrorMessage("ratio 3/4 is fine"), "ratio 3/4 is fine");
  EXPECT_EQ(SanitizeErrorMessage("bare / stays"), "bare / stays");

  const Status sanitized = SanitizeErrorStatus(
      Status::IoError("cannot open '/a/b/c.txt' for writing"));
  EXPECT_EQ(sanitized.code(), StatusCode::kIoError);
  EXPECT_EQ(sanitized.message(), "cannot open 'c.txt' for writing");
  EXPECT_TRUE(SanitizeErrorStatus(Status::Ok()).ok());
}

}  // namespace
}  // namespace kplex
