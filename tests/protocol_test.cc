// Protocol v1 codec tests: every request round-trips through both wire
// encodings (format -> parse -> format is the identity on the wire
// bytes), malformed frames come back as structured errors instead of
// crashes, response formatting is pinned against golden strings (the
// byte-compatibility contract of the text wire), and error sanitation
// strips absolute host paths.

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace kplex {
namespace {

// ----------------------------------------------------------- round trips

/// The request corpus: one (or more) of every variant, with token-safe
/// strings (the text grammar splits on whitespace; arbitrary strings
/// are the framed codec's job) and parse-stable numeric values.
std::vector<Request> Corpus() {
  std::vector<Request> corpus;
  auto add = [&corpus](RequestPayload payload, uint64_t id = 0) {
    Request request;
    request.id = id;
    request.payload = std::move(payload);
    corpus.push_back(std::move(request));
  };

  add(HelloRequest{});
  add(HelloRequest{3, WireMode::kFramed}, 11);
  add(HelloRequest{1, WireMode::kText});
  add(LoadRequest{"web", "/data/web.kpx"}, 42);
  add(DatasetRequest{"kc", "karate"});
  add(SnapshotRequest{"web", "/tmp/web.kpx", false, {}});
  add(SnapshotRequest{"web", "/tmp/web.kpx", true, {}});
  add(SnapshotRequest{"web", "/tmp/web.kpx", true, {4, 8, 10}}, 7);

  MineRequest defaults;
  defaults.query.graph = "web";
  defaults.query.k = 2;
  defaults.query.q = 12;
  add(defaults);

  MineRequest loaded;
  loaded.query.graph = "web";
  loaded.query.k = 3;
  loaded.query.q = 9;
  loaded.query.algo = QueryAlgo::kListPlex;
  loaded.query.threads = 8;
  loaded.query.max_results = 1000;
  loaded.query.time_limit_seconds = 2.5;
  loaded.query.tau_ms = 0.25;
  loaded.query.use_ctcp = true;
  loaded.query.use_cache = false;
  add(loaded, 99);

  SubmitRequest submit;
  submit.query.graph = "g";
  submit.query.k = 1;
  submit.query.q = 4;
  submit.query.algo = QueryAlgo::kFp;
  add(submit, 5);

  add(CancelRequest{17});
  add(JobsRequest{});
  add(WaitRequest{});
  add(WaitRequest{uint64_t{12}}, 3);
  add(StatsRequest{});
  add(EvictRequest{"web"});
  add(HelpRequest{});
  add(QuitRequest{});
  return corpus;
}

TEST(ProtocolText, EveryRequestRoundTrips) {
  for (const Request& request : Corpus()) {
    const std::string wire = FormatTextRequest(request);
    auto parsed = ParseTextRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->payload.index(), request.payload.index()) << wire;
    // Wire-level identity: re-formatting the parse reproduces the line.
    EXPECT_EQ(FormatTextRequest(*parsed), wire);
    // The text wire has no id channel.
    EXPECT_EQ(parsed->id, 0u) << wire;
  }
}

TEST(ProtocolFramed, EveryRequestRoundTrips) {
  for (const Request& request : Corpus()) {
    const std::string wire = FormatFramedRequest(request);
    auto parsed = ParseFramedRequest(wire);
    ASSERT_TRUE(parsed.ok()) << wire << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->payload.index(), request.payload.index()) << wire;
    EXPECT_EQ(parsed->id, request.id) << wire;
    EXPECT_EQ(FormatFramedRequest(*parsed), wire);
  }
}

TEST(ProtocolFramed, ArbitraryStringsSurviveFraming) {
  // Paths with spaces, quotes, backslashes, and control bytes cannot
  // ride the text grammar; the framed codec must carry them exactly.
  LoadRequest load;
  load.name = "weird graph";
  load.path = "/data dir/we\"ird\\file\twith\nnewline";
  Request request;
  request.payload = load;
  auto parsed = ParseFramedRequest(FormatFramedRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& round = std::get<LoadRequest>(parsed->payload);
  EXPECT_EQ(round.name, load.name);
  EXPECT_EQ(round.path, load.path);
}

// ------------------------------------------------------- malformed input

TEST(ProtocolText, MalformedLinesAreStructuredErrors) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"frobnicate", "unknown command 'frobnicate' (try 'help')"},
      {"load onlyname", "usage: load NAME PATH"},
      {"dataset a b c", "usage: dataset NAME KEY"},
      {"snapshot g", "usage: snapshot NAME PATH [precompute] "
                     "[levels=C1,C2,...]"},
      {"snapshot g p bogus", "unknown snapshot option 'bogus'"},
      {"mine", "usage: mine NAME K Q [algo=...] [threads=N] "
               "[max-results=N] [time-limit=S] [tau-ms=T] [cache=on|off]"},
      {"mine g -1 5", "malformed value for K: '-1'"},
      {"mine g 2 5 threads=-2", "malformed value for threads: '-2'"},
      {"mine g 2 99999999999",
       "malformed value for Q: '99999999999' (expected 0..4294967295)"},
      {"mine g 2 5 bogus=1", "unknown mine option 'bogus'"},
      {"mine g 2 5 cache=maybe", "cache must be on or off"},
      {"mine g 2 5 ctcp=maybe", "ctcp must be on or off"},
      {"submit g 2 5 bogus=1", "unknown submit option 'bogus'"},
      {"cancel", "usage: cancel ID"},
      {"cancel nope", "malformed value for ID: 'nope'"},
      {"wait 1 2", "usage: wait [ID]"},
      {"evict", "usage: evict NAME"},
      {"hello proto=x", "malformed value for proto: 'x'"},
      {"hello mode=binary", "mode must be text or framed, got 'binary'"},
      {"hello frob", "usage: hello [proto=N] [mode=text|framed]"},
  };
  for (const auto& [line, message] : cases) {
    auto parsed = ParseTextRequest(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_EQ(parsed.status().message(), message) << line;
  }
}

TEST(ProtocolFramed, MalformedFramesAreStructuredErrorsNeverCrashes) {
  const std::vector<std::string> frames = {
      "",
      "not json at all",
      "{",
      "{}",
      "[]",
      "42",
      "\"just a string\"",
      "{\"cmd\":}",
      "{\"cmd\":42}",
      "{\"cmd\":\"mine\"}",                           // missing graph/k/q
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2}",   // missing q
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":-2,\"q\":5}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2.5,\"q\":5}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,\"bogus\":1}",
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":99999999999,\"q\":5}",
      "{\"cmd\":\"load\",\"name\":\"g\"}",            // missing path
      "{\"cmd\":\"load\",\"name\":\"g\",\"path\":7}",
      "{\"cmd\":\"cancel\"}",                         // missing job
      "{\"cmd\":\"jobs\",\"extra\":true}",
      "{\"cmd\":\"nope\"}",
      "{\"id\":\"seven\",\"cmd\":\"jobs\"}",
      "{\"cmd\":\"quit\"} trailing",
      "{\"cmd\":\"quit\",}",
      "{\"cmd\" \"quit\"}",
      "{\"cmd\":\"snapshot\",\"name\":\"g\",\"path\":\"p\","
      "\"levels\":[1,\"x\"]}",
      "{\"cmd\":\"hello\",\"mode\":\"binary\"}",
      "{\"cmd\":\"quit\",\"cmd\"",
      "{\"a\":\"\\u12\"}",
      "{\"a\":\"\\q\"}",
      "{\"a\":\"unterminated",
      "{\"a\":truu}",
      "{\"a\":nul}",
      "{\"a\":1e}",
      std::string(64, '['),  // nesting bomb
      std::string("{\"cmd\":\"evict\",\"name\":\"") + std::string(1, '\x01') +
          "\"}",
  };
  for (const std::string& frame : frames) {
    auto parsed = ParseFramedRequest(frame);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << frame;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << frame;
      EXPECT_FALSE(parsed.status().message().empty()) << frame;
    }
  }
}

TEST(ProtocolFramed, FingerprintsAreExactUint64) {
  // 2^53-breaking values must survive the integer path (no double
  // round-trip): job ids and max_results use raw uint64.
  auto parsed = ParseFramedRequest(
      "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":5,"
      "\"max_results\":18446744073709551615}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(std::get<MineRequest>(parsed->payload).query.max_results,
            UINT64_MAX);
  // One past UINT64_MAX falls back to double and is rejected as
  // non-integer.
  EXPECT_FALSE(ParseFramedRequest("{\"cmd\":\"cancel\",\"job\":"
                                  "18446744073709551616}")
                   .ok());
}

// ------------------------------------------------------- response goldens

std::string TextOf(ResponsePayload payload) {
  Response response;
  response.payload = std::move(payload);
  std::ostringstream out;
  FormatTextResponse(response, out);
  return out.str();
}

TEST(ProtocolText, ResponseGoldens) {
  LoadResponse loaded;
  loaded.name = "web";
  loaded.num_vertices = 875713;
  loaded.num_edges = 4322051;
  loaded.load_seconds = 0.0021;
  EXPECT_EQ(TextOf(loaded),
            "loaded web: 875713 vertices, 4322051 edges (0.0021s)\n");

  LoadResponse dataset = loaded;
  dataset.name = "kc";
  dataset.num_vertices = 34;
  dataset.num_edges = 78;
  dataset.dataset_key = "karate";
  EXPECT_EQ(TextOf(dataset),
            "loaded kc: 34 vertices, 78 edges (dataset karate)\n");

  SnapshotResponse snapshot;
  snapshot.name = "web";
  snapshot.path = "/tmp/web.kpx";
  snapshot.with_precompute = true;
  EXPECT_EQ(TextOf(snapshot),
            "snapshot web -> /tmp/web.kpx (with precompute sections)\n");

  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 2566;
  done.result.max_plex_size = 14;
  done.result.seconds = 1.8102;
  EXPECT_EQ(TextOf(MineResponse{done}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s\n");
  EXPECT_EQ(TextOf(WaitResponse{done}),
            "job 3: mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s\n");

  JobInfo cached = done;
  cached.result.from_cache = true;
  cached.result.reduction_precomputed = true;  // suppressed when cached
  EXPECT_EQ(TextOf(MineResponse{cached}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s [cached]\n");

  JobInfo partial = done;
  partial.result.timed_out = true;
  partial.result.stopped_early = true;
  EXPECT_EQ(TextOf(MineResponse{partial}),
            "mined web k=2 q=12 algo=ours: 2566 plexes, max size 14, "
            "1.810s [time limit hit] [result cap hit]\n");

  JobInfo never_ran = done;
  never_ran.state = JobState::kCancelled;
  never_ran.started = false;
  EXPECT_EQ(TextOf(WaitResponse{never_ran}),
            "job 3: cancelled web k=2 q=12 algo=ours before it started\n");

  JobInfo failed = done;
  failed.state = JobState::kFailed;
  failed.status = Status::NotFound("no graph named 'web' is registered");
  EXPECT_EQ(TextOf(MineResponse{failed}),
            "error: NOT_FOUND: no graph named 'web' is registered\n");

  SubmitResponse submit;
  submit.job = 4;
  submit.query = done.request;
  EXPECT_EQ(TextOf(submit), "job 4 submitted: mine web k=2 q=12 algo=ours\n");

  EXPECT_EQ(TextOf(CancelResponse{4}), "cancel requested for job 4\n");
  EXPECT_EQ(TextOf(EvictResponse{"web"}), "evicted web\n");

  WaitAllResponse all;
  all.counts.done = 2;
  all.counts.cancelled = 1;
  all.counts.failed = 1;
  all.failed_jobs = {9};
  EXPECT_EQ(TextOf(all),
            "all jobs finished: 2 done, 1 cancelled, 1 failed\n");

  EXPECT_EQ(TextOf(ErrorResponse{Status::InvalidArgument("boom")}),
            "error: INVALID_ARGUMENT: boom\n");
  EXPECT_EQ(TextOf(ByeResponse{}), "");  // quit prints nothing on text

  EXPECT_EQ(TextOf(HelloResponse{}), "hello proto=1 mode=text\n");
}

TEST(ProtocolFramed, ResponseShape) {
  JobInfo done;
  done.id = 3;
  done.request.graph = "web";
  done.request.k = 2;
  done.request.q = 12;
  done.state = JobState::kDone;
  done.started = true;
  done.result.num_plexes = 7;
  done.result.fingerprint = 0x0123456789abcdefULL;

  Response response;
  response.request_id = 9;
  response.payload = MineResponse{done};
  const std::string frame = FormatFramedResponse(response);
  EXPECT_EQ(frame.find('\n'), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"id\":9"), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"ok\":true"), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"type\":\"mine\""), std::string::npos) << frame;
  EXPECT_NE(frame.find("\"fingerprint\":\"0x0123456789abcdef\""),
            std::string::npos)
      << frame;

  response.payload = ErrorResponse{Status::NotFound("nope")};
  const std::string error = FormatFramedResponse(response);
  EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << error;
  EXPECT_NE(error.find("\"code\":\"NOT_FOUND\""), std::string::npos)
      << error;
  EXPECT_NE(error.find("\"message\":\"nope\""), std::string::npos) << error;
}

// ------------------------------------------------------------- sanitation

TEST(ProtocolSanitize, AbsolutePathsLoseTheirDirectories) {
  EXPECT_EQ(SanitizeErrorMessage(
                "cannot open '/srv/secret/layout/web.txt' for reading: "
                "No such file or directory"),
            "cannot open 'web.txt' for reading: No such file or directory");
  EXPECT_EQ(SanitizeErrorMessage("cannot map /var/data/g.kpx: EACCES"),
            "cannot map g.kpx: EACCES");
  // Relative paths, options, and fractions pass through untouched.
  EXPECT_EQ(SanitizeErrorMessage("cannot open 'data/karate.txt'"),
            "cannot open 'data/karate.txt'");
  EXPECT_EQ(SanitizeErrorMessage("cache must be on or off"),
            "cache must be on or off");
  EXPECT_EQ(SanitizeErrorMessage("ratio 3/4 is fine"), "ratio 3/4 is fine");
  EXPECT_EQ(SanitizeErrorMessage("bare / stays"), "bare / stays");

  const Status sanitized = SanitizeErrorStatus(
      Status::IoError("cannot open '/a/b/c.txt' for writing"));
  EXPECT_EQ(sanitized.code(), StatusCode::kIoError);
  EXPECT_EQ(sanitized.message(), "cannot open 'c.txt' for writing");
  EXPECT_TRUE(SanitizeErrorStatus(Status::Ok()).ok());
}

}  // namespace
}  // namespace kplex
