// Unit tests for the GraphCatalog: registration, lazy materialization,
// LRU eviction under a memory budget, and pinned-entry semantics.

#include "service/graph_catalog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "util/mmap_file.h"

namespace kplex {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "kplex_catalog_test_" + tag + "_" +
         std::to_string(counter++);
}

CatalogEntryInfo InfoOf(const GraphCatalog& catalog,
                        const std::string& name) {
  for (const auto& info : catalog.Entries()) {
    if (info.name == name) return info;
  }
  ADD_FAILURE() << "no entry named " << name;
  return {};
}

TEST(GraphCatalog, LazyLoadFromEdgeListFile) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = TempPath("lazy");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  EXPECT_FALSE(InfoOf(catalog, "g").resident);  // not touched yet

  auto loaded = catalog.Get("g");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->NumEdges(), 3u);
  EXPECT_TRUE(InfoOf(catalog, "g").resident);
  EXPECT_EQ(InfoOf(catalog, "g").loads, 1u);

  // A second Get serves the resident copy (no reload).
  ASSERT_TRUE(catalog.Get("g").ok());
  EXPECT_EQ(InfoOf(catalog, "g").loads, 1u);
  std::remove(path.c_str());
}

TEST(GraphCatalog, LoadsSnapshotsByMagic) {
  Graph g = GenerateErdosRenyi(100, 0.1, 1);
  std::string path = TempPath("snap");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  auto loaded = catalog.Get("g");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumEdges(), g.NumEdges());
  std::remove(path.c_str());
}

TEST(GraphCatalog, DuplicateAndUnknownNames) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", "/does/not/matter").ok());
  EXPECT_EQ(catalog.RegisterFile("g", "/other").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Evict("missing").code(), StatusCode::kNotFound);
  // The bogus path only fails at materialization time.
  EXPECT_EQ(catalog.Get("g").status().code(), StatusCode::kIoError);
}

TEST(GraphCatalog, EvictAndReload) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}});
  std::string path = TempPath("evict");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  ASSERT_TRUE(catalog.Get("g").ok());
  EXPECT_GT(catalog.ResidentBytes(), 0u);

  ASSERT_TRUE(catalog.Evict("g").ok());
  EXPECT_FALSE(InfoOf(catalog, "g").resident);
  EXPECT_EQ(catalog.ResidentBytes(), 0u);

  auto reloaded = catalog.Get("g");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->NumEdges(), 2u);
  EXPECT_EQ(InfoOf(catalog, "g").loads, 2u);
  std::remove(path.c_str());
}

TEST(GraphCatalog, LruEvictionUnderMemoryBudget) {
  // Three ~equal graphs under a budget that fits roughly one of them:
  // the least recently used entries must be dropped. Edge-list sources
  // parse into owned heap (v2 snapshots would mmap and be budget-exempt
  // — see MappedSnapshotsAreBudgetExempt).
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    Graph g = GenerateErdosRenyi(400, 0.05, 10 + i);
    std::string path = TempPath("lru" + std::to_string(i));
    EXPECT_TRUE(SaveEdgeList(g, path).ok());
    paths.push_back(path);
  }
  const std::size_t one_graph_bytes =
      LoadEdgeList(paths[0])->MemoryBytes();

  GraphCatalog catalog(one_graph_bytes + one_graph_bytes / 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(catalog
                    .RegisterFile("g" + std::to_string(i), paths[i])
                    .ok());
  }
  ASSERT_TRUE(catalog.Get("g0").ok());
  ASSERT_TRUE(catalog.Get("g1").ok());  // evicts g0 (over budget)
  EXPECT_FALSE(InfoOf(catalog, "g0").resident);
  EXPECT_TRUE(InfoOf(catalog, "g1").resident);

  ASSERT_TRUE(catalog.Get("g2").ok());  // evicts g1
  EXPECT_FALSE(InfoOf(catalog, "g1").resident);
  EXPECT_TRUE(InfoOf(catalog, "g2").resident);
  EXPECT_LE(catalog.ResidentBytes(), one_graph_bytes + one_graph_bytes / 2);

  // Touch order matters: reload g0, then g1; g2 becomes the LRU victim.
  ASSERT_TRUE(catalog.Get("g0").ok());
  ASSERT_TRUE(catalog.Get("g1").ok());
  EXPECT_FALSE(InfoOf(catalog, "g2").resident);

  // Eviction is transparent: an evicted graph still answers Get.
  auto g2 = catalog.Get("g2");
  ASSERT_TRUE(g2.ok());
  EXPECT_GT((*g2)->NumEdges(), 0u);
  for (const auto& path : paths) std::remove(path.c_str());
}

TEST(GraphCatalog, MappedSnapshotsAreBudgetExempt) {
  // v2 snapshots are mmap'ed: their CSR bytes are page cache, not
  // private heap, so an absurdly small owned-bytes budget still admits
  // several of them side by side.
  if (!MappedFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    Graph g = GenerateErdosRenyi(400, 0.05, 20 + i);
    std::string path = TempPath("mapped" + std::to_string(i));
    EXPECT_TRUE(SaveSnapshot(g, path).ok());
    paths.push_back(path);
  }

  GraphCatalog catalog(1);  // 1 byte of owned budget
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        catalog.RegisterFile("g" + std::to_string(i), paths[i]).ok());
    ASSERT_TRUE(catalog.Get("g" + std::to_string(i)).ok());
  }
  // All three stayed resident: mapped bytes are budget-exempt.
  for (int i = 0; i < 3; ++i) {
    const CatalogEntryInfo info = InfoOf(catalog, "g" + std::to_string(i));
    EXPECT_TRUE(info.resident);
    EXPECT_TRUE(info.mapped);
    EXPECT_GT(info.mapped_bytes, 0u);
  }
  EXPECT_GT(catalog.MappedResidentBytes(), 0u);

  // Evicting still unmaps and clears the accounting.
  ASSERT_TRUE(catalog.Evict("g0").ok());
  EXPECT_EQ(InfoOf(catalog, "g0").mapped_bytes, 0u);
  for (const auto& path : paths) std::remove(path.c_str());
}

TEST(GraphCatalog, PrecomputeSectionsFlowThroughGetFull) {
  Graph g = GenerateErdosRenyi(120, 0.08, 3);
  std::string path = TempPath("pre");
  SnapshotWriteOptions options;
  options.include_precompute = true;
  options.core_mask_levels = {2};
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  // Tag is unknown until the first materialization, then sticky.
  EXPECT_EQ(*catalog.PrecomputeTag("g"), "unknown");
  auto full = catalog.GetFull("g");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_NE(full->precompute, nullptr);
  EXPECT_TRUE(full->precompute->has_order());
  EXPECT_TRUE(full->precompute->has_coreness());
  EXPECT_FALSE(full->precompute->MaskFor(2).empty());
  EXPECT_EQ(*catalog.PrecomputeTag("g"), "order+core+masks");

  ASSERT_TRUE(catalog.Evict("g").ok());
  EXPECT_EQ(*catalog.PrecomputeTag("g"), "order+core+masks");  // sticky

  // A plain v2 snapshot (no sections) reports none.
  std::string plain = TempPath("plain");
  ASSERT_TRUE(SaveSnapshot(g, plain).ok());
  ASSERT_TRUE(catalog.RegisterFile("p", plain).ok());
  ASSERT_TRUE(catalog.Get("p").ok());
  auto plain_full = catalog.GetFull("p");
  ASSERT_TRUE(plain_full.ok());
  EXPECT_EQ(plain_full->precompute, nullptr);
  EXPECT_EQ(*catalog.PrecomputeTag("p"), "none");
  std::remove(path.c_str());
  std::remove(plain.c_str());
}

TEST(GraphCatalog, PinnedGraphsAreNeverEvicted) {
  GraphCatalog catalog(1);  // absurdly small budget
  ASSERT_TRUE(catalog
                  .RegisterGraph("pinned", GraphBuilder::FromEdges(
                                               3, {{0, 1}, {1, 2}}))
                  .ok());
  auto got = catalog.Get("pinned");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(InfoOf(catalog, "pinned").resident);
  EXPECT_EQ(catalog.Evict("pinned").code(), StatusCode::kFailedPrecondition);
}

TEST(GraphCatalog, SharedPtrKeepsEvictedGraphAlive) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  std::string path = TempPath("alive");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  auto held = catalog.Get("g");
  ASSERT_TRUE(held.ok());
  std::shared_ptr<const Graph> graph = *held;
  ASSERT_TRUE(catalog.Evict("g").ok());
  // The catalog dropped its reference but ours still works.
  EXPECT_EQ(graph->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(GraphCatalog, ConcurrentGetsMaterializeExactlyOnce) {
  // Eight threads race the first Get of a cold entry: the per-entry
  // loading latch must collapse them into a single materialization that
  // everyone shares (same Graph instance, loads == 1).
  Graph g = GenerateErdosRenyi(200, 0.1, 7);
  std::string path = TempPath("race");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Graph>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto loaded = catalog.Get("g");
      if (loaded.ok()) seen[i] = *loaded;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(seen[i], nullptr);
    EXPECT_EQ(seen[i].get(), seen[0].get());  // one shared instance
  }
  EXPECT_EQ(InfoOf(catalog, "g").loads, 1u);
  std::remove(path.c_str());
}

TEST(GraphCatalog, ConcurrentGetEvictUnregisterStress) {
  // Gets, evictions and re-registrations interleave freely; nothing may
  // crash, and every successful Get must return a usable pinned graph.
  Graph g = GenerateErdosRenyi(150, 0.1, 9);
  std::string path = TempPath("stress");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterFile("g", path).ok());
  const std::size_t expected_edges = g.NumEdges();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> successful_gets{0};
  std::vector<std::thread> getters;
  for (int i = 0; i < 4; ++i) {
    getters.emplace_back([&] {
      while (!stop.load()) {
        auto loaded = catalog.Get("g");
        if (loaded.ok()) {
          // The pin keeps the graph valid even if evicted right now.
          EXPECT_EQ((*loaded)->NumEdges(), expected_edges);
          successful_gets.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    while (!stop.load()) {
      (void)catalog.Evict("g");
      std::this_thread::yield();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& thread : getters) thread.join();
  evictor.join();
  EXPECT_GT(successful_gets.load(), 0u);
  std::remove(path.c_str());
}

TEST(GraphCatalog, SaveSnapshotForRoundTrips) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterGraph("g", GenerateErdosRenyi(50, 0.2, 2))
                  .ok());
  std::string path = TempPath("save");
  ASSERT_TRUE(catalog.SaveSnapshotFor("g", path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), (*catalog.Get("g"))->NumEdges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kplex
