// Tests for the observability layer (src/obs): registry and instrument
// math, percentile edge cases, concurrent scrape safety, the progress
// throttle, and an end-to-end check that driving the service increments
// the verb/cache/stage series.
//
// The registry is process-global and shared by every test in this
// binary, so assertions on wired-in series are delta-based: snapshot
// before, act, snapshot after.

#include <atomic>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/progress_throttle.h"
#include "obs/trace.h"
#include "service/protocol.h"
#include "service/service_api.h"

namespace kplex {
namespace {

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const CounterSample& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

int64_t GaugeValue(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const GaugeSample& gauge : snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return 0;
}

uint64_t HistogramCount(const MetricsSnapshot& snapshot,
                        const std::string& name) {
  for (const HistogramSample& histogram : snapshot.histograms) {
    if (histogram.name == name) return histogram.count;
  }
  return 0;
}

TEST(MetricsRegistry, CounterAndGaugeMath) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test_counter_math_total");
  const uint64_t before = counter.Value();
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), before + 42);
  // Same name → same instrument.
  EXPECT_EQ(&registry.GetCounter("test_counter_math_total"), &counter);

  Gauge& gauge = registry.GetGauge("test_gauge_math");
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
  EXPECT_EQ(&registry.GetGauge("test_gauge_math"), &gauge);
}

TEST(MetricsRegistry, HistogramBucketsAndSum) {
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test_histogram_buckets_seconds", {1.0, 2.0, 4.0});
  const uint64_t before = histogram.Count();
  histogram.Observe(0.5);   // bucket 0 (le 1)
  histogram.Observe(1.0);   // bucket 0 (le is inclusive)
  histogram.Observe(3.0);   // bucket 2 (le 4)
  histogram.Observe(100.0); // overflow bucket
  EXPECT_EQ(histogram.Count(), before + 4);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 104.5);
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 0u);
  EXPECT_EQ(histogram.BucketCount(2), 1u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);  // +Inf
  // Custom bounds only apply on first registration.
  Histogram& again = MetricsRegistry::Global().GetHistogram(
      "test_histogram_buckets_seconds", {9.0});
  EXPECT_EQ(&again, &histogram);
  EXPECT_EQ(histogram.bounds().size(), 3u);
}

TEST(MetricsRegistry, PercentileEdges) {
  Histogram& empty = MetricsRegistry::Global().GetHistogram(
      "test_histogram_empty_seconds", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);

  // Every observation in the overflow bucket clamps to the largest
  // finite bound rather than inventing a value beyond it.
  Histogram& overflow = MetricsRegistry::Global().GetHistogram(
      "test_histogram_overflow_seconds", {1.0, 2.0});
  overflow.Observe(50.0);
  overflow.Observe(60.0);
  EXPECT_DOUBLE_EQ(overflow.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(overflow.Percentile(0.99), 2.0);

  // Interpolation stays inside the covering bucket.
  Histogram& mid = MetricsRegistry::Global().GetHistogram(
      "test_histogram_mid_seconds", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) mid.Observe(1.5);  // all in (1, 2]
  const double p50 = mid.Percentile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // Out-of-range quantiles are clamped, not UB.
  EXPECT_GE(mid.Percentile(-1.0), 0.0);
  EXPECT_LE(mid.Percentile(2.0), 4.0);
}

TEST(MetricsRegistry, SnapshotAndRendering) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test_render_total").Increment(3);
  registry.GetGauge("test_render_depth").Set(-5);
  registry.GetHistogram("test_render_seconds", {1.0}).Observe(0.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "test_render_total"), 3u);
  EXPECT_EQ(GaugeValue(snapshot, "test_render_depth"), -5);
  EXPECT_GE(HistogramCount(snapshot, "test_render_seconds"), 1u);
  EXPECT_EQ(snapshot.SeriesCount(), snapshot.counters.size() +
                                        snapshot.gauges.size() +
                                        snapshot.histograms.size());

  const std::string text = RenderMetricsText(snapshot);
  EXPECT_NE(text.find("counter test_render_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("gauge test_render_depth -5\n"), std::string::npos);
  EXPECT_NE(text.find("histogram test_render_seconds count="),
            std::string::npos);

  const std::string prom = RenderMetricsPrometheus(snapshot);
  EXPECT_NE(prom.find("# TYPE test_render_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_render_total 3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_render_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_render_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_render_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_render_seconds_count 1\n"), std::string::npos);
}

// Writers hammer a counter and a histogram while the main thread
// scrapes; torn cuts are acceptable, crashes and lost updates are not.
TEST(MetricsRegistry, ScrapeWhileWriting) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test_scrape_race_total");
  Histogram& histogram =
      registry.GetHistogram("test_scrape_race_seconds", {1e-3, 1.0});
  const uint64_t counter_before = counter.Value();
  const uint64_t histogram_before = histogram.Count();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(1e-4 * (i % 7));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    EXPECT_LE(CounterValue(snapshot, "test_scrape_race_total"),
              counter_before + kThreads * kPerThread);
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(counter.Value(), counter_before + kThreads * kPerThread);
  EXPECT_EQ(histogram.Count(), histogram_before + kThreads * kPerThread);
}

TEST(ProgressThrottle, DisabledIntervalPassesEverything) {
  ProgressThrottle throttle(0.0);
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(throttle.ShouldEmit(i, 1000));
  }
}

TEST(ProgressThrottle, SuppressesWithinIntervalAndCountsIt) {
  Counter& suppressed = MetricsRegistry::Global().GetCounter(
      "kplex_enum_progress_suppressed_total");
  const uint64_t before = suppressed.Value();
  // An hour-long interval: after the first emission everything but the
  // final call must be suppressed.
  ProgressThrottle throttle(3600.0 * 1000.0);
  EXPECT_TRUE(throttle.ShouldEmit(1, 1000));  // first call always passes
  uint64_t let_through = 0;
  for (uint64_t i = 2; i < 1000; ++i) {
    if (throttle.ShouldEmit(i, 1000)) ++let_through;
  }
  EXPECT_EQ(let_through, 0u);
  EXPECT_TRUE(throttle.ShouldEmit(1000, 1000));  // 100% always passes
  EXPECT_EQ(suppressed.Value(), before + 998);
}

TEST(TraceSpans, FeedHistogramsEvenWhenDisabled) {
  SetTraceEnabled(false);
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "test_trace_span_seconds");
  const uint64_t before = histogram.Count();
  const uint64_t trace_id = NextTraceId();
  EXPECT_NE(trace_id, 0u);
  RecordSpan(trace_id, "test_span", 0.001, &histogram,
             {{"attr", "value"}});
  {
    TraceSpan span(trace_id, "test_span_raii", &histogram);
    span.AddAttr("graph", "kc");
  }
  EXPECT_EQ(histogram.Count(), before + 2);
}

// Driving the typed service API end to end: request verbs, engine
// cache counters, and stage histograms all move.
TEST(MetricsEndToEnd, ServiceTrafficIncrementsSeries) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const MetricsSnapshot before = registry.Snapshot();

  ServiceApi api;
  Request dataset;
  dataset.payload = DatasetRequest{"kc", "karate"};
  Response loaded = api.Execute(dataset);
  ASSERT_FALSE(std::holds_alternative<ErrorResponse>(loaded.payload));

  Request mine;
  MineRequest mine_payload;
  mine_payload.query.graph = "kc";
  mine_payload.query.k = 2;
  mine_payload.query.q = 6;
  mine.payload = mine_payload;
  Response first = api.Execute(mine);
  ASSERT_FALSE(std::holds_alternative<ErrorResponse>(first.payload));
  Response second = api.Execute(mine);  // warm repeat → cache hit
  ASSERT_FALSE(std::holds_alternative<ErrorResponse>(second.payload));

  Request scrape;
  scrape.payload = MetricsRequest{};
  Response response = api.Execute(scrape);
  const auto* metrics = std::get_if<MetricsResponse>(&response.payload);
  ASSERT_NE(metrics, nullptr);
  const MetricsSnapshot& after = metrics->snapshot;

  // Per-verb request series (ServiceApi::Execute chokepoint).
  EXPECT_GE(CounterValue(after, "kplex_requests_mine_total"),
            CounterValue(before, "kplex_requests_mine_total") + 2);
  EXPECT_GE(CounterValue(after, "kplex_requests_dataset_total"),
            CounterValue(before, "kplex_requests_dataset_total") + 1);
  EXPECT_GE(CounterValue(after, "kplex_requests_metrics_total"),
            CounterValue(before, "kplex_requests_metrics_total") + 1);
  EXPECT_GE(HistogramCount(after, "kplex_request_mine_seconds"),
            HistogramCount(before, "kplex_request_mine_seconds") + 2);

  // Engine cache accounting: one miss (cold) and one hit (warm).
  EXPECT_GE(CounterValue(after, "kplex_engine_queries_total"),
            CounterValue(before, "kplex_engine_queries_total") + 2);
  EXPECT_GE(CounterValue(after, "kplex_engine_cache_misses_total"),
            CounterValue(before, "kplex_engine_cache_misses_total") + 1);
  EXPECT_GE(CounterValue(after, "kplex_engine_cache_hits_total"),
            CounterValue(before, "kplex_engine_cache_hits_total") + 1);

  // Stage and dispatcher series moved with the cold mine.
  EXPECT_GE(HistogramCount(after, "kplex_stage_enumerate_seconds"),
            HistogramCount(before, "kplex_stage_enumerate_seconds") + 1);
  EXPECT_GE(HistogramCount(after, "kplex_stage_cache_lookup_seconds"),
            HistogramCount(before, "kplex_stage_cache_lookup_seconds") + 2);
  EXPECT_GE(CounterValue(after, "kplex_dispatcher_jobs_submitted_total"),
            CounterValue(before, "kplex_dispatcher_jobs_submitted_total") +
                2);
  EXPECT_GE(HistogramCount(after, "kplex_dispatcher_queue_wait_seconds"),
            HistogramCount(before, "kplex_dispatcher_queue_wait_seconds") +
                2);
  EXPECT_GE(CounterValue(after, "kplex_catalog_loads_total"),
            CounterValue(before, "kplex_catalog_loads_total") + 1);

  // A request answered with an ErrorResponse lands in the failure
  // counter. (A mine of a missing graph does not: its submit succeeds
  // and the failure travels inside the job's terminal state.)
  Request bad;
  bad.payload = EvictRequest{"no_such_graph"};
  Response failed = api.Execute(bad);
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(failed.payload));
  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_GE(CounterValue(final_snapshot, "kplex_requests_failed_total"),
            CounterValue(before, "kplex_requests_failed_total") + 1);
}

TEST(MetricsProtocol, TextAndFramedRoundTrip) {
  // Text parse accepts the bare and format forms, rejects junk.
  auto bare = ParseTextRequest("metrics");
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(std::holds_alternative<MetricsRequest>(bare->payload));
  auto prom = ParseTextRequest("metrics format=prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_EQ(std::get<MetricsRequest>(prom->payload).format, "prom");
  EXPECT_FALSE(ParseTextRequest("metrics bogus").ok());

  // Framed round trip preserves the format.
  Request request;
  request.id = 9;
  request.payload = MetricsRequest{"prom"};
  const std::string frame = FormatFramedRequest(request);
  auto parsed = ParseFramedRequest(frame, nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, 9u);
  EXPECT_EQ(std::get<MetricsRequest>(parsed->payload).format, "prom");

  // An unknown format is rejected at execution with a structured error.
  ServiceApi api;
  Request bad;
  bad.payload = MetricsRequest{"xml"};
  Response response = api.Execute(bad);
  ASSERT_TRUE(std::holds_alternative<ErrorResponse>(response.payload));
}

}  // namespace
}  // namespace kplex
