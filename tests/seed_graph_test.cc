// Structural and soundness tests for seed subgraph construction:
// layout invariants, Corollary 5.2 pruning at fixpoint, and — critically
// — completeness: every maximal k-plex (>= q) must survive inside the
// seed subgraph of its minimum-rank member.

#include "core/seed_graph.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/bk_naive.h"
#include "graph/builder.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "util/bitset_kernels.h"

namespace kplex {
namespace {

std::optional<SeedGraph> BuildFor(const Graph& g, VertexId seed,
                                  const EnumOptions& options) {
  DegeneracyResult degeneracy = ComputeDegeneracy(g);
  return BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
}

TEST(SeedGraph, LayoutInvariants) {
  Graph g = GenerateErdosRenyi(40, 0.25, 7);
  DegeneracyResult degeneracy = ComputeDegeneracy(g);
  EnumOptions options = EnumOptions::Ours(2, 4);
  for (VertexId seed = 0; seed < g.NumVertices(); ++seed) {
    auto sg = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
    if (!sg.has_value()) continue;
    // The seed is local 0 and maps back to itself.
    EXPECT_EQ(sg->to_global[SeedGraph::kSeed], seed);
    EXPECT_EQ(sg->num_vi, 1 + sg->n1_mask.Count() + sg->n2_mask.Count());
    EXPECT_EQ(sg->universe, sg->num_vi + sg->fringe_mask.Count());
    // N1 = exact local neighbors of the seed.
    for (uint32_t v = 1; v < sg->num_vi; ++v) {
      EXPECT_EQ(sg->adj.HasEdge(SeedGraph::kSeed, v), sg->n1_mask.Test(v));
    }
    // Every N2 vertex has a N1 witness (distance exactly 2 in G_i).
    sg->n2_mask.ForEach([&](std::size_t v) {
      EXPECT_TRUE(
          sg->adj.Row(static_cast<uint32_t>(v)).Intersects(sg->n1_mask));
    });
    // deg_vi consistency.
    for (uint32_t v = 0; v < sg->num_vi; ++v) {
      EXPECT_EQ(sg->deg_vi[v], sg->adj.DegreeIn(v, sg->vi_mask));
    }
    // Local adjacency mirrors the input graph.
    for (uint32_t a = 0; a < sg->num_vi; ++a) {
      for (uint32_t b = a + 1; b < sg->universe; ++b) {
        if (b >= sg->num_vi && a >= sg->num_vi) continue;  // fringe pairs
        EXPECT_EQ(sg->adj.HasEdge(a, b),
                  g.HasEdge(sg->to_global[a], sg->to_global[b]));
      }
    }
    // V_i members are later in rank; fringe members earlier.
    for (uint32_t v = 1; v < sg->num_vi; ++v) {
      EXPECT_GT(degeneracy.rank[sg->to_global[v]], degeneracy.rank[seed]);
    }
    sg->fringe_mask.ForEach([&](std::size_t v) {
      EXPECT_LT(degeneracy.rank[sg->to_global[v]], degeneracy.rank[seed]);
    });
  }
}

TEST(SeedGraph, Corollary52Fixpoint) {
  Graph g = GenerateBarabasiAlbert(60, 5, 13);
  DegeneracyResult degeneracy = ComputeDegeneracy(g);
  const uint32_t k = 2, q = 6;
  EnumOptions options = EnumOptions::Ours(k, q);
  for (VertexId seed = 0; seed < g.NumVertices(); ++seed) {
    auto sg = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
    if (!sg.has_value()) continue;
    // After pruning, every survivor satisfies the corollary conditions.
    const int64_t thr_n1 = static_cast<int64_t>(q) - 2 * k;
    const int64_t thr_n2 = thr_n1 + 2;
    for (uint32_t v = 1; v < sg->num_vi; ++v) {
      const int64_t common =
          static_cast<int64_t>(sg->adj.Row(v).AndCount(sg->n1_mask));
      if (sg->n1_mask.Test(v)) {
        EXPECT_GE(common, thr_n1) << "seed " << seed << " N1 vertex " << v;
      } else {
        EXPECT_GE(common, thr_n2) << "seed " << seed << " N2 vertex " << v;
      }
    }
  }
}

// Completeness: the union over seeds of "k-plexes representable in the
// seed graph" must cover all ground-truth results.
TEST(SeedGraph, EveryGroundTruthPlexSurvivesInItsSeedGraph) {
  for (uint64_t seed_rng = 1; seed_rng <= 6; ++seed_rng) {
    Graph g = GenerateErdosRenyi(14, 0.5, seed_rng);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 3}, {2, 4}, {3, 5}}) {
      auto truth = BruteForceMaximalKPlexes(g, k, q);
      ASSERT_TRUE(truth.ok());
      EnumOptions options = EnumOptions::Ours(k, q);
      // Mirror the driver: reduce to the (q-k)-core first.
      CoreReduction core = ReduceToCore(g, q - k);
      std::unordered_map<VertexId, VertexId> to_reduced;
      for (VertexId i = 0; i < core.to_original.size(); ++i) {
        to_reduced[core.to_original[i]] = i;
      }
      DegeneracyResult degeneracy = ComputeDegeneracy(core.graph);

      for (const auto& plex : *truth) {
        // All members must be in the core (Theorem 3.5).
        VertexId min_rank_member = 0;
        uint32_t min_rank = UINT32_MAX;
        for (VertexId v : plex) {
          ASSERT_TRUE(to_reduced.count(v)) << "member pruned from core";
          uint32_t r = degeneracy.rank[to_reduced[v]];
          if (r < min_rank) {
            min_rank = r;
            min_rank_member = to_reduced[v];
          }
        }
        auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy,
                                 min_rank_member, options, nullptr);
        ASSERT_TRUE(sg.has_value())
            << "seed graph for a ground-truth plex was discarded";
        // Every member must exist in V_i (not pruned by Corollary 5.2).
        std::unordered_map<VertexId, uint32_t> to_local;
        for (uint32_t i = 0; i < sg->num_vi; ++i) {
          to_local[sg->to_global[i]] = i;
        }
        for (VertexId v : plex) {
          EXPECT_TRUE(to_local.count(v))
              << "plex member " << v << " missing from V_i";
        }
      }
    }
  }
}

// Seed-graph construction (masks, pruning fixpoint, deg_vi) must be
// identical on the portable baseline and the dispatched SIMD kernels.
TEST(SeedGraph, ConstructionIdenticalUnderForcedBaseline) {
  Graph g = GenerateBarabasiAlbert(80, 6, 17);
  DegeneracyResult degeneracy = ComputeDegeneracy(g);
  EnumOptions options = EnumOptions::Ours(2, 6);
  for (VertexId seed = 0; seed < g.NumVertices(); ++seed) {
    kernels::SetActiveForTest(&kernels::Portable());
    auto baseline = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
    kernels::SetActiveForTest(nullptr);
    auto dispatched = BuildSeedGraph(g, {}, degeneracy, seed, options,
                                     nullptr);
    ASSERT_EQ(baseline.has_value(), dispatched.has_value()) << seed;
    if (!baseline.has_value()) continue;
    EXPECT_EQ(baseline->num_vi, dispatched->num_vi) << seed;
    EXPECT_EQ(baseline->universe, dispatched->universe) << seed;
    EXPECT_EQ(baseline->to_global, dispatched->to_global) << seed;
    EXPECT_EQ(baseline->deg_vi, dispatched->deg_vi) << seed;
    EXPECT_TRUE(baseline->vi_mask == dispatched->vi_mask) << seed;
    EXPECT_TRUE(baseline->n1_mask == dispatched->n1_mask) << seed;
    EXPECT_TRUE(baseline->fringe_mask == dispatched->fringe_mask) << seed;
  }
}

TEST(SeedGraph, InfeasibleSeedsAreDiscarded) {
  // A path graph has max degree 2; with q = 5, k = 1 no seed is viable.
  Graph g = GraphBuilder::FromEdges(6,
                                    {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto sg = BuildFor(g, 0, EnumOptions::Ours(1, 5));
  EXPECT_FALSE(sg.has_value());
}

TEST(SeedGraph, PairMatrixBuiltOnlyWhenR2Enabled) {
  Graph g = GenerateErdosRenyi(20, 0.4, 3);
  auto with = BuildFor(g, 0, EnumOptions::Ours(2, 4));
  if (with.has_value()) {
    EXPECT_TRUE(with->pairs.has_value());
  }
  EnumOptions no_r2 = EnumOptions::Ours(2, 4);
  no_r2.use_pair_pruning_r2 = false;
  auto without = BuildFor(g, 0, no_r2);
  if (without.has_value()) {
    EXPECT_FALSE(without->pairs.has_value());
  }
}

}  // namespace
}  // namespace kplex
