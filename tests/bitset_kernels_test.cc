// Equivalence tests for the SIMD bitset-kernel dispatch: every entry of
// the dispatched table must agree bit-for-bit with the portable word
// loops on operands crossing word and vector-lane boundaries, and an
// end-to-end enumeration must produce an identical fingerprint whether
// it runs on the baseline or the dispatched kernels. Also covers the
// BitMatrix flat layout (row alignment, padding invariant, value
// semantics).

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "util/bit_matrix.h"
#include "util/bitset.h"
#include "util/bitset_kernels.h"
#include "util/rng.h"

namespace kplex {
namespace {

// Bit sizes straddling the interesting boundaries: empty, single word,
// word edges, 256-bit AVX2 lane edges, and an odd large size.
constexpr std::size_t kSizes[] = {0, 1, 63, 64, 65, 255, 256, 1000};

// Random word array for `bits` bits with the trailing slack zeroed, as
// the kernel preconditions require. `density` in [0,1] thins the bits.
std::vector<uint64_t> RandomBits(std::size_t bits, Rng& rng, double density) {
  std::vector<uint64_t> words((bits + 63) / 64, 0);
  for (auto& w : words) {
    uint64_t v = rng.Next();
    if (density < 0.9) v &= rng.Next();   // ~25%
    if (density < 0.2) v &= rng.Next();   // ~12.5%
    w = v;
  }
  if (bits % 64 != 0 && !words.empty()) {
    words.back() &= ~uint64_t{0} >> (64 - bits % 64);
  }
  return words;
}

TEST(BitsetKernels, DispatchedTableIsSane) {
  const kernels::KernelTable& dispatched = kernels::Dispatched();
  EXPECT_NE(dispatched.name, nullptr);
  EXPECT_GE(dispatched.level, 0);
  EXPECT_LE(dispatched.level, 2);
  EXPECT_STREQ(kernels::DispatchedName(), dispatched.name);
  EXPECT_EQ(kernels::DispatchedLevel(), dispatched.level);
#ifdef KPLEX_NO_SIMD
  EXPECT_EQ(dispatched.level, 0);
  EXPECT_STREQ(dispatched.name, "portable");
#endif
  EXPECT_STREQ(kernels::Portable().name, "portable");
  EXPECT_EQ(kernels::Portable().level, 0);
}

TEST(BitsetKernels, CountKernelsMatchPortable) {
  const kernels::KernelTable& p = kernels::Portable();
  const kernels::KernelTable& d = kernels::Dispatched();
  Rng rng(7);
  for (std::size_t bits : kSizes) {
    for (double density : {0.1, 0.5, 1.0}) {
      for (int round = 0; round < 8; ++round) {
        const auto a = RandomBits(bits, rng, density);
        const auto b = RandomBits(bits, rng, density);
        const auto c = RandomBits(bits, rng, density);
        const std::size_t words = a.size();
        EXPECT_EQ(d.count(a.data(), words), p.count(a.data(), words))
            << "count bits=" << bits;
        EXPECT_EQ(d.and_count(a.data(), b.data(), words),
                  p.and_count(a.data(), b.data(), words))
            << "and_count bits=" << bits;
        EXPECT_EQ(d.and_count3(a.data(), b.data(), c.data(), words),
                  p.and_count3(a.data(), b.data(), c.data(), words))
            << "and_count3 bits=" << bits;
        EXPECT_EQ(d.andnot_count(a.data(), b.data(), words),
                  p.andnot_count(a.data(), b.data(), words))
            << "andnot_count bits=" << bits;
      }
    }
  }
}

TEST(BitsetKernels, MaterializingKernelsMatchPortable) {
  const kernels::KernelTable& p = kernels::Portable();
  const kernels::KernelTable& d = kernels::Dispatched();
  Rng rng(8);
  using IntoFn = void (*)(uint64_t*, const uint64_t*, std::size_t);
  struct Pair {
    const char* what;
    IntoFn portable;
    IntoFn dispatched;
  };
  const Pair pairs[] = {
      {"and_into", p.and_into, d.and_into},
      {"or_into", p.or_into, d.or_into},
      {"andnot_into", p.andnot_into, d.andnot_into},
      {"xor_into", p.xor_into, d.xor_into},
  };
  for (std::size_t bits : kSizes) {
    for (int round = 0; round < 8; ++round) {
      const auto dst0 = RandomBits(bits, rng, 0.5);
      const auto src = RandomBits(bits, rng, 0.5);
      for (const Pair& pair : pairs) {
        auto via_portable = dst0;
        auto via_dispatched = dst0;
        pair.portable(via_portable.data(), src.data(), via_portable.size());
        pair.dispatched(via_dispatched.data(), src.data(),
                        via_dispatched.size());
        EXPECT_EQ(via_portable, via_dispatched)
            << pair.what << " bits=" << bits;
      }
    }
  }
}

TEST(BitsetKernels, PredicateKernelsMatchPortable) {
  const kernels::KernelTable& p = kernels::Portable();
  const kernels::KernelTable& d = kernels::Dispatched();
  Rng rng(9);
  for (std::size_t bits : kSizes) {
    for (int round = 0; round < 16; ++round) {
      auto a = RandomBits(bits, rng, 0.3);
      const auto b = RandomBits(bits, rng, 0.3);
      // Odd rounds force a ⊆ b so the true branch of subset (and the
      // false branch of intersects-with-complement) is exercised too.
      if (round % 2 == 1) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] &= b[i];
      }
      const std::size_t words = a.size();
      EXPECT_EQ(d.subset(a.data(), b.data(), words),
                p.subset(a.data(), b.data(), words))
          << "subset bits=" << bits << " round=" << round;
      EXPECT_EQ(d.intersects(a.data(), b.data(), words),
                p.intersects(a.data(), b.data(), words))
          << "intersects bits=" << bits << " round=" << round;
    }
  }
}

TEST(BitsetKernels, SubsetAndIntersectsEdgeCases) {
  const kernels::KernelTable& d = kernels::Dispatched();
  // Empty spans: vacuous subset, no intersection.
  EXPECT_TRUE(d.subset(nullptr, nullptr, 0));
  EXPECT_FALSE(d.intersects(nullptr, nullptr, 0));
  // A difference only in the last word of a multi-lane operand.
  std::vector<uint64_t> a(16, 0), b(16, 0);
  a[15] = uint64_t{1} << 63;
  EXPECT_FALSE(d.subset(a.data(), b.data(), a.size()));
  EXPECT_FALSE(d.intersects(a.data(), b.data(), a.size()));
  b[15] = a[15];
  EXPECT_TRUE(d.subset(a.data(), b.data(), a.size()));
  EXPECT_TRUE(d.intersects(a.data(), b.data(), a.size()));
}

TEST(BitsetKernels, SetActiveForTestPinsAndRestores) {
  const kernels::KernelTable& before = kernels::Active();
  kernels::SetActiveForTest(&kernels::Portable());
  EXPECT_EQ(&kernels::Active(), &kernels::Portable());
  DynamicBitset a(130), b(130);
  a.Set(0);
  a.Set(129);
  b.Set(129);
  EXPECT_EQ(a.AndCount(b), 1u);
  kernels::SetActiveForTest(nullptr);
  EXPECT_EQ(&kernels::Active(), &kernels::Dispatched());
  EXPECT_EQ(&kernels::Active(), &before);  // tests start on Dispatched()
}

// ---- BitMatrix -----------------------------------------------------------

TEST(BitMatrix, RowsAre64ByteAligned) {
  BitMatrix m(5, 70);  // 70 bits -> 2 words -> stride rounds up to 8
  EXPECT_EQ(m.word_stride() % 8, 0u);
  EXPECT_EQ(m.word_stride(), 8u);
  for (uint32_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(r).words) % 64, 0u)
        << "row " << r;
  }
}

TEST(BitMatrix, SetTestResetAndClearRow) {
  BitMatrix m(3, 130);
  EXPECT_FALSE(m.Test(1, 129));
  m.Set(1, 129);
  m.Set(1, 0);
  m.Set(2, 64);
  EXPECT_TRUE(m.Test(1, 129));
  EXPECT_TRUE(m.Test(1, 0));
  EXPECT_FALSE(m.Test(0, 0));
  EXPECT_EQ(m.Row(1).Count(), 2u);
  m.Reset(1, 0);
  EXPECT_EQ(m.Row(1).Count(), 1u);
  m.ClearRow(1);
  EXPECT_EQ(m.Row(1).Count(), 0u);
  EXPECT_TRUE(m.Test(2, 64));  // other rows untouched
}

TEST(BitMatrix, PaddingWordsStayZero) {
  // 70 columns use 2 words per row; the 6 padding words of each row
  // must stay zero through heavy mutation so row kernels over
  // word-prefixes never see garbage.
  BitMatrix m(4, 70);
  Rng rng(11);
  for (int round = 0; round < 500; ++round) {
    const uint32_t r = static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t c = static_cast<uint32_t>(rng.NextBounded(70));
    if (rng.NextBounded(2) == 0) {
      m.Set(r, c);
    } else {
      m.Reset(r, c);
    }
  }
  for (uint32_t r = 0; r < m.rows(); ++r) {
    const uint64_t* row = m.Row(r).words;
    for (std::size_t w = 2; w < m.word_stride(); ++w) {
      EXPECT_EQ(row[w], 0u) << "row " << r << " padding word " << w;
    }
  }
}

TEST(BitMatrix, CopyAndMoveSemantics) {
  BitMatrix m(3, 100);
  m.Set(0, 99);
  m.Set(2, 50);

  BitMatrix copy(m);
  EXPECT_TRUE(copy.Test(0, 99));
  EXPECT_TRUE(copy.Test(2, 50));
  copy.Set(1, 1);
  EXPECT_FALSE(m.Test(1, 1));  // deep copy

  BitMatrix assigned;
  assigned = m;
  EXPECT_EQ(assigned.rows(), 3u);
  EXPECT_TRUE(assigned.Test(2, 50));

  BitMatrix moved(std::move(copy));
  EXPECT_TRUE(moved.Test(1, 1));
  EXPECT_EQ(copy.rows(), 0u);  // NOLINT(bugprone-use-after-move)

  assigned = std::move(moved);
  EXPECT_TRUE(assigned.Test(1, 1));
  EXPECT_TRUE(assigned.Test(0, 99));
}

TEST(BitMatrix, RowSpanComposesWithDynamicBitset) {
  BitMatrix m(2, 200);
  DynamicBitset mask(200);
  for (uint32_t c = 0; c < 200; c += 3) m.Set(0, c);
  for (uint32_t c = 0; c < 200; c += 2) mask.Set(c);
  // Multiples of 6 below 200: 0, 6, ..., 198.
  EXPECT_EQ(m.Row(0).AndCount(mask), 34u);
  EXPECT_EQ(mask.AndCount(m.Row(0)), 34u);
  DynamicBitset scratch = mask;
  scratch.AndWith(m.Row(0));
  EXPECT_EQ(scratch.Count(), 34u);
}

// ---- end-to-end: baseline and dispatched enumerate identically ----------

uint64_t FingerprintWithTable(const Graph& g, const EnumOptions& options,
                              const kernels::KernelTable* table) {
  kernels::SetActiveForTest(table);
  HashingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  kernels::SetActiveForTest(nullptr);
  EXPECT_TRUE(result.ok());
  return sink.fingerprint();
}

TEST(BitsetKernels, EnumerationFingerprintMatchesAcrossTables) {
  const Graph g = GenerateBarabasiAlbert(300, 8, 13);
  for (auto [k, q] : {std::pair<uint32_t, uint32_t>{2, 6},
                      std::pair<uint32_t, uint32_t>{3, 8}}) {
    const EnumOptions options = EnumOptions::Ours(k, q);
    const uint64_t baseline =
        FingerprintWithTable(g, options, &kernels::Portable());
    const uint64_t dispatched =
        FingerprintWithTable(g, options, &kernels::Dispatched());
    EXPECT_EQ(baseline, dispatched) << "k=" << k << " q=" << q;
    EXPECT_NE(baseline, 0u);  // the workload actually produced plexes
  }
}

}  // namespace
}  // namespace kplex
