// End-to-end tests of the ServiceSession command interpreter — the same
// code path `kplex_cli serve` drives. Covers the ISSUE 1 acceptance
// demo: a script loads a graph, snapshots it, repeats a (k, q) query
// into a cache hit with an identical plex count, and snapshot reloading
// beats edge-list re-parsing.

#include "service/service_session.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "util/timer.h"

namespace kplex {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "kplex_session_test_" + tag + "_" +
         std::to_string(counter++);
}

// Extracts N from "... : N plexes, ..." in a `mined` output line.
uint64_t PlexCountOf(const std::string& line) {
  const std::size_t colon = line.rfind(": ");
  EXPECT_NE(colon, std::string::npos) << line;
  return std::stoull(line.substr(colon + 2));
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ServiceSession, EndToEndScriptWithCachedRepeatQuery) {
  Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  const std::string edges_path = TempPath("e2e_edges");
  const std::string snapshot_path = TempPath("e2e_snap");
  ASSERT_TRUE(SaveEdgeList(graph, edges_path).ok());

  std::ostringstream out;
  ServiceSession session(out);
  std::istringstream script(
      "# end-to-end demo script\n"
      "load web " + edges_path + "\n"
      "snapshot web " + snapshot_path + "\n"
      "load websnap " + snapshot_path + "\n"
      "mine web 2 5\n"
      "mine web 2 5\n"
      "mine websnap 2 5\n"
      "evict web\n"
      "mine web 2 5\n"
      "stats\n"
      "quit\n"
      "mine web 2 5\n");  // must never execute
  EXPECT_EQ(session.RunScript(script), 0u) << out.str();

  std::vector<std::string> mined;
  for (const auto& line : Lines(out.str())) {
    if (line.rfind("mined ", 0) == 0) mined.push_back(line);
  }
  ASSERT_EQ(mined.size(), 4u) << out.str();

  // Reference count straight from the sequential engine.
  CountingSink reference;
  ASSERT_TRUE(EnumerateMaximalKPlexes(graph, EnumOptions::Ours(2, 5),
                                      reference)
                  .ok());
  EXPECT_EQ(PlexCountOf(mined[0]), reference.count());

  // Cold, then warm with identical count.
  EXPECT_EQ(mined[0].find("[cached]"), std::string::npos) << mined[0];
  EXPECT_NE(mined[1].find("[cached]"), std::string::npos) << mined[1];
  EXPECT_EQ(PlexCountOf(mined[1]), PlexCountOf(mined[0]));

  // The snapshot-loaded copy produces the same answer (cold: different
  // catalog name means a different signature).
  EXPECT_EQ(mined[2].find("[cached]"), std::string::npos) << mined[2];
  EXPECT_EQ(PlexCountOf(mined[2]), PlexCountOf(mined[0]));

  // Result cache survives a catalog eviction of the graph.
  EXPECT_NE(mined[3].find("[cached]"), std::string::npos) << mined[3];
  EXPECT_EQ(PlexCountOf(mined[3]), PlexCountOf(mined[0]));

  EXPECT_NE(out.str().find("loaded web: "), std::string::npos);
  EXPECT_NE(out.str().find("snapshot web -> "), std::string::npos);
  EXPECT_NE(out.str().find("evicted web"), std::string::npos);
  EXPECT_NE(out.str().find("result cache: "), std::string::npos);

  std::remove(edges_path.c_str());
  std::remove(snapshot_path.c_str());
}

TEST(ServiceSession, MineShardTextFlowAndStatsHashColumn) {
  // The sharded-mining session surface: a probe reports the seed-space
  // size and content hash, disjoint shards partition the full mine's
  // count, a wrong hash is refused with both hashes in the error, and
  // `stats` reports the content hash once the admission check computed
  // it (the diagnosability satellite of ISSUE 5).
  Graph graph = GenerateErdosRenyi(150, 0.1, 21);
  std::ostringstream out;
  ServiceSession session(out);
  ASSERT_TRUE(session.catalog().RegisterGraph("g", graph).ok());

  // Before any shard work, stats shows no hash yet.
  EXPECT_TRUE(session.ExecuteLine("stats"));
  EXPECT_EQ(out.str().find("0x"), std::string::npos) << out.str();

  EXPECT_TRUE(session.ExecuteLine("mine g 2 5"));
  EXPECT_TRUE(session.ExecuteLine("mineshard g 2 5 seed-range=0:0"));
  std::vector<std::string> lines = Lines(out.str());
  const std::string probe = lines.back();
  ASSERT_EQ(probe.find("shard g k=2 q=5 algo=ours seeds=0:0: 0 plexes"),
            0u) << probe;
  // Parse "total seeds N" and "hash 0x..." out of the probe line.
  const std::size_t seeds_at = probe.find("total seeds ");
  ASSERT_NE(seeds_at, std::string::npos);
  const uint64_t total_seeds = std::stoull(probe.substr(seeds_at + 12));
  ASSERT_GT(total_seeds, 0u);
  const std::size_t hash_at = probe.find("hash 0x");
  ASSERT_NE(hash_at, std::string::npos);
  const std::string hash = probe.substr(hash_at + 5, 18);

  // Two disjoint shards carrying the right hash partition the count.
  const uint64_t half = total_seeds / 2;
  EXPECT_TRUE(session.ExecuteLine("mineshard g 2 5 seed-range=0:" +
                                  std::to_string(half) + " hash=" + hash));
  EXPECT_TRUE(session.ExecuteLine("mineshard g 2 5 seed-range=" +
                                  std::to_string(half) + ":end hash=" +
                                  hash));
  lines = Lines(out.str());
  const uint64_t full_count = PlexCountOf(lines[lines.size() - 4]);
  const uint64_t lo_count = PlexCountOf(lines[lines.size() - 2]);
  const uint64_t hi_count = PlexCountOf(lines[lines.size() - 1]);
  EXPECT_EQ(lo_count + hi_count, full_count);

  // A wrong hash is refused, and the error names both hashes.
  EXPECT_TRUE(session.ExecuteLine(
      "mineshard g 2 5 seed-range=0:5 hash=0x0000000000000001"));
  lines = Lines(out.str());
  EXPECT_EQ(lines.back().find("error: FAILED_PRECONDITION: graph content "
                              "hash mismatch for 'g'"),
            0u) << lines.back();
  EXPECT_NE(lines.back().find("0x0000000000000001"), std::string::npos);
  EXPECT_NE(lines.back().find(hash), std::string::npos);

  // And stats now reports the hash for the graph.
  EXPECT_TRUE(session.ExecuteLine("stats"));
  lines = Lines(out.str());
  bool hash_in_stats = false;
  for (const std::string& line : lines) {
    hash_in_stats = hash_in_stats ||
                    (line.rfind("g ", 0) == 0 &&
                     line.find(hash) != std::string::npos);
  }
  EXPECT_TRUE(hash_in_stats) << out.str();
  EXPECT_EQ(session.errors(), 1u);  // exactly the refused shard
}

TEST(ServiceSession, SnapshotReloadFasterThanEdgeListParse) {
  // The snapshot exists to beat re-parsing; assert it actually does on a
  // graph big enough that the margin is far from timer noise (~200k
  // edges: text parse is tens of ms, snapshot load is ~1ms).
  Graph graph = GenerateBarabasiAlbert(20000, 10, 3);
  const std::string edges_path = TempPath("timing_edges");
  const std::string snapshot_path = TempPath("timing_snap");
  ASSERT_TRUE(SaveEdgeList(graph, edges_path).ok());
  ASSERT_TRUE(SaveSnapshot(graph, snapshot_path).ok());

  // Warm the page cache once for both files, then take the best of 3.
  ASSERT_TRUE(LoadEdgeList(edges_path).ok());
  ASSERT_TRUE(LoadSnapshot(snapshot_path).ok());
  double parse_seconds = 1e9, snapshot_seconds = 1e9;
  for (int i = 0; i < 3; ++i) {
    WallTimer timer;
    ASSERT_TRUE(LoadEdgeList(edges_path).ok());
    parse_seconds = std::min(parse_seconds, timer.ElapsedSeconds());
    timer.Restart();
    ASSERT_TRUE(LoadSnapshot(snapshot_path).ok());
    snapshot_seconds = std::min(snapshot_seconds, timer.ElapsedSeconds());
  }
  EXPECT_LT(snapshot_seconds, parse_seconds)
      << "snapshot load " << snapshot_seconds << "s vs parse "
      << parse_seconds << "s";

  std::remove(edges_path.c_str());
  std::remove(snapshot_path.c_str());
}

TEST(ServiceSession, DatasetCommandLoadsRegistryGraphs) {
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("dataset kc karate"));
  EXPECT_TRUE(session.ExecuteLine("mine kc 2 6"));
  EXPECT_EQ(session.errors(), 0u) << out.str();
  EXPECT_NE(out.str().find("loaded kc: 34 vertices, 78 edges"),
            std::string::npos)
      << out.str();
}

TEST(ServiceSession, ErrorsAreCountedAndSessionContinues) {
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("frobnicate"));
  EXPECT_TRUE(session.ExecuteLine("load broken /no/such/file"));
  EXPECT_TRUE(session.ExecuteLine("mine nothere 2 5"));
  EXPECT_TRUE(session.ExecuteLine("mine"));
  EXPECT_EQ(session.errors(), 4u) << out.str();
  // Negative and overflowing numbers must be malformed-value errors,
  // not silently wrapped uint32 casts.
  EXPECT_TRUE(session.ExecuteLine("mine nothere -1 5"));
  EXPECT_TRUE(session.ExecuteLine("mine nothere 2 99999999999"));
  EXPECT_TRUE(session.ExecuteLine("mine nothere 2 5 threads=-2"));
  EXPECT_EQ(session.errors(), 7u) << out.str();
  // A failed load must not leave a half-registered entry behind.
  EXPECT_FALSE(session.catalog().Contains("broken"));
  // And the session still works afterwards.
  EXPECT_TRUE(session.ExecuteLine("dataset kc karate"));
  EXPECT_EQ(session.errors(), 7u) << out.str();
}

TEST(ServiceSession, MemoryBudgetFlowsThroughToCatalog) {
  ServiceSessionOptions options;
  options.memory_budget_bytes = 123456;
  std::ostringstream out;
  ServiceSession session(out, options);
  EXPECT_EQ(session.catalog().MemoryBudgetBytes(), 123456u);
}

TEST(ServiceSession, WorkersFourMatchesWorkersOneJobForJob) {
  // The ISSUE 3 acceptance shape at the command-interpreter level: the
  // same submit batch over one catalog must print identical result
  // lines at --workers 4 and --workers 1 (modulo timings, which the
  // comparison strips along with completion order).
  Graph graph = GenerateErdosRenyi(150, 0.1, 33);
  const std::string edges_path = TempPath("workers_edges");
  ASSERT_TRUE(SaveEdgeList(graph, edges_path).ok());

  std::string script_text = "load g " + edges_path + "\n";
  for (uint32_t q = 4; q <= 9; ++q) {
    script_text += "submit g 2 " + std::to_string(q) + " cache=off\n";
  }
  script_text += "wait\njobs\nquit\n";

  auto run_session = [&](uint32_t workers) {
    ServiceSessionOptions options;
    options.workers = workers;
    std::ostringstream out;
    ServiceSession session(out, options);
    std::istringstream script(script_text);
    EXPECT_EQ(session.RunScript(script), 0u) << out.str();
    // Keep the "done" rows of the jobs table, stripping the trailing
    // seconds column (the last whitespace-separated field) so only
    // id/query/state/plexes are compared.
    std::vector<std::string> results;
    for (const auto& line : Lines(out.str())) {
      if (line.find(" done ") == std::string::npos) continue;
      std::string row = line;
      while (!row.empty() && row.back() == ' ') row.pop_back();
      row.erase(row.find_last_of(' ') + 1);
      while (!row.empty() && row.back() == ' ') row.pop_back();
      results.push_back(row);
    }
    return results;
  };

  const std::vector<std::string> serial = run_session(1);
  const std::vector<std::string> concurrent = run_session(4);
  ASSERT_EQ(serial.size(), 6u) << "expected one jobs row per submit";
  EXPECT_EQ(serial, concurrent);

  std::remove(edges_path.c_str());
}

TEST(ServiceSession, SubmitCancelWaitJobsFlow) {
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("dataset kc karate"));
  EXPECT_TRUE(session.ExecuteLine("submit kc 2 6"));
  EXPECT_TRUE(session.ExecuteLine("wait 1"));
  EXPECT_NE(out.str().find("job 1 submitted: mine kc k=2 q=6 algo=ours"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("job 1: mined kc k=2 q=6"), std::string::npos)
      << out.str();

  // Unknown job ids and malformed ids are counted errors.
  EXPECT_TRUE(session.ExecuteLine("cancel 99"));
  EXPECT_TRUE(session.ExecuteLine("wait nope"));
  EXPECT_EQ(session.errors(), 2u) << out.str();

  // A job against an unregistered graph fails at run time, and waiting
  // on it surfaces (and counts) the error.
  EXPECT_TRUE(session.ExecuteLine("submit ghost 2 6"));
  EXPECT_TRUE(session.ExecuteLine("wait 2"));
  EXPECT_EQ(session.errors(), 3u) << out.str();
  EXPECT_NE(out.str().find("job 2: error: NOT_FOUND"), std::string::npos)
      << out.str();
  // Viewing the same failure again is not another error.
  EXPECT_TRUE(session.ExecuteLine("wait 2"));
  EXPECT_EQ(session.errors(), 3u) << out.str();

  // Cancelling an already-finished job is a FAILED_PRECONDITION.
  EXPECT_TRUE(session.ExecuteLine("cancel 1"));
  EXPECT_EQ(session.errors(), 4u) << out.str();

  EXPECT_TRUE(session.ExecuteLine("wait"));
  EXPECT_NE(out.str().find("all jobs finished: 1 done, 0 cancelled, "
                           "1 failed"),
            std::string::npos)
      << out.str();
}

TEST(ServiceSession, BareWaitCountsUnviewedJobFailures) {
  // A failed job must flip the batch exit code even when no one ever
  // `wait ID`s it — the bare-wait summary counts it exactly once.
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("submit ghost 2 6"));
  EXPECT_TRUE(session.ExecuteLine("wait"));
  EXPECT_EQ(session.errors(), 1u) << out.str();
  EXPECT_TRUE(session.ExecuteLine("wait 1"));
  EXPECT_EQ(session.errors(), 1u) << out.str();  // no double count
}

TEST(ServiceSession, TranscriptGoldenThroughTheProtocolAdapter) {
  // The byte-compatibility contract of the api_redesign: the text wire
  // through ParseTextRequest -> ServiceApi -> FormatTextResponse must
  // reproduce the historical session transcript exactly (timings are
  // the one nondeterministic field, normalized to <T>).
  std::ostringstream out;
  ServiceSession session(out);
  std::istringstream script(
      "# golden transcript\n"
      "dataset kc karate\n"
      "mine kc 2 6\n"
      "mine kc 2 6\n"
      "mine kc 2 6 ctcp=on\n"
      "submit kc 2 5\n"
      "wait 1\n"
      "badcmd\n"
      "evict nope\n"
      "quit\n");
  EXPECT_EQ(session.RunScript(script), 2u) << out.str();

  std::string transcript = out.str();
  // Normalize "0.0001s" -> "<T>s".
  for (std::size_t pos = transcript.find('.'); pos != std::string::npos;
       pos = transcript.find('.', pos + 1)) {
    std::size_t start = pos;
    while (start > 0 && std::isdigit(static_cast<unsigned char>(
                            transcript[start - 1]))) {
      --start;
    }
    std::size_t end = pos + 1;
    while (end < transcript.size() &&
           std::isdigit(static_cast<unsigned char>(transcript[end]))) {
      ++end;
    }
    if (start < pos && end < transcript.size() && transcript[end] == 's') {
      transcript.replace(start, end - start, "<T>");
      pos = start;
    }
  }
  EXPECT_EQ(transcript,
            "loaded kc: 34 vertices, 78 edges (dataset karate)\n"
            "mined kc k=2 q=6 algo=ours: 1 plexes, max size 6, <T>s\n"
            "mined kc k=2 q=6 algo=ours: 1 plexes, max size 6, <T>s "
            "[cached]\n"
            "mined kc k=2 q=6 algo=ours: 1 plexes, max size 6, <T>s\n"
            "job 4 submitted: mine kc k=2 q=5 algo=ours\n"
            "job 1: mined kc k=2 q=6 algo=ours: 1 plexes, max size 6, "
            "<T>s\n"
            "error: INVALID_ARGUMENT: unknown command 'badcmd' (try "
            "'help')\n"
            "error: NOT_FOUND: no graph named 'nope' is registered\n");
}

TEST(ServiceSession, CtcpQueriesProduceTheSameAnswerUnderTheirOwnKey) {
  // ctcp=on runs the CTCP reduction (same result set) and caches under
  // a distinct signature, so it can be benchmarked against the plain
  // pipeline without evicting its entries. The golden test above
  // asserts the plex count matches; here the cache accounting.
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("dataset kc karate"));
  EXPECT_TRUE(session.ExecuteLine("mine kc 2 6"));
  EXPECT_TRUE(session.ExecuteLine("mine kc 2 6 ctcp=on"));
  EXPECT_TRUE(session.ExecuteLine("mine kc 2 6 ctcp=on"));
  EXPECT_EQ(session.errors(), 0u) << out.str();
  const QueryEngine::CacheStats stats = session.engine().cache_stats();
  EXPECT_EQ(stats.entries, 2u);  // plain and ctcp cached separately
  EXPECT_EQ(stats.hits, 1u);     // the ctcp repeat
  // Both pipelines count the same single 6-vertex 2-plex.
  EXPECT_EQ(Lines(out.str()).size(), 4u) << out.str();
  EXPECT_NE(out.str().find("[cached]"), std::string::npos);
}

TEST(ServiceSession, HelloSwitchesWireModesMidSession) {
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(session.ExecuteLine("dataset kc karate"));
  EXPECT_EQ(session.mode(), WireMode::kText);

  // The handshake response is already framed.
  EXPECT_TRUE(session.ExecuteLine("hello proto=7 mode=framed"));
  EXPECT_EQ(session.mode(), WireMode::kFramed);
  std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u) << out.str();
  // Version negotiation: min(7, kProtocolVersion).
  EXPECT_EQ(lines[1],
            "{\"id\":0,\"ok\":true,\"type\":\"hello\",\"proto\":6,"
            "\"mode\":\"framed\"}");

  // Framed request with a correlation id; the response echoes it.
  EXPECT_TRUE(session.ExecuteLine(
      "{\"id\":12,\"cmd\":\"mine\",\"graph\":\"kc\",\"k\":2,\"q\":6}"));
  lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u) << out.str();
  EXPECT_EQ(lines[2].find("{\"id\":12,\"ok\":true,\"type\":\"mine\""), 0u)
      << lines[2];
  EXPECT_NE(lines[2].find("\"plexes\":1"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"fingerprint\":\"0x"), std::string::npos)
      << lines[2];

  // Malformed frames are framed errors (counted, session continues).
  EXPECT_TRUE(session.ExecuteLine("not json"));
  EXPECT_EQ(session.errors(), 1u);
  lines = Lines(out.str());
  EXPECT_EQ(lines.back().find("{\"id\":0,\"ok\":false,\"type\":\"error\","
                              "\"code\":\"INVALID_ARGUMENT\""),
            0u)
      << lines.back();

  // A frame that parses far enough to yield an id but fails validation
  // still answers under that id, so pipelining clients stay correlated.
  EXPECT_TRUE(session.ExecuteLine(
      "{\"id\":44,\"cmd\":\"mine\",\"graph\":\"kc\",\"k\":2,\"q\":6,"
      "\"bogus\":1}"));
  EXPECT_EQ(session.errors(), 2u);
  lines = Lines(out.str());
  EXPECT_EQ(lines.back().find("{\"id\":44,\"ok\":false"), 0u)
      << lines.back();

  // '#' is not a comment marker on the framed wire: every non-blank
  // line gets a response (a request/response client would otherwise
  // hang), and only truly blank keep-alives are tolerated.
  const std::size_t lines_before = Lines(out.str()).size();
  EXPECT_TRUE(session.ExecuteLine("   "));
  EXPECT_EQ(Lines(out.str()).size(), lines_before);
  EXPECT_TRUE(session.ExecuteLine("# not a comment here"));
  EXPECT_EQ(session.errors(), 3u);
  lines = Lines(out.str());
  ASSERT_EQ(lines.size(), lines_before + 1);
  EXPECT_EQ(lines.back().find("{\"id\":0,\"ok\":false"), 0u)
      << lines.back();

  // And back to text.
  EXPECT_TRUE(session.ExecuteLine("{\"cmd\":\"hello\",\"mode\":\"text\"}"));
  EXPECT_EQ(session.mode(), WireMode::kText);
  lines = Lines(out.str());
  EXPECT_EQ(lines.back(), "hello proto=6 mode=text");
  EXPECT_TRUE(session.ExecuteLine("evict kc"));
  lines = Lines(out.str());
  EXPECT_EQ(lines.back(), "evicted kc");

  // Framed quit ends the session with a bye frame.
  EXPECT_TRUE(session.ExecuteLine("hello mode=framed"));
  EXPECT_FALSE(session.ExecuteLine("{\"id\":9,\"cmd\":\"quit\"}"));
  lines = Lines(out.str());
  EXPECT_EQ(lines.back(), "{\"id\":9,\"ok\":true,\"type\":\"bye\"}");
}

TEST(ServiceSession, LoadErrorsNeverEchoAbsolutePaths) {
  // The structured-error path scrubs host layout out of every failure
  // a client sees: a missing absolute path is reported by basename
  // only, with the strerror-style suffix intact.
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_TRUE(
      session.ExecuteLine("load broken /no/such/secret-dir/graph.txt"));
  EXPECT_EQ(session.errors(), 1u);
  EXPECT_NE(out.str().find("error: IO_ERROR:"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("'graph.txt'"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("/no/such"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("secret-dir"), std::string::npos) << out.str();

  // A *job* failure takes a different path to the client (the Status
  // stored in JobInfo, surfaced through mine/wait/jobs) — it must be
  // scrubbed identically.
  ASSERT_TRUE(session.catalog()
                  .RegisterFile("lazy", "/no/such/secret-dir/lazy.txt")
                  .ok());
  EXPECT_TRUE(session.ExecuteLine("mine lazy 2 5"));
  EXPECT_TRUE(session.ExecuteLine("jobs"));
  EXPECT_EQ(session.errors(), 2u) << out.str();
  EXPECT_NE(out.str().find("'lazy.txt'"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("/no/such"), std::string::npos) << out.str();
}

TEST(ServiceSession, QuitStopsTheScript) {
  std::ostringstream out;
  ServiceSession session(out);
  EXPECT_FALSE(session.ExecuteLine("quit"));
  EXPECT_FALSE(session.ExecuteLine("exit"));
  EXPECT_TRUE(session.ExecuteLine(""));
  EXPECT_TRUE(session.ExecuteLine("   # just a comment"));
  EXPECT_EQ(session.errors(), 0u);
}

}  // namespace
}  // namespace kplex
