// The parallel engine must produce exactly the sequential result set for
// every thread count and every timeout, including timeouts small enough
// to force heavy task decomposition.

#include "parallel/parallel_enumerator.h"

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::ResultSet;
using testing_util::RunEngine;
using testing_util::VerifyResultSet;

ResultSet RunParallel(const Graph& g, const EnumOptions& options,
                      uint32_t threads, double timeout_ms) {
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = threads;
  parallel.timeout_ms = timeout_ms;
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return sink.SortedResults();
}

struct ParallelParam {
  uint32_t threads;
  double timeout_ms;
};

class ParallelSweep : public ::testing::TestWithParam<ParallelParam> {};

TEST_P(ParallelSweep, MatchesSequentialOnSocialGraph) {
  const auto& p = GetParam();
  Graph g = GenerateBarabasiAlbert(300, 8, 555);
  EnumOptions options = EnumOptions::Ours(2, 6);
  ResultSet sequential = RunEngine(g, options);
  ResultSet parallel = RunParallel(g, options, p.threads, p.timeout_ms);
  EXPECT_EQ(parallel, sequential);
}

TEST_P(ParallelSweep, MatchesSequentialOnDenseGraph) {
  const auto& p = GetParam();
  Graph g = GenerateErdosRenyi(90, 0.3, 556);
  EnumOptions options = EnumOptions::Ours(3, 7);
  ResultSet sequential = RunEngine(g, options);
  ResultSet parallel = RunParallel(g, options, p.threads, p.timeout_ms);
  EXPECT_EQ(parallel, sequential);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndTimeouts, ParallelSweep,
    ::testing::Values(ParallelParam{1, 0.0},    // single thread, no timeout
                      ParallelParam{2, 0.0},
                      ParallelParam{4, 0.0},
                      ParallelParam{2, 0.1},    // the paper's default tau
                      ParallelParam{4, 0.1},
                      ParallelParam{4, 0.001},  // shred into micro-tasks
                      ParallelParam{3, 10.0}),
    [](const ::testing::TestParamInfo<ParallelParam>& info) {
      return "t" + std::to_string(info.param.threads) + "tau" +
             std::to_string(static_cast<int>(info.param.timeout_ms * 1000));
    });

TEST(Parallel, TinyTimeoutActuallyDecomposes) {
  Graph g = GenerateErdosRenyi(80, 0.35, 777);
  EnumOptions options = EnumOptions::Ours(3, 6);
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = 2;
  parallel.timeout_ms = 0.001;  // 1 microsecond: everything times out
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->counters.timeout_spawns, 0u)
      << "expected straggler decomposition to fire";
  EXPECT_EQ(sink.SortedResults(), RunEngine(g, options));
}

TEST(Parallel, NoTimeoutNeverSpawns) {
  Graph g = GenerateErdosRenyi(60, 0.3, 778);
  EnumOptions options = EnumOptions::Ours(2, 5);
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = 4;
  parallel.timeout_ms = 0.0;
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counters.timeout_spawns, 0u);
}

TEST(Parallel, MoreThreadsThanSeeds) {
  Graph g = GenerateErdosRenyi(12, 0.6, 779);
  EnumOptions options = EnumOptions::Ours(2, 4);
  ResultSet sequential = RunEngine(g, options);
  EXPECT_EQ(RunParallel(g, options, 16, 0.1), sequential);
}

TEST(Parallel, EmptyGraph) {
  Graph g;
  EnumOptions options = EnumOptions::Ours(2, 4);
  CollectingSink sink;
  ParallelOptions parallel;
  parallel.num_threads = 4;
  auto result = ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_plexes, 0u);
}

TEST(Parallel, RejectsInvalidOptions) {
  Graph g = GenerateErdosRenyi(10, 0.3, 1);
  CollectingSink sink;
  ParallelOptions parallel;
  auto result = ParallelEnumerateMaximalKPlexes(
      g, EnumOptions::Ours(3, 2), parallel, sink);
  EXPECT_FALSE(result.ok());
}

TEST(Parallel, WorksForAllVariants) {
  Graph g = GenerateBarabasiAlbert(150, 6, 888);
  for (auto options :
       {EnumOptions::Ours(2, 5), EnumOptions::OursP(2, 5),
        EnumOptions::Basic(2, 5), EnumOptions::OursNoUb(2, 5)}) {
    ResultSet sequential = RunEngine(g, options);
    ResultSet parallel = RunParallel(g, options, 3, 0.05);
    EXPECT_EQ(parallel, sequential);
    VerifyResultSet(g, parallel, options.k, options.q);
  }
}

}  // namespace
}  // namespace kplex
