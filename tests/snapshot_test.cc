// Unit tests for the binary CSR snapshot format: round-trips, the
// auto-detecting loader, and rejection of truncated/corrupted/alien
// files.

#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"

namespace kplex {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "kplex_snapshot_test_" + tag + "_" +
         std::to_string(counter++);
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
}

TEST(Snapshot, RoundTripSmallGraph) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                        {4, 0}, {0, 2}});
  std::string path = TempPath("small");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, *loaded);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripGeneratedGraph) {
  Graph g = GenerateBarabasiAlbert(2000, 8, 11);
  std::string path = TempPath("generated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, *loaded);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripEmptyGraph) {
  Graph g;
  std::string path = TempPath("empty");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripIsolatedVertices) {
  // Vertices with empty adjacency must survive (an edge-list round trip
  // would lose them; the snapshot must not).
  Graph g = GraphBuilder::FromEdges(6, {{1, 3}});
  std::string path = TempPath("isolated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 6u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsIoError) {
  auto loaded = LoadSnapshot("/nonexistent/dir/graph.kpx");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Snapshot, EdgeListFileIsRejected) {
  std::string path = TempPath("edgelist");
  {
    std::ofstream out(path);
    out << "0 1\n1 2\n";
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, TruncatedFileIsRejected) {
  Graph g = GenerateErdosRenyi(200, 0.05, 3);
  std::string path = TempPath("truncated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  // Chop the file to half its size (keeps the header, loses adjacency).
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptedHeaderIsRejected) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = TempPath("badheader");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Flip a byte inside the vertex-count field.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptedPayloadFailsChecksum) {
  Graph g = GenerateErdosRenyi(100, 0.1, 5);
  std::string path = TempPath("badpayload");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Flip one adjacency byte near the end of the file; the header stays
    // self-consistent so only the checksum can catch this.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekg(static_cast<std::streamoff>(size) - 3);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(Snapshot, HugeDeclaredCountsAreRejectedWithoutAllocating) {
  // A header claiming 2^60 adjacency entries must come back as
  // InvalidArgument (the file is obviously shorter), not abort the
  // process in bad_alloc.
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("huge");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t num_adjacency = uint64_t{1} << 60;
    const uint64_t adjacency_bytes = num_adjacency * sizeof(VertexId);
    f.seekp(24);  // num_adjacency field
    f.write(reinterpret_cast<const char*>(&num_adjacency), 8);
    f.seekp(40);  // adjacency_bytes field
    f.write(reinterpret_cast<const char*>(&adjacency_bytes), 8);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, HandcraftedUnsortedRowIsRejected) {
  // A file with a *valid* checksum but an adjacency row violating the
  // sorted-simple-graph invariant (duplicate neighbor) must not load:
  // Graph::HasEdge binary-searches rows and would silently misbehave.
  struct Header {
    char magic[8];
    uint32_t version;
    uint32_t byte_order;
    uint64_t num_vertices;
    uint64_t num_adjacency;
    uint64_t offsets_bytes;
    uint64_t adjacency_bytes;
    uint64_t checksum;
    uint8_t pad[8];
  } header = {};
  const uint64_t offsets[3] = {0, 2, 2};
  const uint32_t adjacency[2] = {1, 1};  // duplicate in vertex 0's row
  std::memcpy(header.magic, "KPXSNAP\0", 8);
  header.version = kSnapshotVersion;
  header.byte_order = 0x01020304u;
  header.num_vertices = 2;
  header.num_adjacency = 2;
  header.offsets_bytes = sizeof(offsets);
  header.adjacency_bytes = sizeof(adjacency);
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash ^= p[i];
      hash *= 0x100000001b3ULL;
    }
  };
  mix(offsets, sizeof(offsets));
  mix(adjacency, sizeof(adjacency));
  header.checksum = hash;

  std::string path = TempPath("handcrafted");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(offsets), sizeof(offsets));
    const char padding[64 - sizeof(offsets) % 64] = {};
    out.write(padding, sizeof(padding));
    out.write(reinterpret_cast<const char*>(adjacency), sizeof(adjacency));
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("adjacency row"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(Snapshot, AutoLoaderDispatchesByMagic) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::string snapshot_path = TempPath("auto_snap");
  std::string edges_path = TempPath("auto_edges");
  ASSERT_TRUE(SaveSnapshot(g, snapshot_path).ok());
  ASSERT_TRUE(SaveEdgeList(g, edges_path).ok());
  EXPECT_TRUE(LooksLikeSnapshot(snapshot_path));
  EXPECT_FALSE(LooksLikeSnapshot(edges_path));
  auto from_snapshot = LoadGraphAuto(snapshot_path);
  auto from_edges = LoadGraphAuto(edges_path);
  ASSERT_TRUE(from_snapshot.ok());
  ASSERT_TRUE(from_edges.ok());
  EXPECT_EQ(from_snapshot->Edges(), from_edges->Edges());
  std::remove(snapshot_path.c_str());
  std::remove(edges_path.c_str());
}

}  // namespace
}  // namespace kplex
