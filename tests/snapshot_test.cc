// Unit tests for the binary CSR snapshot format: round-trips, the
// auto-detecting loader, and rejection of truncated/corrupted/alien
// files.

#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/degeneracy.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "util/mmap_file.h"

namespace kplex {
namespace {

std::string TempPath(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "kplex_snapshot_test_" + tag + "_" +
         std::to_string(counter++);
}

// Mirrors the production snapshot checksum (FNV-1a 64) for tests that
// corrupt a file and must re-checksum it to keep the tampering
// detectable only by semantic validation.
uint64_t Fnv1aOf(const unsigned char* data, std::size_t n) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
}

TEST(Snapshot, RoundTripSmallGraph) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                        {4, 0}, {0, 2}});
  std::string path = TempPath("small");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, *loaded);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripGeneratedGraph) {
  Graph g = GenerateBarabasiAlbert(2000, 8, 11);
  std::string path = TempPath("generated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, *loaded);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripEmptyGraph) {
  Graph g;
  std::string path = TempPath("empty");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumVertices(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, RoundTripIsolatedVertices) {
  // Vertices with empty adjacency must survive (an edge-list round trip
  // would lose them; the snapshot must not).
  Graph g = GraphBuilder::FromEdges(6, {{1, 3}});
  std::string path = TempPath("isolated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 6u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsIoError) {
  auto loaded = LoadSnapshot("/nonexistent/dir/graph.kpx");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Snapshot, EdgeListFileIsRejected) {
  std::string path = TempPath("edgelist");
  {
    std::ofstream out(path);
    out << "0 1\n1 2\n";
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, TruncatedFileIsRejected) {
  Graph g = GenerateErdosRenyi(200, 0.05, 3);
  std::string path = TempPath("truncated");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  // Chop the file to half its size (keeps the header, loses adjacency).
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptedHeaderIsRejected) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::string path = TempPath("badheader");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Flip a byte inside the vertex-count field.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptedPayloadFailsChecksum) {
  Graph g = GenerateErdosRenyi(100, 0.1, 5);
  std::string path = TempPath("badpayload");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Flip one adjacency byte near the end of the file; the header stays
    // self-consistent so only the checksum can catch this.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekg(static_cast<std::streamoff>(size) - 3);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(Snapshot, HugeDeclaredCountsAreRejectedWithoutAllocating) {
  // A v1 header claiming 2^60 adjacency entries must come back as
  // InvalidArgument (the file is obviously shorter), not abort the
  // process in bad_alloc. Pinned to v1: the fields poked below are
  // legacy-header offsets, and v1 is the loader that reads into
  // pre-sized vectors.
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("huge");
  SnapshotWriteOptions v1;
  v1.version = kSnapshotVersionLegacy;
  ASSERT_TRUE(SaveSnapshot(g, path, v1).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t num_adjacency = uint64_t{1} << 60;
    const uint64_t adjacency_bytes = num_adjacency * sizeof(VertexId);
    f.seekp(24);  // num_adjacency field
    f.write(reinterpret_cast<const char*>(&num_adjacency), 8);
    f.seekp(40);  // adjacency_bytes field
    f.write(reinterpret_cast<const char*>(&adjacency_bytes), 8);
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Snapshot, HandcraftedUnsortedRowIsRejected) {
  // A file with a *valid* checksum but an adjacency row violating the
  // sorted-simple-graph invariant (duplicate neighbor) must not load:
  // Graph::HasEdge binary-searches rows and would silently misbehave.
  struct Header {
    char magic[8];
    uint32_t version;
    uint32_t byte_order;
    uint64_t num_vertices;
    uint64_t num_adjacency;
    uint64_t offsets_bytes;
    uint64_t adjacency_bytes;
    uint64_t checksum;
    uint8_t pad[8];
  } header = {};
  const uint64_t offsets[3] = {0, 2, 2};
  const uint32_t adjacency[2] = {1, 1};  // duplicate in vertex 0's row
  std::memcpy(header.magic, "KPXSNAP\0", 8);
  header.version = kSnapshotVersionLegacy;
  header.byte_order = 0x01020304u;
  header.num_vertices = 2;
  header.num_adjacency = 2;
  header.offsets_bytes = sizeof(offsets);
  header.adjacency_bytes = sizeof(adjacency);
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash ^= p[i];
      hash *= 0x100000001b3ULL;
    }
  };
  mix(offsets, sizeof(offsets));
  mix(adjacency, sizeof(adjacency));
  header.checksum = hash;

  std::string path = TempPath("handcrafted");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(offsets), sizeof(offsets));
    const char padding[64 - sizeof(offsets) % 64] = {};
    out.write(padding, sizeof(padding));
    out.write(reinterpret_cast<const char*>(adjacency), sizeof(adjacency));
  }
  auto loaded = LoadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("adjacency row"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// v1 <-> v2 compatibility and the v2 section machinery.

TEST(SnapshotV2, V1FileLoadsThroughLegacyPath) {
  // A pre-v2 snapshot (as every file written before this format bump)
  // must keep loading: buffered reader, owned vectors, no precompute.
  Graph g = GenerateBarabasiAlbert(500, 6, 17);
  std::string path = TempPath("v1compat");
  SnapshotWriteOptions v1;
  v1.version = kSnapshotVersionLegacy;
  ASSERT_TRUE(SaveSnapshot(g, path, v1).ok());

  auto loaded = LoadSnapshotFull(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, kSnapshotVersionLegacy);
  EXPECT_FALSE(loaded->mapped);
  EXPECT_FALSE(loaded->graph.IsMapped());
  EXPECT_TRUE(loaded->precompute.empty());
  ExpectSameGraph(g, loaded->graph);
  EXPECT_GT(loaded->graph.MemoryBytes(), 0u);
  EXPECT_EQ(loaded->graph.MappedBytes(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotV2, V1CannotCarryPrecompute) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  SnapshotWriteOptions bad;
  bad.version = kSnapshotVersionLegacy;
  bad.include_precompute = true;
  EXPECT_EQ(SaveSnapshot(g, TempPath("v1pre"), bad).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotV2, DefaultWriteIsZeroCopyV2) {
  Graph g = GenerateBarabasiAlbert(800, 7, 23);
  std::string path = TempPath("v2map");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());

  auto loaded = LoadSnapshotFull(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, kSnapshotVersion);
  ExpectSameGraph(g, loaded->graph);
  EXPECT_TRUE(loaded->precompute.empty());  // optional sections absent: fine
  if (MappedFile::Supported()) {
    EXPECT_TRUE(loaded->mapped);
    EXPECT_TRUE(loaded->graph.IsMapped());
    EXPECT_GT(loaded->graph.MappedBytes(), 0u);
    // The CSR views cost no private heap beyond bookkeeping.
    EXPECT_EQ(loaded->graph.MemoryBytes(), 0u);
  }
  // The graph must outlive the mapping handle scope: copy and move it.
  Graph copied = loaded->graph;
  Graph moved = std::move(loaded->graph);
  ExpectSameGraph(g, copied);
  ExpectSameGraph(g, moved);
  std::remove(path.c_str());
}

TEST(SnapshotV2, PrecomputeSectionsRoundTrip) {
  Graph g = GenerateErdosRenyi(300, 0.04, 9);
  std::string path = TempPath("v2pre");
  SnapshotWriteOptions options;
  options.include_precompute = true;
  options.core_mask_levels = {1, 3};
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());

  auto loaded = LoadSnapshotFull(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DegeneracyResult expected = ComputeDegeneracy(g);
  EXPECT_TRUE(std::ranges::equal(loaded->precompute.order, expected.order));
  EXPECT_TRUE(
      std::ranges::equal(loaded->precompute.coreness, expected.coreness));
  EXPECT_EQ(loaded->precompute.degeneracy, expected.degeneracy);
  ASSERT_FALSE(loaded->precompute.MaskFor(3).empty());
  EXPECT_TRUE(loaded->precompute.MaskFor(2).empty());  // not stored
  EXPECT_TRUE(std::ranges::equal(loaded->precompute.MaskFor(3),
                                 PackCoreMask(expected.coreness, 3)));

  // v2 sections are served zero-copy: views into the snapshot buffer,
  // no private heap beyond bookkeeping, and — when the platform maps —
  // counted under the graph's whole-file MappedBytes.
  EXPECT_EQ(loaded->precompute.MemoryBytes(), 0u);
  EXPECT_GT(loaded->precompute.SectionBytes(), 0u);
  if (MappedFile::Supported()) {
    EXPECT_TRUE(loaded->precompute.mapped());
    EXPECT_GE(loaded->graph.MappedBytes(),
              loaded->precompute.SectionBytes());
  }

  // The sections must stay readable after the graph (and its share of
  // the mapping) is gone: the precompute holds its own backing handle.
  const std::vector<VertexId> order_before(loaded->precompute.order.begin(),
                                           loaded->precompute.order.end());
  loaded->graph = Graph();
  EXPECT_TRUE(std::ranges::equal(loaded->precompute.order, order_before));
  std::remove(path.c_str());
}

TEST(SnapshotV2, TruncationIsRejected) {
  Graph g = GenerateErdosRenyi(200, 0.05, 4);
  std::string path = TempPath("v2trunc");
  SnapshotWriteOptions options;
  options.include_precompute = true;
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Chop at several depths: mid-header, mid-table, mid-section.
  for (std::size_t keep : {40ul, 100ul, bytes.size() / 2}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    auto loaded = LoadSnapshotFull(path);
    EXPECT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(SnapshotV2, MappedPayloadCorruptionFailsSectionChecksum) {
  Graph g = GenerateErdosRenyi(150, 0.07, 6);
  std::string path = TempPath("v2corrupt");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Flip an adjacency byte near the end (0xff: offset bytes are
    // mostly zero already). Header and table stay intact, so only the
    // per-section checksum can catch this.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) - 5);
    char byte = static_cast<char>(0xff);
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshotFull(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotV2, TableCorruptionFailsTableChecksum) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}});
  std::string path = TempPath("v2table");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  {
    // Byte 64 is the first section-table entry's type field.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshotFull(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotV2, EmptyAndIsolatedGraphsRoundTrip) {
  {
    Graph g;
    std::string path = TempPath("v2empty");
    ASSERT_TRUE(SaveSnapshot(g, path).ok());
    auto loaded = LoadSnapshotFull(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->graph.NumVertices(), 0u);
    std::remove(path.c_str());
  }
  {
    Graph g = GraphBuilder::FromEdges(6, {{1, 3}});
    std::string path = TempPath("v2isolated");
    SnapshotWriteOptions options;
    options.include_precompute = true;
    ASSERT_TRUE(SaveSnapshot(g, path, options).ok());
    auto loaded = LoadSnapshotFull(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->graph.NumVertices(), 6u);
    EXPECT_EQ(loaded->graph.NumEdges(), 1u);
    EXPECT_EQ(loaded->precompute.order.size(), 6u);
    std::remove(path.c_str());
  }
}

// Rewrites the order section's type id to an unknown value, fixing up
// both checksums, to prove readers skip sections from newer writers
// instead of failing (forward compatibility).
TEST(SnapshotV2, UnknownSectionTypesAreSkipped) {
  Graph g = GenerateErdosRenyi(80, 0.1, 8);
  std::string path = TempPath("v2unknown");
  SnapshotWriteOptions options;
  options.include_precompute = true;
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 32, sizeof(section_count));
  ASSERT_EQ(section_count, 4u);  // offsets, adjacency, order, coreness

  // Entry layout: type u32, param u32, offset u64, length u64,
  // checksum u64 (32 bytes each, table at offset 64). Entry 2 is the
  // order section; give it a type no reader knows.
  const std::size_t entry2 = 64 + 2 * 32;
  const uint32_t unknown_type = 0x7777u;
  std::memcpy(bytes.data() + entry2, &unknown_type, sizeof(unknown_type));
  const uint64_t table_checksum =
      Fnv1aOf(bytes.data() + 64, section_count * 32);
  std::memcpy(bytes.data() + 40, &table_checksum, sizeof(table_checksum));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  auto loaded = LoadSnapshotFull(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, loaded->graph);
  EXPECT_FALSE(loaded->precompute.has_order());   // skipped
  EXPECT_TRUE(loaded->precompute.has_coreness()); // still decoded
  std::remove(path.c_str());
}

TEST(SnapshotV2, NonPermutationOrderSectionIsRejected) {
  Graph g = GenerateErdosRenyi(64, 0.1, 12);
  std::string path = TempPath("v2badorder");
  SnapshotWriteOptions options;
  options.include_precompute = true;
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();
  // Entry 2 (order): read its offset/length, duplicate the first id into
  // the second slot, and re-checksum the section so only the semantic
  // permutation check can reject it.
  const std::size_t entry2 = 64 + 2 * 32;
  uint64_t offset = 0, length = 0;
  std::memcpy(&offset, bytes.data() + entry2 + 8, sizeof(offset));
  std::memcpy(&length, bytes.data() + entry2 + 16, sizeof(length));
  std::memcpy(bytes.data() + offset + 4, bytes.data() + offset, 4);
  const uint64_t checksum = Fnv1aOf(bytes.data() + offset, length);
  std::memcpy(bytes.data() + entry2 + 24, &checksum, sizeof(checksum));
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 32, sizeof(section_count));
  const uint64_t table_checksum =
      Fnv1aOf(bytes.data() + 64, section_count * 32);
  std::memcpy(bytes.data() + 40, &table_checksum, sizeof(table_checksum));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  auto loaded = LoadSnapshotFull(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("permutation"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// Handcrafts a v2 file whose header claims 2^62 adjacency entries
// paired with a zero-length adjacency section: 2^62 * 4 wraps to 0 mod
// 2^64, so without a file-size-relative bound the section length check
// would pass and CSR validation would walk 2^62 phantom entries off the
// end of the mapping. All checksums are made valid — only the header
// bound can reject this.
TEST(SnapshotV2, OverflowingAdjacencyClaimIsRejected) {
  const uint64_t num_adjacency = uint64_t{1} << 62;
  const uint64_t offsets[2] = {0, num_adjacency};  // n = 1
  struct Entry {
    uint32_t type;
    uint32_t param;
    uint64_t offset;
    uint64_t length;
    uint64_t checksum;
  } table[2] = {};
  std::vector<unsigned char> bytes(256, 0);
  std::memcpy(bytes.data(), "KPXSNAP\0", 8);
  const uint32_t version = kSnapshotVersion, byte_order = 0x01020304u;
  const uint64_t num_vertices = 1;
  const uint32_t section_count = 2;
  std::memcpy(bytes.data() + 8, &version, 4);
  std::memcpy(bytes.data() + 12, &byte_order, 4);
  std::memcpy(bytes.data() + 16, &num_vertices, 8);
  std::memcpy(bytes.data() + 24, &num_adjacency, 8);
  std::memcpy(bytes.data() + 32, &section_count, 4);
  table[0] = {1, 0, 192, sizeof(offsets), 0};  // offsets section
  table[0].checksum =
      Fnv1aOf(reinterpret_cast<const unsigned char*>(offsets),
              sizeof(offsets));
  table[1] = {2, 0, 192 + 64, 0, Fnv1aOf(nullptr, 0)};  // empty adjacency
  std::memcpy(bytes.data() + 64, table, sizeof(table));
  const uint64_t table_checksum = Fnv1aOf(bytes.data() + 64, sizeof(table));
  std::memcpy(bytes.data() + 40, &table_checksum, 8);
  std::memcpy(bytes.data() + 192, offsets, sizeof(offsets));

  std::string path = TempPath("v2overflow");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadSnapshotFull(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotV2, MaskContradictingCorenessIsRejected) {
  // A checksum-valid mask that disagrees with the coreness section
  // would silently drop vertices from the survivor graph; the loader
  // must reject the contradiction instead.
  Graph g = GenerateErdosRenyi(96, 0.1, 21);
  std::string path = TempPath("v2badmask");
  SnapshotWriteOptions options;
  options.core_mask_levels = {2};
  ASSERT_TRUE(SaveSnapshot(g, path, options).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();
  // Entry 4 is the mask (offsets, adjacency, order, coreness, mask).
  const std::size_t entry4 = 64 + 4 * 32;
  uint32_t type = 0;
  std::memcpy(&type, bytes.data() + entry4, sizeof(type));
  ASSERT_EQ(type, 5u);  // kSectionCoreMask
  uint64_t offset = 0, length = 0;
  std::memcpy(&offset, bytes.data() + entry4 + 8, sizeof(offset));
  std::memcpy(&length, bytes.data() + entry4 + 16, sizeof(length));
  bytes[offset] ^= 1;  // flip vertex 0's membership bit
  const uint64_t checksum = Fnv1aOf(bytes.data() + offset, length);
  std::memcpy(bytes.data() + entry4 + 24, &checksum, sizeof(checksum));
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 32, sizeof(section_count));
  const uint64_t table_checksum =
      Fnv1aOf(bytes.data() + 64, section_count * 32);
  std::memcpy(bytes.data() + 40, &table_checksum, sizeof(table_checksum));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  auto loaded = LoadSnapshotFull(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("contradicts"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotV2, InPlaceReencodeOfAMappedSnapshotIsSafe) {
  // The "upgrade my snapshot with precompute sections" workflow: load a
  // v2 snapshot (zero-copy views into the mapping of `path`) and save
  // it back onto the same path. The writer must not truncate the
  // mapped file in place (SIGBUS on the pages being serialized) — it
  // writes a sibling temp file and renames over the target.
  Graph g = GenerateErdosRenyi(250, 0.05, 14);
  std::string path = TempPath("inplace");
  ASSERT_TRUE(SaveSnapshot(g, path).ok());
  auto mapped = LoadSnapshotFull(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  SnapshotWriteOptions options;
  options.include_precompute = true;
  ASSERT_TRUE(SaveSnapshot(mapped->graph, path, options).ok());
  // The still-held old mapping stays readable, and the new file
  // carries the sections.
  ExpectSameGraph(g, mapped->graph);
  auto upgraded = LoadSnapshotFull(path);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  ExpectSameGraph(g, upgraded->graph);
  EXPECT_TRUE(upgraded->precompute.has_order());
  std::remove(path.c_str());
}

TEST(Snapshot, AutoLoaderDispatchesByMagic) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::string snapshot_path = TempPath("auto_snap");
  std::string edges_path = TempPath("auto_edges");
  ASSERT_TRUE(SaveSnapshot(g, snapshot_path).ok());
  ASSERT_TRUE(SaveEdgeList(g, edges_path).ok());
  EXPECT_TRUE(LooksLikeSnapshot(snapshot_path));
  EXPECT_FALSE(LooksLikeSnapshot(edges_path));
  auto from_snapshot = LoadGraphAuto(snapshot_path);
  auto from_edges = LoadGraphAuto(edges_path);
  ASSERT_TRUE(from_snapshot.ok());
  ASSERT_TRUE(from_edges.ok());
  EXPECT_EQ(from_snapshot->Edges(), from_edges->Edges());
  std::remove(snapshot_path.c_str());
  std::remove(edges_path.c_str());
}

}  // namespace
}  // namespace kplex
