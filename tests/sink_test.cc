// Unit tests for result sinks, including thread-safety and the
// order-independence of the hashing fingerprint.

#include "core/sink.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kplex {
namespace {

TEST(CountingSink, CountsAndTracksMax) {
  CountingSink sink;
  std::vector<VertexId> a = {1, 2, 3};
  std::vector<VertexId> b = {4, 5, 6, 7};
  sink.Emit(a);
  sink.Emit(b);
  sink.Emit(a);
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(sink.max_size(), 4u);
}

TEST(CollectingSink, SortedResults) {
  CollectingSink sink;
  std::vector<VertexId> b = {2, 9};
  std::vector<VertexId> a = {1, 5};
  sink.Emit(b);
  sink.Emit(a);
  auto sorted = sink.SortedResults();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0], a);
  EXPECT_EQ(sorted[1], b);
}

TEST(HashingSink, OrderIndependentFingerprint) {
  std::vector<std::vector<VertexId>> plexes = {
      {1, 2, 3}, {4, 5}, {6, 7, 8, 9}, {10}};
  HashingSink forward, backward;
  for (const auto& p : plexes) forward.Emit(p);
  for (auto it = plexes.rbegin(); it != plexes.rend(); ++it) {
    backward.Emit(*it);
  }
  EXPECT_EQ(forward.fingerprint(), backward.fingerprint());
  EXPECT_EQ(forward.count(), 4u);
}

TEST(HashingSink, DifferentSetsDiffer) {
  HashingSink a, b;
  std::vector<VertexId> p1 = {1, 2, 3};
  std::vector<VertexId> p2 = {1, 2, 4};
  a.Emit(p1);
  b.Emit(p2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(HashingSink, CountIsPartOfFingerprint) {
  // Emitting the same plex twice XORs its hash away; the count term must
  // still distinguish the multiset.
  HashingSink once, thrice;
  std::vector<VertexId> p = {1, 2, 3};
  once.Emit(p);
  thrice.Emit(p);
  thrice.Emit(p);
  thrice.Emit(p);
  EXPECT_NE(once.fingerprint(), thrice.fingerprint());
}

TEST(CallbackSink, ForwardsSpans) {
  std::vector<std::vector<VertexId>> seen;
  CallbackSink sink([&](std::span<const VertexId> plex) {
    seen.emplace_back(plex.begin(), plex.end());
  });
  std::vector<VertexId> p = {3, 1, 4};
  sink.Emit(p);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], p);
}

TEST(Sinks, ConcurrentEmitsAreSafe) {
  CountingSink counting;
  HashingSink hashing;
  CollectingSink collecting;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<VertexId> p = {static_cast<VertexId>(t),
                                   static_cast<VertexId>(i)};
        counting.Emit(p);
        hashing.Emit(p);
        collecting.Emit(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counting.count(), kThreads * kPerThread);
  EXPECT_EQ(hashing.count(), kThreads * kPerThread);
  EXPECT_EQ(collecting.size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace kplex
