// Unit tests for the DynamicBitset kernel: the whole engine rests on
// these operations being exactly right, including word-boundary edges.

#include "util/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace kplex {
namespace {

TEST(Bitset, SetResetTest) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(Bitset, SetAllRespectsSize) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    DynamicBitset b(n);
    b.SetAll();
    EXPECT_EQ(b.Count(), n) << "n=" << n;
  }
}

TEST(Bitset, FindFirstNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), DynamicBitset::kNpos);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5u);
  EXPECT_EQ(b.FindNext(6), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), DynamicBitset::kNpos);
}

TEST(Bitset, ForEachVisitsAscending) {
  DynamicBitset b(300);
  std::vector<std::size_t> expected = {0, 1, 63, 64, 128, 250, 299};
  for (auto i : expected) b.Set(i);
  std::vector<std::size_t> seen;
  b.ForEach([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(Bitset, ResetDuringForEachIsSafe) {
  DynamicBitset b(128);
  for (std::size_t i = 0; i < 128; i += 2) b.Set(i);
  std::size_t visited = 0;
  b.ForEach([&](std::size_t i) {
    ++visited;
    b.Reset(i);
  });
  EXPECT_EQ(visited, 64u);
  EXPECT_TRUE(b.None());
}

TEST(Bitset, SetAlgebra) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);

  DynamicBitset and_ab = a;
  and_ab.AndWith(b);
  EXPECT_EQ(and_ab.ToVector(), (std::vector<uint32_t>{50, 99}));

  DynamicBitset or_ab = a;
  or_ab.OrWith(b);
  EXPECT_EQ(or_ab.Count(), 4u);

  DynamicBitset diff = a;
  diff.AndNotWith(b);
  EXPECT_EQ(diff.ToVector(), (std::vector<uint32_t>{1}));

  EXPECT_EQ(a.AndCount(b), 2u);
  EXPECT_EQ(a.AndNotCount(b), 1u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(and_ab.IsSubsetOf(diff));
  EXPECT_TRUE(and_ab.IsSubsetOf(b));
}

TEST(Bitset, AndCount3) {
  DynamicBitset a(128), b(128), c(128);
  for (std::size_t i = 0; i < 128; ++i) {
    if (i % 2 == 0) a.Set(i);
    if (i % 3 == 0) b.Set(i);
    if (i % 5 == 0) c.Set(i);
  }
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 128; i += 30) ++expected;
  EXPECT_EQ(a.AndCount3(b, c), expected);
}

TEST(Bitset, AndCountLimit) {
  DynamicBitset a(256), b(256);
  a.Set(10);
  a.Set(100);
  a.Set(200);
  b.Set(10);
  b.Set(100);
  b.Set(200);
  EXPECT_EQ(a.AndCountLimit(b, 1), 1u);   // only word 0 (bits 0..63)
  EXPECT_EQ(a.AndCountLimit(b, 2), 2u);   // words 0..1 (bits 0..127)
  EXPECT_EQ(a.AndCountLimit(b, 4), 3u);
  EXPECT_EQ(a.AndCountLimit(b, 99), 3u);  // clamped to size
}

TEST(Bitset, ResetBelow) {
  DynamicBitset b(200);
  b.SetAll();
  b.ResetBelow(0);
  EXPECT_EQ(b.Count(), 200u);
  b.ResetBelow(1);
  EXPECT_EQ(b.Count(), 199u);
  EXPECT_EQ(b.FindFirst(), 1u);
  b.ResetBelow(64);
  EXPECT_EQ(b.FindFirst(), 64u);
  b.ResetBelow(65);
  EXPECT_EQ(b.FindFirst(), 65u);
  b.ResetBelow(500);
  EXPECT_TRUE(b.None());
}

TEST(Bitset, EqualityAndHash) {
  DynamicBitset a(77), b(77);
  a.Set(5);
  b.Set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(6);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(Bitset, SetRange) {
  DynamicBitset b(300);
  b.SetRange(0, 0);  // empty range: no-op
  EXPECT_TRUE(b.None());
  b.SetRange(5, 6);  // single bit
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{5}));
  b.ResetAll();
  b.SetRange(60, 70);  // crosses one word boundary
  EXPECT_EQ(b.Count(), 10u);
  EXPECT_EQ(b.FindFirst(), 60u);
  EXPECT_FALSE(b.Test(59));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(70));
  b.ResetAll();
  b.SetRange(1, 300);  // spans full interior words + partial tail word
  EXPECT_EQ(b.Count(), 299u);
  EXPECT_FALSE(b.Test(0));
  b.ResetAll();
  b.SetRange(64, 128);  // exactly one aligned word
  EXPECT_EQ(b.Count(), 64u);
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(127));
  EXPECT_FALSE(b.Test(128));
}

// Regression: writes to slack bits of the tail word (indices in
// [num_bits, words*64)) used to be silently accepted by Set/Reset and
// could make two equal-content bitsets compare unequal and hash apart.
// Debug builds now assert the index range; release builds mask the tail
// in Count/Hash/operator== so even a corrupted slack bit cannot change
// observable equality.
TEST(Bitset, SlackBitsCannotBreakEquality) {
#ifndef NDEBUG
  DynamicBitset guarded(70);
  EXPECT_DEATH(guarded.Set(70), "out of range");
  EXPECT_DEATH(guarded.Set(127), "out of range");
  EXPECT_DEATH(guarded.Reset(100), "out of range");
  EXPECT_DEATH(guarded.Test(71), "out of range");
#else
  // Release build: simulate slack corruption through the mutable word
  // view a kernel could write (same backing layout) and confirm the
  // comparison surface is immune.
  DynamicBitset a(70), b(70);
  a.Set(3);
  b.Set(3);
  // Corrupt a slack bit of `a` via its span's backing words.
  auto* words = const_cast<uint64_t*>(a.AsSpan().words);
  words[1] |= uint64_t{1} << 20;  // bit 84: beyond num_bits, within word
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
#endif
}

TEST(Bitset, EqualityRequiresSameSize) {
  DynamicBitset a(70), b(77);
  EXPECT_FALSE(a == b);  // same content, different widths
}

// Randomized differential test against std::set semantics.
TEST(Bitset, RandomizedAgainstReferenceSet) {
  Rng rng(42);
  const std::size_t n = 193;  // deliberately not a multiple of 64
  DynamicBitset bits(n);
  std::set<std::size_t> reference;
  for (int step = 0; step < 3000; ++step) {
    std::size_t i = rng.NextBounded(n);
    switch (rng.NextBounded(3)) {
      case 0:
        bits.Set(i);
        reference.insert(i);
        break;
      case 1:
        bits.Reset(i);
        reference.erase(i);
        break;
      default:
        EXPECT_EQ(bits.Test(i), reference.count(i) > 0);
    }
    if (step % 500 == 0) {
      EXPECT_EQ(bits.Count(), reference.size());
      std::vector<uint32_t> expect(reference.begin(), reference.end());
      EXPECT_EQ(bits.ToVector(), expect);
    }
  }
}

}  // namespace
}  // namespace kplex
