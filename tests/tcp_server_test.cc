// End-to-end tests of the TCP transport: concurrent clients over one
// shared ServiceApi produce fingerprints identical to an in-process
// serial run, the text and framed wires both work over a real socket,
// a client disconnect mid-job cancels its outstanding work through the
// per-job cancel flags, connections past the cap are refused with a
// structured error, and shutdown is graceful even mid-query.

#include "service/tcp_server.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_TEST_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "service/service_session.h"

namespace kplex {
namespace {

#if KPLEX_TEST_SOCKETS

Graph SmallGraph(uint64_t seed) { return GenerateErdosRenyi(150, 0.1, seed); }

// Dense enough that a (3, 6) query runs for many seconds — used to test
// cancellation mid-flight (the run is never allowed to finish).
Graph SlowGraph() { return GenerateBarabasiAlbert(4000, 24, 9); }

/// Minimal line-oriented TCP client for the tests.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                           sizeof(address)) == 0;
  }
  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Simulates a crashed client: SO_LINGER(0) turns close() into a TCP
  /// reset, which the server's hangup watcher observes immediately (an
  /// orderly FIN means "still reading responses" and must not cancel).
  void AbortiveClose() {
    if (fd_ < 0) return;
    struct linger hard = {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd_);
    fd_ = -1;
  }

  bool SendLine(const std::string& line) {
    const std::string bytes = line + "\n";
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads up to the next newline (blocking). Empty string on EOF.
  std::string ReadLine() {
    std::string line;
    char c;
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n <= 0) return buffer_;  // EOF: whatever is left
      buffer_ += c;
    }
  }

  /// One request, one response line.
  std::string RoundTrip(const std::string& line) {
    EXPECT_TRUE(SendLine(line)) << line;
    return ReadLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

struct Harness {
  explicit Harness(uint32_t workers = 2, uint32_t max_connections = 16) {
    ServiceApiOptions options;
    options.workers = workers;
    api = std::make_shared<ServiceApi>(options);
    TcpServerOptions server_options;
    server_options.max_connections = max_connections;
    server = std::make_unique<TcpServer>(api, server_options);
  }

  Status Start() { return server->Start(); }

  std::shared_ptr<ServiceApi> api;
  std::unique_ptr<TcpServer> server;
};

/// Extracts "fingerprint":"0x..." from a framed mine/wait response.
std::string FingerprintOf(const std::string& frame) {
  const std::string key = "\"fingerprint\":\"";
  const std::size_t start = frame.find(key);
  if (start == std::string::npos) return "";
  const std::size_t end = frame.find('"', start + key.size());
  return frame.substr(start + key.size(), end - start - key.size());
}

bool WaitForJobState(ServiceDispatcher& dispatcher, uint64_t id,
                     JobState state, double timeout_seconds = 10) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    auto info = dispatcher.GetJob(id);
    if (info.ok() && info->state == state) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(TcpServer, ConcurrentClientsMatchInProcessSerialFingerprints) {
  Graph graph = SmallGraph(21);
  Harness harness(/*workers=*/4);
  ASSERT_TRUE(harness.api->catalog().RegisterGraph("g", graph).ok());
  ASSERT_TRUE(harness.Start().ok());
  ASSERT_NE(harness.server->port(), 0);

  // In-process serial reference fingerprints, straight from the
  // sequential engine (no service layer involved).
  std::map<uint32_t, std::string> reference;
  for (uint32_t q = 4; q <= 7; ++q) {
    HashingSink sink;
    ASSERT_TRUE(
        EnumerateMaximalKPlexes(graph, EnumOptions::Ours(2, q), sink).ok());
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(sink.fingerprint()));
    reference[q] = buf;
  }

  // Two clients mine the same query family concurrently, in framed
  // mode (the framed wire carries the fingerprint).
  auto client_run = [&](std::map<uint32_t, std::string>& out) {
    TestClient client(harness.server->port());
    ASSERT_TRUE(client.connected());
    const std::string hello = client.RoundTrip("hello mode=framed");
    ASSERT_NE(hello.find("\"type\":\"hello\""), std::string::npos) << hello;
    for (uint32_t q = 4; q <= 7; ++q) {
      const std::string response = client.RoundTrip(
          "{\"cmd\":\"mine\",\"graph\":\"g\",\"k\":2,\"q\":" +
          std::to_string(q) + "}");
      ASSERT_NE(response.find("\"state\":\"done\""), std::string::npos)
          << response;
      out[q] = FingerprintOf(response);
    }
  };
  std::map<uint32_t, std::string> first, second;
  std::thread a([&] { client_run(first); });
  std::thread b([&] { client_run(second); });
  a.join();
  b.join();
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
}

TEST(TcpServer, LoadSubmitWaitCancelFlowOverTextWire) {
  Graph graph = SmallGraph(33);
  const std::string path =
      ::testing::TempDir() + "kplex_tcp_test_edges_" +
      std::to_string(::getpid());
  ASSERT_TRUE(SaveEdgeList(graph, path).ok());

  Harness harness;
  ASSERT_TRUE(harness.Start().ok());
  TestClient client(harness.server->port());
  ASSERT_TRUE(client.connected());

  const std::string loaded = client.RoundTrip("load g " + path);
  EXPECT_EQ(loaded.find("loaded g: "), 0u) << loaded;
  const std::string submitted = client.RoundTrip("submit g 2 5");
  EXPECT_EQ(submitted, "job 1 submitted: mine g k=2 q=5 algo=ours");
  const std::string waited = client.RoundTrip("wait 1");
  EXPECT_EQ(waited.find("job 1: mined g k=2 q=5"), 0u) << waited;
  // The job is terminal now, so cancel reports the structured
  // FAILED_PRECONDITION the in-process session reports.
  const std::string cancelled = client.RoundTrip("cancel 1");
  EXPECT_EQ(cancelled, "error: FAILED_PRECONDITION: job 1 already finished "
                       "(done)");
  client.SendLine("quit");
  EXPECT_EQ(client.ReadLine(), "");  // server closes after quit
  std::remove(path.c_str());
}

TEST(TcpServer, ClientDisconnectMidJobCancelsThroughPerJobFlag) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.api->catalog().RegisterGraph("big", SlowGraph()).ok());
  ASSERT_TRUE(harness.Start().ok());

  {
    TestClient client(harness.server->port());
    ASSERT_TRUE(client.connected());
    const std::string submitted = client.RoundTrip("submit big 3 6");
    EXPECT_EQ(submitted.find("job 1 submitted"), 0u) << submitted;
    ASSERT_TRUE(WaitForJobState(harness.api->dispatcher(), 1,
                                JobState::kRunning));
    // Abrupt disconnect: no quit, no wait — the server must notice and
    // release the worker via the job's cancel flag.
    client.Close();
  }
  EXPECT_TRUE(WaitForJobState(harness.api->dispatcher(), 1,
                              JobState::kCancelled))
      << "disconnect did not cancel the running job";
  auto info = harness.api->dispatcher().GetJob(1);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->result.cancelled);
}

TEST(TcpServer, ResetDuringSynchronousMineReleasesTheWorker) {
  // The worst abandonment shape: the session thread is *blocked* in a
  // synchronous mine (nobody recv's), and the client dies abruptly.
  // The per-connection watcher must spot the reset and cancel the
  // mine's job so the single worker is freed for other clients.
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.api->catalog().RegisterGraph("big", SlowGraph()).ok());
  ASSERT_TRUE(
      harness.api->catalog().RegisterGraph("small", SmallGraph(7)).ok());
  ASSERT_TRUE(harness.Start().ok());

  {
    TestClient client(harness.server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendLine("mine big 3 6"));  // blocks server-side
    ASSERT_TRUE(WaitForJobState(harness.api->dispatcher(), 1,
                                JobState::kRunning));
    client.AbortiveClose();
  }
  EXPECT_TRUE(WaitForJobState(harness.api->dispatcher(), 1,
                              JobState::kCancelled))
      << "reset did not cancel the in-flight synchronous mine";

  // And the lone worker is actually free again: a fresh query runs.
  QueryRequest follow_up;
  follow_up.graph = "small";
  follow_up.k = 2;
  follow_up.q = 5;
  auto id = harness.api->dispatcher().Submit(follow_up);
  ASSERT_TRUE(id.ok());
  auto info = harness.api->dispatcher().Wait(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kDone);
}

TEST(TcpServer, ConnectionsPastTheCapAreRefusedWithAStructuredError) {
  Harness harness(/*workers=*/1, /*max_connections=*/1);
  ASSERT_TRUE(harness.api->catalog()
                  .RegisterGraph("g", SmallGraph(5))
                  .ok());
  ASSERT_TRUE(harness.Start().ok());

  TestClient first(harness.server->port());
  ASSERT_TRUE(first.connected());
  // Prove the first session is live (and therefore counted) before the
  // second connection arrives.
  EXPECT_EQ(first.RoundTrip("evict nope"),
            "error: NOT_FOUND: no graph named 'nope' is registered");

  TestClient second(harness.server->port());
  ASSERT_TRUE(second.connected());
  EXPECT_EQ(second.ReadLine(),
            "error: FAILED_PRECONDITION: connection limit reached (1)");
  EXPECT_EQ(second.ReadLine(), "");  // and closed

  // The first session keeps working; once it quits, a new client fits.
  EXPECT_EQ(first.RoundTrip("evict nope"),
            "error: NOT_FOUND: no graph named 'nope' is registered");
  first.SendLine("quit");
  EXPECT_EQ(first.ReadLine(), "");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < deadline) {
    TestClient retry(harness.server->port());
    ASSERT_TRUE(retry.connected());
    const std::string line = retry.RoundTrip("jobs");
    admitted = line.find("connection limit") == std::string::npos &&
               !line.empty();
  }
  EXPECT_TRUE(admitted);

  const TcpServer::Stats stats = harness.server->stats();
  EXPECT_GE(stats.refused, 1u);
  EXPECT_GE(stats.accepted, 2u);
}

TEST(TcpServer, StopIsGracefulMidQueryAndIdempotent) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.api->catalog().RegisterGraph("big", SlowGraph()).ok());
  ASSERT_TRUE(harness.Start().ok());

  TestClient client(harness.server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_EQ(client.RoundTrip("submit big 3 6").find("job 1 submitted"), 0u);
  ASSERT_TRUE(WaitForJobState(harness.api->dispatcher(), 1,
                              JobState::kRunning));

  // Stop must cancel the running job (no worker pins the join) and
  // return promptly; the gtest timeout is the enforcement.
  harness.server->Stop();
  harness.server->Stop();  // idempotent
  // Stop requested the cancel; the worker retires the job at its next
  // cancellation poll (milliseconds) — wait for the terminal state.
  auto info = harness.api->dispatcher().Wait(1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kCancelled);
  // The client observes the close.
  client.SendLine("jobs");
  EXPECT_EQ(client.ReadLine(), "");

  // The shared api survives the server: a fresh server can start on it.
  TcpServerOptions options;
  TcpServer second(harness.api, options);
  ASSERT_TRUE(second.Start().ok());
  TestClient reuse(second.port());
  ASSERT_TRUE(reuse.connected());
  EXPECT_EQ(reuse.RoundTrip("evict nope"),
            "error: NOT_FOUND: no graph named 'nope' is registered");
}

#else  // !KPLEX_TEST_SOCKETS

TEST(TcpServer, UnsupportedPlatformReportsUnimplemented) {
  auto api = std::make_shared<ServiceApi>();
  TcpServer server(api, {});
  EXPECT_EQ(server.Start().code(), StatusCode::kUnimplemented);
}

#endif  // KPLEX_TEST_SOCKETS

}  // namespace
}  // namespace kplex
