// Unit tests for the deterministic RNG.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace kplex {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be close to 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  uint64_t state = 0;
  uint64_t first = SplitMix64(state);
  uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
}

}  // namespace
}  // namespace kplex
