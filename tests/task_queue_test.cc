// Unit tests for the work-stealing task queue: LIFO owner side, FIFO
// thief side, and thread-safety under concurrent push/pop/steal.

#include "parallel/task_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/degeneracy.h"

namespace kplex {
namespace {

// A SeedGraph is required to size TaskStates; build a tiny shared one.
std::shared_ptr<const SeedGraph> TinySeedGraph() {
  static std::shared_ptr<const SeedGraph> cached = [] {
    Graph g = GenerateErdosRenyi(20, 0.5, 1);
    DegeneracyResult degeneracy = ComputeDegeneracy(g);
    EnumOptions options = EnumOptions::Ours(2, 3);
    for (VertexId seed = 0; seed < g.NumVertices(); ++seed) {
      auto sg = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
      if (sg.has_value()) {
        return std::make_shared<const SeedGraph>(std::move(*sg));
      }
    }
    return std::shared_ptr<const SeedGraph>();
  }();
  return cached;
}

ParallelTask MakeTask(uint32_t tag) {
  auto sg = TinySeedGraph();
  ParallelTask task;
  task.seed_graph = sg;
  task.state = TaskState::MakeEmpty(*sg);
  task.state.p_size = tag;  // use p_size as an identity tag
  return task;
}

TEST(TaskQueue, EmptyByDefault) {
  TaskQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
  ParallelTask out;
  EXPECT_FALSE(queue.TryPop(out));
  EXPECT_FALSE(queue.TrySteal(out));
}

TEST(TaskQueue, OwnerPopsLifoThiefStealsFifo) {
  TaskQueue queue;
  queue.Push(MakeTask(1));
  queue.Push(MakeTask(2));
  queue.Push(MakeTask(3));
  EXPECT_EQ(queue.Size(), 3u);

  ParallelTask out;
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out.state.p_size, 3u);  // most recent first (locality)
  ASSERT_TRUE(queue.TrySteal(out));
  EXPECT_EQ(out.state.p_size, 1u);  // oldest stolen first
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out.state.p_size, 2u);
  EXPECT_TRUE(queue.Empty());
}

TEST(TaskQueue, StressConcurrentPushStealWithCancellationMidDrain) {
  // The dispatcher-era failure mode: a parallel mine is cancelled while
  // its workers are mid-drain, so consumers stop abruptly with tasks
  // still queued. The queue must neither lose nor duplicate tasks:
  // tag-sums over (consumed + left behind) must equal what was pushed.
  TaskQueue queue;
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kTasksPerProducer = 1500;
  constexpr uint64_t kTotalTasks = kProducers * kTasksPerProducer;

  std::atomic<bool> cancel{false};
  std::atomic<uint32_t> producers_done{0};
  std::atomic<uint64_t> consumed_count{0};
  std::atomic<uint64_t> consumed_tag_sum{0};

  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint32_t i = 0; i < kTasksPerProducer; ++i) {
        // Unique tag per task across all producers.
        queue.Push(MakeTask(p * kTasksPerProducer + i + 1));
      }
      producers_done.fetch_add(1);
    });
  }
  // Mixed-discipline consumers (2 owner-side poppers, 2 thieves), all
  // honoring the cancel flag between pops — exactly how the parallel
  // engine's workers drain under EnumOptions::cancel.
  auto consumer = [&](bool steal) {
    ParallelTask out;
    while (!cancel.load(std::memory_order_relaxed)) {
      bool got = steal ? queue.TrySteal(out) : queue.TryPop(out);
      if (got) {
        consumed_count.fetch_add(1, std::memory_order_relaxed);
        consumed_tag_sum.fetch_add(out.state.p_size,
                                   std::memory_order_relaxed);
      } else if (producers_done.load() == kProducers && queue.Empty()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::vector<std::thread> consumers;
  consumers.emplace_back(consumer, false);
  consumers.emplace_back(consumer, false);
  consumers.emplace_back(consumer, true);
  consumers.emplace_back(consumer, true);

  // Flip the cancel mid-drain: after roughly a third of the work has
  // been consumed (never wait for completion — that defeats the test).
  while (consumed_count.load() < kTotalTasks / 3) {
    std::this_thread::yield();
  }
  cancel.store(true);
  for (auto& thread : producers) thread.join();
  for (auto& thread : consumers) thread.join();

  // Drain the leftovers serially and account for every task exactly
  // once: total tag sum is sum(1..kTotalTasks).
  uint64_t leftover_count = 0;
  uint64_t leftover_tag_sum = 0;
  ParallelTask out;
  while (queue.TryPop(out)) {
    ++leftover_count;
    leftover_tag_sum += out.state.p_size;
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(consumed_count.load() + leftover_count, kTotalTasks);
  const uint64_t expected_tag_sum = kTotalTasks * (kTotalTasks + 1) / 2;
  EXPECT_EQ(consumed_tag_sum.load() + leftover_tag_sum, expected_tag_sum);
}

TEST(TaskQueue, ConcurrentPushPopStealLosesNothing) {
  TaskQueue queue;
  constexpr uint32_t kTasks = 2000;
  std::atomic<uint32_t> consumed{0};
  std::atomic<bool> done_producing{false};

  std::thread producer([&] {
    for (uint32_t i = 0; i < kTasks; ++i) queue.Push(MakeTask(i));
    done_producing.store(true);
  });
  auto consumer = [&](bool steal) {
    ParallelTask out;
    while (true) {
      bool got = steal ? queue.TrySteal(out) : queue.TryPop(out);
      if (got) {
        consumed.fetch_add(1);
      } else if (done_producing.load() && queue.Empty()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::thread popper(consumer, false);
  std::thread thief(consumer, true);
  producer.join();
  popper.join();
  thief.join();
  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace kplex
