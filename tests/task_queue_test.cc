// Unit tests for the work-stealing task queue: LIFO owner side, FIFO
// thief side, and thread-safety under concurrent push/pop/steal.

#include "parallel/task_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "graph/generators.h"
#include "graph/degeneracy.h"

namespace kplex {
namespace {

// A SeedGraph is required to size TaskStates; build a tiny shared one.
std::shared_ptr<const SeedGraph> TinySeedGraph() {
  static std::shared_ptr<const SeedGraph> cached = [] {
    Graph g = GenerateErdosRenyi(20, 0.5, 1);
    DegeneracyResult degeneracy = ComputeDegeneracy(g);
    EnumOptions options = EnumOptions::Ours(2, 3);
    for (VertexId seed = 0; seed < g.NumVertices(); ++seed) {
      auto sg = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
      if (sg.has_value()) {
        return std::make_shared<const SeedGraph>(std::move(*sg));
      }
    }
    return std::shared_ptr<const SeedGraph>();
  }();
  return cached;
}

ParallelTask MakeTask(uint32_t tag) {
  auto sg = TinySeedGraph();
  ParallelTask task;
  task.seed_graph = sg;
  task.state = TaskState::MakeEmpty(*sg);
  task.state.p_size = tag;  // use p_size as an identity tag
  return task;
}

TEST(TaskQueue, EmptyByDefault) {
  TaskQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
  ParallelTask out;
  EXPECT_FALSE(queue.TryPop(out));
  EXPECT_FALSE(queue.TrySteal(out));
}

TEST(TaskQueue, OwnerPopsLifoThiefStealsFifo) {
  TaskQueue queue;
  queue.Push(MakeTask(1));
  queue.Push(MakeTask(2));
  queue.Push(MakeTask(3));
  EXPECT_EQ(queue.Size(), 3u);

  ParallelTask out;
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out.state.p_size, 3u);  // most recent first (locality)
  ASSERT_TRUE(queue.TrySteal(out));
  EXPECT_EQ(out.state.p_size, 1u);  // oldest stolen first
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out.state.p_size, 2u);
  EXPECT_TRUE(queue.Empty());
}

TEST(TaskQueue, ConcurrentPushPopStealLosesNothing) {
  TaskQueue queue;
  constexpr uint32_t kTasks = 2000;
  std::atomic<uint32_t> consumed{0};
  std::atomic<bool> done_producing{false};

  std::thread producer([&] {
    for (uint32_t i = 0; i < kTasks; ++i) queue.Push(MakeTask(i));
    done_producing.store(true);
  });
  auto consumer = [&](bool steal) {
    ParallelTask out;
    while (true) {
      bool got = steal ? queue.TrySteal(out) : queue.TryPop(out);
      if (got) {
        consumed.fetch_add(1);
      } else if (done_producing.load() && queue.Empty()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::thread popper(consumer, false);
  std::thread thief(consumer, true);
  producer.join();
  popper.join();
  thief.join();
  EXPECT_EQ(consumed.load(), kTasks);
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace kplex
