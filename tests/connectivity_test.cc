// Unit tests for connected components, BFS distances and triangle
// counting / clustering coefficients.

#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/triangles.h"

namespace kplex {
namespace {

TEST(Components, SingleComponent) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 1u);
  EXPECT_EQ(result.LargestSize(), 4u);
}

TEST(Components, MultipleComponentsAndIsolated) {
  Graph g = GraphBuilder::FromEdges(6, {{0, 1}, {2, 3}});
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 4u);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(result.LargestSize(), 2u);
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_NE(result.component[0], result.component[2]);
}

TEST(Components, EmptyGraph) {
  Graph g;
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 0u);
  EXPECT_EQ(result.LargestSize(), 0u);
}

TEST(Components, SizesSumToN) {
  Graph g = GenerateErdosRenyi(200, 0.008, 5);
  auto result = ConnectedComponents(g);
  std::size_t total = 0;
  for (std::size_t s : result.sizes) total += s;
  EXPECT_EQ(total, 200u);
}

TEST(Bfs, DistancesOnPath) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Triangles, TriangleAndSquare) {
  Graph triangle = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(CountTriangles(triangle), 1u);
  Graph square = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(CountTriangles(square), 0u);
}

TEST(Triangles, CompleteGraphCount) {
  // K_n has C(n,3) triangles.
  std::vector<std::pair<VertexId, VertexId>> edges;
  const std::size_t n = 8;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  Graph g = GraphBuilder::FromEdges(n, edges);
  EXPECT_EQ(CountTriangles(g), 56u);  // C(8,3)
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g), 1.0);
}

TEST(Triangles, PerVertexSumsToThreeTimesTotal) {
  Graph g = GenerateErdosRenyi(60, 0.2, 9);
  auto per_vertex = CountTrianglesPerVertex(g);
  uint64_t sum = 0;
  for (uint64_t t : per_vertex) sum += t;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
}

TEST(Triangles, MatchesNaiveCount) {
  Graph g = GenerateErdosRenyi(40, 0.25, 10);
  uint64_t naive = 0;
  for (VertexId a = 0; a < g.NumVertices(); ++a) {
    for (VertexId b = a + 1; b < g.NumVertices(); ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (VertexId c = b + 1; c < g.NumVertices(); ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++naive;
      }
    }
  }
  EXPECT_EQ(CountTriangles(g), naive);
}

TEST(Triangles, ClusteringInUnitInterval) {
  Graph g = GenerateWattsStrogatz(200, 6, 0.1, 11);
  double global = GlobalClusteringCoefficient(g);
  double local = AverageLocalClustering(g);
  EXPECT_GE(global, 0.0);
  EXPECT_LE(global, 1.0);
  EXPECT_GE(local, 0.0);
  EXPECT_LE(local, 1.0);
  // Watts-Strogatz at low beta retains high clustering.
  EXPECT_GT(local, 0.3);
}

}  // namespace
}  // namespace kplex
