// Unit tests for core decomposition, degeneracy ordering and k-core
// reduction, including the Theorem 3.5 containment property.

#include "graph/degeneracy.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/kcore.h"

namespace kplex {
namespace {

Graph Clique(std::size_t n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return GraphBuilder::FromEdges(n, edges);
}

TEST(Degeneracy, PathGraphIsOneDegenerate) {
  Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto result = ComputeDegeneracy(g);
  EXPECT_EQ(result.degeneracy, 1u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(result.coreness[v], 1u);
}

TEST(Degeneracy, CliqueDegeneracy) {
  auto result = ComputeDegeneracy(Clique(6));
  EXPECT_EQ(result.degeneracy, 5u);
}

TEST(Degeneracy, OrderAndRankAreInverse) {
  Graph g = GenerateBarabasiAlbert(100, 3, 77);
  auto result = ComputeDegeneracy(g);
  ASSERT_EQ(result.order.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(result.rank[result.order[i]], i);
  }
}

TEST(Degeneracy, TieBreakByVertexId) {
  // A 4-cycle: all degrees equal; vertices must peel in id order.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto result = ComputeDegeneracy(g);
  EXPECT_EQ(result.order, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Degeneracy, LaterNeighborsBoundedByDegeneracy) {
  // The defining property the seed-subgraph size bound relies on: every
  // vertex has at most D neighbors later in the ordering.
  Graph g = GenerateErdosRenyi(150, 0.08, 99);
  auto result = ComputeDegeneracy(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    uint32_t later = 0;
    for (VertexId u : g.Neighbors(v)) {
      if (result.rank[u] > result.rank[v]) ++later;
    }
    EXPECT_LE(later, result.degeneracy);
  }
}

TEST(Degeneracy, CorenessMonotoneAlongOrder) {
  Graph g = GenerateBarabasiAlbert(200, 4, 5);
  auto result = ComputeDegeneracy(g);
  for (std::size_t i = 1; i < result.order.size(); ++i) {
    EXPECT_LE(result.coreness[result.order[i - 1]],
              result.coreness[result.order[i]]);
  }
}

TEST(KCore, ReduceRemovesLowDegreeVertices) {
  // Triangle + pendant: the 2-core is the triangle.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto core = ReduceToCore(g, 2);
  EXPECT_EQ(core.graph.NumVertices(), 3u);
  EXPECT_EQ(core.graph.NumEdges(), 3u);
  EXPECT_EQ(core.to_original, (std::vector<VertexId>{0, 1, 2}));
}

TEST(KCore, EmptyWhenThresholdTooHigh) {
  Graph g = Clique(4);
  auto core = ReduceToCore(g, 4);
  EXPECT_EQ(core.graph.NumVertices(), 0u);
}

TEST(KCore, ZeroCoreIsIdentity) {
  Graph g = GenerateErdosRenyi(30, 0.1, 3);
  auto core = ReduceToCore(g, 0);
  EXPECT_EQ(core.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(core.graph.NumEdges(), g.NumEdges());
}

TEST(KCore, CoreMinimumDegreeHolds) {
  Graph g = GenerateBarabasiAlbert(120, 3, 8);
  for (uint32_t c : {2u, 3u, 4u}) {
    auto core = ReduceToCore(g, c);
    for (VertexId v = 0; v < core.graph.NumVertices(); ++v) {
      EXPECT_GE(core.graph.Degree(v), c);
    }
  }
}

TEST(KCore, CorenessConsistentWithCores) {
  Graph g = GenerateErdosRenyi(80, 0.1, 21);
  auto degeneracy = ComputeDegeneracy(g);
  for (uint32_t c = 1; c <= degeneracy.degeneracy; ++c) {
    auto core = ReduceToCore(g, c);
    std::size_t expected = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (degeneracy.coreness[v] >= c) ++expected;
    }
    EXPECT_EQ(core.graph.NumVertices(), expected) << "c=" << c;
  }
}

}  // namespace
}  // namespace kplex
