// Admissibility of every upper bound (Theorems 5.3, 5.5, 5.7): the bound
// must never be smaller than the size of the largest k-plex actually
// reachable from the bounded state. Verified by exhaustive search inside
// seed subgraphs of random graphs.

#include "core/bounds.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/seed_graph.h"
#include "core/subtask.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/kcore.h"

namespace kplex {
namespace {

// True iff `members` (local ids) induce a k-plex in the seed graph.
bool IsLocalKPlex(const SeedGraph& sg, const DynamicBitset& members,
                  uint32_t k) {
  const std::size_t size = members.Count();
  bool ok = true;
  members.ForEach([&](std::size_t v) {
    const std::size_t degree =
        sg.adj.Row(static_cast<uint32_t>(v)).AndCount(members);
    if (size - degree > k) ok = false;
  });
  return ok;
}

// Largest k-plex containing `base` using any subset of `candidates`
// (exhaustive; |candidates| must stay small).
uint32_t MaxReachableKPlex(const SeedGraph& sg, const DynamicBitset& base,
                           const std::vector<uint32_t>& candidates,
                           uint32_t k) {
  uint32_t best = 0;
  const std::size_t m = candidates.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    DynamicBitset members = base;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) members.Set(candidates[i]);
    }
    if (IsLocalKPlex(sg, members, k)) {
      best = std::max(best, static_cast<uint32_t>(members.Count()));
    }
  }
  return best;
}

struct BoundParam {
  std::size_t n;
  int edge_percent;
  uint32_t k;
  uint32_t q;
  uint64_t seed;
};

class BoundAdmissibility : public ::testing::TestWithParam<BoundParam> {};

TEST_P(BoundAdmissibility, SubtaskAndSupportBoundsNeverUnderestimate) {
  const auto& p = GetParam();
  Graph g = GenerateErdosRenyi(p.n, p.edge_percent / 100.0, p.seed);
  EnumOptions options = EnumOptions::Ours(p.k, p.q);
  options.use_subtask_bound_r1 = false;  // keep all sub-tasks for probing
  CoreReduction core = ReduceToCore(g, p.q - p.k);
  if (core.graph.NumVertices() == 0) GTEST_SKIP() << "empty core";
  DegeneracyResult degeneracy = ComputeDegeneracy(core.graph);

  BoundScratch scratch;
  AlgoCounters counters;
  uint64_t states_probed = 0;
  for (VertexId seed = 0; seed < core.graph.NumVertices(); ++seed) {
    auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy,
                             degeneracy.order[seed], options, &counters);
    if (!sg.has_value()) continue;
    EnumerateSubtasks(*sg, options, counters, [&](TaskState&& task) {
      std::vector<uint32_t> candidates = task.c.ToVector();
      if (candidates.size() > 16) return;  // keep brute force tractable
      ++states_probed;

      // Theorem 5.7 sub-task bound.
      const uint32_t true_max =
          MaxReachableKPlex(*sg, task.p, candidates, p.k);
      const uint32_t ub_subtask = UbSubtask(*sg, task, p.k, scratch);
      EXPECT_GE(ub_subtask, true_max) << "Theorem 5.7 bound underestimates";

      // Theorem 5.5 / FP-sorted bounds for every pivot choice in C.
      for (uint32_t vp : candidates) {
        // Only pivots that keep P ∪ {vp} a k-plex are ever bounded.
        DynamicBitset with_pivot = task.p;
        with_pivot.Set(vp);
        if (!IsLocalKPlex(*sg, with_pivot, p.k)) continue;
        std::vector<uint32_t> rest;
        for (uint32_t c : candidates) {
          if (c != vp) rest.push_back(c);
        }
        const uint32_t truth =
            MaxReachableKPlex(*sg, with_pivot, rest, p.k);
        const uint32_t ub55 = UbSupport(*sg, task, vp, p.k, scratch);
        EXPECT_GE(ub55, truth) << "Theorem 5.5 bound underestimates";
        const uint32_t ub_fp =
            UbSupportSorted(*sg, task, vp, p.k, scratch);
        EXPECT_GE(ub_fp, truth) << "FP-style bound underestimates";
        const uint32_t ub53 = UbDegree(*sg, task, vp, p.k);
        EXPECT_GE(ub53, truth) << "Theorem 5.3 bound underestimates";
      }
    });
  }
  EXPECT_GT(states_probed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BoundAdmissibility,
    ::testing::Values(BoundParam{12, 50, 2, 3, 71},
                      BoundParam{12, 70, 2, 4, 72},
                      BoundParam{13, 60, 3, 5, 73},
                      BoundParam{14, 50, 2, 4, 74},
                      BoundParam{14, 65, 3, 6, 75},
                      BoundParam{12, 85, 4, 7, 76},
                      BoundParam{13, 80, 4, 8, 77},
                      BoundParam{15, 45, 2, 5, 78}));

}  // namespace
}  // namespace kplex
