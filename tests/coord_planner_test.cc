// Unit tests for the coordinator's chunk planner and worker pool
// (src/coord/planner.h, src/coord/worker_pool.h).

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "coord/planner.h"
#include "coord/worker_pool.h"
#include "core/seed_plan.h"

namespace kplex {
namespace {

// Every plan must exactly partition [0, n): contiguous, non-empty,
// gap-free, ending at n.
void ExpectExactPartition(const std::vector<CoordChunk>& chunks, uint64_t n) {
  if (n == 0) {
    EXPECT_TRUE(chunks.empty());
    return;
  }
  ASSERT_FALSE(chunks.empty());
  uint32_t cursor = 0;
  for (const CoordChunk& chunk : chunks) {
    EXPECT_EQ(chunk.begin, cursor);
    EXPECT_LT(chunk.begin, chunk.end);
    cursor = chunk.end;
  }
  EXPECT_EQ(cursor, n);
}

TEST(EstimateSeedCosts, AppliesSeedPlanCostElementwise) {
  const std::vector<uint32_t> degrees = {0, 3, 10};
  const std::vector<uint32_t> coreness = {0, 2, 5};
  const std::vector<uint64_t> costs = EstimateSeedCosts(degrees, coreness);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0], SeedPlanCost(0, 0));
  EXPECT_EQ(costs[1], SeedPlanCost(3, 2));
  EXPECT_EQ(costs[2], SeedPlanCost(10, 5));
  EXPECT_EQ(costs[1], 12u);  // (3+1) * (2+1)
}

TEST(PlanCostChunks, UniformCostsSplitEvenly) {
  const std::vector<uint64_t> costs(100, 7);
  const auto chunks = PlanCostChunks(costs, 10);
  ExpectExactPartition(chunks, 100);
  EXPECT_EQ(chunks.size(), 10u);
  for (const CoordChunk& chunk : chunks) {
    EXPECT_EQ(chunk.end - chunk.begin, 10u);
    EXPECT_EQ(chunk.est_cost, 70u);
  }
}

TEST(PlanCostChunks, SkewedCostsGetSmallChunksAroundTheHub) {
  // One hub seed worth as much as everything else combined.
  std::vector<uint64_t> costs(64, 1);
  costs[5] = 64;
  const auto chunks = PlanCostChunks(costs, 8);
  ExpectExactPartition(chunks, 64);
  EXPECT_GT(chunks.size(), 1u);
  EXPECT_LE(chunks.size(), 8u);
  // The chunk holding the hub should close quickly: the hub alone
  // exceeds the per-chunk share, so its chunk stays narrow.
  for (const CoordChunk& chunk : chunks) {
    if (chunk.begin <= 5 && 5 < chunk.end) {
      EXPECT_LE(chunk.end - chunk.begin, 8u);
    }
  }
}

TEST(PlanCostChunks, ChunkCostsSumToTotal) {
  std::vector<uint64_t> costs;
  for (uint32_t i = 0; i < 37; ++i) costs.push_back((i * 13) % 11 + 1);
  const uint64_t total = std::accumulate(costs.begin(), costs.end(),
                                         uint64_t{0});
  const auto chunks = PlanCostChunks(costs, 5);
  ExpectExactPartition(chunks, 37);
  uint64_t planned = 0;
  for (const CoordChunk& chunk : chunks) planned += chunk.est_cost;
  EXPECT_EQ(planned, total);
}

TEST(PlanCostChunks, DegenerateInputs) {
  EXPECT_TRUE(PlanCostChunks({}, 4).empty());
  const auto one = PlanCostChunks({5}, 4);
  ExpectExactPartition(one, 1);
  EXPECT_EQ(one.size(), 1u);
  // target_chunks = 1: everything in one chunk.
  const auto single = PlanCostChunks({1, 2, 3}, 1);
  ExpectExactPartition(single, 3);
  EXPECT_EQ(single.size(), 1u);
}

TEST(PlanUniformChunks, SplitsAndSkipsEmptyRanges) {
  const auto chunks = PlanUniformChunks(10, 4);
  ExpectExactPartition(chunks, 10);
  EXPECT_EQ(chunks.size(), 4u);
  // More chunks than seeds: one chunk per seed, none empty.
  const auto tiny = PlanUniformChunks(3, 8);
  ExpectExactPartition(tiny, 3);
  EXPECT_EQ(tiny.size(), 3u);
  EXPECT_TRUE(PlanUniformChunks(0, 4).empty());
}

TEST(WorkerPool, RegisterAssignsStableIdsAndRevives) {
  WorkerPool pool;
  const uint64_t a = pool.Register("127.0.0.1:7001");
  const uint64_t b = pool.Register("127.0.0.1:7002");
  EXPECT_NE(a, b);
  // Re-registering a known endpoint keeps its id (tallies survive).
  pool.MarkDead(a);
  EXPECT_EQ(pool.Register("127.0.0.1:7001"), a);
  auto record = pool.Get(a);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, WorkerState::kIdle);
}

TEST(WorkerPool, HeartbeatRevivesDeadWorkers) {
  WorkerPool pool;
  const uint64_t id = pool.Register("127.0.0.1:7001");
  pool.MarkDead(id);
  ASSERT_TRUE(pool.Heartbeat(id).ok());
  auto record = pool.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, WorkerState::kIdle);
  EXPECT_EQ(pool.Heartbeat(999).code(), StatusCode::kNotFound);
}

TEST(WorkerPool, DrainRemovesFromSchedulableSet) {
  WorkerPool pool;
  const uint64_t a = pool.Register("127.0.0.1:7001");
  const uint64_t b = pool.Register("127.0.0.1:7002");
  ASSERT_TRUE(pool.Drain(a).ok());
  const auto schedulable = pool.Schedulable();
  ASSERT_EQ(schedulable.size(), 1u);
  EXPECT_EQ(schedulable[0].id, b);
  // A draining worker finishing its chunk must NOT return to idle.
  pool.MarkIdle(a);
  auto record = pool.Get(a);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, WorkerState::kDraining);
  // Draining a dead worker is refused; draining an unknown one is 404.
  pool.MarkDead(b);
  EXPECT_EQ(pool.Drain(b).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.Drain(999).code(), StatusCode::kNotFound);
}

TEST(WorkerPool, BusyWorkersStaySchedulable) {
  WorkerPool pool;
  const uint64_t id = pool.Register("127.0.0.1:7001");
  pool.MarkBusy(id);
  ASSERT_EQ(pool.Schedulable().size(), 1u);
  pool.NoteChunkDone(id);
  pool.MarkIdle(id);
  auto record = pool.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, WorkerState::kIdle);
  EXPECT_EQ(record->chunks_done, 1u);
}

}  // namespace
}  // namespace kplex
