// Tests for the reference enumerators and the re-implemented baselines:
// Algorithm 1 vs brute force, and baseline-specific behaviours (FP's
// monolithic tasks, ListPlex's configuration).

#include "baselines/bk_naive.h"

#include <gtest/gtest.h>

#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "core/enumerator.h"
#include "graph/builder.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::DiffSets;
using testing_util::RunEngine;

TEST(BruteForce, RejectsLargeGraphs) {
  Graph g = GenerateErdosRenyi(30, 0.1, 1);
  EXPECT_FALSE(BruteForceMaximalKPlexes(g, 2, 3).ok());
}

TEST(BruteForce, TriangleCliques) {
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto result = BruteForceMaximalKPlexes(g, 1, 2);
  ASSERT_TRUE(result.ok());
  // Maximal cliques of size >= 2: {0,1,2} and {2,3}.
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ((*result)[1], (std::vector<VertexId>{2, 3}));
}

TEST(BkReference, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Graph g = GenerateErdosRenyi(11, 0.45, seed * 17);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {1, 2}, {2, 2}, {2, 4}, {3, 3}}) {
      auto truth = BruteForceMaximalKPlexes(g, k, q);
      ASSERT_TRUE(truth.ok());
      CollectingSink sink;
      uint64_t count = BkReferenceEnumerate(g, k, q, sink);
      EXPECT_EQ(count, truth->size());
      EXPECT_EQ(sink.SortedResults(), *truth)
          << "k=" << k << " q=" << q << " seed=" << seed << "\n"
          << DiffSets(*truth, sink.SortedResults());
    }
  }
}

TEST(BkReference, SupportsSmallQBelowConnectivityThreshold) {
  // Unlike the partitioned engine, the reference accepts q < 2k - 1
  // (it never relies on the two-hop property). A 2-plex of size 2 with
  // disconnected pair must be found with q = 2, k = 3.
  Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  auto truth = BruteForceMaximalKPlexes(g, 3, 2);
  ASSERT_TRUE(truth.ok());
  CollectingSink sink;
  BkReferenceEnumerate(g, 3, 2, sink);
  EXPECT_EQ(sink.SortedResults(), *truth);
}

TEST(ListPlex, OptionsMatchPaperCharacterization) {
  EnumOptions options = ListPlexOptions(3, 12);
  EXPECT_EQ(options.k, 3u);
  EXPECT_EQ(options.q, 12u);
  EXPECT_EQ(options.branching, BranchingScheme::kFaplexenAlways);
  EXPECT_EQ(options.upper_bound, UpperBoundMode::kNone);
  EXPECT_FALSE(options.pivot_saturation_tiebreak);
  EXPECT_FALSE(options.use_subtask_bound_r1);
  EXPECT_FALSE(options.use_pair_pruning_r2);
}

TEST(Fp, MatchesEngineOnMediumGraphs) {
  for (uint64_t seed : {91ull, 92ull, 93ull}) {
    Graph g = GenerateBarabasiAlbert(120, 7, seed);
    for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
             {2, 5}, {3, 6}}) {
      auto ours = RunEngine(g, EnumOptions::Ours(k, q));
      CollectingSink sink;
      auto result = FpEnumerate(g, k, q, sink);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(sink.SortedResults(), ours);
    }
  }
}

TEST(Fp, CreatesNoSubtasks) {
  // FP's structural signature: one monolithic task per seed (no S
  // enumeration), so its sub-task counter stays zero.
  Graph g = GenerateBarabasiAlbert(100, 6, 94);
  CollectingSink sink;
  auto result = FpEnumerate(g, 2, 5, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counters.subtasks, 0u);
  EXPECT_GT(result->counters.branch_calls, 0u);
}

TEST(Fp, RejectsInvalidParameters) {
  Graph g = GenerateErdosRenyi(10, 0.3, 1);
  CollectingSink sink;
  EXPECT_FALSE(FpEnumerate(g, 3, 2, sink).ok());
}

TEST(Baselines, AgreeOnKarateClub) {
  auto g = LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  ASSERT_TRUE(g.ok());
  for (auto [k, q] : std::vector<std::pair<uint32_t, uint32_t>>{
           {1, 3}, {2, 5}, {3, 6}, {4, 8}}) {
    auto ours = RunEngine(*g, EnumOptions::Ours(k, q));
    CollectingSink bk;
    BkReferenceEnumerate(*g, k, q, bk);
    EXPECT_EQ(ours, bk.SortedResults()) << "k=" << k << " q=" << q;
    EXPECT_EQ(RunEngine(*g, ListPlexOptions(k, q)), ours);
    CollectingSink fp;
    ASSERT_TRUE(FpEnumerate(*g, k, q, fp).ok());
    EXPECT_EQ(fp.SortedResults(), ours);
  }
}

}  // namespace
}  // namespace kplex
