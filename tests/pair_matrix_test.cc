// Soundness of the vertex-pair pruning matrix T (Theorems 5.13-5.15):
// a pair marked "cannot co-occur" must never appear together in any
// ground-truth maximal k-plex with >= q vertices grown from that seed.
// Also pins the threshold formulas to the appendix-proof values.

#include "core/pair_matrix.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/bk_naive.h"
#include "core/seed_graph.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/kcore.h"

namespace kplex {
namespace {

TEST(PairThresholds, MatchAppendixFormulas) {
  // k = 2, q = 12:
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N2(2, 12, true), 10);   // q-k-0
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N2(2, 12, false), 10);  // q-k-0
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N1(2, 12, true), 8);    // q-2k-0
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N1(2, 12, false), 9);   // q-(k+1)
  EXPECT_EQ(PairPruneMatrix::ThresholdN1N1(2, 12, true), 6);    // q-3k
  EXPECT_EQ(PairPruneMatrix::ThresholdN1N1(2, 12, false), 8);   // q-(k+2)
  // k = 4, q = 20:
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N2(4, 20, true), 12);   // q-k-2*2
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N2(4, 20, false), 14);  // q-k-2*1
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N1(4, 20, true), 10);   // q-2k-2
  EXPECT_EQ(PairPruneMatrix::ThresholdN2N1(4, 20, false), 12);  // 20-5-2-1
  EXPECT_EQ(PairPruneMatrix::ThresholdN1N1(4, 20, true), 8);    // q-3k
  EXPECT_EQ(PairPruneMatrix::ThresholdN1N1(4, 20, false), 10);  // q-6-4
  // k = 1 (cliques) non-adjacent N1 pairs: q - 3 - 0.
  EXPECT_EQ(PairPruneMatrix::ThresholdN1N1(1, 8, false), 5);
}

// Exhaustive soundness sweep. Thresholds target "large" plexes, so q is
// pushed to small-graph-feasible values where the rules actually fire.
struct SoundnessParam {
  std::size_t n;
  int edge_percent;
  uint32_t k;
  uint32_t q;
  uint64_t seed;
};

class PairSoundness : public ::testing::TestWithParam<SoundnessParam> {};

TEST_P(PairSoundness, NoGroundTruthPairIsPruned) {
  const auto& p = GetParam();
  Graph g = GenerateErdosRenyi(p.n, p.edge_percent / 100.0, p.seed);
  auto truth = BruteForceMaximalKPlexes(g, p.k, p.q);
  ASSERT_TRUE(truth.ok());

  EnumOptions options = EnumOptions::Ours(p.k, p.q);
  CoreReduction core = ReduceToCore(g, p.q - p.k);
  std::unordered_map<VertexId, VertexId> to_reduced;
  for (VertexId i = 0; i < core.to_original.size(); ++i) {
    to_reduced[core.to_original[i]] = i;
  }
  DegeneracyResult degeneracy = ComputeDegeneracy(core.graph);

  uint64_t pairs_checked = 0;
  for (const auto& plex : *truth) {
    VertexId seed_member = 0;
    uint32_t min_rank = UINT32_MAX;
    for (VertexId v : plex) {
      ASSERT_TRUE(to_reduced.count(v));
      uint32_t r = degeneracy.rank[to_reduced[v]];
      if (r < min_rank) {
        min_rank = r;
        seed_member = to_reduced[v];
      }
    }
    auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy,
                             seed_member, options, nullptr);
    ASSERT_TRUE(sg.has_value());
    ASSERT_TRUE(sg->pairs.has_value());
    std::unordered_map<VertexId, uint32_t> to_local;
    for (uint32_t i = 0; i < sg->num_vi; ++i) {
      to_local[sg->to_global[i]] = i;
    }
    for (std::size_t a = 0; a < plex.size(); ++a) {
      for (std::size_t b = a + 1; b < plex.size(); ++b) {
        ASSERT_TRUE(to_local.count(plex[a]) && to_local.count(plex[b]));
        uint32_t la = to_local[plex[a]], lb = to_local[plex[b]];
        if (la == SeedGraph::kSeed || lb == SeedGraph::kSeed) continue;
        ++pairs_checked;
        EXPECT_TRUE(sg->pairs->Row(la).Test(lb))
            << "pair (" << plex[a] << "," << plex[b]
            << ") of a ground-truth plex was pruned";
        EXPECT_TRUE(sg->pairs->Row(lb).Test(la));
      }
    }
  }
  (void)pairs_checked;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PairSoundness,
    ::testing::Values(SoundnessParam{12, 70, 2, 6, 51},
                      SoundnessParam{12, 80, 2, 7, 52},
                      SoundnessParam{13, 75, 2, 8, 53},
                      SoundnessParam{13, 80, 3, 8, 54},
                      SoundnessParam{14, 70, 3, 7, 55},
                      SoundnessParam{14, 85, 3, 9, 56},
                      SoundnessParam{12, 90, 4, 8, 57},
                      SoundnessParam{13, 85, 4, 9, 58},
                      SoundnessParam{11, 95, 4, 9, 59},
                      SoundnessParam{15, 60, 2, 6, 60}));

TEST(PairMatrix, FringeBitsAlwaysAllowed) {
  Graph g = GenerateErdosRenyi(30, 0.4, 9);
  DegeneracyResult degeneracy = ComputeDegeneracy(g);
  EnumOptions options = EnumOptions::Ours(2, 5);
  for (VertexId seed = 0; seed < 10; ++seed) {
    auto sg = BuildSeedGraph(g, {}, degeneracy, seed, options, nullptr);
    if (!sg.has_value() || !sg->pairs.has_value()) continue;
    for (uint32_t u = 0; u < sg->num_vi; ++u) {
      for (uint32_t f = sg->num_vi; f < sg->universe; ++f) {
        EXPECT_TRUE(sg->pairs->Row(u).Test(f));
      }
    }
  }
}

}  // namespace
}  // namespace kplex
