// Tests for the seed-plan probe (core/seed_plan.h) and the cooperative
// yield hook (EnumOptions::yield): the two core primitives of sharded
// mining v2. The probe's seed space must match the enumerator's
// exactly, and a yielded run must be a complete answer for its covered
// prefix — the remainder merged on top reproduces the full fingerprint.

#include "core/seed_plan.h"

#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"

namespace kplex {
namespace {

TEST(SeedPlan, TotalSeedsMatchesTheEnumerator) {
  const Graph g = GenerateErdosRenyi(80, 0.15, 11);
  const EnumOptions options = EnumOptions::Ours(2, 4);
  auto plan = ComputeSeedPlan(g, options);
  ASSERT_TRUE(plan.ok());
  CountingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(plan->total_seeds, result->total_seeds);
  EXPECT_EQ(plan->degrees.size(), plan->total_seeds);
  EXPECT_EQ(plan->coreness.size(), plan->total_seeds);
}

TEST(SeedPlan, SignalsAreBoundedByTheGraph) {
  const Graph g = GenerateBarabasiAlbert(120, 4, 3);
  const EnumOptions options = EnumOptions::Ours(2, 5);
  auto plan = ComputeSeedPlan(g, options);
  ASSERT_TRUE(plan.ok());
  for (uint64_t i = 0; i < plan->total_seeds; ++i) {
    // In degeneracy order every forward degree is at most the
    // degeneracy — that bound is what makes it the canonical order.
    EXPECT_LE(plan->degrees[i], plan->degeneracy);
    EXPECT_LE(plan->coreness[i], plan->degeneracy);
  }
}

TEST(SeedPlan, CostIsTheDocumentedProduct) {
  EXPECT_EQ(SeedPlanCost(0, 0), 1u);
  EXPECT_EQ(SeedPlanCost(3, 2), 12u);
  EXPECT_EQ(SeedPlanCost(9, 9), 100u);
}

TEST(SeedPlan, RejectsInvalidOptions) {
  const Graph g = GenerateErdosRenyi(20, 0.2, 3);
  EnumOptions options = EnumOptions::Ours(2, 2);  // q < 2k - 1
  EXPECT_FALSE(ComputeSeedPlan(g, options).ok());
}

TEST(Yield, PresetFlagStopsBeforeTheFirstSeed) {
  const Graph g = GenerateErdosRenyi(60, 0.2, 5);
  std::atomic<bool> yield{true};
  EnumOptions options = EnumOptions::Ours(2, 4);
  options.yield = &yield;
  CountingSink sink;
  auto result = EnumerateMaximalKPlexes(g, options, sink);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->yielded);
  EXPECT_EQ(result->num_plexes, 0u);
  EXPECT_EQ(result->covered_begin, result->covered_end);
}

TEST(Yield, CoveredPrefixPlusRemainderEqualsTheFullRun) {
  const Graph g = GenerateErdosRenyi(80, 0.18, 9);
  const EnumOptions base = EnumOptions::Ours(2, 4);

  HashingSink full_sink;
  auto full = EnumerateMaximalKPlexes(g, base, full_sink);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->total_seeds, 4u);

  // Yield partway: raise the flag from the progress hook after a few
  // seeds, so the run stops at a boundary neither 0 nor the end.
  std::atomic<bool> yield{false};
  EnumOptions yielding = base;
  yielding.yield = &yield;
  yielding.progress_min_interval_ms = 0;
  yielding.progress = [&yield](uint64_t done, uint64_t, uint64_t) {
    if (done >= 3) yield.store(true);
  };
  HashingSink prefix_sink;
  auto prefix = EnumerateMaximalKPlexes(g, yielding, prefix_sink);
  ASSERT_TRUE(prefix.ok());
  ASSERT_TRUE(prefix->yielded);
  ASSERT_EQ(prefix->covered_begin, 0u);
  ASSERT_LT(prefix->covered_end, full->total_seeds);
  ASSERT_GT(prefix->covered_end, 0u);

  // The tail run: exactly the seeds the yielded run did not cover.
  EnumOptions tail_options = base;
  tail_options.seed_range.begin = prefix->covered_end;
  tail_options.seed_range.end = UINT32_MAX;
  HashingSink tail_sink;
  auto tail = EnumerateMaximalKPlexes(g, tail_options, tail_sink);
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail->yielded);

  MergeableResult merged;
  merged.count = prefix_sink.count();
  merged.xor_hash = prefix_sink.xor_hash();
  MergeableResult tail_piece;
  tail_piece.count = tail_sink.count();
  tail_piece.xor_hash = tail_sink.xor_hash();
  merged.Merge(tail_piece);
  EXPECT_EQ(merged.count, full->num_plexes);
  EXPECT_EQ(merged.fingerprint(), full_sink.fingerprint());
}

TEST(Yield, UnsetFlagChangesNothing) {
  const Graph g = GenerateErdosRenyi(50, 0.2, 7);
  std::atomic<bool> yield{false};
  EnumOptions options = EnumOptions::Ours(2, 4);
  HashingSink plain_sink;
  auto plain = EnumerateMaximalKPlexes(g, options, plain_sink);
  ASSERT_TRUE(plain.ok());
  options.yield = &yield;
  HashingSink hooked_sink;
  auto hooked = EnumerateMaximalKPlexes(g, options, hooked_sink);
  ASSERT_TRUE(hooked.ok());
  EXPECT_FALSE(hooked->yielded);
  EXPECT_EQ(hooked->num_plexes, plain->num_plexes);
  EXPECT_EQ(hooked_sink.fingerprint(), plain_sink.fingerprint());
  EXPECT_EQ(hooked->covered_end, plain->covered_end);
}

}  // namespace
}  // namespace kplex
