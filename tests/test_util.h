// Shared helpers for the test suites: canonical result comparison,
// generator shortcuts, and verification of every emitted plex against
// the definition-level oracles.

#ifndef KPLEX_TESTS_TEST_UTIL_H_
#define KPLEX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace kplex {
namespace testing_util {

using ResultSet = std::vector<std::vector<VertexId>>;

/// Runs the engine with `options` and returns the sorted result set.
inline ResultSet RunEngine(const Graph& graph, const EnumOptions& options) {
  CollectingSink sink;
  auto result = EnumerateMaximalKPlexes(graph, options, sink);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return sink.SortedResults();
}

/// Asserts every plex in `results` is a maximal k-plex of size >= q and
/// that there are no duplicates.
inline void VerifyResultSet(const Graph& graph, const ResultSet& results,
                            uint32_t k, uint32_t q) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& plex = results[i];
    ASSERT_GE(plex.size(), q);
    ASSERT_TRUE(IsMaximalKPlex(graph, plex, k))
        << "output " << i << " is not a maximal " << k << "-plex";
    if (i > 0) {
      ASSERT_NE(results[i - 1], plex) << "duplicate output";
    }
  }
}

/// Pretty difference message for mismatching result sets.
inline std::string DiffSets(const ResultSet& expected,
                            const ResultSet& actual) {
  std::string out;
  auto dump = [](const std::vector<VertexId>& plex) {
    std::string s = "{";
    for (VertexId v : plex) s += std::to_string(v) + ",";
    s += "}";
    return s;
  };
  for (const auto& p : expected) {
    if (std::find(actual.begin(), actual.end(), p) == actual.end()) {
      out += "missing " + dump(p) + "\n";
    }
  }
  for (const auto& p : actual) {
    if (std::find(expected.begin(), expected.end(), p) == expected.end()) {
      out += "extra " + dump(p) + "\n";
    }
  }
  return out;
}

}  // namespace testing_util
}  // namespace kplex

#endif  // KPLEX_TESTS_TEST_UTIL_H_
