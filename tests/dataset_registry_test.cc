// Tests for the dataset registry: every entry loads, is deterministic,
// and has the structural properties its paper counterpart is chosen for.

#include "bench_common/dataset_registry.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/stats.h"

namespace kplex {
namespace {

TEST(DatasetRegistry, AllEntriesLoad) {
  for (const auto& spec : AllDatasets()) {
    auto g = LoadDataset(spec.name);
    ASSERT_TRUE(g.ok()) << spec.name << ": " << g.status().ToString();
    EXPECT_GT(g->NumVertices(), 0u) << spec.name;
    EXPECT_GT(g->NumEdges(), 0u) << spec.name;
  }
}

TEST(DatasetRegistry, NamesAreUniqueAndCategorized) {
  std::set<std::string> names;
  const std::set<std::string> categories = {"real", "small", "medium",
                                            "large"};
  for (const auto& spec : AllDatasets()) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    EXPECT_TRUE(categories.count(spec.category))
        << spec.name << " has category " << spec.category;
    EXPECT_FALSE(spec.recipe.empty());
  }
  EXPECT_FALSE(DatasetsByCategory("small").empty());
  EXPECT_FALSE(DatasetsByCategory("medium").empty());
  EXPECT_FALSE(DatasetsByCategory("large").empty());
}

TEST(DatasetRegistry, UnknownNameIsNotFound) {
  auto g = LoadDataset("no-such-dataset");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(DatasetRegistry, GenerationIsDeterministic) {
  auto a = LoadDataset("jazz-syn");
  auto b = LoadDataset("jazz-syn");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Edges(), b->Edges());
}

TEST(DatasetRegistry, KarateIsTheRealGraph) {
  auto g = LoadDataset("karate");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 34u);
  EXPECT_EQ(g->NumEdges(), 78u);
}

TEST(DatasetRegistry, DegeneracyMuchSmallerThanN) {
  // The property (D << n) the paper's complexity bound exploits; all
  // synthetic stand-ins must preserve it (the 34-vertex karate graph is
  // too small for the factor-10 heuristic and is held to factor 5).
  for (const auto& spec : AllDatasets()) {
    auto g = LoadDataset(spec.name);
    ASSERT_TRUE(g.ok());
    GraphStats stats = ComputeGraphStats(*g);
    const uint32_t factor = spec.category == "real" ? 5 : 10;
    EXPECT_LT(stats.degeneracy * factor, stats.num_vertices) << spec.name;
  }
}

}  // namespace
}  // namespace kplex
