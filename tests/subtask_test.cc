// Properties of the sub-task enumeration (Algorithm 2, Line 7): the
// S-sets form a prefix-closed family of valid k-plexes, partition the
// result space, and R1 pruning never removes a productive sub-task.

#include "core/subtask.h"

#include <gtest/gtest.h>

#include <set>

#include "core/branch.h"
#include "core/enumerator.h"
#include "core/seed_graph.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "tests/test_util.h"

namespace kplex {
namespace {

using testing_util::RunEngine;

struct CollectedTask {
  std::vector<uint32_t> s_members;  // local ids of S
  TaskState state;
};

std::vector<CollectedTask> CollectTasks(const SeedGraph& sg,
                                        const EnumOptions& options) {
  std::vector<CollectedTask> tasks;
  AlgoCounters counters;
  EnumerateSubtasks(sg, options, counters, [&](TaskState&& state) {
    CollectedTask t;
    state.p.ForEach([&](std::size_t v) {
      if (v != SeedGraph::kSeed) t.s_members.push_back(static_cast<uint32_t>(v));
    });
    t.state = std::move(state);
    tasks.push_back(std::move(t));
  });
  return tasks;
}

class SubtaskFixture : public ::testing::Test {
 protected:
  void BuildAll(uint64_t seed, uint32_t k, uint32_t q) {
    graph_ = GenerateErdosRenyi(30, 0.35, seed);
    options_ = EnumOptions::Ours(k, q);
    options_.use_subtask_bound_r1 = false;
    degeneracy_ = ComputeDegeneracy(graph_);
  }

  Graph graph_;
  EnumOptions options_;
  DegeneracyResult degeneracy_;
};

TEST_F(SubtaskFixture, SetsAreUniqueValidAndSizeBounded) {
  BuildAll(31, 3, 5);
  for (VertexId seed = 0; seed < graph_.NumVertices(); ++seed) {
    auto sg = BuildSeedGraph(graph_, {}, degeneracy_, seed, options_, nullptr);
    if (!sg.has_value()) continue;
    auto tasks = CollectTasks(*sg, options_);
    ASSERT_FALSE(tasks.empty());  // S = {} is always emitted
    std::set<std::vector<uint32_t>> seen;
    for (const auto& task : tasks) {
      // |S| <= k - 1.
      EXPECT_LE(task.s_members.size(), options_.k - 1);
      // Unique.
      EXPECT_TRUE(seen.insert(task.s_members).second);
      // All S members are N2 vertices.
      for (uint32_t v : task.s_members) {
        EXPECT_TRUE(sg->n2_mask.Test(v));
      }
      // P is a valid k-plex: every member within budget.
      task.state.p.ForEach([&](std::size_t u) {
        EXPECT_LE(task.state.p_size - task.state.dp[u], options_.k);
      });
      // C contains only seed neighbors; X never intersects P or C.
      EXPECT_TRUE(task.state.c.IsSubsetOf(sg->n1_mask));
      EXPECT_FALSE(task.state.x.Intersects(task.state.p));
      EXPECT_FALSE(task.state.x.Intersects(task.state.c));
    }
  }
}

TEST_F(SubtaskFixture, EmptySIsFirstAndHasFullCandidates) {
  BuildAll(32, 2, 4);
  for (VertexId seed = 0; seed < 10; ++seed) {
    auto sg = BuildSeedGraph(graph_, {}, degeneracy_, seed, options_, nullptr);
    if (!sg.has_value()) continue;
    auto tasks = CollectTasks(*sg, options_);
    ASSERT_FALSE(tasks.empty());
    EXPECT_TRUE(tasks[0].s_members.empty());
    EXPECT_EQ(tasks[0].state.c, sg->n1_mask);
  }
}

TEST(SubtaskPruning, R1OnlyRemovesUnproductiveSubtasks) {
  // With and without R1 the final result set must be identical, while
  // R1 must strictly reduce (or keep) the number of dispatched tasks.
  Graph g = GenerateBarabasiAlbert(150, 8, 33);
  const uint32_t k = 3, q = 8;

  EnumOptions with_r1 = EnumOptions::Ours(k, q);
  EnumOptions without_r1 = EnumOptions::Ours(k, q);
  without_r1.use_subtask_bound_r1 = false;

  CollectingSink sink_with, sink_without;
  auto r_with = EnumerateMaximalKPlexes(g, with_r1, sink_with);
  auto r_without = EnumerateMaximalKPlexes(g, without_r1, sink_without);
  ASSERT_TRUE(r_with.ok() && r_without.ok());
  EXPECT_EQ(sink_with.SortedResults(), sink_without.SortedResults());
  EXPECT_LE(r_with->counters.subtasks - r_with->counters.subtasks_pruned_r1,
            r_without->counters.subtasks);
  EXPECT_GT(r_with->counters.subtasks_pruned_r1, 0u);
}

TEST(SubtaskPartition, SMembershipDeterminedByResult) {
  // Partition property: a result plex's S is exactly its intersection
  // with N2 of its seed graph — hence no two sub-tasks can produce the
  // same plex. Verified indirectly: no duplicates over a graph where
  // many sub-tasks fire.
  Graph g = GenerateErdosRenyi(40, 0.4, 34);
  auto results = RunEngine(g, EnumOptions::Ours(3, 6));
  std::set<std::vector<VertexId>> unique(results.begin(), results.end());
  EXPECT_EQ(unique.size(), results.size());
}

}  // namespace
}  // namespace kplex
