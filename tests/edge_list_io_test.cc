// Unit tests for SNAP edge-list I/O, including the bundled karate graph.

#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace kplex {
namespace {

std::string WriteTemp(const std::string& contents) {
  static int counter = 0;
  std::string path =
      ::testing::TempDir() + "kplex_io_test_" + std::to_string(counter++);
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(EdgeListIo, ParsesCommentsAndWhitespace) {
  std::string path = WriteTemp(
      "# a SNAP-style header\n"
      "% another comment style\n"
      "\n"
      "0\t1\n"
      "1 2\n"
      "  2   0  \n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, CompactsSparseIdsPreservingOrder) {
  std::string path = WriteTemp("10 500\n500 9000\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);  // {10, 500, 9000} -> {0, 1, 2}
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
  EXPECT_FALSE(g->HasEdge(0, 2));
  std::remove(path.c_str());
}

TEST(EdgeListIo, DropsSelfLoopsAndDuplicates) {
  std::string path = WriteTemp("1 1\n1 2\n2 1\n1 2\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileIsIoError) {
  auto g = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, GarbageLineIsIoError) {
  std::string path = WriteTemp("0 1\nhello world\n");
  auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EdgeListIo, SaveLoadRoundTrip) {
  std::string path = WriteTemp("0 1\n1 2\n2 3\n0 3\n0 2\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  std::string path2 = path + "_resaved";
  ASSERT_TRUE(SaveEdgeList(*g, path2).ok());
  auto g2 = LoadEdgeList(path2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g->NumVertices(), g2->NumVertices());
  EXPECT_EQ(g->NumEdges(), g2->NumEdges());
  EXPECT_EQ(g->Edges(), g2->Edges());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(EdgeListIo, BundledKarateClub) {
  auto g = LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 34u);
  EXPECT_EQ(g->NumEdges(), 78u);
  // The two hubs (instructor = published id 1, president = 34) map to
  // compacted ids 0 and 33.
  EXPECT_EQ(g->Degree(0), 16u);
  EXPECT_EQ(g->Degree(33), 17u);
}

}  // namespace
}  // namespace kplex
