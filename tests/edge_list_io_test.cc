// Unit tests for SNAP edge-list I/O, including the bundled karate graph.

#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace kplex {
namespace {

std::string WriteTemp(const std::string& contents) {
  static int counter = 0;
  std::string path =
      ::testing::TempDir() + "kplex_io_test_" + std::to_string(counter++);
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(EdgeListIo, ParsesCommentsAndWhitespace) {
  std::string path = WriteTemp(
      "# a SNAP-style header\n"
      "% another comment style\n"
      "\n"
      "0\t1\n"
      "1 2\n"
      "  2   0  \n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, CompactsSparseIdsPreservingOrder) {
  std::string path = WriteTemp("10 500\n500 9000\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);  // {10, 500, 9000} -> {0, 1, 2}
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
  EXPECT_FALSE(g->HasEdge(0, 2));
  std::remove(path.c_str());
}

TEST(EdgeListIo, DropsSelfLoopsAndDuplicates) {
  std::string path = WriteTemp("1 1\n1 2\n2 1\n1 2\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, AcceptsCrlfLineEndings) {
  std::string path = WriteTemp(
      "# exported on Windows\r\n"
      "0\t1\r\n"
      "1 2\r\n"
      "2 0 \r\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, AcceptsMixedTabsAndMissingFinalNewline) {
  std::string path = WriteTemp("0\t\t1\n1  \t 2");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, TrailingJunkIsIoError) {
  std::string path = WriteTemp("0 1\n1 2 oops\n");
  auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  // The error names the offending line.
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos)
      << g.status().ToString();
  std::remove(path.c_str());
}

TEST(EdgeListIo, NegativeIdIsIoError) {
  std::string path = WriteTemp("0 1\n-1 2\n");
  auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EdgeListIo, OverflowingIdIsIoError) {
  // 2^64 must not silently wrap to vertex 0.
  std::string path = WriteTemp("18446744073709551616 1\n");
  auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());

  // UINT64_MAX itself is still a legal id.
  path = WriteTemp("18446744073709551615 1\n");
  auto ok = LoadEdgeList(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, OverlongCommentIsSkippedOverlongNumberRejected) {
  std::string long_comment = "# " + std::string(10000, 'x') + "\n";
  std::string path = WriteTemp(long_comment + "0 1\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 1u);
  std::remove(path.c_str());

  std::string long_data = "0 " + std::string(10000, '1') + "\n";
  path = WriteTemp(long_data);
  auto bad = LoadEdgeList(path);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EdgeListIo, DataLineWithKilobytesOfTrailingWhitespaceIsAccepted) {
  // Long lines must not trip any internal buffer boundary (a 4095-byte
  // valid line once mis-parsed as "too long").
  std::string path =
      WriteTemp("0 1" + std::string(4092, ' ') + "\n1 2" +
                std::string(8000, ' '));  // second line: no final newline
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, HeavyDuplicationStillBuildsSimpleGraph) {
  std::string contents;
  for (int i = 0; i < 50; ++i) {
    contents += "3 3\n";   // self-loops
    contents += "1 2\n";   // duplicates
    contents += "2 1\n";   // reversed duplicates
  }
  std::string path = WriteTemp(contents);
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 3u);  // {1, 2, 3}
  EXPECT_EQ(g->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileIsIoError) {
  auto g = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(EdgeListIo, GarbageLineIsIoError) {
  std::string path = WriteTemp("0 1\nhello world\n");
  auto g = LoadEdgeList(path);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EdgeListIo, SaveLoadRoundTrip) {
  std::string path = WriteTemp("0 1\n1 2\n2 3\n0 3\n0 2\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  std::string path2 = path + "_resaved";
  ASSERT_TRUE(SaveEdgeList(*g, path2).ok());
  auto g2 = LoadEdgeList(path2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g->NumVertices(), g2->NumVertices());
  EXPECT_EQ(g->NumEdges(), g2->NumEdges());
  EXPECT_EQ(g->Edges(), g2->Edges());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(EdgeListIo, BundledKarateClub) {
  auto g = LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumVertices(), 34u);
  EXPECT_EQ(g->NumEdges(), 78u);
  // The two hubs (instructor = published id 1, president = 34) map to
  // compacted ids 0 and 33.
  EXPECT_EQ(g->Degree(0), 16u);
  EXPECT_EQ(g->Degree(33), 17u);
}

}  // namespace
}  // namespace kplex
