// Unit tests for the dense LocalGraph and induced-subgraph extraction.

#include "graph/local_graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/subgraph.h"

namespace kplex {
namespace {

TEST(LocalGraph, EdgesAndDegrees) {
  LocalGraph lg(5);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 2);
  lg.AddEdge(3, 4);
  EXPECT_TRUE(lg.HasEdge(0, 1));
  EXPECT_TRUE(lg.HasEdge(1, 0));
  EXPECT_FALSE(lg.HasEdge(1, 2));
  EXPECT_EQ(lg.Degree(0), 2u);
  EXPECT_EQ(lg.Degree(4), 1u);
}

TEST(LocalGraph, DuplicateAddIsIdempotent) {
  LocalGraph lg(3);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 1);
  lg.AddEdge(1, 0);
  EXPECT_EQ(lg.Degree(0), 1u);
  EXPECT_EQ(lg.Degree(1), 1u);
}

TEST(LocalGraph, DegreeInMask) {
  LocalGraph lg(6);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 2);
  lg.AddEdge(0, 3);
  DynamicBitset mask(6);
  mask.Set(1);
  mask.Set(3);
  mask.Set(5);
  EXPECT_EQ(lg.DegreeIn(0, mask), 2u);
}

TEST(LocalGraph, RemoveVertexUpdatesEverything) {
  LocalGraph lg(4);
  lg.AddEdge(0, 1);
  lg.AddEdge(1, 2);
  lg.AddEdge(1, 3);
  lg.RemoveVertex(1);
  EXPECT_FALSE(lg.IsAlive(1));
  EXPECT_EQ(lg.Degree(0), 0u);
  EXPECT_EQ(lg.Degree(2), 0u);
  EXPECT_EQ(lg.Degree(3), 0u);
  EXPECT_FALSE(lg.HasEdge(0, 1));
  EXPECT_EQ(lg.AliveMask().Count(), 3u);
  lg.RemoveVertex(1);  // idempotent
  EXPECT_EQ(lg.AliveMask().Count(), 3u);
}

TEST(InducedSubgraph, ExtractsEdgesAndMapping) {
  Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}});
  InducedSubgraph sub = ExtractInduced(g, {1, 2, 4});
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.to_original, (std::vector<VertexId>{1, 2, 4}));
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));   // 1-2
  EXPECT_TRUE(sub.graph.HasEdge(0, 2));   // 1-4
  EXPECT_FALSE(sub.graph.HasEdge(1, 2));  // 2-4 not an edge
}

TEST(InducedSubgraph, EmptySelection) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  InducedSubgraph sub = ExtractInduced(g, {});
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
}

}  // namespace
}  // namespace kplex
