// Unit tests for the dense LocalGraph and induced-subgraph extraction.

#include "graph/local_graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/subgraph.h"
#include "util/bitset_kernels.h"

namespace kplex {
namespace {

TEST(LocalGraph, EdgesAndDegrees) {
  LocalGraph lg(5);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 2);
  lg.AddEdge(3, 4);
  EXPECT_TRUE(lg.HasEdge(0, 1));
  EXPECT_TRUE(lg.HasEdge(1, 0));
  EXPECT_FALSE(lg.HasEdge(1, 2));
  EXPECT_EQ(lg.Degree(0), 2u);
  EXPECT_EQ(lg.Degree(4), 1u);
}

TEST(LocalGraph, DuplicateAddIsIdempotent) {
  LocalGraph lg(3);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 1);
  lg.AddEdge(1, 0);
  EXPECT_EQ(lg.Degree(0), 1u);
  EXPECT_EQ(lg.Degree(1), 1u);
}

TEST(LocalGraph, DegreeInMask) {
  LocalGraph lg(6);
  lg.AddEdge(0, 1);
  lg.AddEdge(0, 2);
  lg.AddEdge(0, 3);
  DynamicBitset mask(6);
  mask.Set(1);
  mask.Set(3);
  mask.Set(5);
  EXPECT_EQ(lg.DegreeIn(0, mask), 2u);
}

TEST(LocalGraph, RemoveVertexUpdatesEverything) {
  LocalGraph lg(4);
  lg.AddEdge(0, 1);
  lg.AddEdge(1, 2);
  lg.AddEdge(1, 3);
  lg.RemoveVertex(1);
  EXPECT_FALSE(lg.IsAlive(1));
  EXPECT_EQ(lg.Degree(0), 0u);
  EXPECT_EQ(lg.Degree(2), 0u);
  EXPECT_EQ(lg.Degree(3), 0u);
  EXPECT_FALSE(lg.HasEdge(0, 1));
  EXPECT_EQ(lg.AliveMask().Count(), 3u);
  lg.RemoveVertex(1);  // idempotent
  EXPECT_EQ(lg.AliveMask().Count(), 3u);
}

TEST(LocalGraph, RowsArePrefixOfAlignedMatrix) {
  LocalGraph lg(70);
  lg.AddEdge(0, 69);
  lg.AddEdge(0, 1);
  BitSpan row = lg.Row(0);
  EXPECT_EQ(row.num_bits, 70u);
  EXPECT_EQ(row.Count(), 2u);
  EXPECT_TRUE(row.Test(69));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(row.words) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(lg.Row(1).words) % 64, 0u);
}

// The same invariants must hold whether counts run on the portable word
// loops or the dispatched SIMD table; this pins both paths.
TEST(LocalGraph, InvariantsHoldUnderForcedBaseline) {
  for (const kernels::KernelTable* table :
       {&kernels::Portable(), &kernels::Dispatched()}) {
    kernels::SetActiveForTest(table);
    LocalGraph lg(130);
    for (uint32_t v = 1; v < 130; ++v) lg.AddEdge(0, v);
    lg.AddEdge(1, 2);
    DynamicBitset mask(130);
    mask.SetRange(0, 65);
    EXPECT_EQ(lg.Degree(0), 129u) << table->name;
    EXPECT_EQ(lg.DegreeIn(0, mask), 64u) << table->name;
    lg.RemoveVertex(2);
    EXPECT_EQ(lg.Degree(0), 128u) << table->name;
    EXPECT_EQ(lg.Degree(1), 1u) << table->name;
    EXPECT_EQ(lg.AliveMask().Count(), 129u) << table->name;
    kernels::SetActiveForTest(nullptr);
  }
}

TEST(InducedSubgraph, ExtractsEdgesAndMapping) {
  Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}});
  InducedSubgraph sub = ExtractInduced(g, {1, 2, 4});
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.to_original, (std::vector<VertexId>{1, 2, 4}));
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));   // 1-2
  EXPECT_TRUE(sub.graph.HasEdge(0, 2));   // 1-4
  EXPECT_FALSE(sub.graph.HasEdge(1, 2));  // 2-4 not an edge
}

TEST(InducedSubgraph, EmptySelection) {
  Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  InducedSubgraph sub = ExtractInduced(g, {});
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
}

}  // namespace
}  // namespace kplex
