// Unit tests for the QueryEngine: cache hits/misses, canonical
// signatures, correctness of cached answers against a direct engine
// run, cancellation semantics, cache invalidation, and the durable
// result store tier (disk hits, persistence gating, cross-engine
// sharing).

#include "service/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "service/graph_catalog.h"
#include "store/result_store.h"

namespace kplex {
namespace {

Graph TestGraph() { return GenerateErdosRenyi(120, 0.12, 42); }

std::string FreshStoreDir() {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "kplex_engine_store_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<ResultStore> MustOpenStore(const std::string& dir) {
  StoreOptions options;
  options.directory = dir;
  auto store = ResultStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

uint64_t EnumerateStageCount() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const HistogramSample& histogram : snapshot.histograms) {
    if (histogram.name == "kplex_stage_enumerate_seconds") {
      return histogram.count;
    }
  }
  return 0;
}

TEST(QueryEngine, ColdThenWarmHitWithIdenticalAnswer) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;

  auto cold = engine.Run(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->from_cache);

  // Reference answer straight from the sequential engine.
  CountingSink reference;
  auto direct = EnumerateMaximalKPlexes(TestGraph(),
                                        EnumOptions::Ours(2, 5), reference);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(cold->num_plexes, reference.count());
  EXPECT_EQ(cold->max_plex_size, reference.max_size());

  auto warm = engine.Run(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->num_plexes, cold->num_plexes);
  EXPECT_EQ(warm->fingerprint, cold->fingerprint);

  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryEngine, SignatureCoversResultShapingParametersOnly) {
  QueryRequest a;
  a.graph = "g";
  a.k = 2;
  a.q = 5;
  QueryRequest b = a;
  b.threads = 8;            // does not change the result set
  b.tau_ms = 7;             // ditto
  b.time_limit_seconds = 99;  // ditto (for completed runs)
  EXPECT_EQ(QueryEngine::CanonicalSignature(a),
            QueryEngine::CanonicalSignature(b));

  QueryRequest c = a;
  c.q = 6;
  QueryRequest d = a;
  d.max_results = 3;
  QueryRequest e = a;
  e.algo = QueryAlgo::kListPlex;
  EXPECT_NE(QueryEngine::CanonicalSignature(a),
            QueryEngine::CanonicalSignature(c));
  EXPECT_NE(QueryEngine::CanonicalSignature(a),
            QueryEngine::CanonicalSignature(d));
  EXPECT_NE(QueryEngine::CanonicalSignature(a),
            QueryEngine::CanonicalSignature(e));
}

TEST(QueryEngine, ParallelRequestHitsSequentialCacheEntry) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  QueryRequest sequential;
  sequential.graph = "g";
  sequential.k = 2;
  sequential.q = 5;
  auto cold = engine.Run(sequential);
  ASSERT_TRUE(cold.ok());

  QueryRequest parallel = sequential;
  parallel.threads = 4;
  auto warm = engine.Run(parallel);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->num_plexes, cold->num_plexes);
}

TEST(QueryEngine, UseCacheOffForcesRecompute) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);
  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;
  ASSERT_TRUE(engine.Run(request).ok());
  request.use_cache = false;
  auto recomputed = engine.Run(request);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed->from_cache);
}

TEST(QueryEngine, LruBoundsCacheSize) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog, /*cache_capacity=*/2);
  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  for (uint32_t q = 4; q <= 7; ++q) {
    request.q = q;
    ASSERT_TRUE(engine.Run(request).ok());
  }
  EXPECT_EQ(engine.cache_stats().entries, 2u);

  // q=7 and q=6 are the survivors; q=4 must recompute (miss).
  request.q = 7;
  auto hit = engine.Run(request);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache);
  request.q = 4;
  auto miss = engine.Run(request);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->from_cache);
}

TEST(QueryEngine, PreCancelledRunIsNotCached) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  std::atomic<bool> cancel{true};  // cancelled before it starts
  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;
  request.cancel = &cancel;
  auto cancelled = engine.Run(request);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_TRUE(cancelled->cancelled);
  EXPECT_EQ(cancelled->num_plexes, 0u);
  EXPECT_EQ(engine.cache_stats().entries, 0u);

  // The same query re-runs to completion once the flag clears, and only
  // that complete answer enters the cache.
  cancel.store(false);
  auto complete = engine.Run(request);
  ASSERT_TRUE(complete.ok());
  EXPECT_FALSE(complete->cancelled);
  EXPECT_FALSE(complete->from_cache);
  EXPECT_GT(complete->num_plexes, 0u);
  EXPECT_EQ(engine.cache_stats().entries, 1u);
}

TEST(QueryEngine, MidRunCancellationStopsTheEngine) {
  // A graph large enough that the run does not finish instantly, and a
  // flag that flips shortly after the query starts.
  GraphCatalog catalog;
  ASSERT_TRUE(
      catalog.RegisterGraph("big", GenerateBarabasiAlbert(4000, 24, 9))
          .ok());
  QueryEngine engine(catalog);

  std::atomic<bool> cancel{false};
  QueryRequest request;
  request.graph = "big";
  request.k = 3;
  request.q = 6;
  request.cancel = &cancel;

  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  auto result = engine.Run(request);
  trigger.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Either the run finished inside 20ms (fast machine) or it observed
  // the flag; a cancelled outcome must never be cached.
  if (result->cancelled) {
    EXPECT_EQ(engine.cache_stats().entries, 0u);
  } else {
    EXPECT_EQ(engine.cache_stats().entries, 1u);
  }
}

TEST(QueryEngine, TruncatedParallelRunIsNotCached) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  // Establish that the full answer has more than one plex, so a
  // max_results=1 run is genuinely truncated.
  QueryRequest full;
  full.graph = "g";
  full.k = 2;
  full.q = 5;
  auto complete = engine.Run(full);
  ASSERT_TRUE(complete.ok());
  ASSERT_GT(complete->num_plexes, 1u);

  // A parallel truncated run reports the cap and must not be cached
  // (workers race for the cap; the subset is not reproducible).
  QueryRequest capped = full;
  capped.max_results = 1;
  capped.threads = 2;
  auto truncated = engine.Run(capped);
  ASSERT_TRUE(truncated.ok());
  EXPECT_TRUE(truncated->stopped_early);
  capped.threads = 0;
  auto sequential = engine.Run(capped);
  ASSERT_TRUE(sequential.ok());
  EXPECT_FALSE(sequential->from_cache);  // parallel run was not cached
  EXPECT_TRUE(sequential->stopped_early);
  EXPECT_EQ(sequential->num_plexes, 1u);

  // The deterministic sequential truncation, by contrast, is cached.
  auto warm = engine.Run(capped);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->fingerprint, sequential->fingerprint);
}

TEST(QueryEngine, TimedOutPartialResultIsNeverServedAsComplete) {
  // Regression for the header contract: the canonical signature does
  // NOT cover time_limit_seconds, so if a timed-out partial answer ever
  // entered the cache it would satisfy a later unlimited query of the
  // same signature — silently serving a partial set as complete.
  GraphCatalog catalog;
  ASSERT_TRUE(
      catalog.RegisterGraph("m", GenerateErdosRenyi(300, 0.08, 11)).ok());
  QueryEngine engine(catalog);

  QueryRequest limited;
  limited.graph = "m";
  limited.k = 2;
  limited.q = 5;
  limited.time_limit_seconds = 1e-7;  // expires within the first checks
  auto partial = engine.Run(limited);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  if (partial->timed_out) {
    EXPECT_EQ(engine.cache_stats().entries, 0u);
  }

  QueryRequest unlimited = limited;
  unlimited.time_limit_seconds = 0;
  ASSERT_EQ(QueryEngine::CanonicalSignature(limited),
            QueryEngine::CanonicalSignature(unlimited));
  auto complete = engine.Run(unlimited);
  ASSERT_TRUE(complete.ok());
  if (partial->timed_out) {
    EXPECT_FALSE(complete->from_cache);
  }
  EXPECT_FALSE(complete->timed_out);
  EXPECT_GE(complete->num_plexes, partial->num_plexes);

  // Only now is the signature cached — as the complete answer.
  auto warm = engine.Run(unlimited);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_FALSE(warm->timed_out);
  EXPECT_EQ(warm->num_plexes, complete->num_plexes);
}

TEST(QueryEngine, ConcurrentIdenticalQueriesExecuteOnce) {
  // Single-flight: N threads racing the same cold query must produce
  // one execution (1 miss) and identical answers for everyone else.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<StatusOr<QueryResult>> results(kThreads,
                                             Status::Internal("unset"));
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      QueryRequest request;
      request.graph = "g";
      request.k = 2;
      request.q = 5;
      results[i] = engine.Run(request);
    });
  }
  for (auto& thread : threads) thread.join();

  uint64_t fingerprint = 0;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (fingerprint == 0) fingerprint = result->fingerprint;
    EXPECT_EQ(result->fingerprint, fingerprint);
  }
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryEngine, SingleFlightHoldsWithCachingDisabled) {
  // cache_capacity 0 disables retention, not single-flight: racing
  // identical queries still collapse, with the leader's answer shared
  // through the in-flight latch.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog, /*cache_capacity=*/0);

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<StatusOr<QueryResult>> results(kThreads,
                                             Status::Internal("unset"));
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      QueryRequest request;
      request.graph = "g";
      request.k = 2;
      request.q = 5;
      results[i] = engine.Run(request);
    });
  }
  for (auto& thread : threads) thread.join();

  uint64_t fingerprint = 0;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (fingerprint == 0) fingerprint = result->fingerprint;
    EXPECT_EQ(result->fingerprint, fingerprint);
  }
  // Nothing was retained afterwards: a later run recomputes.
  auto later = engine.Run([] {
    QueryRequest request;
    request.graph = "g";
    request.k = 2;
    request.q = 5;
    return request;
  }());
  ASSERT_TRUE(later.ok());
  EXPECT_FALSE(later->from_cache);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(QueryEngine, ConcurrentDistinctQueriesAllCorrect) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);

  // Serial references first.
  std::map<uint32_t, uint64_t> reference;
  for (uint32_t q = 4; q <= 8; ++q) {
    HashingSink sink;
    ASSERT_TRUE(
        EnumerateMaximalKPlexes(TestGraph(), EnumOptions::Ours(2, q), sink)
            .ok());
    reference[q] = sink.fingerprint();
  }

  std::vector<std::thread> threads;
  std::vector<StatusOr<QueryResult>> results(5, Status::Internal("unset"));
  for (uint32_t q = 4; q <= 8; ++q) {
    threads.emplace_back([&, q] {
      QueryRequest request;
      request.graph = "g";
      request.k = 2;
      request.q = q;
      results[q - 4] = engine.Run(request);
    });
  }
  for (auto& thread : threads) thread.join();
  for (uint32_t q = 4; q <= 8; ++q) {
    const auto& result = results[q - 4];
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->fingerprint, reference[q]) << "q=" << q;
  }
  EXPECT_EQ(engine.cache_stats().entries, 5u);
}

TEST(QueryEngine, InvalidateGraphDropsOnlyThatGraph) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("a", TestGraph()).ok());
  ASSERT_TRUE(catalog.RegisterGraph("b", TestGraph()).ok());
  QueryEngine engine(catalog);
  QueryRequest request;
  request.k = 2;
  request.q = 5;
  request.graph = "a";
  ASSERT_TRUE(engine.Run(request).ok());
  request.graph = "b";
  ASSERT_TRUE(engine.Run(request).ok());
  EXPECT_EQ(engine.cache_stats().entries, 2u);

  engine.InvalidateGraph("a");
  EXPECT_EQ(engine.cache_stats().entries, 1u);
  request.graph = "b";
  auto still_cached = engine.Run(request);
  ASSERT_TRUE(still_cached.ok());
  EXPECT_TRUE(still_cached->from_cache);
}

TEST(QueryEngine, UnknownGraphAndBadOptionsPropagate) {
  GraphCatalog catalog;
  QueryEngine engine(catalog);
  QueryRequest request;
  request.graph = "nope";
  EXPECT_EQ(engine.Run(request).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  request.graph = "g";
  request.k = 3;
  request.q = 2;  // violates q >= 2k - 1
  EXPECT_EQ(engine.Run(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryEngineStore, DiskHitServesFreshEngineWithoutEnumerating) {
  const std::string dir = FreshStoreDir();
  uint64_t cold_fingerprint = 0;
  uint64_t cold_plexes = 0;
  {
    GraphCatalog catalog;
    ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
    QueryEngine engine(catalog);
    auto store = MustOpenStore(dir);
    engine.AttachStore(store.get());

    QueryRequest request;
    request.graph = "g";
    request.k = 2;
    request.q = 5;
    auto cold = engine.Run(request);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_FALSE(cold->from_store);
    EXPECT_EQ(store->stats().writes, 1u);
    cold_fingerprint = cold->fingerprint;
    cold_plexes = cold->num_plexes;
    engine.AttachStore(nullptr);  // store outlives its last use
  }

  // A fresh engine + fresh store handle on the same directory is the
  // process-restart scenario: the answer must come off disk without the
  // enumerate stage ever running, bit-identical to the computed one.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);
  auto store = MustOpenStore(dir);
  engine.AttachStore(store.get());

  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;
  const uint64_t enumerations_before = EnumerateStageCount();
  auto disk = engine.Run(request);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_TRUE(disk->from_store);
  EXPECT_TRUE(disk->from_cache);
  EXPECT_EQ(disk->fingerprint, cold_fingerprint);
  EXPECT_EQ(disk->num_plexes, cold_plexes);
  EXPECT_EQ(EnumerateStageCount(), enumerations_before);
  EXPECT_EQ(store->stats().hits, 1u);

  // The disk hit back-filled the memory cache: the repeat is a pure
  // memory hit (from_cache without from_store, store hits unchanged).
  auto warm = engine.Run(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_FALSE(warm->from_store);
  EXPECT_EQ(warm->fingerprint, cold_fingerprint);
  EXPECT_EQ(store->stats().hits, 1u);
  engine.AttachStore(nullptr);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineStore, IncompleteOrCursorRunsAreNeverPersisted) {
  const std::string dir = FreshStoreDir();
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);
  auto store = MustOpenStore(dir);
  engine.AttachStore(store.get());

  // Cancelled: not a complete answer.
  std::atomic<bool> cancel{true};
  QueryRequest cancelled;
  cancelled.graph = "g";
  cancelled.k = 2;
  cancelled.q = 5;
  cancelled.cancel = &cancel;
  auto aborted = engine.Run(cancelled);
  ASSERT_TRUE(aborted.ok());
  ASSERT_TRUE(aborted->cancelled);
  EXPECT_EQ(store->stats().writes, 0u);

  // Sequential truncation: memory-cacheable (deterministic prefix) but
  // the durable tier only holds whole answers.
  QueryRequest truncated;
  truncated.graph = "g";
  truncated.k = 2;
  truncated.q = 5;
  truncated.max_results = 1;
  auto capped = engine.Run(truncated);
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(capped->stopped_early);
  EXPECT_EQ(store->stats().writes, 0u);

  // Cursor resumption: pages of a truncated run, never persisted.
  QueryRequest cursor;
  cursor.graph = "g";
  cursor.k = 2;
  cursor.q = 5;
  cursor.has_cursor = true;
  cursor.cursor_seed = 0;
  cursor.cursor_ordinal = 0;
  ASSERT_TRUE(engine.Run(cursor).ok());
  EXPECT_EQ(store->stats().writes, 0u);

  // cache=off bypasses both warm tiers, writes included.
  QueryRequest uncached;
  uncached.graph = "g";
  uncached.k = 2;
  uncached.q = 5;
  uncached.use_cache = false;
  ASSERT_TRUE(engine.Run(uncached).ok());
  EXPECT_EQ(store->stats().writes, 0u);

  // A query run to completion normally IS persisted — the gate
  // discriminates outcomes, it is not store-wide. (Fresh q: the
  // cache=off run above still populated the memory cache for q=5, and
  // a memory hit never reaches the disk tier.)
  QueryRequest complete;
  complete.graph = "g";
  complete.k = 2;
  complete.q = 4;
  auto whole = engine.Run(complete);
  ASSERT_TRUE(whole.ok());
  EXPECT_FALSE(whole->stopped_early);
  EXPECT_EQ(store->stats().writes, 1u);
  engine.AttachStore(nullptr);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineStore, EnginesSharingAStoreDirectoryConverge) {
  // Two independent engines — separate processes in miniature, each
  // with its own ResultStore handle on one shared directory — race the
  // same cold query. Writes are last-writer-wins over identical bytes
  // (the answer is deterministic), so afterwards a third fresh engine
  // must be served off disk. Run under TSan in CI.
  const std::string dir = FreshStoreDir();
  std::vector<std::thread> threads;
  std::vector<StatusOr<QueryResult>> results(2, Status::Internal("unset"));
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      GraphCatalog catalog;
      ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
      QueryEngine engine(catalog);
      auto store = MustOpenStore(dir);
      engine.AttachStore(store.get());
      QueryRequest request;
      request.graph = "g";
      request.k = 2;
      request.q = 5;
      results[i] = engine.Run(request);
      engine.AttachStore(nullptr);
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  EXPECT_EQ(results[0]->fingerprint, results[1]->fingerprint);
  EXPECT_EQ(results[0]->num_plexes, results[1]->num_plexes);

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.RegisterGraph("g", TestGraph()).ok());
  QueryEngine engine(catalog);
  auto store = MustOpenStore(dir);
  engine.AttachStore(store.get());
  QueryRequest request;
  request.graph = "g";
  request.k = 2;
  request.q = 5;
  auto served = engine.Run(request);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->from_store);
  EXPECT_EQ(served->fingerprint, results[0]->fingerprint);
  EXPECT_EQ(store->stats().entries, 1u);  // one key, however many racers
  engine.AttachStore(nullptr);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngine, AlgoNamesRoundTrip) {
  for (const char* name : {"ours", "ours_p", "basic", "listplex", "fp"}) {
    auto algo = ParseQueryAlgo(name);
    ASSERT_TRUE(algo.ok());
    EXPECT_STREQ(QueryAlgoName(*algo), name);
  }
  EXPECT_FALSE(ParseQueryAlgo("quantum").ok());
}

}  // namespace
}  // namespace kplex
