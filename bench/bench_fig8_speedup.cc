// Reproduces Figure 8 of the paper: speedup of the parallel algorithm
// as the thread count grows. The paper shows near-ideal scaling to 16
// threads on a 24-core machine; on this container speedup saturates at
// the available core count (the shape up to that point is what we can
// reproduce — see EXPERIMENTS.md). The two service-mode columns run the
// same cell through the QueryEngine (8 threads): cold = first contact,
// warm = result-cache hit — the amortization a long-lived serve process
// adds on top of raw parallel speedup. The "simd" column re-runs the
// single-thread cell pinned to the portable bitset kernels (what
// KPLEX_SIMD=off selects) and reports the end-to-end speedup the
// dispatched kernels deliver, fingerprint-checked against the base run.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common_flags.h"
#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "util/bitset_kernels.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"enwiki-syn", 2, 12},
    {"enwiki-syn", 3, 12},
    {"soc-pokec-syn", 3, 12},
    {"webbase-syn", 3, 20},
    {"email-euall-syn", 4, 14},
};

const uint32_t kThreadCounts[] = {1, 2, 4, 8};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Figure 8: speedup ratio vs #threads (tau = 0.1 ms) ==\n");
  std::printf("hardware concurrency on this machine: %u\n", BenchThreads());
  std::printf("bitset kernel dispatch on this machine: %s\n\n",
              kernels::DispatchedName());

  TablePrinter table({"dataset", "k", "q", "T(1thr) sec", "x2 threads",
                      "x4 threads", "x8 threads", "svc cold", "svc warm",
                      "no-SIMD", "simd"});
  GraphCatalog catalog;
  QueryEngine engine(catalog);
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    double base = 0;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t fingerprint = 0;
    for (uint32_t threads : kThreadCounts) {
      RunOutcome out = TimeAlgo(
          *graph, MakeParallelAlgo("Ours-par", cell.k, cell.q, threads, 0.1));
      if (!out.ok) {
        std::fprintf(stderr, "run failed: %s\n", out.error.c_str());
        return 1;
      }
      if (threads == 1) {
        base = out.seconds;
        fingerprint = out.fingerprint;
        row.push_back(FormatSeconds(base));
      } else {
        if (out.fingerprint != fingerprint) {
          std::fprintf(stderr, "RESULT MISMATCH at %u threads\n", threads);
          return 1;
        }
        row.push_back(FormatDouble(base / out.seconds, 2) + "x");
      }
    }
    // Service mode: the same cell through the shared QueryEngine at 8
    // threads — cold executes, warm must be a cache hit with the same
    // fingerprint as the raw parallel runs.
    ServiceModeOutcome service = RunServiceModeColdWarm(
        catalog, engine, *graph, cell.dataset, cell.k, cell.q,
        /*threads=*/8, fingerprint);
    if (!service.ok) {
      std::fprintf(stderr, "SERVICE-MODE MISMATCH on %s\n", cell.dataset);
      return 1;
    }
    row.push_back(FormatSeconds(service.cold_seconds));
    row.push_back(FormatSeconds(service.warm_seconds) + " [hit]");
    // The single-thread cell again, pinned to the portable kernels
    // (what KPLEX_SIMD=off selects): the end-to-end win the SIMD
    // dispatch contributes on top of thread scaling.
    kernels::SetActiveForTest(&kernels::Portable());
    RunOutcome portable = TimeAlgo(
        *graph, MakeParallelAlgo("Ours-par", cell.k, cell.q, 1, 0.1));
    kernels::SetActiveForTest(nullptr);
    if (!portable.ok) {
      std::fprintf(stderr, "portable-kernel run failed: %s\n",
                   portable.error.c_str());
      return 1;
    }
    if (portable.fingerprint != fingerprint) {
      std::fprintf(stderr, "RESULT MISMATCH with portable kernels on %s\n",
                   cell.dataset);
      return 1;
    }
    row.push_back(FormatSeconds(portable.seconds));
    row.push_back(FormatDouble(portable.seconds / base, 2) + "x");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
