// Shared environment-variable knobs and helpers for the bench
// binaries.
//
//   KPLEX_BENCH_THREADS  worker threads for parallel benches
//                        (default: hardware concurrency)

#ifndef KPLEX_BENCH_BENCH_COMMON_FLAGS_H_
#define KPLEX_BENCH_BENCH_COMMON_FLAGS_H_

#include <cstdlib>
#include <string>
#include <thread>

#include "service/graph_catalog.h"
#include "service/query_engine.h"

namespace kplex {

inline uint32_t BenchThreads() {
  if (const char* env = std::getenv("KPLEX_BENCH_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}

/// The service-mode column pair shared by bench_fig8_speedup and
/// bench_table4: run one (k, q) cell through the shared QueryEngine —
/// cold executes, warm must be a result-cache hit — and self-check
/// both fingerprints against the raw engine run.
struct ServiceModeOutcome {
  bool ok = false;
  double cold_seconds = 0;
  double warm_seconds = 0;
};

inline ServiceModeOutcome RunServiceModeColdWarm(
    GraphCatalog& catalog, QueryEngine& engine, const Graph& graph,
    const std::string& name, uint32_t k, uint32_t q, uint32_t threads,
    uint64_t expected_fingerprint) {
  ServiceModeOutcome outcome;
  if (!catalog.Contains(name) && !catalog.RegisterGraph(name, graph).ok()) {
    return outcome;
  }
  QueryRequest request;
  request.graph = name;
  request.k = k;
  request.q = q;
  request.threads = threads;
  auto cold = engine.Run(request);
  auto warm = engine.Run(request);
  if (!cold.ok() || !warm.ok() || cold->from_cache ||
      cold->fingerprint != expected_fingerprint ||
      warm->fingerprint != expected_fingerprint || !warm->from_cache) {
    return outcome;
  }
  outcome.ok = true;
  outcome.cold_seconds = cold->seconds;
  outcome.warm_seconds = warm->seconds;
  return outcome;
}

}  // namespace kplex

#endif  // KPLEX_BENCH_BENCH_COMMON_FLAGS_H_
