// Shared environment-variable knobs for the bench binaries.
//
//   KPLEX_BENCH_THREADS  worker threads for parallel benches
//                        (default: hardware concurrency)

#ifndef KPLEX_BENCH_BENCH_COMMON_FLAGS_H_
#define KPLEX_BENCH_BENCH_COMMON_FLAGS_H_

#include <cstdlib>
#include <thread>

namespace kplex {

inline uint32_t BenchThreads() {
  if (const char* env = std::getenv("KPLEX_BENCH_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 2;
}

}  // namespace kplex

#endif  // KPLEX_BENCH_BENCH_COMMON_FLAGS_H_
