// Microbenchmarks (google-benchmark) for the substrate the enumerators
// are built on: bitset kernels, degeneracy peeling, seed-subgraph
// construction, pair-matrix construction and upper-bound evaluation.
// These quantify the per-call costs the complexity analysis of
// Section 5 reasons about (e.g. the O(D) bound of Algorithm 4, or the
// extra O(|C| log |C|) the FP-style bound pays per recursion).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/enumerator.h"
#include "core/pair_matrix.h"
#include "core/seed_graph.h"
#include "core/sink.h"
#include "core/subtask.h"
#include "graph/degeneracy.h"
#include "graph/generators.h"
#include "graph/kcore.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/bitset_kernels.h"
#include "util/rng.h"

namespace kplex {
namespace {

// ---- raw kernel rows: portable baseline vs dispatched table ----
//
// These benchmark the word loops directly (no DynamicBitset wrapper) so
// baseline-vs-SIMD speedups are visible regardless of which table the
// process dispatched to. The `/0` suffix is the portable table, `/1`
// the dispatched one; on hardware without a SIMD table both rows
// coincide. Sizes are in bits.

std::vector<uint64_t> RandomWords(std::size_t words, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(words);
  for (auto& w : out) w = rng.Next();
  return out;
}

const kernels::KernelTable& TableForArg(int64_t arg) {
  return arg == 0 ? kernels::Portable() : kernels::Dispatched();
}

void SetKernelLabel(benchmark::State& state) {
  state.SetLabel(TableForArg(state.range(1)).name);
}

void BM_KernelAndCount(benchmark::State& state) {
  const std::size_t words = (state.range(0) + 63) / 64;
  const auto a = RandomWords(words, 11), b = RandomWords(words, 12);
  const auto& table = TableForArg(state.range(1));
  SetKernelLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.and_count(a.data(), b.data(), words));
  }
}
BENCHMARK(BM_KernelAndCount)
    ->Args({256, 0})->Args({256, 1})
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({8192, 0})->Args({8192, 1});

void BM_KernelAndCount3(benchmark::State& state) {
  const std::size_t words = (state.range(0) + 63) / 64;
  const auto a = RandomWords(words, 21), b = RandomWords(words, 22),
             c = RandomWords(words, 23);
  const auto& table = TableForArg(state.range(1));
  SetKernelLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.and_count3(a.data(), b.data(), c.data(), words));
  }
}
BENCHMARK(BM_KernelAndCount3)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({8192, 0})->Args({8192, 1});

void BM_KernelAndNotCount(benchmark::State& state) {
  const std::size_t words = (state.range(0) + 63) / 64;
  const auto a = RandomWords(words, 31), b = RandomWords(words, 32);
  const auto& table = TableForArg(state.range(1));
  SetKernelLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.andnot_count(a.data(), b.data(), words));
  }
}
BENCHMARK(BM_KernelAndNotCount)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({8192, 0})->Args({8192, 1});

void BM_KernelAndInto(benchmark::State& state) {
  const std::size_t words = (state.range(0) + 63) / 64;
  auto a = RandomWords(words, 41);
  const auto b = RandomWords(words, 42);
  const auto& table = TableForArg(state.range(1));
  SetKernelLabel(state);
  for (auto _ : state) {
    table.and_into(a.data(), b.data(), words);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_KernelAndInto)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({8192, 0})->Args({8192, 1});

void BM_KernelSubset(benchmark::State& state) {
  const std::size_t words = (state.range(0) + 63) / 64;
  const auto b = RandomWords(words, 52);
  auto a = b;
  for (auto& w : a) w &= 0x5555555555555555ULL;  // a ⊆ b: no early exit
  const auto& table = TableForArg(state.range(1));
  SetKernelLabel(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.subset(a.data(), b.data(), words));
  }
}
BENCHMARK(BM_KernelSubset)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({8192, 0})->Args({8192, 1});

void BM_BitsetAndCount(benchmark::State& state) {
  const std::size_t bits = state.range(0);
  DynamicBitset a(bits), b(bits);
  Rng rng(1);
  for (std::size_t i = 0; i < bits / 3; ++i) {
    a.Set(rng.NextBounded(bits));
    b.Set(rng.NextBounded(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
}
BENCHMARK(BM_BitsetAndCount)->Arg(256)->Arg(1024)->Arg(8192);

void BM_BitsetForEachAnd(benchmark::State& state) {
  const std::size_t bits = state.range(0);
  DynamicBitset a(bits), b(bits);
  Rng rng(2);
  for (std::size_t i = 0; i < bits / 3; ++i) {
    a.Set(rng.NextBounded(bits));
    b.Set(rng.NextBounded(bits));
  }
  for (auto _ : state) {
    std::size_t sum = 0;
    a.ForEachAnd(b, [&](std::size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitsetForEachAnd)->Arg(1024)->Arg(8192);

void BM_DegeneracyPeeling(benchmark::State& state) {
  Graph g = GenerateBarabasiAlbert(state.range(0), 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDegeneracy(g).degeneracy);
  }
}
BENCHMARK(BM_DegeneracyPeeling)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CoreReduction(benchmark::State& state) {
  Graph g = GenerateBarabasiAlbert(8000, 10, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToCore(g, state.range(0)).graph.NumVertices());
  }
}
BENCHMARK(BM_CoreReduction)->Arg(4)->Arg(8)->Arg(12);

class SeedGraphFixture {
 public:
  SeedGraphFixture() : graph_(GenerateBarabasiAlbert(2000, 18, 5)) {
    degeneracy_ = ComputeDegeneracy(graph_);
    // Find a seed whose subgraph is viable for the benchmark options
    // (k=3, q=12): scan from the dense end of the peeling order.
    EnumOptions probe = EnumOptions::Ours(3, 12);
    for (std::size_t i = graph_.NumVertices(); i-- > 0;) {
      VertexId candidate = degeneracy_.order[i];
      if (BuildSeedGraph(graph_, {}, degeneracy_, candidate, probe, nullptr)
              .has_value()) {
        seed_ = candidate;
        break;
      }
    }
  }

  const Graph& graph() const { return graph_; }
  const DegeneracyResult& degeneracy() const { return degeneracy_; }

  /// A seed with a viable (non-pruned-away) seed subgraph.
  VertexId PickSeed() const { return seed_; }

 private:
  Graph graph_;
  DegeneracyResult degeneracy_;
  VertexId seed_ = 0;
};

void BM_SeedGraphBuild(benchmark::State& state) {
  SeedGraphFixture fixture;
  EnumOptions options = EnumOptions::Ours(3, 12);
  options.use_pair_pruning_r2 = state.range(0) != 0;
  for (auto _ : state) {
    auto sg = BuildSeedGraph(fixture.graph(), {}, fixture.degeneracy(),
                             fixture.PickSeed(), options, nullptr);
    benchmark::DoNotOptimize(sg.has_value());
  }
}
BENCHMARK(BM_SeedGraphBuild)->Arg(0)->Arg(1);  // 0: no T matrix, 1: with T

void BM_UpperBounds(benchmark::State& state) {
  SeedGraphFixture fixture;
  EnumOptions options = EnumOptions::Ours(3, 12);
  auto sg = BuildSeedGraph(fixture.graph(), {}, fixture.degeneracy(),
                           fixture.PickSeed(), options, nullptr);
  if (!sg.has_value()) {
    state.SkipWithError("no viable seed graph");
    return;
  }
  TaskState task = TaskState::MakeEmpty(*sg);
  task.AddToP(*sg, SeedGraph::kSeed);
  task.c = sg->n1_mask;
  const uint32_t pivot = static_cast<uint32_t>(task.c.FindFirst());
  task.c.Reset(pivot);

  BoundScratch scratch;
  const bool sorted = state.range(0) != 0;
  for (auto _ : state) {
    uint32_t ub = sorted ? UbSupportSorted(*sg, task, pivot, 3, scratch)
                         : UbSupport(*sg, task, pivot, 3, scratch);
    benchmark::DoNotOptimize(ub);
  }
}
BENCHMARK(BM_UpperBounds)->Arg(0)->Arg(1);  // 0: Theorem 5.5, 1: FP-sorted

void BM_SubtaskEnumeration(benchmark::State& state) {
  SeedGraphFixture fixture;
  EnumOptions options = EnumOptions::Ours(static_cast<uint32_t>(state.range(0)),
                                          12);
  auto sg = BuildSeedGraph(fixture.graph(), {}, fixture.degeneracy(),
                           fixture.PickSeed(), options, nullptr);
  if (!sg.has_value()) {
    state.SkipWithError("no viable seed graph");
    return;
  }
  for (auto _ : state) {
    AlgoCounters counters;
    uint64_t tasks = 0;
    EnumerateSubtasks(*sg, options, counters,
                      [&](TaskState&&) { ++tasks; });
    benchmark::DoNotOptimize(tasks);
  }
}
BENCHMARK(BM_SubtaskEnumeration)->Arg(2)->Arg(3)->Arg(4);

// ---- observability overhead (docs/OBSERVABILITY.md) ----
//
// The per-write costs of the live instruments, and a whole-enumeration
// run with the instrumentation active. Compiling the tree with
// -DKPLEX_OBS_NOOP turns every write below into nothing — comparing
// BM_EnumerateInstrumented across the two builds prices the layer
// end to end (the budget is <= 2% of enumeration time; the per-op rows
// show why: a relaxed fetch_add against enumeration's branch work).

void BM_MetricsCounterIncrement(benchmark::State& state) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("bench_counter_total");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("bench_histogram_seconds");
  double value = 1e-6;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 1.0 ? value * 1.01 : 1e-6;
  }
  benchmark::DoNotOptimize(histogram.Count());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_EnumerateInstrumented(benchmark::State& state) {
  Graph g = GenerateBarabasiAlbert(3000, 10, 7);
  EnumOptions options = EnumOptions::Ours(2, 8);
  // A live progress hook through the throttle, like serve's jobs run.
  options.progress = [](uint64_t, uint64_t, uint64_t) {};
  for (auto _ : state) {
    CountingSink sink;
    auto result = EnumerateMaximalKPlexes(g, options, sink);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_EnumerateInstrumented);

}  // namespace
}  // namespace kplex

// Custom main so `bench_micro --json out.json` emits the kernel and
// enumeration rows as machine-readable JSON (google-benchmark's own
// JSON reporter under a stable spelling that scripts can rely on).
// All other flags pass through to the benchmark library untouched.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  storage.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      storage.emplace_back(std::string("--benchmark_out=") + argv[i + 1]);
      storage.emplace_back("--benchmark_out_format=json");
      ++i;
    } else {
      storage.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& s : storage) args.push_back(s.data());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
