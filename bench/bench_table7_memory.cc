// Reproduces Table 7 of the paper (Appendix B.2): peak memory
// consumption of FP, ListPlex and Ours. Each run executes in a forked
// child so one algorithm's allocations cannot inflate another's
// measurement. The paper's shape: FP uses the most memory (its
// monolithic per-seed tasks carry the full two-hop candidate sets),
// while ListPlex and Ours are close to each other.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"jazz-syn", 4, 12},
    {"soc-slashdot-syn", 2, 12},
    {"email-euall-syn", 4, 14},
    {"enwiki-syn", 3, 12},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Table 7: peak memory consumption (MiB) ==\n");
  std::printf("(each run fork-isolated; value = child peak RSS)\n\n");

  TablePrinter table({"dataset", "k", "q", "FP", "ListPlex", "Ours"});
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    for (const char* algo : {"FP", "ListPlex", "Ours"}) {
      AlgoFn fn = MakeSequentialAlgo(algo, cell.k, cell.q);
      const Graph& g = *graph;
      int64_t peak_kib = MeasurePeakRssKib([&fn, &g] {
        CountingSink sink;
        auto result = fn(g, sink);
        (void)result;
      });
      row.push_back(peak_kib >= 0
                        ? FormatDouble(peak_kib / 1024.0, 2)
                        : std::string("n/a"));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
