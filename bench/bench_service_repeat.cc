// Demonstrates what the service layer amortizes: (1) binary CSR
// snapshot loads versus SNAP edge-list re-parses of the same graph, and
// (2) cold versus warm (result-cached) repeat queries through the
// QueryEngine, including a warm hit from a request that only differs in
// thread count (thread count is not part of the canonical signature).
// The warm query must report exactly the cold run's plex count and
// fingerprint — checked here, not just eyeballed.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common/table_printer.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "util/timer.h"

namespace kplex {
namespace {

constexpr uint32_t kK = 2;
constexpr uint32_t kQ = 10;

int Run() {
  const std::string dir =
      "/tmp/kplex_service_bench_" + std::to_string(::getpid());
  const std::string edges_path = dir + "/graph.txt";
  const std::string snapshot_path = dir + "/graph.kpx";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf("generating Barabasi-Albert graph (n=30000, attach=12)...\n");
  Graph graph = GenerateBarabasiAlbert(30000, 12, 7);
  std::printf("graph: %zu vertices, %zu edges\n\n", graph.NumVertices(),
              graph.NumEdges());
  if (!SaveEdgeList(graph, edges_path).ok() ||
      !SaveSnapshot(graph, snapshot_path).ok()) {
    std::fprintf(stderr, "cannot write graph files under %s\n", dir.c_str());
    return 1;
  }

  TablePrinter load_table({"load path", "seconds", "speedup"});
  WallTimer timer;
  auto parsed = LoadEdgeList(edges_path);
  const double parse_seconds = timer.ElapsedSeconds();
  timer.Restart();
  auto snapped = LoadSnapshot(snapshot_path);
  const double snapshot_seconds = timer.ElapsedSeconds();
  if (!parsed.ok() || !snapped.ok() ||
      parsed->NumEdges() != snapped->NumEdges()) {
    std::fprintf(stderr, "load mismatch between edge list and snapshot\n");
    return 1;
  }
  load_table.AddRow({"SNAP edge list", FormatSeconds(parse_seconds), "1.0"});
  load_table.AddRow({"CSR snapshot", FormatSeconds(snapshot_seconds),
                     FormatDouble(parse_seconds / snapshot_seconds, 1)});
  load_table.Print(std::cout);
  std::printf("\n");

  GraphCatalog catalog;
  QueryEngine engine(catalog);
  Status registered = catalog.RegisterFile("bench", snapshot_path);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  QueryRequest request;
  request.graph = "bench";
  request.k = kK;
  request.q = kQ;

  TablePrinter query_table(
      {"query", "plexes", "seconds", "served from cache"});
  auto cold = engine.Run(request);
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"cold (k=2, q=10)", FormatCount(cold->num_plexes),
                      FormatSeconds(cold->seconds),
                      cold->from_cache ? "yes" : "no"});

  auto warm = engine.Run(request);
  if (!warm.ok()) {
    std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"warm repeat", FormatCount(warm->num_plexes),
                      FormatSeconds(warm->seconds),
                      warm->from_cache ? "yes" : "no"});

  QueryRequest threaded = request;
  threaded.threads = 4;
  auto warm_threaded = engine.Run(threaded);
  if (!warm_threaded.ok()) {
    std::fprintf(stderr, "%s\n",
                 warm_threaded.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"warm, threads=4", FormatCount(warm_threaded->num_plexes),
                      FormatSeconds(warm_threaded->seconds),
                      warm_threaded->from_cache ? "yes" : "no"});
  query_table.Print(std::cout);

  const bool identical = warm->from_cache &&
                         warm->num_plexes == cold->num_plexes &&
                         warm->fingerprint == cold->fingerprint &&
                         warm_threaded->from_cache &&
                         warm_threaded->fingerprint == cold->fingerprint;
  std::printf("\nwarm results identical to cold run: %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("cold-to-warm speedup: %.0fx\n",
              cold->seconds / std::max(warm->seconds, 1e-9));

  std::system(("rm -rf " + dir).c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace kplex

int main() { return kplex::Run(); }
