// Demonstrates what the service layer amortizes, in three stages:
// (1) loading — SNAP edge-list parse vs v1 snapshot (buffered copy) vs
// v2 snapshot (mmap zero-copy), (2) reduction — a cold mine that peels
// the (q-k)-core vs one served from precomputed snapshot sections (the
// counters prove the skip and the fingerprints prove equality), and
// (3) repeat queries — cold vs warm (result-cached) through the
// QueryEngine, including a warm hit from a request that only differs in
// thread count, and (4) contention — a ServiceDispatcher batch of mixed
// queries at 1/2/4/8 workers over the same resident catalog, cold vs
// warm, with a fingerprint self-check across worker counts (the bench
// doubles as a concurrency soak test). Every "identical" claim is
// checked, not eyeballed; the process exits non-zero on any mismatch.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common/table_printer.h"
#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/dispatcher.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "service/service_session.h"
#include "util/timer.h"

namespace kplex {
namespace {

constexpr uint32_t kK = 2;
constexpr uint32_t kQ = 10;

int Run() {
  const std::string dir =
      "/tmp/kplex_service_bench_" + std::to_string(::getpid());
  const std::string edges_path = dir + "/graph.txt";
  const std::string v1_path = dir + "/graph_v1.kpx";
  const std::string v2_path = dir + "/graph_v2.kpx";
  const std::string pre_path = dir + "/graph_pre.kpx";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf("generating Barabasi-Albert graph (n=30000, attach=12)...\n");
  Graph graph = GenerateBarabasiAlbert(30000, 12, 7);
  std::printf("graph: %zu vertices, %zu edges\n\n", graph.NumVertices(),
              graph.NumEdges());
  SnapshotWriteOptions v1;
  v1.version = kSnapshotVersionLegacy;
  SnapshotWriteOptions with_pre;
  with_pre.include_precompute = true;
  with_pre.core_mask_levels = {kQ - kK};
  if (!SaveEdgeList(graph, edges_path).ok() ||
      !SaveSnapshot(graph, v1_path, v1).ok() ||
      !SaveSnapshot(graph, v2_path).ok() ||
      !SaveSnapshot(graph, pre_path, with_pre).ok()) {
    std::fprintf(stderr, "cannot write graph files under %s\n", dir.c_str());
    return 1;
  }

  // ------------------------------------------------------ load latency
  TablePrinter load_table({"load path", "seconds", "speedup", "owned",
                           "mapped"});
  WallTimer timer;
  auto parsed = LoadEdgeList(edges_path);
  const double parse_seconds = timer.ElapsedSeconds();
  timer.Restart();
  auto snapped_v1 = LoadSnapshotFull(v1_path);
  const double v1_seconds = timer.ElapsedSeconds();
  timer.Restart();
  auto snapped_v2 = LoadSnapshotFull(v2_path);
  const double v2_seconds = timer.ElapsedSeconds();
  if (!parsed.ok() || !snapped_v1.ok() || !snapped_v2.ok() ||
      parsed->NumEdges() != snapped_v1->graph.NumEdges() ||
      parsed->NumEdges() != snapped_v2->graph.NumEdges()) {
    std::fprintf(stderr, "load mismatch between edge list and snapshots\n");
    return 1;
  }
  auto human_mib = [](std::size_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1 << 20));
    return std::string(buf);
  };
  load_table.AddRow({"SNAP edge list", FormatSeconds(parse_seconds), "1.0",
                     human_mib(parsed->MemoryBytes()), "0"});
  load_table.AddRow({"v1 snapshot (fread)", FormatSeconds(v1_seconds),
                     FormatDouble(parse_seconds / v1_seconds, 1),
                     human_mib(snapped_v1->graph.MemoryBytes()), "0"});
  load_table.AddRow(
      {snapped_v2->mapped ? "v2 snapshot (mmap)" : "v2 snapshot (buffered)",
       FormatSeconds(v2_seconds),
       FormatDouble(parse_seconds / v2_seconds, 1),
       human_mib(snapped_v2->graph.MemoryBytes()),
       human_mib(snapped_v2->graph.MappedBytes())});
  load_table.Print(std::cout);
  const bool mmap_wins = v2_seconds < parse_seconds;
  std::printf("v2 mmap load beats the parse: %s (%.0fx)\n\n",
              mmap_wins ? "yes" : "NO (BUG)",
              parse_seconds / std::max(v2_seconds, 1e-9));

  // ------------------------------------------- reduction skip latency
  auto pre_loaded = LoadSnapshotFull(pre_path);
  if (!pre_loaded.ok() || pre_loaded->precompute.empty()) {
    std::fprintf(stderr, "precompute snapshot failed to load sections\n");
    return 1;
  }
  EnumOptions plain = EnumOptions::Ours(kK, kQ);
  EnumOptions served = plain;
  served.precompute = &pre_loaded->precompute;

  TablePrinter reduce_table({"mine (k=2, q=10)", "plexes", "seconds",
                             "reduction"});
  HashingSink cold_sink;
  timer.Restart();
  auto cold_mine = EnumerateMaximalKPlexes(pre_loaded->graph, plain,
                                           cold_sink);
  const double cold_mine_seconds = timer.ElapsedSeconds();
  HashingSink pre_sink;
  timer.Restart();
  auto pre_mine = EnumerateMaximalKPlexes(pre_loaded->graph, served,
                                          pre_sink);
  const double pre_mine_seconds = timer.ElapsedSeconds();
  if (!cold_mine.ok() || !pre_mine.ok()) {
    std::fprintf(stderr, "mine failed\n");
    return 1;
  }
  // CTCP preprocessing (`mine ... ctcp=on` through the protocol): the
  // iterated vertex+edge fixpoint reduces harder than the (q-k)-core
  // when q > 2k (true here: 10 > 4) at the cost of a triangle-counting
  // pass up front — this row shows whether the stronger prune pays for
  // itself on this graph shape.
  EnumOptions ctcp = plain;
  ctcp.use_ctcp_preprocess = true;
  HashingSink ctcp_sink;
  timer.Restart();
  auto ctcp_mine = EnumerateMaximalKPlexes(pre_loaded->graph, ctcp,
                                           ctcp_sink);
  const double ctcp_mine_seconds = timer.ElapsedSeconds();
  if (!cold_mine.ok() || !pre_mine.ok() || !ctcp_mine.ok()) {
    std::fprintf(stderr, "mine failed\n");
    return 1;
  }
  reduce_table.AddRow({"recomputed reduction",
                       FormatCount(cold_mine->num_plexes),
                       FormatSeconds(cold_mine_seconds), "peeled"});
  reduce_table.AddRow(
      {"precomputed sections", FormatCount(pre_mine->num_plexes),
       FormatSeconds(pre_mine_seconds),
       pre_mine->counters.core_reductions_precomputed > 0 ? "skipped"
                                                          : "NOT SKIPPED"});
  reduce_table.AddRow({"ctcp preprocess (ctcp=on)",
                       FormatCount(ctcp_mine->num_plexes),
                       FormatSeconds(ctcp_mine_seconds), "ctcp fixpoint"});
  reduce_table.Print(std::cout);
  const bool reduction_ok =
      pre_mine->counters.core_reductions_precomputed == 1 &&
      pre_mine->counters.orderings_precomputed == 1 &&
      pre_mine->num_plexes == cold_mine->num_plexes &&
      pre_sink.fingerprint() == cold_sink.fingerprint() &&
      ctcp_mine->num_plexes == cold_mine->num_plexes &&
      ctcp_sink.fingerprint() == cold_sink.fingerprint();
  std::printf("precomputed and ctcp runs produced identical results: "
              "%s\n", reduction_ok ? "yes" : "NO (BUG)");
  std::printf("ctcp pays off vs the plain peel here: %s (%.2fx)\n\n",
              ctcp_mine_seconds < cold_mine_seconds ? "yes" : "no",
              cold_mine_seconds / std::max(ctcp_mine_seconds, 1e-9));

  // -------------------------------------------------- cold/warm cache
  GraphCatalog catalog;
  QueryEngine engine(catalog);
  Status registered = catalog.RegisterFile("bench", pre_path);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  QueryRequest request;
  request.graph = "bench";
  request.k = kK;
  request.q = kQ;

  TablePrinter query_table(
      {"query", "plexes", "seconds", "served from cache"});
  auto cold = engine.Run(request);
  if (!cold.ok()) {
    std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"cold (k=2, q=10)", FormatCount(cold->num_plexes),
                      FormatSeconds(cold->seconds),
                      cold->from_cache ? "yes" : "no"});

  auto warm = engine.Run(request);
  if (!warm.ok()) {
    std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"warm repeat", FormatCount(warm->num_plexes),
                      FormatSeconds(warm->seconds),
                      warm->from_cache ? "yes" : "no"});

  QueryRequest threaded = request;
  threaded.threads = 4;
  auto warm_threaded = engine.Run(threaded);
  if (!warm_threaded.ok()) {
    std::fprintf(stderr, "%s\n",
                 warm_threaded.status().ToString().c_str());
    return 1;
  }
  query_table.AddRow({"warm, threads=4", FormatCount(warm_threaded->num_plexes),
                      FormatSeconds(warm_threaded->seconds),
                      warm_threaded->from_cache ? "yes" : "no"});
  query_table.Print(std::cout);

  const bool identical = warm->from_cache &&
                         warm->num_plexes == cold->num_plexes &&
                         warm->fingerprint == cold->fingerprint &&
                         warm_threaded->from_cache &&
                         warm_threaded->fingerprint == cold->fingerprint &&
                         cold->fingerprint == cold_sink.fingerprint() &&
                         cold->reduction_precomputed;
  std::printf("\nwarm results identical to cold run (and the cold service "
              "run used precompute): %s\n", identical ? "yes" : "NO (BUG)");
  std::printf("cold-to-warm speedup: %.0fx\n",
              cold->seconds / std::max(warm->seconds, 1e-9));

  // ------------------------------------- streamed delivery (protocol v4)
  // What results=stream costs on top of a count-only mine: buffering
  // the plex bodies, then chunk-framing them through a ServiceSession
  // (the exact serve code path, written to a sink in memory). top=K
  // shows the selection sink's price for keeping only the K best.
  // Self-checked: the streamed chunks must reassemble to the count-only
  // answer and top=K must serve the K largest, best-first.
  std::printf("\nstreamed delivery (k=%u, q=%u)\n", kK, kQ);
  bool stream_ok = true;
  {
    TablePrinter stream_table({"mode", "plexes", "seconds", "vs count"});
    QueryEngine stream_engine(catalog, /*cache_capacity=*/0);

    QueryRequest count_only = request;
    timer.Restart();
    auto counted = stream_engine.Run(count_only);
    const double count_seconds = timer.ElapsedSeconds();
    stream_ok = counted.ok();

    QueryRequest buffered = request;
    buffered.collect_bodies = true;
    timer.Restart();
    auto bodies = stream_engine.Run(buffered);
    const double buffered_seconds = timer.ElapsedSeconds();
    stream_ok = stream_ok && bodies.ok() && bodies->plexes != nullptr &&
                bodies->plexes->size() == counted->num_plexes &&
                bodies->fingerprint == counted->fingerprint;

    // The serve path end to end: chunk frames rendered by a framed
    // ServiceSession into an in-memory sink.
    std::ostringstream wire;
    ServiceSession session(wire);
    stream_ok = stream_ok &&
                session.catalog().RegisterFile("bench", pre_path).ok() &&
                session.ExecuteLine("hello proto=4 mode=framed");
    timer.Restart();
    stream_ok = stream_ok &&
                session.ExecuteLine(
                    "{\"id\":1,\"cmd\":\"mine\",\"graph\":\"bench\","
                    "\"k\":" + std::to_string(kK) +
                    ",\"q\":" + std::to_string(kQ) +
                    ",\"results\":\"stream\",\"chunk\":64,"
                    "\"cache\":false}");
    const double streamed_seconds = timer.ElapsedSeconds();
    uint64_t chunk_frames = 0;
    const std::string transcript = wire.str();
    for (std::size_t at = transcript.find("\"type\":\"result_chunk\"");
         at != std::string::npos;
         at = transcript.find("\"type\":\"result_chunk\"", at + 1)) {
      ++chunk_frames;
    }
    const uint64_t expected_frames =
        counted.ok() ? std::max<uint64_t>(
                           1, (counted->num_plexes + 63) / 64)
                     : 0;
    stream_ok = stream_ok && chunk_frames == expected_frames &&
                session.errors() == 0;

    QueryRequest top = request;
    top.collect_bodies = true;
    top.top_k = 10;
    timer.Restart();
    auto best = stream_engine.Run(top);
    const double top_seconds = timer.ElapsedSeconds();
    stream_ok = stream_ok && best.ok() && best->plexes != nullptr &&
                best->plexes->size() ==
                    std::min<uint64_t>(10, counted->num_plexes);
    if (stream_ok && !best->plexes->empty()) {
      stream_ok = best->plexes->front().size() == counted->max_plex_size;
      for (std::size_t i = 1; i < best->plexes->size(); ++i) {
        stream_ok = stream_ok && (*best->plexes)[i - 1].size() >=
                                     (*best->plexes)[i].size();
      }
    }

    auto ratio = [&](double seconds) {
      return FormatDouble(seconds / std::max(count_seconds, 1e-9), 2) + "x";
    };
    stream_table.AddRow({"count only", FormatCount(counted->num_plexes),
                         FormatSeconds(count_seconds), "1.00x"});
    stream_table.AddRow({"bodies buffered",
                         FormatCount(counted->num_plexes),
                         FormatSeconds(buffered_seconds),
                         ratio(buffered_seconds)});
    stream_table.AddRow({"streamed chunks (session)",
                         FormatCount(counted->num_plexes),
                         FormatSeconds(streamed_seconds),
                         ratio(streamed_seconds)});
    stream_table.AddRow({"top=10", "10", FormatSeconds(top_seconds),
                         ratio(top_seconds)});
    stream_table.Print(std::cout);
    std::printf("streamed chunks reassemble the count-only answer and "
                "top=K is best-first: %s\n",
                stream_ok ? "yes" : "NO (BUG)");
  }

  // --------------------------------------------- contended throughput
  // A batch of mixed queries (4 distinct q values, 3 copies each) runs
  // through the ServiceDispatcher at increasing worker counts over the
  // *same* resident catalog entry. Cold rows use a fresh result cache
  // (duplicates collapse through single-flight); warm rows repeat the
  // batch against the populated cache. Fingerprints must be identical
  // at every worker count — that check is what turns a throughput
  // table into a soak test.
  std::printf("\ncontended dispatcher throughput "
              "(batch: 4 distinct queries x 3 copies)\n");
  TablePrinter contended_table(
      {"workers", "cold s", "cold jobs/s", "warm s", "warm jobs/s"});
  std::map<uint32_t, uint64_t> reference_fingerprints;  // q -> fingerprint
  bool contended_ok = true;
  for (const uint32_t workers : {1u, 2u, 4u, 8u}) {
    QueryEngine contended(catalog);  // fresh cache: cold per worker count
    DispatcherOptions dispatch;
    dispatch.workers = workers;
    ServiceDispatcher dispatcher(contended, dispatch);

    auto run_batch = [&](double& seconds) {
      std::vector<uint64_t> ids;
      WallTimer batch_timer;
      for (int copy = 0; copy < 3; ++copy) {
        for (uint32_t q = kQ; q < kQ + 4; ++q) {
          QueryRequest request;
          request.graph = "bench";
          request.k = kK;
          request.q = q;
          auto id = dispatcher.Submit(request);
          if (!id.ok()) return false;
          ids.push_back(*id);
        }
      }
      for (const uint64_t id : ids) {
        auto info = dispatcher.Wait(id);
        if (!info.ok() || info->state != JobState::kDone) return false;
        const uint32_t q = info->request.q;
        auto ref = reference_fingerprints.find(q);
        if (ref == reference_fingerprints.end()) {
          reference_fingerprints.emplace(q, info->result.fingerprint);
        } else if (ref->second != info->result.fingerprint) {
          return false;
        }
      }
      seconds = batch_timer.ElapsedSeconds();
      return true;
    };

    double cold_seconds = 0, warm_seconds = 0;
    if (!run_batch(cold_seconds) || !run_batch(warm_seconds)) {
      contended_ok = false;
      break;
    }
    contended_table.AddRow({std::to_string(workers),
                            FormatSeconds(cold_seconds),
                            FormatDouble(12.0 / cold_seconds, 1),
                            FormatSeconds(warm_seconds),
                            FormatDouble(12.0 / warm_seconds, 1)});
  }
  contended_table.Print(std::cout);
  std::printf("fingerprints identical across 1/2/4/8 workers (cold and "
              "warm): %s\n", contended_ok ? "yes" : "NO (BUG)");

  // ---------------------------------------------- sharded seed space
  // Sharded mining v1 (docs/SHARDING.md) inside one process: the same
  // query as 1 shard vs 4 seed-range shards on a 4-worker dispatcher.
  // The merged 4-shard fingerprint must equal the single-shard run —
  // the same check the TCP coordinator applies across machines.
  std::printf("\nsharded seed space (k=%u, q=%u; 4 dispatcher workers)\n",
              kK, kQ);
  bool shard_ok = true;
  double one_shard_seconds = 0, four_shard_seconds = 0;
  uint64_t one_shard_fingerprint = 0;
  TablePrinter shard_table({"shards", "plexes", "seconds", "fingerprint ok"});
  {
    QueryEngine shard_engine(catalog, /*cache_capacity=*/0);
    DispatcherOptions dispatch;
    dispatch.workers = 4;
    ServiceDispatcher dispatcher(shard_engine, dispatch);

    // Probe for the seed-space size (the coordinator's planning step).
    QueryRequest probe;
    probe.graph = "bench";
    probe.k = kK;
    probe.q = kQ;
    probe.seed_begin = 0;
    probe.seed_end = 0;
    auto probed = shard_engine.Run(probe);
    const uint64_t total_seeds = probed.ok() ? probed->total_seeds : 0;
    shard_ok = probed.ok() && total_seeds > 0;

    auto run_shards = [&](uint32_t shards, double& seconds,
                          uint64_t& fingerprint, uint64_t& plexes) {
      WallTimer shard_timer;
      std::vector<uint64_t> ids;
      for (uint32_t i = 0; i < shards; ++i) {
        QueryRequest request;
        request.graph = "bench";
        request.k = kK;
        request.q = kQ;
        request.seed_begin =
            static_cast<uint32_t>(total_seeds * i / shards);
        request.seed_end =
            static_cast<uint32_t>(total_seeds * (i + 1) / shards);
        if (shards == 1) request.seed_end = UINT32_MAX;  // the full run
        auto id = dispatcher.Submit(request);
        if (!id.ok()) return false;
        ids.push_back(*id);
      }
      MergeableResult merged;
      for (const uint64_t id : ids) {
        auto info = dispatcher.Wait(id);
        if (!info.ok() || info->state != JobState::kDone) return false;
        MergeableResult piece;
        piece.count = info->result.num_plexes;
        piece.xor_hash = info->result.fingerprint_xor;
        piece.max_plex_size = info->result.max_plex_size;
        merged.Merge(piece);
      }
      seconds = shard_timer.ElapsedSeconds();
      fingerprint = merged.fingerprint();
      plexes = merged.count;
      return true;
    };

    uint64_t one_plexes = 0, four_plexes = 0, four_fingerprint = 0;
    shard_ok = shard_ok &&
               run_shards(1, one_shard_seconds, one_shard_fingerprint,
                          one_plexes) &&
               run_shards(4, four_shard_seconds, four_fingerprint,
                          four_plexes) &&
               one_shard_fingerprint == four_fingerprint &&
               one_shard_fingerprint == cold_sink.fingerprint() &&
               one_plexes == four_plexes;
    shard_table.AddRow({"1", FormatCount(one_plexes),
                        FormatSeconds(one_shard_seconds), "(reference)"});
    shard_table.AddRow({"4", FormatCount(four_plexes),
                        FormatSeconds(four_shard_seconds),
                        shard_ok ? "yes" : "NO (BUG)"});
  }
  shard_table.Print(std::cout);
  std::printf("4-shard merge identical to 1 shard: %s (%.2fx)\n",
              shard_ok ? "yes" : "NO (BUG)",
              one_shard_seconds / std::max(four_shard_seconds, 1e-9));

  std::system(("rm -rf " + dir).c_str());
  return identical && reduction_ok && stream_ok && contended_ok && shard_ok
             ? 0
             : 1;
}

}  // namespace
}  // namespace kplex

int main() { return kplex::Run(); }
