// Reproduces Table 3 of the paper: sequential running time of FP,
// ListPlex, Ours_P and Ours on small/medium datasets for several (k, q),
// together with the number of maximal k-plexes found. The paper's
// headline shapes: all four report identical counts; Ours is fastest
// (up to ~5x vs ListPlex, ~2x vs FP in the paper); Ours >= Ours_P; no
// clear winner between ListPlex and FP.
//
// The last two columns measure the SIMD dispatch end to end: "Ours"
// runs under the startup-dispatched bitset kernels, "Ours noSIMD"
// re-runs it pinned to the portable word loops (what KPLEX_SIMD=off
// selects), and "simd" is the resulting whole-algorithm speedup. Both
// runs must produce the same fingerprint — the kernels are bit-exact.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "util/bitset_kernels.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

// (k, q) grids scaled from the paper's {2,3,4} x {12,20,30} to keep the
// synthetic workloads interesting yet laptop-feasible.
const std::vector<Cell> kCells = {
    {"jazz-syn", 2, 12},          {"jazz-syn", 3, 12},
    {"jazz-syn", 4, 12},          {"lastfm-syn", 2, 6},
    {"as-caida-syn", 2, 5},       {"wiki-vote-syn", 2, 12},
    {"wiki-vote-syn", 3, 12},     {"wiki-vote-syn", 4, 20},
    {"soc-epinions-syn", 2, 12},  {"soc-epinions-syn", 3, 12},
    {"soc-epinions-syn", 4, 12},  {"soc-slashdot-syn", 2, 12},
    {"soc-slashdot-syn", 3, 20},  {"soc-slashdot-syn", 4, 20},
    {"email-euall-syn", 3, 12},   {"email-euall-syn", 4, 14},
    {"com-dblp-syn", 2, 7},       {"com-dblp-syn", 3, 8},
    {"amazon0505-syn", 2, 5},     {"amazon0505-syn", 3, 7},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Table 3: sequential running time (sec) ==\n");
  std::printf(
      "FP vs ListPlex vs Ours_P vs Ours; all four must report the same\n"
      "#k-plexes (cross-checked via result-set fingerprints).\n\n");

  std::printf("bitset kernel dispatch on this machine: %s\n\n",
              kernels::DispatchedName());

  TablePrinter table({"dataset", "k", "q", "#k-plexes", "FP", "ListPlex",
                      "Ours_P", "Ours", "Ours noSIMD", "simd"});
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) {
      std::fprintf(stderr, "load %s: %s\n", cell.dataset,
                   graph.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t count = 0, fingerprint = 0;
    std::vector<std::string> times;
    bool first = true;
    double ours_seconds = 0;
    for (const char* algo : {"FP", "ListPlex", "Ours_P", "Ours"}) {
      RunOutcome out =
          TimeAlgo(*graph, MakeSequentialAlgo(algo, cell.k, cell.q));
      if (!out.ok) {
        std::fprintf(stderr, "%s on %s failed: %s\n", algo, cell.dataset,
                     out.error.c_str());
        return 1;
      }
      if (first) {
        count = out.num_plexes;
        fingerprint = out.fingerprint;
        first = false;
      } else if (out.fingerprint != fingerprint) {
        all_agree = false;
        std::fprintf(stderr, "RESULT MISMATCH: %s on %s k=%u q=%u\n", algo,
                     cell.dataset, cell.k, cell.q);
      }
      times.push_back(FormatSeconds(out.seconds));
      ours_seconds = out.seconds;  // the loop ends on "Ours"
    }
    // The same "Ours" cell pinned to the portable kernels: the
    // end-to-end cost of losing the SIMD dispatch, fingerprint-checked.
    kernels::SetActiveForTest(&kernels::Portable());
    RunOutcome portable =
        TimeAlgo(*graph, MakeSequentialAlgo("Ours", cell.k, cell.q));
    kernels::SetActiveForTest(nullptr);
    if (!portable.ok) {
      std::fprintf(stderr, "Ours (portable kernels) on %s failed: %s\n",
                   cell.dataset, portable.error.c_str());
      return 1;
    }
    if (portable.fingerprint != fingerprint) {
      all_agree = false;
      std::fprintf(stderr, "RESULT MISMATCH: portable kernels on %s\n",
                   cell.dataset);
    }
    times.push_back(FormatSeconds(portable.seconds));
    times.push_back(FormatDouble(portable.seconds / ours_seconds, 2) + "x");
    row.push_back(FormatCount(count));
    row.insert(row.end(), times.begin(), times.end());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nresult sets agree across algorithms: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
