// Reproduces Figure 7 (and its appendix extension Figure 14): sequential
// running time of FP, ListPlex and Ours as q varies. The paper's shapes:
// Ours (the bottom curve) dominates at every q; all curves fall as q
// grows (more pruning, fewer results); ListPlex-vs-FP flips with k.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Series {
  const char* dataset;
  uint32_t k;
  uint32_t q_begin;
  uint32_t q_end;  // inclusive
  uint32_t q_step;
};

const std::vector<Series> kSeries = {
    {"wiki-vote-syn", 3, 12, 20, 2},
    {"wiki-vote-syn", 4, 18, 26, 2},
    {"jazz-syn", 4, 12, 20, 2},
    {"email-euall-syn", 4, 14, 22, 2},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Figure 7 / 14: running time (sec) vs q ==\n\n");
  for (const auto& series : kSeries) {
    auto graph = LoadDataset(series.dataset);
    if (!graph.ok()) return 1;
    std::printf("--- %s, k = %u ---\n", series.dataset, series.k);
    TablePrinter table({"q", "#k-plexes", "FP", "ListPlex", "Ours"});
    for (uint32_t q = series.q_begin; q <= series.q_end; q += series.q_step) {
      uint64_t count = 0, fingerprint = 0;
      std::vector<std::string> row = {std::to_string(q)};
      std::vector<std::string> times;
      bool first = true;
      for (const char* algo : {"FP", "ListPlex", "Ours"}) {
        RunOutcome out = TimeAlgo(*graph, MakeSequentialAlgo(algo, series.k, q));
        if (!out.ok) {
          std::fprintf(stderr, "%s failed: %s\n", algo, out.error.c_str());
          return 1;
        }
        if (first) {
          count = out.num_plexes;
          fingerprint = out.fingerprint;
          first = false;
        } else if (out.fingerprint != fingerprint) {
          std::fprintf(stderr, "RESULT MISMATCH (%s q=%u)\n", algo, q);
          return 1;
        }
        times.push_back(FormatSeconds(out.seconds));
      }
      row.push_back(FormatCount(count));
      row.insert(row.end(), times.begin(), times.end());
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
