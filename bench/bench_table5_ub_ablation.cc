// Reproduces Table 5 of the paper: effect of the upper-bounding
// technique. Compares Ours\ub (no Eq (3) pruning), Ours\ub+fp (the
// FP-style bound that re-sorts candidates in every recursion) and Ours
// (the Theorem 5.5 + 5.3 bound). The paper's shapes: Ours fastest in all
// cases; Ours\ub+fp sometimes loses to Ours\ub because the per-call sort
// backfires; the ub matters most at large k and small q.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"jazz-syn", 3, 12},         {"jazz-syn", 4, 12},
    {"wiki-vote-syn", 3, 12},    {"wiki-vote-syn", 4, 18},
    {"soc-slashdot-syn", 3, 20}, {"soc-slashdot-syn", 4, 20},
    {"email-euall-syn", 3, 12},  {"email-euall-syn", 4, 14},
    {"soc-pokec-syn", 3, 12},    {"soc-pokec-syn", 4, 16},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Table 5: effect of upper bounding (sec) ==\n\n");
  TablePrinter table({"dataset", "k", "q", "#k-plexes", "Ours\\ub",
                      "Ours\\ub+fp", "Ours"});
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t count = 0, fingerprint = 0;
    std::vector<std::string> times;
    bool first = true;
    for (const char* algo : {"Ours\\ub", "Ours\\ub+fp", "Ours"}) {
      RunOutcome out =
          TimeAlgo(*graph, MakeSequentialAlgo(algo, cell.k, cell.q));
      if (!out.ok) {
        std::fprintf(stderr, "%s failed: %s\n", algo, out.error.c_str());
        return 1;
      }
      if (first) {
        count = out.num_plexes;
        fingerprint = out.fingerprint;
        first = false;
      } else if (out.fingerprint != fingerprint) {
        all_agree = false;
      }
      times.push_back(FormatSeconds(out.seconds));
    }
    row.push_back(FormatCount(count));
    row.insert(row.end(), times.begin(), times.end());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nresult sets agree across variants: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
