// Reproduces Table 6 of the paper: effect of the pruning rules.
// Basic = Ours without R1 (Theorem 5.7 sub-task bound) and R2 (vertex-
// pair matrix); Basic+R1 and Basic+R2 enable one rule each. The paper's
// shapes: both rules help on every dataset; combined they reach up to
// ~7x over Basic (wiki-vote, k=4); R2 contributes more than R1.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"jazz-syn", 3, 12},         {"jazz-syn", 4, 12},
    {"wiki-vote-syn", 3, 12},    {"wiki-vote-syn", 4, 18},
    {"soc-slashdot-syn", 3, 20}, {"soc-slashdot-syn", 4, 20},
    {"email-euall-syn", 3, 12},  {"email-euall-syn", 4, 14},
    {"soc-pokec-syn", 3, 12},    {"soc-pokec-syn", 4, 16},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Table 6: effect of pruning rules R1/R2 (sec) ==\n\n");
  TablePrinter table({"dataset", "k", "q", "#k-plexes", "Basic", "Basic+R1",
                      "Basic+R2", "Ours"});
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t count = 0, fingerprint = 0;
    std::vector<std::string> times;
    bool first = true;
    for (const char* algo : {"Basic", "Basic+R1", "Basic+R2", "Ours"}) {
      RunOutcome out =
          TimeAlgo(*graph, MakeSequentialAlgo(algo, cell.k, cell.q));
      if (!out.ok) {
        std::fprintf(stderr, "%s failed: %s\n", algo, out.error.c_str());
        return 1;
      }
      if (first) {
        count = out.num_plexes;
        fingerprint = out.fingerprint;
        first = false;
      } else if (out.fingerprint != fingerprint) {
        all_agree = false;
      }
      times.push_back(FormatSeconds(out.seconds));
    }
    row.push_back(FormatCount(count));
    row.insert(row.end(), times.begin(), times.end());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nresult sets agree across variants: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
