// Reproduces the Related-Work claim of the paper (Section 2): the
// reverse-search framework of [8] "provides a polynomial delay ... but
// is less efficient than BK when the goal is to enumerate all maximal
// k-plexes". We time reverse search against the plain BK reference and
// the full engine on graphs small enough for all three.

#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/bk_naive.h"
#include "baselines/reverse_search.h"
#include "bench_common/table_printer.h"
#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/generators.h"
#include "util/timer.h"

namespace {

struct Cell {
  const char* label;
  kplex::Graph graph;
  uint32_t k;
  uint32_t q;
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Related-Work note: reverse search vs BK-style (sec) ==\n\n");

  std::vector<Cell> cells;
  cells.push_back({"er-40-20%", GenerateErdosRenyi(40, 0.20, 1001), 2, 4});
  cells.push_back({"er-60-12%", GenerateErdosRenyi(60, 0.12, 1002), 2, 4});
  cells.push_back({"ba-80-5", GenerateBarabasiAlbert(80, 5, 1003), 2, 5});
  cells.push_back({"ws-80-8", GenerateWattsStrogatz(80, 8, 0.2, 1004), 2, 5});

  TablePrinter table({"graph", "k", "q", "#k-plexes", "ReverseSearch",
                      "plain BK", "Ours"});
  for (auto& cell : cells) {
    WallTimer timer;
    CountingSink rs_sink;
    auto rs = ReverseSearchEnumerate(cell.graph, cell.k, cell.q, rs_sink);
    if (!rs.ok()) return 1;
    const double rs_seconds = timer.ElapsedSeconds();

    timer.Restart();
    CountingSink bk_sink;
    uint64_t bk_count = BkReferenceEnumerate(cell.graph, cell.k, cell.q,
                                             bk_sink);
    const double bk_seconds = timer.ElapsedSeconds();

    CountingSink ours_sink;
    auto ours = EnumerateMaximalKPlexes(
        cell.graph, EnumOptions::Ours(cell.k, cell.q), ours_sink);
    if (!ours.ok()) return 1;

    if (*rs != bk_count || bk_count != ours->num_plexes) {
      std::fprintf(stderr, "RESULT MISMATCH on %s\n", cell.label);
      return 1;
    }
    table.AddRow({cell.label, std::to_string(cell.k), std::to_string(cell.q),
                  FormatCount(bk_count), FormatSeconds(rs_seconds),
                  FormatSeconds(bk_seconds), FormatSeconds(ours->seconds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: reverse search trails plain BK by orders of\n"
      "magnitude on full enumeration (its strength is polynomial delay,\n"
      "not total time), and the engineered engine beats both.\n");
  return 0;
}
