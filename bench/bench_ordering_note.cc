// Reproduces the Section 3 remark of the paper: "our tests by shuffling
// within-shell vertex ordering show that it has a negligible impact on
// the time difference for our k-plex mining" — and, more broadly, that
// the degeneracy ordering matters for *speed* (it bounds |C| by D)
// while the result set is ordering-invariant.
//
// We compare the degeneracy ordering against plain id order and static
// degree order: counts must match exactly; times show degeneracy's edge.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/table_printer.h"
#include "core/enumerator.h"
#include "core/sink.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"jazz-syn", 3, 12},
    {"wiki-vote-syn", 3, 12},
    {"email-euall-syn", 3, 12},
    {"soc-epinions-syn", 3, 12},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Section 3 note: effect of the seed-vertex ordering ==\n\n");
  TablePrinter table({"dataset", "k", "q", "#k-plexes", "degeneracy",
                      "by-id", "by-degree"});
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t count = 0, fingerprint = 0;
    std::vector<std::string> times;
    bool first = true;
    for (auto ordering :
         {VertexOrdering::kDegeneracy, VertexOrdering::kById,
          VertexOrdering::kByDegreeAscending}) {
      EnumOptions options = EnumOptions::Ours(cell.k, cell.q);
      options.ordering = ordering;
      HashingSink sink;
      auto result = EnumerateMaximalKPlexes(*graph, options, sink);
      if (!result.ok()) return 1;
      if (first) {
        count = result->num_plexes;
        fingerprint = sink.fingerprint();
        first = false;
      } else if (sink.fingerprint() != fingerprint) {
        all_agree = false;
        std::fprintf(stderr, "RESULT MISMATCH under ordering change\n");
      }
      times.push_back(FormatSeconds(result->seconds));
    }
    row.push_back(FormatCount(count));
    row.insert(row.end(), times.begin(), times.end());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nresult sets agree across orderings: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
