// Sharded mining v2 vs v1 on a skew adversary. The graph is a dense
// Erdos-Renyi block welded to a long 4-regular ring: the ring survives
// the (q-k)-core reduction but emits nothing, and in degeneracy order
// its seeds come first — so v1's even seed split hands essentially all
// real work to the last shard and three of four workers idle. The v2
// coordinator's cost-planned chunks plus work stealing spread the dense
// block across all four workers.
//
// Self-checked: both coordinated runs must reproduce the single-process
// fingerprint exactly, and v2 must beat v1 by >= 1.5x, else exit 1.
// The speedup bar needs real cores: on a host with fewer than 4 the
// workers time-slice one another, every mode serializes to the same
// total CPU work, and no scheduler can buy wall-clock — the bench then
// reports the numbers but enforces only exactness.

#include <cstdio>

#if !defined(__unix__) && !defined(__APPLE__)

int main() {
  std::printf("bench_coord_steal: POSIX sockets unavailable; skipping.\n");
  return 0;
}

#else

#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "coord/coordinator.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "service/service_api.h"
#include "service/shard_coordinator.h"
#include "service/tcp_server.h"

namespace {

using namespace kplex;

constexpr uint32_t kK = 2;
constexpr uint32_t kQ = 5;
constexpr uint32_t kNumWorkers = 4;

/// Many disjoint dense blocks + one 4-regular ring (circulant +-1,
/// +-2). Ring degree 4 survives the 3-core at (k=2, q=5) yet yields
/// zero plexes: a 5-vertex 2-plex needs in-set degree >= 3 and ring
/// vertices have at most 2 in-set neighbors. Degeneracy peeling
/// removes the ring first, so every block seed lands at the END of the
/// canonical order — v1's even split stacks all real work into its
/// last shard, while the per-block granularity keeps the work spread
/// over many seeds (something chunked scheduling can actually split).
Graph BuildSkewAdversary(std::size_t blocks, std::size_t block_size,
                         std::size_t ring, uint64_t seed) {
  GraphBuilder builder(blocks * block_size + ring);
  for (std::size_t b = 0; b < blocks; ++b) {
    const Graph block = GenerateErdosRenyi(block_size, 0.35, seed + b);
    const VertexId offset = static_cast<VertexId>(b * block_size);
    for (VertexId u = 0; u < block.NumVertices(); ++u) {
      for (VertexId v : block.Neighbors(u)) {
        if (u < v) builder.AddEdge(offset + u, offset + v);
      }
    }
  }
  const VertexId base = static_cast<VertexId>(blocks * block_size);
  const VertexId n = static_cast<VertexId>(ring);
  for (VertexId i = 0; i < n; ++i) {
    builder.AddEdge(base + i, base + (i + 1) % n);
    builder.AddEdge(base + i, base + (i + 2) % n);
  }
  return builder.Build();
}

/// One in-process "worker process": its own ServiceApi behind its own
/// TCP server — what a separate `serve --listen` exposes.
struct Worker {
  Worker() {
    ServiceApiOptions options;
    options.workers = 2;
    api = std::make_shared<ServiceApi>(options);
    server = std::make_unique<TcpServer>(api, TcpServerOptions{});
  }

  bool StartWith(const std::string& name, const Graph& graph) {
    if (!api->catalog().RegisterGraph(name, graph).ok()) return false;
    return server->Start().ok();
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  std::shared_ptr<ServiceApi> api;
  std::unique_ptr<TcpServer> server;
};

std::string Hex(uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

}  // namespace

int main() {
  std::printf("== Sharded mining v2 (cost plan + stealing) vs v1 ==\n");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "skew adversary: %u dense ER blocks + 4-regular ring; %u workers, "
      "%u hardware threads.\n\n",
      24u, kNumWorkers, cores);

  const Graph graph = BuildSkewAdversary(24, 100, 3000, 17);

  // Single-process reference: the fingerprint every coordinated run
  // must reproduce, and the baseline wall time.
  RunOutcome single = TimeAlgo(graph, MakeSequentialAlgo("Ours", kK, kQ));
  if (!single.ok) {
    std::fprintf(stderr, "single-process run failed: %s\n",
                 single.error.c_str());
    return 1;
  }

  std::vector<Worker> workers(kNumWorkers);
  std::vector<std::string> endpoints;
  for (auto& worker : workers) {
    if (!worker.StartWith("skew", graph)) {
      std::fprintf(stderr, "failed to start a worker\n");
      return 1;
    }
    endpoints.push_back(worker.endpoint());
  }

  QueryRequest query;
  query.graph = "skew";
  query.k = kK;
  query.q = kQ;
  query.use_cache = false;

  // v1: one even seed range per worker, no rebalancing.
  ShardCoordinatorOptions v1_options;
  v1_options.query = query;
  v1_options.shards = kNumWorkers;
  v1_options.endpoints = endpoints;
  auto v1 = CoordinateShardedMine(v1_options);
  if (!v1.ok()) {
    std::fprintf(stderr, "v1 coordination failed: %s\n",
                 v1.status().ToString().c_str());
    return 1;
  }

  // v2: the coordinator daemon's scheduler — cost-balanced chunks,
  // many more chunks than workers, stealing on.
  CoordinatorOptions v2_options;
  v2_options.chunks_per_worker = 8;
  v2_options.steal_min_seconds = 0.05;
  Coordinator coordinator(v2_options);
  for (const auto& endpoint : endpoints) {
    auto added = coordinator.AddWorker(endpoint);
    if (!added.ok()) {
      std::fprintf(stderr, "register %s: %s\n", endpoint.c_str(),
                   added.status().ToString().c_str());
      return 1;
    }
  }
  auto submitted = coordinator.Submit(query);
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  auto v2 = coordinator.Wait(*submitted);
  if (!v2.ok() || v2->state != "done") {
    std::fprintf(stderr, "v2 coordination failed: %s\n",
                 v2.ok() ? v2->status.ToString().c_str()
                         : v2.status().ToString().c_str());
    return 1;
  }
  coordinator.Stop();

  const bool v1_exact = v1->num_plexes == single.num_plexes &&
                        v1->fingerprint == single.fingerprint;
  const bool v2_exact = v2->num_plexes == single.num_plexes &&
                        v2->fingerprint == single.fingerprint;
  const double speedup = v2->seconds > 0 ? v1->seconds / v2->seconds : 0;

  TablePrinter table({"mode", "seconds", "#plexes", "fingerprint", "chunks",
                      "steals", "vs v1"});
  table.AddRow({"single-process", FormatSeconds(single.seconds),
                FormatCount(single.num_plexes), Hex(single.fingerprint), "-",
                "-", "-"});
  table.AddRow({"v1 even split", FormatSeconds(v1->seconds),
                FormatCount(v1->num_plexes), Hex(v1->fingerprint),
                std::to_string(v1->shards.size()), "-", "1.00x"});
  table.AddRow({"v2 steal", FormatSeconds(v2->seconds),
                FormatCount(v2->num_plexes), Hex(v2->fingerprint),
                std::to_string(v2->chunks), std::to_string(v2->steals),
                FormatDouble(speedup, 2) + "x"});
  table.Print(std::cout);

  std::printf("\nv2 cost-planned: %s; requeues: %llu\n",
              v2->cost_planned ? "yes" : "no",
              static_cast<unsigned long long>(v2->requeues));

  bool ok = true;
  if (!v1_exact || !v2_exact) {
    std::fprintf(stderr, "FINGERPRINT MISMATCH (v1 %s, v2 %s)\n",
                 v1_exact ? "ok" : "WRONG", v2_exact ? "ok" : "WRONG");
    ok = false;
  }
  if (cores >= kNumWorkers) {
    if (speedup < 1.5) {
      std::fprintf(stderr,
                   "SPEEDUP TOO LOW: v2 is %.2fx vs v1 (need >= 1.5x)\n",
                   speedup);
      ok = false;
    }
  } else {
    std::printf(
        "note: only %u hardware threads for %u workers — every mode\n"
        "serializes onto the same cores, so the >= 1.5x bar is not\n"
        "enforced on this host (exactness still is).\n",
        cores, kNumWorkers);
  }
  std::printf("self-check: %s\n", ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}

#endif  // POSIX sockets
