// Reproduces Table 4 of the paper: parallel running time on the large
// datasets for k = 2 and k = 3, comparing parallel FP, parallel
// ListPlex, Ours with the default timeout tau = 0.1 ms, and Ours with
// the per-cell best tau (tuned over a small grid, mirroring the paper's
// tau_best column). The paper ran 16 threads on a 24-core Xeon; this
// harness uses the machine's available cores (override with
// KPLEX_BENCH_THREADS) — see EXPERIMENTS.md for the hardware note.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common_flags.h"
#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"enwiki-syn", 2, 12},      {"enwiki-syn", 3, 12},
    {"soc-pokec-syn", 2, 12},   {"soc-pokec-syn", 3, 12},
    {"as-skitter-syn", 2, 20},  {"as-skitter-syn", 3, 20},
    {"uk-2005-syn", 2, 8},      {"uk-2005-syn", 3, 9},
    {"webbase-syn", 2, 20},     {"webbase-syn", 3, 20},
    {"arabic-syn", 2, 10},      {"arabic-syn", 3, 10},
};

const double kTauGridMs[] = {0.01, 0.1, 1.0, 10.0};

}  // namespace

int main() {
  using namespace kplex;
  const uint32_t threads = BenchThreads();
  std::printf("== Table 4: parallel running time (sec), %u threads ==\n\n",
              threads);

  // Service-mode columns (ROADMAP): the same cell through a shared
  // QueryEngine — cold executes the parallel engine, warm is a result-
  // cache hit (fingerprint-checked against the raw runs).
  TablePrinter table({"dataset", "k", "q", "tau_best(ms)", "#k-plexes",
                      "FP-par", "ListPlex-par", "Ours(0.1ms)",
                      "Ours(tau_best)", "svc cold", "svc warm"});
  GraphCatalog catalog;
  QueryEngine engine(catalog);
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;

    RunOutcome fp = TimeAlgo(
        *graph, MakeParallelAlgo("FP-par", cell.k, cell.q, threads, 0));
    RunOutcome lp = TimeAlgo(
        *graph, MakeParallelAlgo("ListPlex-par", cell.k, cell.q, threads, 0));
    RunOutcome ours_default = TimeAlgo(
        *graph, MakeParallelAlgo("Ours-par", cell.k, cell.q, threads, 0.1));
    if (!fp.ok || !lp.ok || !ours_default.ok) {
      std::fprintf(stderr, "run failed on %s\n", cell.dataset);
      return 1;
    }
    double tau_best = 0.1;
    double best_time = ours_default.seconds;
    for (double tau : kTauGridMs) {
      if (tau == 0.1) continue;
      RunOutcome out = TimeAlgo(
          *graph, MakeParallelAlgo("Ours-par", cell.k, cell.q, threads, tau));
      if (out.ok && out.fingerprint == ours_default.fingerprint &&
          out.seconds < best_time) {
        best_time = out.seconds;
        tau_best = tau;
      }
    }
    if (fp.fingerprint != ours_default.fingerprint ||
        lp.fingerprint != ours_default.fingerprint) {
      all_agree = false;
      std::fprintf(stderr, "RESULT MISMATCH on %s k=%u q=%u\n", cell.dataset,
                   cell.k, cell.q);
    }
    ServiceModeOutcome service = RunServiceModeColdWarm(
        catalog, engine, *graph, cell.dataset, cell.k, cell.q, threads,
        ours_default.fingerprint);
    if (!service.ok) {
      all_agree = false;
      std::fprintf(stderr, "SERVICE-MODE MISMATCH on %s k=%u q=%u\n",
                   cell.dataset, cell.k, cell.q);
    }
    table.AddRow({cell.dataset, std::to_string(cell.k),
                  std::to_string(cell.q), FormatDouble(tau_best, 2),
                  FormatCount(ours_default.num_plexes),
                  FormatSeconds(fp.seconds), FormatSeconds(lp.seconds),
                  FormatSeconds(ours_default.seconds),
                  FormatSeconds(best_time),
                  service.ok ? FormatSeconds(service.cold_seconds) : "-",
                  service.ok ? FormatSeconds(service.warm_seconds) + " [hit]"
                             : "-"});
  }
  table.Print(std::cout);
  std::printf("\nresult sets agree across algorithms: %s\n",
              all_agree ? "yes" : "NO (bug!)");
  return all_agree ? 0 : 1;
}
