// Reproduces the Related-Work claim about kPlexS's CTCP reduction
// (Section 2): "the reduced graph by CTCP is guaranteed to be no larger
// than that computed by BnB, Maplex and KpLeX". We compare the plain
// (q-k)-core against the CTCP fixpoint — sizes and the effect on mining
// time — across parameter settings where the edge rule can fire
// (q > 2k).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"
#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/ctcp.h"
#include "graph/kcore.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"wiki-vote-syn", 2, 12},  {"wiki-vote-syn", 3, 16},
    {"soc-epinions-syn", 2, 12}, {"email-euall-syn", 3, 12},
    {"as-skitter-syn", 3, 20}, {"webbase-syn", 3, 20},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Related-Work note: CTCP reduction vs plain core ==\n\n");
  TablePrinter table({"dataset", "k", "q", "core n/m", "ctcp n/m",
                      "edges cut", "Ours", "Ours+ctcp"});
  bool all_agree = true;
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;

    CoreReduction core = ReduceToCore(*graph, cell.q - cell.k);
    CtcpResult ctcp = CtcpReduce(*graph, cell.k, cell.q);

    EnumOptions plain = EnumOptions::Ours(cell.k, cell.q);
    EnumOptions with_ctcp = plain;
    with_ctcp.use_ctcp_preprocess = true;

    HashingSink plain_sink, ctcp_sink;
    auto plain_run = EnumerateMaximalKPlexes(*graph, plain, plain_sink);
    auto ctcp_run = EnumerateMaximalKPlexes(*graph, with_ctcp, ctcp_sink);
    if (!plain_run.ok() || !ctcp_run.ok()) return 1;
    if (plain_sink.fingerprint() != ctcp_sink.fingerprint()) {
      all_agree = false;
      std::fprintf(stderr, "RESULT MISMATCH on %s\n", cell.dataset);
    }
    table.AddRow(
        {cell.dataset, std::to_string(cell.k), std::to_string(cell.q),
         FormatCount(core.graph.NumVertices()) + "/" +
             FormatCount(core.graph.NumEdges()),
         FormatCount(ctcp.graph.NumVertices()) + "/" +
             FormatCount(ctcp.graph.NumEdges()),
         FormatCount(ctcp.edges_pruned), FormatSeconds(plain_run->seconds),
         FormatSeconds(ctcp_run->seconds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: the CTCP fixpoint is never larger than the plain\n"
      "core (kPlexS's guarantee) and identical results are produced either\n"
      "way. On sparse heavy-tailed graphs the edge rule collapses the\n"
      "working graph by orders of magnitude and speeds mining up 2-3x —\n"
      "the same global reduction the engine otherwise rediscovers seed by\n"
      "seed through Corollary 5.2.\n");
  return all_agree ? 0 : 1;
}
