// Reproduces Figure 9 (and its appendix extension Figure 15): sequential
// running time of the Basic variant (no R1/R2 pruning rules) versus the
// full algorithm as q varies. The paper's shape: Ours is consistently
// below Basic, with the gap widening at larger k and at q values where
// many sub-tasks are fruitless.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Series {
  const char* dataset;
  uint32_t k;
  uint32_t q_begin;
  uint32_t q_end;
  uint32_t q_step;
};

const std::vector<Series> kSeries = {
    {"jazz-syn", 4, 12, 20, 2},
    {"email-euall-syn", 4, 14, 22, 2},
    {"soc-pokec-syn", 3, 12, 20, 2},
    {"wiki-vote-syn", 4, 18, 26, 2},
};

}  // namespace

int main() {
  using namespace kplex;
  std::printf("== Figure 9 / 15: Basic vs Ours, running time (sec) vs q ==\n\n");
  for (const auto& series : kSeries) {
    auto graph = LoadDataset(series.dataset);
    if (!graph.ok()) return 1;
    std::printf("--- %s, k = %u ---\n", series.dataset, series.k);
    TablePrinter table({"q", "#k-plexes", "Basic", "Ours", "speedup"});
    for (uint32_t q = series.q_begin; q <= series.q_end; q += series.q_step) {
      RunOutcome basic =
          TimeAlgo(*graph, MakeSequentialAlgo("Basic", series.k, q));
      RunOutcome ours =
          TimeAlgo(*graph, MakeSequentialAlgo("Ours", series.k, q));
      if (!basic.ok || !ours.ok) return 1;
      if (basic.fingerprint != ours.fingerprint) {
        std::fprintf(stderr, "RESULT MISMATCH at q=%u\n", q);
        return 1;
      }
      const double speedup =
          ours.seconds > 0 ? basic.seconds / ours.seconds : 1.0;
      table.AddRow({std::to_string(q), FormatCount(ours.num_plexes),
                    FormatSeconds(basic.seconds), FormatSeconds(ours.seconds),
                    FormatDouble(speedup, 2) + "x"});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
