// Reproduces Figure 13 of the paper (Appendix B.1): effect of the task
// timeout tau_time on parallel running time. The paper's shape: very
// large tau (approaching "no decomposition") degrades load balancing and
// slows the run; the default 0.1 ms sits near the optimum across
// datasets.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common_flags.h"
#include "bench_common/dataset_registry.h"
#include "bench_common/harness.h"
#include "bench_common/table_printer.h"

namespace {

struct Cell {
  const char* dataset;
  uint32_t k;
  uint32_t q;
};

const std::vector<Cell> kCells = {
    {"enwiki-syn", 2, 12},
    {"enwiki-syn", 3, 12},
    {"soc-pokec-syn", 3, 12},
    {"email-euall-syn", 4, 14},
    {"webbase-syn", 3, 20},
};

const double kTausMs[] = {0.001, 0.01, 0.1, 1.0, 10.0, 100.0};

}  // namespace

int main() {
  using namespace kplex;
  const uint32_t threads = BenchThreads();
  std::printf(
      "== Figure 13: parallel time (sec) vs tau_time, %u threads ==\n\n",
      threads);

  TablePrinter table({"dataset", "k", "q", "tau=1us", "10us", "0.1ms",
                      "1ms", "10ms", "100ms"});
  for (const auto& cell : kCells) {
    auto graph = LoadDataset(cell.dataset);
    if (!graph.ok()) return 1;
    std::vector<std::string> row = {cell.dataset, std::to_string(cell.k),
                                    std::to_string(cell.q)};
    uint64_t fingerprint = 0;
    bool first = true;
    for (double tau : kTausMs) {
      RunOutcome out = TimeAlgo(
          *graph, MakeParallelAlgo("Ours-par", cell.k, cell.q, threads, tau));
      if (!out.ok) return 1;
      if (first) {
        fingerprint = out.fingerprint;
        first = false;
      } else if (out.fingerprint != fingerprint) {
        std::fprintf(stderr, "RESULT MISMATCH at tau=%.3fms\n", tau);
        return 1;
      }
      row.push_back(FormatSeconds(out.seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
