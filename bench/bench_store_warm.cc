// What the durable result store buys: the same query served three ways
// — cold (full enumeration), memory-warm (the engine's LRU result
// cache), and disk-warm (a *fresh* engine + fresh store handle reading
// the entry a previous "process" persisted, the restart scenario).
// Self-checked, not eyeballed: all three fingerprints must be
// bit-identical, the disk-warm run must report from_store, and the
// enumerate-stage histogram must not grow during either warm run (the
// proof that no enumeration happened). Exits non-zero on any mismatch.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common/table_printer.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "obs/metrics.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "store/result_store.h"
#include "util/timer.h"

namespace kplex {
namespace {

constexpr uint32_t kK = 2;
constexpr uint32_t kQ = 10;

uint64_t EnumerateStageCount() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const HistogramSample& histogram : snapshot.histograms) {
    if (histogram.name == "kplex_stage_enumerate_seconds") {
      return histogram.count;
    }
  }
  return 0;
}

int Run() {
  const std::string dir =
      "/tmp/kplex_store_bench_" + std::to_string(::getpid());
  const std::string graph_path = dir + "/graph.kpx";
  const std::string store_dir = dir + "/store";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::printf("generating Barabasi-Albert graph (n=30000, attach=12)...\n");
  Graph graph = GenerateBarabasiAlbert(30000, 12, 7);
  std::printf("graph: %zu vertices, %zu edges\n\n", graph.NumVertices(),
              graph.NumEdges());
  if (!SaveSnapshot(graph, graph_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", graph_path.c_str());
    return 1;
  }

  QueryRequest request;
  request.graph = "bench";
  request.k = kK;
  request.q = kQ;

  TablePrinter table({"tier", "plexes", "seconds", "speedup", "served by"});
  bool ok = true;
  double cold_seconds = 0, memory_seconds = 0, disk_seconds = 0;
  uint64_t cold_fingerprint = 0, cold_plexes = 0;

  // ----------------------------------- process 1: cold, then memory-warm
  {
    GraphCatalog catalog;
    QueryEngine engine(catalog);
    StoreOptions store_options;
    store_options.directory = store_dir;
    auto store = ResultStore::Open(std::move(store_options));
    if (!store.ok() || !catalog.RegisterFile("bench", graph_path).ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    engine.AttachStore(store->get());

    WallTimer timer;
    auto cold = engine.Run(request);
    cold_seconds = timer.ElapsedSeconds();
    if (!cold.ok()) {
      std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
      return 1;
    }
    cold_fingerprint = cold->fingerprint;
    cold_plexes = cold->num_plexes;
    ok = ok && !cold->from_cache && (*store)->stats().writes == 1;

    const uint64_t enumerations_before_warm = EnumerateStageCount();
    timer.Restart();
    auto memory_warm = engine.Run(request);
    memory_seconds = timer.ElapsedSeconds();
    ok = ok && memory_warm.ok() && memory_warm->from_cache &&
         !memory_warm->from_store &&
         memory_warm->fingerprint == cold_fingerprint &&
         memory_warm->num_plexes == cold_plexes &&
         EnumerateStageCount() == enumerations_before_warm;
  }

  // -------------------- process 2: fresh engine + store handle, disk-warm
  {
    GraphCatalog catalog;
    QueryEngine engine(catalog);
    StoreOptions store_options;
    store_options.directory = store_dir;
    auto store = ResultStore::Open(std::move(store_options));
    if (!store.ok() || !catalog.RegisterFile("bench", graph_path).ok()) {
      std::fprintf(stderr, "restart setup failed\n");
      return 1;
    }
    engine.AttachStore(store->get());

    const uint64_t enumerations_before_disk = EnumerateStageCount();
    WallTimer timer;
    auto disk_warm = engine.Run(request);
    disk_seconds = timer.ElapsedSeconds();
    ok = ok && disk_warm.ok() && disk_warm->from_store &&
         disk_warm->from_cache &&
         disk_warm->fingerprint == cold_fingerprint &&
         disk_warm->num_plexes == cold_plexes &&
         // The acceptance check: a disk hit returns before the
         // enumerate stage ever starts.
         EnumerateStageCount() == enumerations_before_disk &&
         (*store)->stats().hits == 1;
  }

  auto speedup = [&](double seconds) {
    return FormatDouble(cold_seconds / std::max(seconds, 1e-9), 0) + "x";
  };
  table.AddRow({"cold", FormatCount(cold_plexes),
                FormatSeconds(cold_seconds), "1x", "enumeration"});
  table.AddRow({"memory-warm", FormatCount(cold_plexes),
                FormatSeconds(memory_seconds), speedup(memory_seconds),
                "result cache"});
  table.AddRow({"disk-warm (restart)", FormatCount(cold_plexes),
                FormatSeconds(disk_seconds), speedup(disk_seconds),
                "result store"});
  table.Print(std::cout);
  std::printf("\nall three fingerprints bit-identical and neither warm "
              "tier enumerated: %s\n", ok ? "yes" : "NO (BUG)");

  std::system(("rm -rf " + dir).c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kplex

int main() { return kplex::Run(); }
