// Reproduces Table 2 of the paper: the dataset statistics table
// (n, m, max degree Delta, degeneracy D) for every benchmark dataset.
// Our datasets are the laptop-scale synthetic stand-ins documented in
// DESIGN.md section 4; the `stands for` column names the paper dataset
// each one substitutes.

#include <cstdio>
#include <iostream>

#include "bench_common/dataset_registry.h"
#include "bench_common/table_printer.h"
#include "graph/stats.h"

int main() {
  using namespace kplex;
  std::printf("== Table 2: datasets ==\n");
  std::printf(
      "Columns mirror the paper's Table 2; rows are the synthetic\n"
      "stand-ins (see DESIGN.md section 4 for the substitution mapping).\n\n");

  TablePrinter table(
      {"dataset", "stands for", "category", "n", "m", "Delta", "D"});
  for (const auto& spec : AllDatasets()) {
    auto graph = LoadDataset(spec.name);
    if (!graph.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    GraphStats stats = ComputeGraphStats(*graph);
    table.AddRow({spec.name, spec.stands_for, spec.category,
                  FormatCount(stats.num_vertices),
                  FormatCount(stats.num_edges),
                  FormatCount(stats.max_degree),
                  FormatCount(stats.degeneracy)});
  }
  table.Print(std::cout);
  return 0;
}
