#!/usr/bin/env python3
"""Streamed-results smoke test: boots `kplex_cli serve --listen`, drives
protocol v4 result streaming over a real socket, and checks the failure
modes a unit test cannot (killed clients, server restarts).

Usage: stream_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. the hello handshake negotiates protocol v4;
  2. a results=stream mine delivers ordered result_chunk frames whose
     reassembly matches the one-shot (buffered) mine of the same query:
     same count, same fingerprint, chunk seqs contiguous, exactly one
     last chunk;
  3. a client killed mid-stream does not wedge the server: the very
     next client connects and mines within the timeout (the worker slot
     and session thread are reclaimed);
  4. a resume cursor from a max_results-truncated run stays valid
     across a server restart on the same dataset: the resumed pages and
     the first page reassemble the full result set exactly, no loss and
     no duplicates.
"""

import json
import signal
import socket
import struct
import subprocess
import sys


TIMEOUT = 30


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=TIMEOUT)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, line):
        self.file.write(line + "\n")
        self.file.flush()

    def recv(self):
        return self.file.readline().rstrip("\n")

    def roundtrip(self, line):
        self.send(line)
        return self.recv()

    def close(self):
        self.sock.close()

    def kill_abruptly(self):
        # RST instead of FIN: the hard-crash shape of a dropped client.
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                             struct.pack("ii", 1, 0))
        self.sock.close()


def fail(message):
    print(f"stream_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_server(cli):
    server = subprocess.Popen(
        [cli, "serve", "--listen", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = server.stdout.readline().strip()
    if not banner.startswith("serving on 127.0.0.1:"):
        server.kill()
        fail(f"unexpected banner: {banner!r}")
    return server, int(banner.split(":")[1].split(" ")[0])


def framed_client(port):
    client = LineClient(port)
    hello = json.loads(client.roundtrip("hello proto=4 mode=framed"))
    if hello.get("type") != "hello" or hello.get("proto") != 4:
        fail(f"handshake did not negotiate v4: {hello!r}")
    return client


def drain_stream(client, chunk_size):
    """Reads chunk frames until the final mine frame; returns
    (bodies, verdict)."""
    bodies = []
    next_seq = 0
    saw_last = False
    while True:
        frame = json.loads(client.recv())
        if frame.get("type") == "result_chunk":
            if saw_last:
                fail(f"chunk after the last chunk: {frame!r}")
            if frame.get("seq") != next_seq:
                fail(f"out-of-order chunk: expected seq {next_seq}, "
                     f"got {frame!r}")
            next_seq += 1
            plexes = frame.get("plexes")
            if not isinstance(plexes, list):
                fail(f"chunk without plexes array: {frame!r}")
            if frame.get("last"):
                saw_last = True
                if len(plexes) > chunk_size:
                    fail(f"oversized last chunk: {frame!r}")
            elif len(plexes) != chunk_size:
                fail(f"undersized non-final chunk: {frame!r}")
            bodies.extend(tuple(p) for p in plexes)
        elif frame.get("type") == "mine":
            if not saw_last:
                fail(f"verdict before the last chunk: {frame!r}")
            return bodies, frame
        else:
            fail(f"unexpected frame mid-stream: {frame!r}")


def main():
    if len(sys.argv) != 2:
        fail("usage: stream_smoke.py path/to/kplex_cli")
    cli = sys.argv[1]
    server, port = start_server(cli)
    try:
        client = framed_client(port)
        loaded = json.loads(client.roundtrip(
            json.dumps({"cmd": "dataset", "name": "kc", "key": "karate"})))
        if loaded.get("type") != "load":
            fail(f"dataset load: {loaded!r}")

        # ---- streamed vs one-shot equality ----
        one_shot = json.loads(client.roundtrip(json.dumps(
            {"id": 1, "cmd": "mine", "graph": "kc", "k": 2, "q": 4})))
        if one_shot.get("state") != "done":
            fail(f"one-shot mine: {one_shot!r}")

        client.send(json.dumps(
            {"id": 2, "cmd": "mine", "graph": "kc", "k": 2, "q": 4,
             "results": "stream", "chunk": 7, "cache": False}))
        bodies, verdict = drain_stream(client, 7)
        if verdict.get("plexes") != one_shot["plexes"]:
            fail(f"streamed count {verdict.get('plexes')} != one-shot "
                 f"{one_shot['plexes']}")
        if verdict.get("fingerprint") != one_shot["fingerprint"]:
            fail("streamed fingerprint diverged from the one-shot run")
        if len(bodies) != one_shot["plexes"]:
            fail(f"reassembled {len(bodies)} bodies, expected "
                 f"{one_shot['plexes']}")
        if len(set(bodies)) != len(bodies):
            fail("streamed bodies contain duplicates")
        full_set = bodies

        # ---- killed client mid-stream frees the worker slot ----
        victim = framed_client(port)
        victim.roundtrip(json.dumps(
            {"cmd": "dataset", "name": "kc", "key": "karate"}))
        victim.send(json.dumps(
            {"id": 3, "cmd": "mine", "graph": "kc", "k": 2, "q": 4,
             "results": "stream", "chunk": 1, "cache": False}))
        victim.recv()  # first chunk is in flight — die mid-stream
        victim.kill_abruptly()

        survivor = framed_client(port)
        after = json.loads(survivor.roundtrip(json.dumps(
            {"id": 4, "cmd": "mine", "graph": "kc", "k": 2, "q": 4})))
        if after.get("state") != "done" or \
                after.get("plexes") != one_shot["plexes"]:
            fail(f"server wedged after killed client: {after!r}")
        survivor.close()

        # ---- resume cursor survives a server restart ----
        client.send(json.dumps(
            {"id": 5, "cmd": "mine", "graph": "kc", "k": 2, "q": 4,
             "results": "stream", "chunk": 7, "max_results": 40,
             "cache": False}))
        first_page, verdict = drain_stream(client, 7)
        cursor = verdict.get("cursor")
        if not verdict.get("stopped_early") or not cursor:
            fail(f"truncated run returned no cursor: {verdict!r}")
        client.close()

        server.send_signal(signal.SIGTERM)
        if server.wait(timeout=TIMEOUT) != 0:
            fail("server did not exit cleanly before the restart")
        server, port = start_server(cli)

        resumed = framed_client(port)
        resumed.roundtrip(json.dumps(
            {"cmd": "dataset", "name": "kc", "key": "karate"}))
        pages = list(first_page)
        while cursor:
            resumed.send(json.dumps(
                {"id": 6, "cmd": "mine", "graph": "kc", "k": 2, "q": 4,
                 "results": "stream", "chunk": 7, "max_results": 40,
                 "cursor": cursor, "cache": False}))
            page, verdict = drain_stream(resumed, 7)
            pages.extend(page)
            cursor = verdict.get("cursor")
        if pages != full_set:
            fail(f"cursor pagination across restart reassembled "
                 f"{len(pages)} bodies (expected {len(full_set)}, "
                 f"exact order)")
        resumed.close()

        server.send_signal(signal.SIGTERM)
        if server.wait(timeout=TIMEOUT) != 0:
            fail("server did not shut down cleanly")
        print("stream_smoke: OK")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
