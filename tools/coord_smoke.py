#!/usr/bin/env python3
"""Coordinator-daemon smoke test (sharded mining v2): boots THREE
`kplex_cli serve --listen` workers and one `kplex_cli coordinate`
daemon, runs a coordinated mine through `mine --coordinator`, SIGKILLs
one worker while its chunk is running, registers a fourth worker
mid-job through `coordctl`, and asserts the merged result is
byte-identical to a single-process run.

Usage: coord_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. three workers and the daemon boot; the daemon banner reports the
     workers registered;
  2. a framed single-process `mine` on worker A yields the reference
     plex count, max size, and fingerprint;
  3. during the coordinated mine, worker B is SIGKILLed while a real
     chunk is running on it, and worker D registers late via coordctl;
  4. `mine --coordinator` still reports exactly the single-process
     count, max size, and fingerprint;
  5. `coordctl workers` shows B dead and D schedulable;
  6. daemon and surviving workers shut down cleanly on SIGTERM.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

# A workload heavy enough that the coordinated mine stays running
# while we kill a worker and register another (several seconds single
# process), yet CI-friendly.
GRAPH, K, Q = ("ee", 4, 12)
PRELOAD = "dataset ee email-euall-syn\n"


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def roundtrip(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().rstrip("\n")

    def close(self):
        self.sock.close()


def fail(message):
    print(f"coord_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot(args, banner_pattern, what):
    process = subprocess.Popen(
        args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    port = None
    for _ in range(64):
        line = process.stdout.readline()
        if not line:
            break
        match = re.match(banner_pattern, line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        process.kill()
        fail(f"{what} did not print its banner")
    return process, port


def boot_worker(cli, script_path):
    return boot(
        [cli, "serve", "--listen", "0", "--workers", "2",
         "--script", script_path],
        r"serving on 127\.0\.0\.1:(\d+) ", "worker")


def boot_daemon(cli, endpoints):
    return boot(
        [cli, "coordinate", "--listen", "0",
         "--workers", ",".join(endpoints)],
        r"coordinating on 127\.0\.0\.1:(\d+) ", "daemon")


def reference_mine(port):
    client = LineClient(port)
    hello = json.loads(client.roundtrip("hello proto=5 mode=framed"))
    if hello.get("proto") != 5:
        fail(f"worker speaks protocol {hello.get('proto')}, need 5")
    response = json.loads(client.roundtrip(json.dumps(
        {"id": 1, "cmd": "mine", "graph": GRAPH, "k": K, "q": Q})))
    client.close()
    if response.get("state") != "done":
        fail(f"reference mine: {response!r}")
    return (response["plexes"], response["max_size"],
            response["fingerprint"])


def wait_for_running_chunk(port, deadline):
    """Polls a worker's job table until a non-empty shard chunk runs."""
    while time.monotonic() < deadline:
        try:
            client = LineClient(port)
            client.roundtrip("hello proto=5 mode=framed")
            jobs = json.loads(client.roundtrip(
                json.dumps({"id": 1, "cmd": "jobs"})))
            client.close()
        except (OSError, json.JSONDecodeError):
            time.sleep(0.05)
            continue
        for job in jobs.get("jobs", []):
            query = job.get("query", {})
            if (job.get("state") == "running"
                    and query.get("seed_end", 0) > query.get("seed_begin", 0)):
                return True
        time.sleep(0.05)
    return False


def coordctl(cli, daemon_port, *args):
    run = subprocess.run(
        [cli, "coordctl", f"127.0.0.1:{daemon_port}", *args],
        capture_output=True, text=True, timeout=60)
    if run.returncode != 0:
        fail(f"coordctl {' '.join(args)} exited {run.returncode}: "
             f"{run.stdout!r} {run.stderr!r}")
    return json.loads(run.stdout)


def main():
    if len(sys.argv) != 2:
        fail("usage: coord_smoke.py path/to/kplex_cli")
    cli = sys.argv[1]

    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as script:
        script.write(PRELOAD)
        preload = script.name

    processes = []
    try:
        a, port_a = boot_worker(cli, preload)
        processes.append(a)
        b, port_b = boot_worker(cli, preload)
        processes.append(b)
        c, port_c = boot_worker(cli, preload)
        processes.append(c)
        daemon, daemon_port = boot_daemon(
            cli, [f"127.0.0.1:{port}" for port in (port_a, port_b, port_c)])
        processes.append(daemon)

        plexes, max_size, fingerprint = reference_mine(port_a)
        print(f"coord_smoke: single-process reference: {plexes} plexes, "
              f"{fingerprint}")

        mine = subprocess.Popen(
            [cli, "mine", "--coordinator", f"127.0.0.1:{daemon_port}",
             "--graph", GRAPH, "--k", str(K), "--q", str(Q)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        processes.append(mine)

        # Kill worker B the moment a real chunk is running on it — the
        # coordinator must requeue that chunk on the survivors.
        deadline = time.monotonic() + 60
        if not wait_for_running_chunk(port_b, deadline):
            fail("no chunk ever ran on worker B (workload too small for "
                 "the kill window?)")
        b.send_signal(signal.SIGKILL)
        b.wait()
        print("coord_smoke: worker B SIGKILLed mid-chunk")

        # A fourth worker joins the running job.
        d, port_d = boot_worker(cli, preload)
        processes.append(d)
        ack = coordctl(cli, daemon_port, "register", f"127.0.0.1:{port_d}")
        if ack.get("type") != "worker_ack" or ack.get("state") != "idle":
            fail(f"late register not acked: {ack!r}")
        print("coord_smoke: worker D registered mid-job")

        output = mine.communicate(timeout=600)[0]
        if mine.returncode != 0:
            fail(f"coordinated mine exited {mine.returncode}: {output!r}")
        match = re.search(
            r"coordinated mine .*: (\d+) plexes, max size (\d+), "
            r"fingerprint (0x[0-9a-f]{16})", output)
        if not match:
            fail(f"cannot parse coordinated mine output: {output!r}")
        got = (int(match.group(1)), int(match.group(2)), match.group(3))
        if got != (plexes, max_size, fingerprint):
            fail(f"coordinated {got} != single-process "
                 f"({plexes}, {max_size}, {fingerprint})")
        print(f"coord_smoke: coordinated mine == single process "
              f"({plexes} plexes, {fingerprint})")

        table = coordctl(cli, daemon_port, "workers")
        states = {worker["endpoint"]: worker["state"]
                  for worker in table.get("workers", [])}
        if states.get(f"127.0.0.1:{port_b}") != "dead":
            fail(f"worker B not marked dead: {states!r}")
        if states.get(f"127.0.0.1:{port_d}") not in ("idle", "busy"):
            fail(f"late worker D not schedulable: {states!r}")
        print("coord_smoke: roster shows B dead, D joined")

        for process in (daemon, a, c, d):
            process.send_signal(signal.SIGTERM)
        for process in (daemon, a, c, d):
            try:
                code = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                fail("a process did not shut down within 30s of SIGTERM")
            if code != 0:
                fail(f"a process exited {code} on SIGTERM")
        print("coord_smoke: OK")
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait()


if __name__ == "__main__":
    main()
