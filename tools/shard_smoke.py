#!/usr/bin/env python3
"""Sharded-mining smoke test: boots TWO `kplex_cli serve --listen`
worker processes, runs a coordinated 4-shard mine through the CLI
coordinator, and asserts the merged result is byte-identical to a
single-process run — on two datasets.

Usage: shard_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. both workers boot and preload the same dataset (same content
     hash);
  2. a framed single-process `mine` on worker A yields the reference
     plex count, max size, and fingerprint;
  3. `kplex_cli mine --endpoints A,B --shards 4` reports exactly that
     count, max size, and fingerprint (and the workers' content hash);
  4. a mismatched-snapshot coordination is refused through the hash
     admission check (worker C holds a different graph);
  5. both workers shut down cleanly on SIGTERM (exit 0).
"""

import json
import re
import signal
import socket
import subprocess
import sys
import tempfile


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def roundtrip(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().rstrip("\n")

    def close(self):
        self.sock.close()


def fail(message):
    print(f"shard_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot_worker(cli, script_path):
    server = subprocess.Popen(
        [cli, "serve", "--listen", "0", "--workers", "2",
         "--script", script_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The preload script's output precedes the banner; scan for it.
    port = None
    for _ in range(64):
        line = server.stdout.readline()
        if not line:
            break
        match = re.match(r"serving on 127\.0\.0\.1:(\d+) ", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        server.kill()
        fail("worker did not print its serving banner")
    return server, port


def reference_mine(port, graph, k, q):
    """Single-process framed mine on one worker: the ground truth."""
    client = LineClient(port)
    hello = json.loads(client.roundtrip("hello proto=2 mode=framed"))
    if hello.get("proto") != 2:
        fail(f"worker speaks protocol {hello.get('proto')}, need 2")
    response = json.loads(client.roundtrip(json.dumps(
        {"id": 1, "cmd": "mine", "graph": graph, "k": k, "q": q})))
    client.close()
    if response.get("state") != "done":
        fail(f"reference mine: {response!r}")
    return (response["plexes"], response["max_size"],
            response["fingerprint"])


def coordinated_mine(cli, endpoints, graph, k, q, shards=4):
    run = subprocess.run(
        [cli, "mine", "--endpoints", ",".join(endpoints),
         "--graph", graph, "--k", str(k), "--q", str(q),
         "--shards", str(shards)],
        capture_output=True, text=True, timeout=300)
    return run


def main():
    if len(sys.argv) != 2:
        fail("usage: shard_smoke.py path/to/kplex_cli")
    cli = sys.argv[1]

    # Dataset 1: the bundled karate club. Dataset 2: a deterministic
    # registry graph (generated with a fixed seed, so every process
    # builds identical bytes — the admission hash proves it).
    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as script:
        script.write("dataset kc karate\ndataset ws wiki-vote-syn\n")
        preload = script.name
    with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                     delete=False) as script:
        # Same names, different bytes: must be refused.
        script.write("dataset kc email-euall-syn\n")
        mismatched = script.name

    workers = []
    try:
        a, port_a = boot_worker(cli, preload)
        workers.append(a)
        b, port_b = boot_worker(cli, preload)
        workers.append(b)
        c, port_c = boot_worker(cli, mismatched)
        workers.append(c)
        endpoints = [f"127.0.0.1:{port_a}", f"127.0.0.1:{port_b}"]

        for graph, k, q in [("kc", 2, 6), ("ws", 2, 12)]:
            plexes, max_size, fingerprint = reference_mine(
                port_a, graph, k, q)
            run = coordinated_mine(cli, endpoints, graph, k, q)
            if run.returncode != 0:
                fail(f"coordinated mine on {graph} exited "
                     f"{run.returncode}: {run.stdout!r} {run.stderr!r}")
            match = re.search(
                r"coordinated mine .*: (\d+) plexes, max size (\d+), "
                r"fingerprint (0x[0-9a-f]{16}), hash (0x[0-9a-f]{16})",
                run.stdout)
            if not match:
                fail(f"cannot parse coordinator output: {run.stdout!r}")
            got_plexes, got_max = int(match.group(1)), int(match.group(2))
            got_fingerprint = match.group(3)
            if (got_plexes, got_max) != (plexes, max_size):
                fail(f"{graph}: coordinated {got_plexes}/{got_max} != "
                     f"single-process {plexes}/{max_size}")
            if got_fingerprint != fingerprint:
                fail(f"{graph}: merged fingerprint {got_fingerprint} != "
                     f"single-process {fingerprint}")
            print(f"shard_smoke: {graph}: 4 shards over 2 workers == "
                  f"single process ({plexes} plexes, {fingerprint})")

        # Mismatched snapshot: worker C holds different bytes under the
        # same name — the admission hash must refuse the coordination.
        run = coordinated_mine(
            cli, [endpoints[0], f"127.0.0.1:{port_c}"], "kc", 2, 6)
        if run.returncode == 0:
            fail("mismatched-snapshot coordination was not refused")
        if "content hash mismatch" not in (run.stdout + run.stderr):
            fail(f"expected a hash-mismatch refusal, got: "
                 f"{run.stdout!r} {run.stderr!r}")
        print("shard_smoke: mismatched snapshot refused through the hash")

        for worker in workers:
            worker.send_signal(signal.SIGTERM)
        for worker in workers:
            try:
                code = worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                fail("worker did not shut down within 30s of SIGTERM")
            if code != 0:
                fail(f"worker exited {code}")
        print("shard_smoke: OK")
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
                worker.wait()


if __name__ == "__main__":
    main()
