#!/usr/bin/env python3
"""Observability smoke test: boots `kplex_cli serve --listen`, drives
real traffic through it, and asserts the metrics surface reports that
traffic in all three forms — text table, Prometheus exposition, and the
framed-JSON `metrics` verb — plus the coordinator-side shard metrics
via `--metrics-dump`.

Usage: metrics_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. after a dataset load and two identical mines, a raw text-wire
     `metrics` scrape shows non-zero request counters, cache hit AND
     miss counters, stage/request latency histograms, and the queue
     depth gauge series;
  2. a `metrics format=prom` scrape carries the same series in
     Prometheus text format (counter samples, histogram _bucket/_count);
  3. `kplex_cli metrics --endpoint` renders all three --format modes;
  4. a coordinated mine against the live worker plus a fake worker that
     drops its connection mid-shard completes correctly anyway, and the
     coordinator's `--metrics-dump` shows kplex_shard_retries_total >= 1
     and a non-empty kplex_shard_seconds histogram;
  5. the server still shuts down cleanly on SIGTERM (exit 0).
"""

import json
import re
import signal
import socket
import subprocess
import sys
import threading


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, line):
        self.file.write(line + "\n")
        self.file.flush()

    def readline(self):
        return self.file.readline().rstrip("\n")

    def roundtrip(self, line):
        self.send(line)
        return self.readline()

    def close(self):
        self.sock.close()


def fail(message):
    print(f"metrics_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def scrape_table(port):
    """Raw text-wire scrape: `metrics` -> counters/gauges/histograms."""
    client = LineClient(port)
    header = client.roundtrip("metrics")
    match = re.fullmatch(r"metrics (\d+) series", header)
    if not match:
        fail(f"table scrape header: {header!r}")
    counters, gauges, histograms = {}, {}, {}
    for _ in range(int(match.group(1))):
        line = client.readline()
        kind, name, rest = line.split(" ", 2)
        if kind == "counter":
            counters[name] = int(rest)
        elif kind == "gauge":
            gauges[name] = int(rest)
        elif kind == "histogram":
            fields = dict(part.split("=", 1) for part in rest.split(" "))
            histograms[name] = {"count": int(fields["count"]),
                                "sum": float(fields["sum"]),
                                "p50": float(fields["p50"])}
        else:
            fail(f"unrecognized series line: {line!r}")
    client.close()
    return counters, gauges, histograms


def scrape_prom(port):
    """Raw text-wire scrape in Prometheus form -> list of body lines."""
    client = LineClient(port)
    header = client.roundtrip("metrics format=prom")
    match = re.fullmatch(r"metrics prom (\d+) lines", header)
    if not match:
        fail(f"prom scrape header: {header!r}")
    lines = [client.readline() for _ in range(int(match.group(1)))]
    client.close()
    return lines


def prom_samples(lines):
    """name -> float for plain (label-free) samples in a prom dump."""
    samples = {}
    for line in lines:
        if line.startswith("#"):
            continue
        match = re.fullmatch(r"(\w+) (-?[0-9.e+-]+)", line)
        if match:
            samples[match.group(1)] = float(match.group(2))
    return samples


class FakeWorker(threading.Thread):
    """A sharding worker that answers the planning probe with the right
    content hash, then drops the connection on its first real shard —
    forcing the coordinator down the retry path."""

    def __init__(self, content_hash):
        super().__init__(daemon=True)
        self.content_hash = content_hash
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.listener.settimeout(60)
        self.port = self.listener.getsockname()[1]

    def run(self):
        try:
            conn, _ = self.listener.accept()
        except OSError:
            return
        conn.settimeout(60)
        try:
            file = conn.makefile("rw", encoding="utf-8", newline="\n")
            file.readline()  # "hello proto=2 mode=framed"
            file.write('{"id":0,"ok":true,"type":"hello","proto":2,'
                       '"mode":"framed"}\n')
            file.flush()
            probe = json.loads(file.readline())
            file.write(json.dumps({
                "id": probe.get("id", 1), "ok": True, "type": "shard_result",
                "state": "done", "content_hash": self.content_hash}) + "\n")
            file.flush()
            file.readline()  # the first real shard: never answered
        except OSError:
            pass
        finally:
            conn.close()
            self.listener.close()


def coordinated_mine(cli, endpoints, metrics_dump=False):
    argv = [cli, "mine", "--endpoints", ",".join(endpoints),
            "--graph", "kc", "--k", "2", "--q", "6", "--shards", "4"]
    if metrics_dump:
        argv.append("--metrics-dump")
    return subprocess.run(argv, capture_output=True, text=True, timeout=300)


def main():
    if len(sys.argv) != 2:
        fail("usage: metrics_smoke.py path/to/kplex_cli")
    cli = sys.argv[1]
    server = subprocess.Popen(
        [cli, "serve", "--listen", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = server.stdout.readline().strip()
        if not banner.startswith("serving on 127.0.0.1:"):
            fail(f"unexpected banner: {banner!r}")
        port = int(banner.split(":")[1].split(" ")[0])
        endpoint = f"127.0.0.1:{port}"

        # Traffic: one load, two identical mines (miss then cache hit).
        text = LineClient(port)
        loaded = text.roundtrip("dataset kc karate")
        if not loaded.startswith("loaded kc:"):
            fail(f"dataset load: {loaded!r}")
        for _ in range(2):
            mined = text.roundtrip("mine kc 2 6")
            if "1 plexes" not in mined:
                fail(f"mine: {mined!r}")
        text.close()

        # 1. Text table scrape.
        counters, gauges, histograms = scrape_table(port)
        for name, floor in [("kplex_requests_mine_total", 2),
                            ("kplex_requests_dataset_total", 1),
                            ("kplex_engine_queries_total", 2),
                            ("kplex_engine_cache_misses_total", 1),
                            ("kplex_engine_cache_hits_total", 1),
                            ("kplex_dispatcher_jobs_submitted_total", 2),
                            ("kplex_catalog_loads_total", 1),
                            ("kplex_tcp_connections_total", 1)]:
            if counters.get(name, 0) < floor:
                fail(f"counter {name} = {counters.get(name)} < {floor}; "
                     f"have {sorted(counters)}")
        for name in ["kplex_dispatcher_queue_depth",
                     "kplex_tcp_active_connections",
                     "kplex_catalog_owned_bytes"]:
            if name not in gauges:
                fail(f"gauge {name} missing; have {sorted(gauges)}")
        for name, floor in [("kplex_request_mine_seconds", 2),
                            ("kplex_dispatcher_queue_wait_seconds", 2),
                            ("kplex_dispatcher_job_run_seconds", 2),
                            ("kplex_stage_enumerate_seconds", 1),
                            ("kplex_stage_cache_lookup_seconds", 2),
                            ("kplex_stage_catalog_load_seconds", 1),
                            ("kplex_session_serialize_seconds", 3)]:
            if histograms.get(name, {}).get("count", 0) < floor:
                fail(f"histogram {name} count "
                     f"{histograms.get(name, {}).get('count')} < {floor}")
        print("metrics_smoke: table scrape carries live traffic")

        # 2. Prometheus scrape over the same wire.
        prom = scrape_prom(port)
        samples = prom_samples(prom)
        if samples.get("kplex_requests_mine_total", 0) < 2:
            fail(f"prom kplex_requests_mine_total: "
                 f"{samples.get('kplex_requests_mine_total')}")
        if samples.get("kplex_request_mine_seconds_count", 0) < 2:
            fail(f"prom kplex_request_mine_seconds_count: "
                 f"{samples.get('kplex_request_mine_seconds_count')}")
        if "# TYPE kplex_request_mine_seconds histogram" not in prom:
            fail("prom output lacks the histogram TYPE line")
        if not any(re.fullmatch(
                r'kplex_request_mine_seconds_bucket\{le="\+Inf"\} [1-9]\d*',
                line) for line in prom):
            fail("prom output lacks a non-zero +Inf bucket for mine latency")
        print("metrics_smoke: prometheus scrape matches")

        # 3. The CLI client, all three formats.
        table = subprocess.run(
            [cli, "metrics", "--endpoint", endpoint],
            capture_output=True, text=True, timeout=60)
        if table.returncode != 0 or \
                "counter kplex_requests_mine_total" not in table.stdout:
            fail(f"cli table: rc={table.returncode} {table.stdout!r} "
                 f"{table.stderr!r}")
        prom_cli = subprocess.run(
            [cli, "metrics", "--endpoint", endpoint, "--format", "prom"],
            capture_output=True, text=True, timeout=60)
        if prom_cli.returncode != 0 or \
                "# TYPE kplex_requests_mine_total counter" \
                not in prom_cli.stdout:
            fail(f"cli prom: rc={prom_cli.returncode} {prom_cli.stdout!r}")
        framed = subprocess.run(
            [cli, "metrics", "--endpoint", endpoint, "--format", "json"],
            capture_output=True, text=True, timeout=60)
        if framed.returncode != 0:
            fail(f"cli json: rc={framed.returncode} {framed.stderr!r}")
        frame = json.loads(framed.stdout)
        if frame.get("type") != "metrics":
            fail(f"cli json frame type: {frame.get('type')!r}")
        framed_counters = {c["name"]: c["value"]
                           for c in frame.get("counters", [])}
        if framed_counters.get("kplex_requests_metrics_total", 0) < 1:
            fail(f"framed metrics verb counter: {framed_counters}")
        if not any(h.get("name") == "kplex_request_mine_seconds"
                   and h.get("count", 0) >= 2
                   for h in frame.get("histograms", [])):
            fail("framed scrape lacks the mine latency histogram")
        print("metrics_smoke: kplex_cli metrics renders table, prom, json")

        # 4. Coordinator metrics: first a clean run to learn the graph's
        # content hash, then a run with a fake worker that drops its
        # connection mid-shard, forcing a retry the --metrics-dump
        # output must account for.
        clean = coordinated_mine(cli, [endpoint])
        if clean.returncode != 0:
            fail(f"clean coordinated mine: rc={clean.returncode} "
                 f"{clean.stdout!r} {clean.stderr!r}")
        match = re.search(r"hash (0x[0-9a-f]{16})", clean.stdout)
        if not match:
            fail(f"cannot find content hash in: {clean.stdout!r}")
        content_hash = match.group(1)

        retried = None
        for _ in range(3):
            fake = FakeWorker(content_hash)
            fake.start()
            run = coordinated_mine(
                cli, [endpoint, f"127.0.0.1:{fake.port}"],
                metrics_dump=True)
            fake.join(timeout=60)
            if run.returncode != 0:
                fail(f"retry-path coordinated mine: rc={run.returncode} "
                     f"{run.stdout!r} {run.stderr!r}")
            dump = prom_samples(run.stderr.splitlines())
            # The fake lane almost always pops a shard before the live
            # lane drains the queue; retry the attempt if it lost that
            # race and the run went through without a retry.
            if dump.get("kplex_shard_retries_total", 0) >= 1:
                retried = (run, dump)
                break
        if retried is None:
            fail("no attempt produced a shard retry")
        run, dump = retried
        if "1 plexes" not in run.stdout:
            fail(f"retried mine result drifted: {run.stdout!r}")
        if dump.get("kplex_shard_attempts_total", 0) < 5:
            fail(f"shard attempts: {dump.get('kplex_shard_attempts_total')}")
        if dump.get("kplex_shard_transport_failures_total", 0) < 1:
            fail("transport failure was not counted")
        if dump.get("kplex_shard_seconds_count", 0) < 4:
            fail(f"shard histogram count: "
                 f"{dump.get('kplex_shard_seconds_count')}")
        print("metrics_smoke: shard retry accounted for in --metrics-dump")

        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not shut down within 30s of SIGTERM")
        if code != 0:
            fail(f"server exited {code}: {server.stdout.read()!r}")
        print("metrics_smoke: OK")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
