#!/usr/bin/env python3
"""Durable result-store smoke test: boots `kplex_cli serve --store`,
kills it the hard way, and proves the disk tier both survives restarts
and degrades cleanly when its files are torn or corrupted.

Usage: store_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. a mine on a fresh store persists one entry (kplex_store_writes_total
     rises, a .kpr file appears) and the `store` verb reports it;
  2. the server is SIGKILLed (no graceful shutdown) with a torn .tmp
     file planted in the store directory — the crash-mid-write shape;
  3. the restarted server sweeps the .tmp corpse and serves the repeat
     query from disk: response marked cached, fingerprint bit-identical,
     kplex_store_hits_total == 1;
  4. after a byte flip inside the entry file, the restarted server
     refuses the corrupt entry (kplex_store_corrupt_entries_total == 1,
     the file is quarantined as .bad), silently recomputes the same
     fingerprint, and re-persists it.
"""

import glob
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def roundtrip(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().rstrip("\n")

    def close(self):
        self.sock.close()


def fail(message):
    print(f"store_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def boot(cli, store_dir):
    server = subprocess.Popen(
        [cli, "serve", "--listen", "0", "--store", store_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = server.stdout.readline().strip()
    if not banner.startswith("serving on 127.0.0.1:"):
        server.kill()
        fail(f"unexpected banner: {banner!r}")
    port = int(banner.split(":")[1].split(" ")[0])
    return server, port


def scrape(client, name):
    """Reads one counter value from the framed `metrics` verb."""
    response = json.loads(client.roundtrip(json.dumps({"cmd": "metrics"})))
    if response.get("type") != "metrics":
        fail(f"metrics scrape: {response!r}")
    for counter in response.get("counters", []):
        if counter.get("name") == name:
            return counter.get("value")
    return None


def framed_mine(client):
    response = json.loads(
        client.roundtrip(
            json.dumps({"cmd": "mine", "graph": "kc", "k": 2, "q": 6})))
    if response.get("state") != "done" or response.get("plexes") != 1:
        fail(f"mine response: {response!r}")
    return response


def main():
    if len(sys.argv) != 2:
        fail("usage: store_smoke.py path/to/kplex_cli")
    cli = sys.argv[1]
    root = tempfile.mkdtemp(prefix="kplex_store_smoke_")
    store_dir = os.path.join(root, "store")
    server = None
    try:
        # ------------------------------------------- 1. cold mine persists
        server, port = boot(cli, store_dir)
        client = LineClient(port)
        hello = json.loads(client.roundtrip("hello mode=framed"))
        if hello.get("proto") != 6:
            fail(f"handshake: {hello!r}")
        loaded = json.loads(client.roundtrip(
            json.dumps({"cmd": "dataset", "name": "kc", "key": "karate"})))
        if loaded.get("type") != "load":
            fail(f"dataset load: {loaded!r}")
        cold = framed_mine(client)
        if cold.get("cached"):
            fail("first mine claims to be cached on a fresh store")
        fingerprint = cold.get("fingerprint")
        if not str(fingerprint).startswith("0x"):
            fail(f"no fingerprint: {cold!r}")

        status = json.loads(client.roundtrip(json.dumps({"cmd": "store"})))
        store_obj = status.get("store", {})
        if (status.get("type") != "store" or not store_obj.get("enabled")
                or store_obj.get("entries") != 1
                or store_obj.get("writes") != 1):
            fail(f"store status after cold mine: {status!r}")
        entries = glob.glob(os.path.join(store_dir, "*.kpr"))
        if len(entries) != 1:
            fail(f"expected one .kpr entry, found {entries!r}")
        entry_path = entries[0]
        client.close()

        # -------------------------- 2. SIGKILL + a torn tmp file on disk
        server.send_signal(signal.SIGKILL)
        server.wait()
        torn = entry_path + ".tmp"
        with open(torn, "wb") as f:
            f.write(b"torn mid-write")

        # ------------------------------- 3. restart serves the disk hit
        server, port = boot(cli, store_dir)
        if os.path.exists(torn):
            fail("restart did not sweep the torn .tmp file")
        client = LineClient(port)
        client.roundtrip("hello mode=framed")
        client.roundtrip(
            json.dumps({"cmd": "dataset", "name": "kc", "key": "karate"}))
        warm = framed_mine(client)
        if not warm.get("cached"):
            fail(f"restart mine was not served warm: {warm!r}")
        if warm.get("fingerprint") != fingerprint:
            fail(f"disk hit fingerprint {warm.get('fingerprint')!r} != "
                 f"computed {fingerprint!r}")
        if scrape(client, "kplex_store_hits_total") != 1:
            fail("kplex_store_hits_total != 1 after the disk hit")
        client.close()

        # --------------------- 4. corruption degrades to a clean recompute
        server.send_signal(signal.SIGKILL)
        server.wait()
        with open(entry_path, "r+b") as f:
            f.seek(40)  # past the header, inside the payload
            byte = f.read(1)
            f.seek(40)
            f.write(bytes([byte[0] ^ 0x5A]))

        server, port = boot(cli, store_dir)
        client = LineClient(port)
        client.roundtrip("hello mode=framed")
        client.roundtrip(
            json.dumps({"cmd": "dataset", "name": "kc", "key": "karate"}))
        recomputed = framed_mine(client)
        if recomputed.get("cached"):
            fail("corrupt entry was served instead of recomputed")
        if recomputed.get("fingerprint") != fingerprint:
            fail(f"recompute fingerprint {recomputed.get('fingerprint')!r} "
                 f"!= original {fingerprint!r}")
        if scrape(client, "kplex_store_corrupt_entries_total") != 1:
            fail("kplex_store_corrupt_entries_total != 1 after byte flip")
        if not glob.glob(os.path.join(store_dir, "*.bad")):
            fail("corrupt entry was not quarantined as .bad")
        # The recompute re-persisted the entry; the next restart would
        # hit disk again.
        if scrape(client, "kplex_store_writes_total") != 1:
            fail("recompute did not re-persist the entry")
        client.close()

        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not shut down within 30s of SIGTERM")
        if code != 0:
            fail(f"server exited {code}")
        print("store_smoke: OK")
    finally:
        if server is not None and server.poll() is None:
            server.kill()
            server.wait()
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
