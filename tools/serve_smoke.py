#!/usr/bin/env python3
"""Network-serve smoke test: boots `kplex_cli serve --listen`, drives it
over a real socket in both wire modes, and asserts a clean signal-driven
shutdown.

Usage: serve_smoke.py path/to/kplex_cli

Checks (any failure exits non-zero):
  1. the server prints its "serving on HOST:PORT" line (--listen 0, so
     the port is read back from stdout);
  2. a text-mode client loads a dataset and mines it;
  3. a second, concurrent framed-mode client (hello handshake) mines the
     same query and its JSON response carries the same plex count plus a
     fingerprint;
  4. malformed input produces a structured error, not a dropped server;
  5. SIGTERM yields exit code 0 and the shutdown-complete line.
"""

import json
import signal
import socket
import subprocess
import sys
import time


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def roundtrip(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().rstrip("\n")

    def close(self):
        self.sock.close()


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_smoke.py path/to/kplex_cli")
    server = subprocess.Popen(
        [sys.argv[1], "serve", "--listen", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = server.stdout.readline().strip()
        # "serving on 127.0.0.1:PORT (protocol v1, 2 workers)"
        if not banner.startswith("serving on 127.0.0.1:"):
            fail(f"unexpected banner: {banner!r}")
        port = int(banner.split(":")[1].split(" ")[0])

        text = LineClient(port)
        loaded = text.roundtrip("dataset kc karate")
        if loaded != "loaded kc: 34 vertices, 78 edges (dataset karate)":
            fail(f"text load: {loaded!r}")
        mined = text.roundtrip("mine kc 2 6")
        if not mined.startswith("mined kc k=2 q=6 algo=ours: 1 plexes"):
            fail(f"text mine: {mined!r}")

        framed = LineClient(port)  # concurrent with the text client
        hello = json.loads(framed.roundtrip("hello proto=1 mode=framed"))
        if hello.get("type") != "hello" or hello.get("proto") != 1:
            fail(f"handshake: {hello!r}")
        response = json.loads(
            framed.roundtrip(
                json.dumps({"id": 5, "cmd": "mine", "graph": "kc",
                            "k": 2, "q": 6})))
        if (response.get("id") != 5 or response.get("state") != "done"
                or response.get("plexes") != 1
                or not str(response.get("fingerprint", "")).startswith("0x")):
            fail(f"framed mine: {response!r}")

        error = json.loads(framed.roundtrip("definitely not json"))
        if error.get("ok") is not False or error.get("code") != \
                "INVALID_ARGUMENT":
            fail(f"malformed frame handling: {error!r}")

        bye = json.loads(framed.roundtrip(json.dumps({"cmd": "quit"})))
        if bye.get("type") != "bye":
            fail(f"framed quit: {bye!r}")
        framed.close()
        text.close()

        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not shut down within 30s of SIGTERM")
        tail = server.stdout.read()
        if code != 0:
            fail(f"server exited {code}; output: {tail!r}")
        if "serve: shutdown complete" not in tail:
            fail(f"missing shutdown line; output: {tail!r}")
        print("serve_smoke: OK")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
