// kplex_cli — the command-line front end of the library.
//
//   kplex_cli mine --input G.txt --k 2 --q 12 [--algo ours|ours_p|basic|
//             listplex|fp] [--threads N] [--tau-ms 0.1] [--output F]
//             [--max-results N] [--time-limit S] [--ctcp]
//             [--seed-range B:E]
//   kplex_cli mine --endpoints host:port,... --graph NAME --k K --q Q
//             [--shards W] [other mine options]   (coordinated, sharded)
//   kplex_cli max --input G.txt --k 2
//   kplex_cli report --input G.txt
//   kplex_cli snapshot --input G.txt --output G.kpx [--precompute]
//             [--core-levels C1,C2,...] [--format v1|v2]
//   kplex_cli serve [--script F] [--memory-budget-mb N] [--cache-capacity N]
//             [--workers N] [--listen PORT] [--host H] [--max-connections N]
//   kplex_cli coordinate --listen PORT [--host H]
//             [--workers host:port,...] [--chunks-per-worker N]
//             [--io-timeout S] [--no-steal] [--steal-min-ms T]
//   kplex_cli coordctl HOST:PORT VERB [ARGS...]
//   kplex_cli datasets
//
// `serve` without --listen is the stdin/script session; with --listen it
// serves the same protocol (docs/SERVE.md) to TCP clients until SIGINT/
// SIGTERM, running --script first to preload the shared catalog.
//
// `mine --endpoints` runs the sharded path (docs/SHARDING.md): the seed
// space is split into --shards ranges, fanned out as `mineshard`
// requests over framed TCP connections to the listed `serve --listen`
// workers (--graph names the graph in *their* catalogs), and the
// returned shard fingerprints are merged into one verified total.
// `--seed-range B:E` instead mines one shard locally (manual runs).
//
// `coordinate` is the long-lived version of that coordinator (sharded
// mining v2, docs/SHARDING.md): a daemon that owns a worker pool,
// plans cost-balanced chunks from a `plan` probe, and work-steals
// stragglers. `mine --coordinator H:P` submits a mine to it;
// `coordctl` speaks any single coordinator verb (register, drain,
// workers, jobs, ...) as one framed round trip.
//
// --dataset NAME may replace --input to mine a registry dataset.
// Graphs are SNAP-format edge lists ('#' comments, "u v" per line) or
// binary CSR snapshots (auto-detected; see docs/SNAPSHOT_FORMAT.md).
// Mining a v2 snapshot that carries precomputed reduction sections
// (--precompute at snapshot time) skips the (q-k)-core peel and the
// degeneracy ordering on every subsequent run.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <unistd.h>
#endif

#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "bench_common/dataset_registry.h"
#include "bench_common/table_printer.h"
#include "coord/coord_session.h"
#include "coord/coordinator.h"
#include "core/enumerator.h"
#include "core/file_sink.h"
#include "core/max_kplex.h"
#include "core/sink.h"
#include "graph/connectivity.h"
#include "graph/edge_list_io.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "graph/triangles.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_enumerator.h"
#include "service/query_engine.h"
#include "service/service_session.h"
#include "service/shard_coordinator.h"
#include "store/result_store.h"
#include "service/tcp_client.h"
#include "service/tcp_server.h"
#include "util/flags.h"
#include "util/logging.h"

namespace kplex {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  kplex_cli mine --input G.txt --k K --q Q [options]\n"
               "  kplex_cli mine --endpoints host:port,... --graph NAME\n"
               "            --k K --q Q [--shards W] [options]\n"
               "  kplex_cli max --input G.txt --k K\n"
               "  kplex_cli report --input G.txt\n"
               "  kplex_cli snapshot --input G.txt --output G.kpx\n"
               "            [--precompute] [--core-levels C1,C2,...]\n"
               "            [--format v1|v2]\n"
               "  kplex_cli serve [--script F] [--memory-budget-mb N]\n"
               "                  [--cache-capacity N] [--workers N] [--echo]\n"
               "                  [--listen PORT] [--host H]\n"
               "                  [--max-connections N]\n"
               "                  [--store DIR] [--store-budget-mb N]\n"
               "  kplex_cli coordinate --listen PORT [--host H]\n"
               "            [--workers host:port,...] [--chunks-per-worker N]\n"
               "            [--io-timeout S] [--no-steal] [--steal-min-ms T]\n"
               "  kplex_cli mine --coordinator host:port --graph NAME\n"
               "            --k K --q Q [mine options]\n"
               "  kplex_cli coordctl HOST:PORT VERB [ARGS...] [--io-timeout S]\n"
               "  kplex_cli metrics --endpoint host:port\n"
               "            [--format table|prom|json] [--io-timeout S]\n"
               "  kplex_cli query {--endpoint host:port --graph NAME |\n"
               "            --input G.txt} --k K --q Q [--stream] [--chunk N]\n"
               "            [--top K] [--contain V] [--min-size S]\n"
               "            [--max-size T] [--maximum] [--max-results N]\n"
               "            [--cursor S:O] [mine options]\n"
               "  kplex_cli datasets\n"
               "global options (any command):\n"
               "  --log-level L     debug, info, warning or error\n"
               "  --log-json        one JSON object per log line\n"
               "  --trace           emit per-query span lines to stderr\n"
               "  --metrics-dump    print this process's metrics (Prometheus\n"
               "                    format) to stderr at exit\n"
               "options for mine:\n"
               "  --dataset NAME    use a registry dataset instead of --input\n"
               "  --algo NAME       ours (default), ours_p, basic, listplex, fp\n"
               "  --threads N       parallel mining with N workers\n"
               "  --tau-ms T        straggler timeout (default 0.1; parallel only)\n"
               "  --output FILE     write k-plexes (one line each) to FILE\n"
               "  --max-results N   stop after N results\n"
               "  --time-limit S    soft wall-clock budget in seconds\n"
               "  --ctcp            CTCP preprocessing instead of the "
               "(q-k)-core\n"
               "  --seed-range B:E  mine one shard of the seed space "
               "(E may be 'end')\n"
               "  --store DIR       durable result store: a repeat of the\n"
               "                    same mine (even from a new process) is\n"
               "                    answered from DIR without enumerating\n"
               "options for sharded mine (--endpoints):\n"
               "  --graph NAME      graph name in the workers' catalogs\n"
               "  --shards W        seed ranges to fan out (default 4)\n"
               "  --max-attempts N  dispatches per shard before giving up\n"
               "  --io-timeout S    per-socket-op timeout; a hung worker\n"
               "                    becomes a retryable failure (default:\n"
               "                    none — set above the slowest shard)\n"
               "options for query (protocol v4 selection):\n"
               "  --stream          print every plex body (streamed in\n"
               "                    bounded chunks from a remote worker)\n"
               "  --chunk N         plexes per result chunk (default 32)\n"
               "  --top K           only the K largest plexes, best first\n"
               "  --contain V       only plexes containing vertex V\n"
               "  --min-size S      only plexes with >= S vertices\n"
               "  --max-size T      only plexes with <= T vertices\n"
               "  --maximum         the single largest k-plex (max verb\n"
               "                    through the service stack)\n"
               "  --cursor S:O      resume a max-results-truncated\n"
               "                    sequential query where it stopped\n");
  return 2;
}

/// Resolves --dataset/--input, preserving snapshot precompute sections
/// (empty for edge lists and datasets).
StatusOr<LoadedSnapshot> LoadInputFull(const FlagParser& flags) {
  std::string dataset = flags.GetString("dataset", "");
  if (!dataset.empty()) {
    auto graph = LoadDataset(dataset);
    if (!graph.ok()) return graph.status();
    LoadedSnapshot loaded;
    loaded.graph = *std::move(graph);
    return loaded;
  }
  std::string input = flags.GetString("input", "");
  if (input.empty()) {
    return Status::InvalidArgument("one of --input or --dataset is required");
  }
  return LoadGraphAutoFull(input);
}

/// Graph-only wrapper for commands that ignore precompute sections.
StatusOr<Graph> LoadInput(const FlagParser& flags) {
  auto loaded = LoadInputFull(flags);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

/// Splits "host:port" with a 1..65535 port (the grammar every remote
/// command shares).
StatusOr<std::pair<std::string, uint16_t>> SplitHostPort(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  uint32_t port = 0;
  if (colon != std::string::npos && colon > 0 && colon + 1 < endpoint.size()) {
    for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
      const char c = endpoint[i];
      if (c < '0' || c > '9' || port > 65535) { port = 0; break; }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("expected host:port (port 1..65535), "
                                   "got '" + endpoint + "'");
  }
  return std::make_pair(endpoint.substr(0, colon),
                        static_cast<uint16_t>(port));
}

/// Builds the QueryRequest of a coordinated mine (v1 --endpoints or v2
/// --coordinator) from the mine flags. The seed split stays with the
/// coordinator, so --seed-range and the local-input flags are refused.
StatusOr<QueryRequest> BuildCoordinatedMineQuery(const FlagParser& flags) {
  QueryRequest query;
  query.graph = flags.GetString("graph", "");
  if (query.graph.empty()) {
    return Status::InvalidArgument(
        "a coordinated mine needs --graph NAME (the graph's name in the "
        "workers' catalogs)");
  }
  if (flags.Has("input") || flags.Has("dataset") || flags.Has("output") ||
      flags.Has("seed-range")) {
    return Status::InvalidArgument(
        "--input/--dataset/--output/--seed-range do not apply to a "
        "coordinated mine (the workers hold the graph; the coordinator "
        "plans the ranges)");
  }
  auto k = flags.GetInt("k", 2);
  auto q = flags.GetInt("q", 0);
  auto threads = flags.GetInt("threads", 0);
  auto tau = flags.GetDouble("tau-ms", 0.1);
  auto max_results = flags.GetInt("max-results", 0);
  auto time_limit = flags.GetDouble("time-limit", 0);
  for (const Status& s :
       {k.status(), q.status(), threads.status(), tau.status(),
        max_results.status(), time_limit.status()}) {
    if (!s.ok()) return s;
  }
  if (*q == 0) {
    return Status::InvalidArgument("--q is required (must be >= 2k - 1)");
  }
  query.k = static_cast<uint32_t>(*k);
  query.q = static_cast<uint32_t>(*q);
  query.threads = static_cast<uint32_t>(*threads);
  query.tau_ms = *tau;
  query.max_results = static_cast<uint64_t>(*max_results);
  query.time_limit_seconds = *time_limit;
  query.use_ctcp = flags.Has("ctcp");
  auto parsed_algo = ParseQueryAlgo(flags.GetString("algo", "ours"));
  if (!parsed_algo.ok()) return parsed_algo.status();
  query.algo = *parsed_algo;
  // Surface option incompatibilities (max-results, filters, streaming)
  // as their structured explanations before opening any connection.
  KPLEX_RETURN_IF_ERROR(ValidateCoordinatedQuery(query));
  return query;
}

/// Coordinated sharded mine over TCP workers (docs/SHARDING.md).
int RunShardedMine(const FlagParser& flags) {
  ShardCoordinatorOptions options;
  auto query = BuildCoordinatedMineQuery(flags);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  options.query = *std::move(query);
  auto endpoints = ParseEndpointList(flags.GetString("endpoints", ""));
  if (!endpoints.ok()) {
    std::fprintf(stderr, "%s\n", endpoints.status().ToString().c_str());
    return 1;
  }
  options.endpoints = *std::move(endpoints);

  auto shards = flags.GetInt("shards", 4);
  auto max_attempts = flags.GetInt("max-attempts", 3);
  auto io_timeout = flags.GetDouble("io-timeout", 0);
  for (const Status& s :
       {shards.status(), max_attempts.status(), io_timeout.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (*shards < 1 || *max_attempts < 1) {
    std::fprintf(stderr, "--shards and --max-attempts must be >= 1\n");
    return 1;
  }
  options.shards = static_cast<uint32_t>(*shards);
  options.max_attempts = static_cast<uint32_t>(*max_attempts);
  if (*io_timeout < 0) {
    std::fprintf(stderr, "--io-timeout must be >= 0\n");
    return 1;
  }
  options.io_timeout_seconds = *io_timeout;

  auto result = CoordinateShardedMine(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"shard", "seeds", "worker", "attempts", "plexes",
                      "seconds"});
  for (const ShardOutcome& shard : result->shards) {
    table.AddRow({std::to_string(shard.index),
                  std::to_string(shard.begin) + ":" +
                      std::to_string(shard.end),
                  shard.endpoint, std::to_string(shard.attempts),
                  FormatCount(shard.plexes), FormatSeconds(shard.seconds)});
  }
  table.Print(std::cout);
  // The merged line is machine-read by tools/shard_smoke.py; keep its
  // shape stable.
  std::printf("coordinated mine %s k=%u q=%u: %llu plexes, max size %zu, "
              "fingerprint 0x%016llx, hash 0x%016llx, %u shards over %zu "
              "endpoints, %u retries, %.3fs\n",
              options.query.graph.c_str(), options.query.k, options.query.q,
              static_cast<unsigned long long>(result->num_plexes),
              static_cast<std::size_t>(result->max_plex_size),
              static_cast<unsigned long long>(result->fingerprint),
              static_cast<unsigned long long>(result->content_hash),
              options.shards, options.endpoints.size(), result->retries,
              result->seconds);
  return 0;
}

/// `mine --coordinator H:P`: submit the mine to a coordinator daemon
/// (docs/SHARDING.md v2) and print its merged verdict. The daemon's
/// mine verb answers with a plain protocol mine frame, so this is the
/// remote-mine client pointed at a different server.
int RunCoordinatorMine(const FlagParser& flags, const std::string& endpoint) {
  auto query = BuildCoordinatedMineQuery(flags);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto io_timeout = flags.GetDouble("io-timeout", 0);
  if (!io_timeout.ok() || *io_timeout < 0) {
    std::fprintf(stderr, "--io-timeout must be a number >= 0\n");
    return 1;
  }
  auto split = SplitHostPort(endpoint);
  if (!split.ok()) {
    std::fprintf(stderr, "--coordinator: %s\n",
                 split.status().ToString().c_str());
    return 1;
  }

  TcpClient client;
  Status connected = client.Connect(split->first, split->second, *io_timeout);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }
  Status sent = client.SendLine(
      "hello proto=" + std::to_string(kProtocolVersion) + " mode=framed");
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto hello = client.ReadLine();
  if (!hello.ok()) {
    std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
    return 1;
  }
  auto version = ParseFramedHelloVersion(*hello);
  if (!version.ok()) {
    std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
    return 1;
  }
  if (*version < kProtocolVersionCoordination) {
    std::fprintf(stderr, "coordinator %s negotiated protocol v%u but "
                         "coordinated mining needs v%u (upgrade it)\n",
                 endpoint.c_str(), *version, kProtocolVersionCoordination);
    return 1;
  }

  Request request;
  request.id = 2;
  request.payload = MineRequest{*query};
  sent = client.SendLine(FormatFramedRequest(request));
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto line = client.ReadLine();
  if (!line.ok()) {
    std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
    return 1;
  }
  auto verdict = ParseFramedMineResult(*line);
  if (!verdict.ok()) {
    std::fprintf(stderr, "%s\n", verdict.status().ToString().c_str());
    return 1;
  }
  // The merged line is machine-read by tools/coord_smoke.py; keep its
  // shape stable.
  std::printf("coordinated mine %s k=%u q=%u via %s: %llu plexes, max size "
              "%llu, fingerprint 0x%016llx, %.3fs\n",
              query->graph.c_str(), query->k, query->q, endpoint.c_str(),
              static_cast<unsigned long long>(verdict->plexes),
              static_cast<unsigned long long>(verdict->max_size),
              static_cast<unsigned long long>(verdict->fingerprint),
              verdict->seconds);
  return verdict->state == "done" ? 0 : 1;
}

/// `mine --store DIR`: the query runs through the service stack —
/// GraphCatalog + QueryEngine with a ResultStore attached — so a repeat
/// of the same mine, even from a fresh process, is answered from the
/// durable store without enumerating. The graph is registered under the
/// fixed catalog name "cli"; store entries key on the graph's *content
/// hash* plus the canonical signature, so two invocations share an
/// entry iff they mined the same bytes with the same parameters.
int RunStoreMine(const FlagParser& flags) {
  if (flags.Has("output")) {
    std::fprintf(stderr, "--output does not combine with --store (the "
                         "store path reports counts and fingerprints; "
                         "write bodies with a plain mine)\n");
    return 1;
  }
  auto k = flags.GetInt("k", 2);
  auto q = flags.GetInt("q", 0);
  auto threads = flags.GetInt("threads", 0);
  auto tau = flags.GetDouble("tau-ms", 0.1);
  auto max_results = flags.GetInt("max-results", 0);
  auto time_limit = flags.GetDouble("time-limit", 0);
  auto store_budget_mb = flags.GetInt("store-budget-mb", 0);
  for (const Status& s :
       {k.status(), q.status(), threads.status(), tau.status(),
        max_results.status(), time_limit.status(),
        store_budget_mb.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (*q == 0) {
    std::fprintf(stderr, "--q is required (must be >= 2k - 1)\n");
    return 1;
  }
  if (*store_budget_mb < 0) {
    std::fprintf(stderr, "--store-budget-mb must be >= 0\n");
    return 1;
  }
  auto algo = ParseQueryAlgo(flags.GetString("algo", "ours"));
  if (!algo.ok()) {
    std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
    return 1;
  }

  GraphCatalog catalog;
  const std::string name = "cli";
  const std::string dataset = flags.GetString("dataset", "");
  const std::string input = flags.GetString("input", "");
  Status registered = Status::Ok();
  if (!dataset.empty()) {
    registered = catalog.RegisterDataset(name, dataset);
  } else if (!input.empty()) {
    registered = catalog.RegisterFile(name, input);
  } else {
    std::fprintf(stderr, "one of --input or --dataset is required\n");
    return 1;
  }
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  StoreOptions store_options;
  store_options.directory = flags.GetString("store", "");
  store_options.byte_budget = static_cast<uint64_t>(*store_budget_mb) << 20;
  auto store = ResultStore::Open(std::move(store_options));
  if (!store.ok()) {
    std::fprintf(stderr, "cannot open result store: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  QueryEngine engine(catalog);
  engine.AttachStore(store->get());

  QueryRequest request;
  request.graph = name;
  request.k = static_cast<uint32_t>(*k);
  request.q = static_cast<uint32_t>(*q);
  request.algo = *algo;
  request.threads = static_cast<uint32_t>(*threads);
  request.tau_ms = *tau;
  request.max_results = static_cast<uint64_t>(*max_results);
  request.time_limit_seconds = *time_limit;
  request.use_ctcp = flags.Has("ctcp");
  const std::string seed_range = flags.GetString("seed-range", "");
  if (!seed_range.empty()) {
    auto parsed_range = ParseSeedRangeText(seed_range);
    if (!parsed_range.ok()) {
      std::fprintf(stderr, "%s\n", parsed_range.status().ToString().c_str());
      return 1;
    }
    request.seed_begin = parsed_range->begin;
    request.seed_end = parsed_range->end;
  }

  auto result = engine.Run(request);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%llu maximal %lld-plexes with >= %lld vertices in %.3fs%s%s\n",
              static_cast<unsigned long long>(result->num_plexes),
              static_cast<long long>(*k), static_cast<long long>(*q),
              result->seconds, result->timed_out ? " (time limit hit)" : "",
              result->stopped_early ? " (result cap hit)" : "");
  const ResultStore::Stats stats = (*store)->stats();
  // Machine-read by tools/store_smoke.py: keep the shape stable.
  std::printf("store tier: %s, fingerprint 0x%016llx "
              "(%llu entries, %llu bytes)\n",
              result->from_store        ? "disk"
              : result->from_cache      ? "memory"
                                        : "computed",
              static_cast<unsigned long long>(result->fingerprint),
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.bytes));
  return result->timed_out || result->cancelled ? 1 : 0;
}

int RunMine(const FlagParser& flags) {
  const std::string coordinator = flags.GetString("coordinator", "");
  if (flags.Has("endpoints") && !coordinator.empty()) {
    std::fprintf(stderr, "--endpoints (one-shot fan-out) and --coordinator "
                         "(daemon) are two different coordinators; pick "
                         "one\n");
    return 1;
  }
  if (!coordinator.empty()) return RunCoordinatorMine(flags, coordinator);
  if (flags.Has("endpoints")) return RunShardedMine(flags);
  if (flags.Has("store")) return RunStoreMine(flags);
  auto loaded = LoadInputFull(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = loaded->graph;
  auto k = flags.GetInt("k", 2);
  auto q = flags.GetInt("q", 0);
  auto threads = flags.GetInt("threads", 0);
  auto tau = flags.GetDouble("tau-ms", 0.1);
  auto max_results = flags.GetInt("max-results", 0);
  auto time_limit = flags.GetDouble("time-limit", 0);
  for (const Status& s :
       {k.status(), q.status(), threads.status(), tau.status(),
        max_results.status(), time_limit.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (*q == 0) {
    std::fprintf(stderr, "--q is required (must be >= 2k - 1)\n");
    return 1;
  }

  const std::string algo = flags.GetString("algo", "ours");
  EnumOptions options;
  bool use_fp_driver = false;
  if (algo == "ours") {
    options = EnumOptions::Ours(*k, *q);
  } else if (algo == "ours_p") {
    options = EnumOptions::OursP(*k, *q);
  } else if (algo == "basic") {
    options = EnumOptions::Basic(*k, *q);
  } else if (algo == "listplex") {
    options = ListPlexOptions(*k, *q);
  } else if (algo == "fp") {
    options = EnumOptions::Ours(*k, *q);  // validated below; driver differs
    use_fp_driver = true;
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 1;
  }
  options.max_results = static_cast<uint64_t>(*max_results);
  options.time_limit_seconds = *time_limit;
  options.use_ctcp_preprocess = flags.Has("ctcp");
  if (!loaded->precompute.empty()) {
    options.precompute = &loaded->precompute;
  }
  const std::string seed_range = flags.GetString("seed-range", "");
  if (!seed_range.empty()) {
    if (algo == "fp") {
      std::fprintf(stderr,
                   "--seed-range does not apply to the fp baseline\n");
      return 1;
    }
    auto parsed_range = ParseSeedRangeText(seed_range);
    if (!parsed_range.ok()) {
      std::fprintf(stderr, "%s\n",
                   parsed_range.status().ToString().c_str());
      return 1;
    }
    options.seed_range = *parsed_range;
  }

  const std::string output = flags.GetString("output", "");
  CountingSink counting;
  std::unique_ptr<FileSink> file_sink;
  ResultSink* sink = &counting;
  if (!output.empty()) {
    file_sink = std::make_unique<FileSink>(output);
    if (!file_sink->status().ok()) {
      std::fprintf(stderr, "%s\n", file_sink->status().ToString().c_str());
      return 1;
    }
    sink = file_sink.get();
  }

  StatusOr<EnumResult> result = Status::Internal("unreachable");
  if (use_fp_driver) {
    result = FpEnumerate(graph, static_cast<uint32_t>(*k),
                         static_cast<uint32_t>(*q), *sink);
  } else if (*threads > 0) {
    ParallelOptions parallel;
    parallel.num_threads = static_cast<uint32_t>(*threads);
    parallel.timeout_ms = *tau;
    result = ParallelEnumerateMaximalKPlexes(graph, options, parallel, *sink);
  } else {
    result = EnumerateMaximalKPlexes(graph, options, *sink);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (file_sink != nullptr) {
    Status io = file_sink->Finish();
    if (!io.ok()) {
      std::fprintf(stderr, "%s\n", io.ToString().c_str());
      return 1;
    }
  }
  std::printf("%llu maximal %lld-plexes with >= %lld vertices in %.3fs%s%s\n",
              static_cast<unsigned long long>(result->num_plexes),
              static_cast<long long>(*k), static_cast<long long>(*q),
              result->seconds, result->timed_out ? " (time limit hit)" : "",
              result->stopped_early ? " (result cap hit)" : "");
  if (!seed_range.empty()) {
    std::printf("seed shard %s of %llu total seeds (merge shards per "
                "docs/SHARDING.md)\n",
                seed_range.c_str(),
                static_cast<unsigned long long>(result->total_seeds));
  }
  std::printf("branch calls: %llu, sub-tasks: %llu (R1-pruned: %llu), "
              "ub-prunes: %llu\n",
              static_cast<unsigned long long>(result->counters.branch_calls),
              static_cast<unsigned long long>(result->counters.subtasks),
              static_cast<unsigned long long>(
                  result->counters.subtasks_pruned_r1),
              static_cast<unsigned long long>(result->counters.ub_prunes));
  if (result->counters.core_reductions_precomputed > 0) {
    std::printf("reduction served from snapshot sections (core%s)\n",
                result->counters.orderings_precomputed > 0 ? " + ordering"
                                                           : "");
  }
  if (!output.empty()) std::printf("results written to %s\n", output.c_str());
  return 0;
}

int RunMax(const FlagParser& flags) {
  auto graph = LoadInput(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto k = flags.GetInt("k", 2);
  if (!k.ok()) {
    std::fprintf(stderr, "%s\n", k.status().ToString().c_str());
    return 1;
  }
  auto result = FindMaximumKPlex(*graph, static_cast<uint32_t>(*k));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->found) {
    std::printf("no %lld-plex with >= %lld vertices exists\n",
                static_cast<long long>(*k), static_cast<long long>(2 * *k - 1));
    return 0;
  }
  std::printf("maximum %lld-plex has %zu vertices (%u passes, %.3fs):\n",
              static_cast<long long>(*k), result->plex.size(), result->passes,
              result->seconds);
  for (std::size_t i = 0; i < result->plex.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : " ", result->plex[i]);
  }
  std::printf("\n");
  return 0;
}

int RunReport(const FlagParser& flags) {
  auto graph = LoadInput(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  GraphStats stats = ComputeGraphStats(*graph);
  ComponentResult components = ConnectedComponents(*graph);
  std::printf("vertices:            %zu\n", stats.num_vertices);
  std::printf("edges:               %zu\n", stats.num_edges);
  std::printf("max degree:          %zu\n", stats.max_degree);
  std::printf("average degree:      %.2f\n", stats.average_degree);
  std::printf("degeneracy:          %u\n", stats.degeneracy);
  std::printf("components:          %zu (largest: %zu)\n",
              components.NumComponents(), components.LargestSize());
  std::printf("triangles:           %llu\n",
              static_cast<unsigned long long>(CountTriangles(*graph)));
  std::printf("global clustering:   %.4f\n",
              GlobalClusteringCoefficient(*graph));
  std::printf("avg local clustering: %.4f\n",
              AverageLocalClustering(*graph));
  return 0;
}

int RunSnapshot(const FlagParser& flags) {
  auto graph = LoadInput(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string output = flags.GetString("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "--output FILE is required\n");
    return 1;
  }

  SnapshotWriteOptions options;
  const std::string format = flags.GetString("format", "v2");
  if (format == "v1") {
    options.version = kSnapshotVersionLegacy;
  } else if (format != "v2") {
    std::fprintf(stderr, "--format must be v1 or v2, got '%s'\n",
                 format.c_str());
    return 1;
  }
  options.include_precompute = flags.Has("precompute");
  const std::string levels = flags.GetString("core-levels", "");
  if (!levels.empty()) {
    auto parsed = ParseCoreLevelList(levels);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    options.include_precompute = true;
    options.core_mask_levels = *std::move(parsed);
  }

  Status saved = SaveSnapshot(*graph, output, options);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("snapshot (%s%s) of %zu vertices / %zu edges written to %s\n",
              format.c_str(),
              options.include_precompute ? ", precompute sections" : "",
              graph->NumVertices(), graph->NumEdges(), output.c_str());
  return 0;
}

#if defined(__unix__) || defined(__APPLE__)
// Self-pipe for signal-driven serve shutdown: the handler performs one
// async-signal-safe write; the serve loop blocks on the read end.
int g_shutdown_pipe[2] = {-1, -1};

void HandleShutdownSignal(int) {
  const char byte = 1;
  // The return value is deliberately unused: the pipe being full means a
  // shutdown byte is already pending.
  [[maybe_unused]] ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
}
#endif

int RunServe(const FlagParser& flags) {
  auto budget_mb = flags.GetInt("memory-budget-mb", 0);
  auto cache_capacity = flags.GetInt("cache-capacity", 64);
  auto workers = flags.GetInt("workers", 1);
  auto listen = flags.GetInt("listen", -1);
  auto max_connections = flags.GetInt("max-connections", 64);
  auto store_budget_mb = flags.GetInt("store-budget-mb", 0);
  for (const Status& s :
       {budget_mb.status(), cache_capacity.status(), workers.status(),
        listen.status(), max_connections.status(),
        store_budget_mb.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (*budget_mb < 0 || *cache_capacity < 0) {
    std::fprintf(stderr,
                 "--memory-budget-mb and --cache-capacity must be >= 0\n");
    return 1;
  }
  if (*workers < 1 || *workers > 1024) {
    std::fprintf(stderr, "--workers must be between 1 and 1024\n");
    return 1;
  }
  if (static_cast<uint64_t>(*budget_mb) > (SIZE_MAX >> 20)) {
    std::fprintf(stderr, "--memory-budget-mb %lld overflows the byte budget\n",
                 static_cast<long long>(*budget_mb));
    return 1;
  }
  const bool network = flags.Has("listen");
  if (network && (*listen < 0 || *listen > 65535)) {
    std::fprintf(stderr, "--listen must be a port in 0..65535 (0 picks an "
                         "ephemeral port)\n");
    return 1;
  }
  if (!network && (flags.Has("host") || flags.Has("max-connections"))) {
    std::fprintf(stderr, "--host/--max-connections require --listen\n");
    return 1;
  }
  if (*max_connections < 1 || *max_connections > 4096) {
    std::fprintf(stderr, "--max-connections must be between 1 and 4096\n");
    return 1;
  }
  const std::string store_dir = flags.GetString("store", "");
  if (*store_budget_mb < 0) {
    std::fprintf(stderr, "--store-budget-mb must be >= 0\n");
    return 1;
  }
  if (store_dir.empty() && flags.Has("store-budget-mb")) {
    std::fprintf(stderr, "--store-budget-mb requires --store DIR\n");
    return 1;
  }

  ServiceApiOptions api_options;
  api_options.memory_budget_bytes =
      static_cast<std::size_t>(*budget_mb) * (std::size_t{1} << 20);
  api_options.result_cache_capacity =
      static_cast<std::size_t>(*cache_capacity);
  api_options.workers = static_cast<uint32_t>(*workers);
  api_options.store_dir = store_dir;
  api_options.store_byte_budget =
      static_cast<uint64_t>(*store_budget_mb) << 20;
  auto api = std::make_shared<ServiceApi>(api_options);
  // A requested-but-broken store is a config error, not something to
  // silently run without.
  if (!api->store_status().ok()) {
    std::fprintf(stderr, "cannot open result store '%s': %s\n",
                 store_dir.c_str(),
                 api->store_status().ToString().c_str());
    return 1;
  }

  // The script runs first in both modes — in network mode it preloads
  // the shared catalog before any client connects.
  const std::string script = flags.GetString("script", "");
  uint64_t failures = 0;
  {
    ServiceSession session(std::cout, api, flags.Has("echo"));
    if (!script.empty()) {
      std::ifstream in(script);
      if (!in) {
        std::fprintf(stderr, "cannot open script '%s'\n", script.c_str());
        return 1;
      }
      failures = session.RunScript(in);
    } else if (!network) {
      failures = session.RunScript(std::cin);
    }
  }
  if (!network) return failures == 0 ? 0 : 1;
  if (failures != 0) {
    std::fprintf(stderr, "serve: preload script had %llu failure(s); "
                         "not listening\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }

#if !defined(__unix__) && !defined(__APPLE__)
  std::fprintf(stderr,
               "serve --listen requires POSIX sockets on this platform\n");
  return 1;
#else
  TcpServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(*listen);
  server_options.max_connections = static_cast<uint32_t>(*max_connections);
  TcpServer server(api, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  if (pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "cannot create the shutdown pipe\n");
    server.Stop();
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  // The port line is machine-read by clients started with --listen 0
  // (CI smoke script): keep its shape stable and flush it immediately.
  std::printf("serving on %s:%u (protocol v%u, %lld workers)\n",
              server_options.host.c_str(), server.port(),
              kProtocolVersion, static_cast<long long>(*workers));
  std::fflush(stdout);

  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.Stop();
  const TcpServer::Stats stats = server.stats();
  std::printf("serve: shutdown complete (%llu connections served, "
              "%llu refused)\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.refused));
  return 0;
#endif  // POSIX
}

/// The coordinator daemon (docs/SHARDING.md v2): a TCP server whose
/// sessions dispatch to one shared Coordinator instead of a ServiceApi.
/// Workers listed in --workers are registered up front; more can join
/// at runtime via `coordctl HOST:PORT register worker:port`.
int RunCoordinate(const FlagParser& flags) {
  auto listen = flags.GetInt("listen", -1);
  auto max_connections = flags.GetInt("max-connections", 64);
  auto chunks_per_worker = flags.GetInt("chunks-per-worker", 8);
  auto io_timeout = flags.GetDouble("io-timeout", 0);
  auto steal_min_ms = flags.GetDouble("steal-min-ms", 20.0);
  for (const Status& s :
       {listen.status(), max_connections.status(),
        chunks_per_worker.status(), io_timeout.status(),
        steal_min_ms.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!flags.Has("listen")) {
    std::fprintf(stderr, "coordinate requires --listen PORT (0 picks an "
                         "ephemeral port)\n");
    return 1;
  }
  if (*listen < 0 || *listen > 65535) {
    std::fprintf(stderr, "--listen must be a port in 0..65535 (0 picks an "
                         "ephemeral port)\n");
    return 1;
  }
  if (*max_connections < 1 || *max_connections > 4096) {
    std::fprintf(stderr, "--max-connections must be between 1 and 4096\n");
    return 1;
  }
  if (*chunks_per_worker < 1 || *chunks_per_worker > 1024) {
    std::fprintf(stderr, "--chunks-per-worker must be between 1 and 1024\n");
    return 1;
  }
  if (*io_timeout < 0 || *steal_min_ms < 0) {
    std::fprintf(stderr, "--io-timeout and --steal-min-ms must be >= 0\n");
    return 1;
  }

#if !defined(__unix__) && !defined(__APPLE__)
  std::fprintf(stderr,
               "coordinate requires POSIX sockets on this platform\n");
  return 1;
#else
  CoordinatorOptions options;
  options.chunks_per_worker = static_cast<uint32_t>(*chunks_per_worker);
  options.io_timeout_seconds = *io_timeout;
  options.enable_stealing = !flags.Has("no-steal");
  options.steal_min_seconds = *steal_min_ms / 1000.0;
  auto coordinator = std::make_shared<Coordinator>(options);

  std::size_t registered = 0;
  const std::string workers = flags.GetString("workers", "");
  if (!workers.empty()) {
    auto endpoints = ParseEndpointList(workers);
    if (!endpoints.ok()) {
      std::fprintf(stderr, "%s\n", endpoints.status().ToString().c_str());
      return 1;
    }
    for (const std::string& endpoint : *endpoints) {
      auto id = coordinator->AddWorker(endpoint);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ++registered;
    }
  }

  TcpServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(*listen);
  server_options.max_connections = static_cast<uint32_t>(*max_connections);
  TcpServer server(
      [coordinator](std::ostream& out) -> std::unique_ptr<WireSession> {
        return std::make_unique<CoordSession>(out, coordinator);
      },
      [coordinator] { coordinator->Stop(); }, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  if (pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "cannot create the shutdown pipe\n");
    server.Stop();
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  // The port line is machine-read by clients started with --listen 0
  // (CI smoke script): keep its shape stable and flush it immediately.
  std::printf("coordinating on %s:%u (protocol v%u, %zu workers "
              "registered, stealing %s)\n",
              server_options.host.c_str(), server.port(), kProtocolVersion,
              registered, options.enable_stealing ? "on" : "off");
  std::fflush(stdout);

  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  server.Stop();
  const TcpServer::Stats stats = server.stats();
  std::printf("coordinate: shutdown complete (%llu connections served, "
              "%llu refused)\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.refused));
  return 0;
#endif  // POSIX
}

/// `coordctl HOST:PORT VERB [ARGS...]`: one framed round trip against
/// a coordinator daemon. The verb words are validated with the text
/// grammar locally, shipped framed, and the raw response frame prints
/// to stdout (machine-readable; errors land on stderr, exit 1).
int RunCoordctl(const FlagParser& flags) {
  const std::vector<std::string>& positional = flags.positional();
  if (positional.size() < 3) {
    std::fprintf(stderr,
                 "usage: kplex_cli coordctl HOST:PORT VERB [ARGS...]\n");
    return 2;
  }
  auto io_timeout = flags.GetDouble("io-timeout", 0);
  if (!io_timeout.ok() || *io_timeout < 0) {
    std::fprintf(stderr, "--io-timeout must be a number >= 0\n");
    return 1;
  }
  auto split = SplitHostPort(positional[1]);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  std::string command = positional[2];
  for (std::size_t i = 3; i < positional.size(); ++i) {
    command += ' ';
    command += positional[i];
  }
  auto request = ParseTextRequest(command);
  if (!request.ok()) {
    std::fprintf(stderr, "%s\n", request.status().ToString().c_str());
    return 1;
  }

  TcpClient client;
  Status connected = client.Connect(split->first, split->second, *io_timeout);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }
  Status sent = client.SendLine(
      "hello proto=" + std::to_string(kProtocolVersion) + " mode=framed");
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto hello = client.ReadLine();
  if (!hello.ok()) {
    std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
    return 1;
  }
  auto version = ParseFramedHelloVersion(*hello);
  if (!version.ok()) {
    std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
    return 1;
  }
  if (*version < kProtocolVersionCoordination) {
    std::fprintf(stderr, "daemon %s negotiated protocol v%u but the "
                         "coordinator verbs need v%u (upgrade it)\n",
                 positional[1].c_str(), *version,
                 kProtocolVersionCoordination);
    return 1;
  }

  request->id = 2;
  sent = client.SendLine(FormatFramedRequest(*request));
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto line = client.ReadLine();
  if (!line.ok()) {
    std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
    return 1;
  }
  auto type = PeekFramedResponseType(*line);
  if (!type.ok()) {
    // An {"ok":false,...} frame parses as its embedded structured
    // status (and a malformed line as a parse error); either way the
    // raw frame goes to stderr and the exit code says "refused".
    std::fprintf(stderr, "%s\n", line->c_str());
    return 1;
  }
  std::printf("%s\n", line->c_str());
  return 0;
}

/// Scrapes a live `serve --listen` process's metrics registry. The
/// table/prom forms ride the text wire (the session starts in text
/// mode, so no handshake is needed); json asks over the framed wire and
/// prints the raw response frame.
int RunMetrics(const FlagParser& flags) {
  const std::string endpoint = flags.GetString("endpoint", "");
  if (endpoint.empty()) {
    std::fprintf(stderr, "--endpoint host:port is required\n");
    return 1;
  }
  const std::string format = flags.GetString("format", "table");
  if (format != "table" && format != "prom" && format != "json") {
    std::fprintf(stderr, "--format must be table, prom or json, got '%s'\n",
                 format.c_str());
    return 1;
  }
  auto io_timeout = flags.GetDouble("io-timeout", 5.0);
  if (!io_timeout.ok() || *io_timeout < 0) {
    std::fprintf(stderr, "--io-timeout must be a number >= 0\n");
    return 1;
  }
  const std::size_t colon = endpoint.rfind(':');
  uint32_t port = 0;
  if (colon != std::string::npos && colon > 0 && colon + 1 < endpoint.size()) {
    for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
      const char c = endpoint[i];
      if (c < '0' || c > '9' || port > 65535) { port = 0; break; }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "--endpoint must be host:port (port 1..65535), "
                         "got '%s'\n", endpoint.c_str());
    return 1;
  }

  TcpClient client;
  Status connected =
      client.Connect(endpoint.substr(0, colon),
                     static_cast<uint16_t>(port), *io_timeout);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }

  if (format == "json") {
    Status sent = client.SendLine(
        "hello proto=" + std::to_string(kProtocolVersion) + " mode=framed");
    if (!sent.ok()) {
      std::fprintf(stderr, "%s\n", sent.ToString().c_str());
      return 1;
    }
    auto hello = client.ReadLine();
    if (!hello.ok()) {
      std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
      return 1;
    }
    auto version = ParseFramedHelloVersion(*hello);
    if (!version.ok()) {
      std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
      return 1;
    }
    if (*version < 3) {
      std::fprintf(stderr, "worker %s negotiated protocol v%u but the "
                           "metrics verb needs v3 (upgrade the worker)\n",
                   endpoint.c_str(), *version);
      return 1;
    }
    Request request;
    request.id = 2;
    request.payload = MetricsRequest{};
    sent = client.SendLine(FormatFramedRequest(request));
    if (!sent.ok()) {
      std::fprintf(stderr, "%s\n", sent.ToString().c_str());
      return 1;
    }
    auto line = client.ReadLine();
    if (!line.ok()) {
      std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
      return 1;
    }
    if (line->find("\"type\":\"error\"") != std::string::npos) {
      std::fprintf(stderr, "%s\n", line->c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
    return 0;
  }

  Status sent = client.SendLine(format == "prom" ? "metrics format=prom"
                                                 : "metrics");
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto header = client.ReadLine();
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  // The body length is announced up front ("metrics N series" /
  // "metrics prom N lines"), so the scrape knows exactly how many lines
  // to drain — no sentinel, no read-until-close.
  unsigned long long body_lines = 0;
  const int matched =
      format == "prom"
          ? std::sscanf(header->c_str(), "metrics prom %llu lines",
                        &body_lines)
          : std::sscanf(header->c_str(), "metrics %llu series", &body_lines);
  if (matched != 1) {
    std::fprintf(stderr, "%s\n", header->c_str());
    return 1;
  }
  for (unsigned long long i = 0; i < body_lines; ++i) {
    auto line = client.ReadLine();
    if (!line.ok()) {
      std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", line->c_str());
  }
  return 0;
}

/// Builds the QueryRequest of a `query` invocation from its flags (the
/// selection surface of protocol v4: bodies, filters, top-K, maximum
/// mode, cursors). `graph` is the catalog name the request carries.
StatusOr<QueryRequest> BuildQueryRequest(const FlagParser& flags,
                                         const std::string& graph) {
  QueryRequest query;
  query.graph = graph;
  auto k = flags.GetInt("k", 2);
  auto q = flags.GetInt("q", 0);
  auto threads = flags.GetInt("threads", 0);
  auto max_results = flags.GetInt("max-results", 0);
  auto time_limit = flags.GetDouble("time-limit", 0);
  auto chunk = flags.GetInt("chunk", 0);
  auto top = flags.GetInt("top", 0);
  auto contain = flags.GetInt("contain", -1);
  auto min_size = flags.GetInt("min-size", 0);
  auto max_size = flags.GetInt("max-size", 0);
  for (const Status& s :
       {k.status(), q.status(), threads.status(), max_results.status(),
        time_limit.status(), chunk.status(), top.status(), contain.status(),
        min_size.status(), max_size.status()}) {
    if (!s.ok()) return s;
  }
  query.maximum = flags.Has("maximum");
  if (*q == 0 && !query.maximum) {
    return Status::InvalidArgument("--q is required (must be >= 2k - 1)");
  }
  query.k = static_cast<uint32_t>(*k);
  query.q = static_cast<uint32_t>(*q);
  query.threads = static_cast<uint32_t>(*threads);
  query.max_results = static_cast<uint64_t>(*max_results);
  query.time_limit_seconds = *time_limit;
  query.use_ctcp = flags.Has("ctcp");
  query.chunk_size = static_cast<uint32_t>(*chunk);
  query.top_k = static_cast<uint64_t>(*top);
  if (flags.Has("contain")) {
    if (*contain < 0) {
      return Status::InvalidArgument("--contain must be a vertex id >= 0");
    }
    query.has_contain = true;
    query.contain = static_cast<uint32_t>(*contain);
  }
  query.filter_min_size = static_cast<uint64_t>(*min_size);
  query.filter_max_size = static_cast<uint64_t>(*max_size);
  const std::string algo = flags.GetString("algo", "ours");
  auto parsed_algo = ParseQueryAlgo(algo);
  if (!parsed_algo.ok()) return parsed_algo.status();
  query.algo = *parsed_algo;
  const std::string cursor = flags.GetString("cursor", "");
  if (!cursor.empty()) {
    auto parsed_cursor = ParseCursorText(cursor);
    if (!parsed_cursor.ok()) return parsed_cursor.status();
    query.has_cursor = true;
    query.cursor_seed = parsed_cursor->seed;
    query.cursor_ordinal = parsed_cursor->ordinal;
  }
  // The query verb exists to show plexes: stream mode, top-K and
  // maximum mode all ask the server for bodies. A bare `query` (none of
  // the three) is a count-only probe.
  query.collect_bodies =
      flags.Has("stream") || query.top_k > 0 || query.maximum;
  return query;
}

void PrintPlexLine(const std::vector<VertexId>& plex) {
  for (std::size_t i = 0; i < plex.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : " ", plex[i]);
  }
  std::printf("\n");
}

/// `query` against a live `serve --listen` worker: framed protocol v4
/// streaming client. The chunk frames arrive before the verdict frame;
/// each plex prints as one line, then the summary (cursor included).
int RunRemoteQuery(const FlagParser& flags, const std::string& endpoint) {
  const std::string graph = flags.GetString("graph", "");
  if (graph.empty()) {
    std::fprintf(stderr, "--endpoint requires --graph NAME (the graph's "
                         "name in the worker's catalog)\n");
    return 1;
  }
  auto query = BuildQueryRequest(flags, graph);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  auto io_timeout = flags.GetDouble("io-timeout", 0);
  if (!io_timeout.ok() || *io_timeout < 0) {
    std::fprintf(stderr, "--io-timeout must be a number >= 0\n");
    return 1;
  }
  const std::size_t colon = endpoint.rfind(':');
  uint32_t port = 0;
  if (colon != std::string::npos && colon > 0 && colon + 1 < endpoint.size()) {
    for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
      const char c = endpoint[i];
      if (c < '0' || c > '9' || port > 65535) { port = 0; break; }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "--endpoint must be host:port (port 1..65535), "
                         "got '%s'\n", endpoint.c_str());
    return 1;
  }

  TcpClient client;
  Status connected = client.Connect(endpoint.substr(0, colon),
                                    static_cast<uint16_t>(port), *io_timeout);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }
  Status sent = client.SendLine(
      "hello proto=" + std::to_string(kProtocolVersion) + " mode=framed");
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }
  auto hello = client.ReadLine();
  if (!hello.ok()) {
    std::fprintf(stderr, "%s\n", hello.status().ToString().c_str());
    return 1;
  }
  auto version = ParseFramedHelloVersion(*hello);
  if (!version.ok()) {
    std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
    return 1;
  }
  if (*version < kProtocolVersionStreaming) {
    std::fprintf(stderr, "worker %s negotiated protocol v%u but streamed "
                         "queries need v%u (upgrade the worker)\n",
                 endpoint.c_str(), *version, kProtocolVersionStreaming);
    return 1;
  }

  Request request;
  request.id = 2;
  request.payload = MineRequest{*query};
  sent = client.SendLine(FormatFramedRequest(request));
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return 1;
  }

  uint64_t streamed = 0;
  uint64_t expected_seq = 0;
  for (;;) {
    auto line = client.ReadLine();
    if (!line.ok()) {
      std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
      return 1;
    }
    auto type = PeekFramedResponseType(*line);
    if (!type.ok()) {
      std::fprintf(stderr, "%s\n", type.status().ToString().c_str());
      return 1;
    }
    if (*type == "result_chunk") {
      auto chunk = ParseFramedResultChunk(*line);
      if (!chunk.ok()) {
        std::fprintf(stderr, "%s\n", chunk.status().ToString().c_str());
        return 1;
      }
      if (chunk->seq != expected_seq) {
        std::fprintf(stderr, "stream out of order: expected chunk %llu, "
                             "got %llu\n",
                     static_cast<unsigned long long>(expected_seq),
                     static_cast<unsigned long long>(chunk->seq));
        return 1;
      }
      ++expected_seq;
      for (const std::vector<VertexId>& plex : chunk->plexes) {
        PrintPlexLine(plex);
        ++streamed;
      }
      continue;
    }
    if (*type == "mine") {
      auto verdict = ParseFramedMineResult(*line);
      if (!verdict.ok()) {
        std::fprintf(stderr, "%s\n", verdict.status().ToString().c_str());
        return 1;
      }
      if (query->collect_bodies && verdict->bodies != streamed) {
        std::fprintf(stderr, "stream truncated: server buffered %llu "
                             "bodies but %llu arrived\n",
                     static_cast<unsigned long long>(verdict->bodies),
                     static_cast<unsigned long long>(streamed));
        return 1;
      }
      std::printf("query %s k=%u q=%u: %llu plexes, max size %llu, "
                  "fingerprint 0x%016llx, %.3fs%s%s%s",
                  graph.c_str(), query->k, query->q,
                  static_cast<unsigned long long>(verdict->plexes),
                  static_cast<unsigned long long>(verdict->max_size),
                  static_cast<unsigned long long>(verdict->fingerprint),
                  verdict->seconds, verdict->cached ? " [cached]" : "",
                  verdict->timed_out ? " [time limit hit]" : "",
                  verdict->stopped_early ? " [result cap hit]" : "");
      if (verdict->has_cursor) {
        std::printf(" [cursor %s]",
                    FormatCursorValue(verdict->cursor_seed,
                                      verdict->cursor_ordinal).c_str());
      }
      std::printf("\n");
      return verdict->state == "done" ? 0 : 1;
    }
    std::fprintf(stderr, "unexpected '%s' frame mid-stream\n",
                 type->c_str());
    return 1;
  }
}

/// `query` against a local graph file/dataset: same selection surface,
/// served by an in-process QueryEngine (no server round trip).
int RunLocalQuery(const FlagParser& flags) {
  auto loaded = LoadInput(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  GraphCatalog catalog;
  Status registered = catalog.RegisterGraph("input", *std::move(loaded));
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }
  auto query = BuildQueryRequest(flags, "input");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(catalog, /*cache_capacity=*/0);
  auto result = engine.Run(*query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->plexes != nullptr) {
    for (const std::vector<VertexId>& plex : *result->plexes) {
      PrintPlexLine(plex);
    }
  }
  std::printf("query %s k=%u q=%u: %llu plexes, max size %zu, "
              "fingerprint 0x%016llx, %.3fs%s%s",
              flags.GetString("input", flags.GetString("dataset", "")).c_str(),
              query->k, query->q,
              static_cast<unsigned long long>(result->num_plexes),
              result->max_plex_size,
              static_cast<unsigned long long>(result->fingerprint),
              result->seconds,
              result->timed_out ? " [time limit hit]" : "",
              result->stopped_early ? " [result cap hit]" : "");
  if (result->has_cursor) {
    std::printf(" [cursor %s]",
                FormatCursorValue(result->cursor_seed,
                                  result->cursor_ordinal).c_str());
  }
  std::printf("\n");
  return 0;
}

int RunQuery(const FlagParser& flags) {
  const std::string endpoint = flags.GetString("endpoint", "");
  const bool local = flags.Has("input") || flags.Has("dataset");
  if (endpoint.empty() != local) {
    std::fprintf(stderr, "query needs exactly one of --endpoint host:port "
                         "(remote) or --input/--dataset (local)\n");
    return 1;
  }
  return endpoint.empty() ? RunLocalQuery(flags)
                          : RunRemoteQuery(flags, endpoint);
}

int RunDatasets() {
  TablePrinter table({"name", "stands for", "category", "recipe"});
  for (const auto& spec : AllDatasets()) {
    table.AddRow({spec.name, spec.stands_for, spec.category, spec.recipe});
  }
  table.Print(std::cout);
  return 0;
}

int Main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const FlagParser& flags = *parsed;
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  // coordctl takes the endpoint and the verb words as positionals;
  // every other command takes none.
  if (command != "coordctl" && flags.positional().size() != 1) {
    return Usage();
  }

  // Global observability flags, valid on every command.
  const std::string log_level = flags.GetString("log-level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "--log-level must be debug, info, warning or "
                           "error, got '%s'\n", log_level.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  if (flags.Has("log-json")) SetLogJson(true);
  if (flags.Has("trace")) SetTraceEnabled(true);

  // Each command rejects the other commands' flags: a serve-only flag
  // on `mine` is a typo the user should hear about, not a no-op.
  std::vector<std::string> known;
  int (*run)(const FlagParser&) = nullptr;
  if (command == "mine") {
    known = {"input", "dataset", "k", "q", "algo", "threads", "tau-ms",
             "output", "max-results", "time-limit", "ctcp", "seed-range",
             "endpoints", "graph", "shards", "max-attempts", "io-timeout",
             "coordinator", "store", "store-budget-mb"};
    run = RunMine;
  } else if (command == "max") {
    known = {"input", "dataset", "k"};
    run = RunMax;
  } else if (command == "report") {
    known = {"input", "dataset"};
    run = RunReport;
  } else if (command == "snapshot") {
    known = {"input", "dataset", "output", "precompute", "core-levels",
             "format"};
    run = RunSnapshot;
  } else if (command == "serve") {
    known = {"script", "memory-budget-mb", "cache-capacity", "workers",
             "echo", "listen", "host", "max-connections", "store",
             "store-budget-mb"};
    run = RunServe;
  } else if (command == "coordinate") {
    known = {"listen", "host", "max-connections", "workers",
             "chunks-per-worker", "io-timeout", "no-steal", "steal-min-ms"};
    run = RunCoordinate;
  } else if (command == "coordctl") {
    known = {"io-timeout"};
    run = RunCoordctl;
  } else if (command == "metrics") {
    known = {"endpoint", "format", "io-timeout"};
    run = RunMetrics;
  } else if (command == "query") {
    known = {"endpoint", "graph", "input", "dataset", "k", "q", "algo",
             "threads", "max-results", "time-limit", "ctcp", "stream",
             "chunk", "top", "contain", "min-size", "max-size", "maximum",
             "cursor", "io-timeout"};
    run = RunQuery;
  } else if (command == "datasets") {
    run = [](const FlagParser&) { return RunDatasets(); };
  } else {
    return Usage();
  }
  known.insert(known.end(),
               {"log-level", "log-json", "trace", "metrics-dump"});
  auto unknown = flags.UnknownFlags(known);
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s for '%s'\n",
                 unknown.front().c_str(), command.c_str());
    return Usage();
  }
  const int exit_code = run(flags);
  if (flags.Has("metrics-dump")) {
    // To stderr, after the command's own output: stdout stays the
    // machine-readable surface (shard_smoke parses it), and a failed
    // command still reports what its counters saw.
    const std::string dump =
        RenderMetricsPrometheus(MetricsRegistry::Global().Snapshot());
    std::fputs(dump.c_str(), stderr);
  }
  return exit_code;
}

}  // namespace
}  // namespace kplex

int main(int argc, char** argv) { return kplex::Main(argc, argv); }
