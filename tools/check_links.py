#!/usr/bin/env python3
"""Offline markdown link checker for README.md and docs/.

Verifies that every relative link in the checked markdown files points
at an existing file (and, for intra-repo markdown targets with an
anchor, that the anchor matches a heading). External http(s) links are
not fetched — this runs in CI without network access.

Usage: python3 tools/check_links.py [file-or-dir ...]
Defaults to README.md and docs/ at the repository root.
Exit code 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """Approximates GitHub's heading -> anchor id transformation."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(path: Path, repo_root: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target_path, _, anchor = target.partition("#")
        if not target_path:  # same-file anchor
            if anchor and github_anchor(anchor) not in anchors_of(path):
                errors.append(f"{path}: broken anchor '#{anchor}'")
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link '{target}'")
            continue
        if anchor and resolved.suffix == ".md":
            if github_anchor(anchor) not in anchors_of(resolved):
                errors.append(
                    f"{path}: broken anchor '{target}' "
                    f"(no such heading in {resolved.relative_to(repo_root)})")
    return errors


def main(argv: list) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(a) for a in argv[1:]] or [repo_root / "README.md",
                                            repo_root / "docs"]
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"error: no such file or directory: {root}")
            return 1

    errors = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(f"error: {error}")
    print(f"checked {len(files)} file(s): "
          f"{'all links OK' if not errors else f'{len(errors)} broken'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
