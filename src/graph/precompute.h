// Precomputed reduction sections carried by v2 snapshots. The
// enumeration pipeline's cold-start cost (after parsing) is the
// (q-k)-core peel plus the degeneracy ordering of the survivors; both
// derive from a single degeneracy decomposition of the full graph, so a
// snapshot that stores the peeling order and coreness values lets every
// subsequent `mine` skip reduction:
//
//  - the (q-k)-core is exactly {v : coreness[v] >= q-k} (cores are the
//    coreness level sets), so membership is a comparison, not a peel;
//  - coreness is non-decreasing along the peeling order, so the c-core
//    survivors form a suffix of the stored order, and that restriction
//    *is* the degeneracy ordering of the induced core subgraph (the
//    peel of the remainder proceeds identically), tie-breaks included
//    (id-order compaction preserves the by-id tie rule).
//
// Optional per-level core masks additionally store the membership bits
// for hot (q-k) families so warm loads skip even the comparison scan.

#ifndef KPLEX_GRAPH_PRECOMPUTE_H_
#define KPLEX_GRAPH_PRECOMPUTE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kplex {

struct GraphPrecompute {
  /// Degeneracy peeling order of the full graph (size n, or empty when
  /// the section is absent).
  std::vector<VertexId> order;
  /// coreness[v] = largest c with v in the c-core (size n, or empty).
  std::vector<uint32_t> coreness;
  /// Graph degeneracy (max coreness); meaningful iff coreness present.
  uint32_t degeneracy = 0;
  /// level c -> packed membership bitmask of the c-core, ceil(n/64)
  /// little-endian uint64 words, bit v = vertex v survives.
  std::map<uint32_t, std::vector<uint64_t>> core_masks;

  bool has_order() const { return !order.empty(); }
  bool has_coreness() const { return !coreness.empty(); }
  bool empty() const {
    return order.empty() && coreness.empty() && core_masks.empty();
  }

  /// The stored mask for exactly `level`, or nullptr.
  const std::vector<uint64_t>* MaskFor(uint32_t level) const {
    auto it = core_masks.find(level);
    return it == core_masks.end() ? nullptr : &it->second;
  }

  /// Heap bytes held (catalog accounting).
  std::size_t MemoryBytes() const;

  /// Compact availability tag for query signatures and stats output:
  /// "none", "order", "core", or "order+core"; stored masks append
  /// "+masks". Availability — not content — so equal-result queries
  /// against the same sections share a cache slot.
  std::string AvailabilityTag() const;
};

/// Computes the sections for `graph`: peeling order, coreness, and a
/// packed core mask per requested level (levels with an empty core are
/// still stored — an all-zero mask is a valid, useful answer).
GraphPrecompute ComputeGraphPrecompute(const Graph& graph,
                                       std::span<const uint32_t> mask_levels);

/// Packs {v : coreness[v] >= level} into ceil(n/64) uint64 words.
std::vector<uint64_t> PackCoreMask(std::span<const uint32_t> coreness,
                                   uint32_t level);

}  // namespace kplex

#endif  // KPLEX_GRAPH_PRECOMPUTE_H_
