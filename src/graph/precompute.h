// Precomputed reduction sections carried by v2 snapshots. The
// enumeration pipeline's cold-start cost (after parsing) is the
// (q-k)-core peel plus the degeneracy ordering of the survivors; both
// derive from a single degeneracy decomposition of the full graph, so a
// snapshot that stores the peeling order and coreness values lets every
// subsequent `mine` skip reduction:
//
//  - the (q-k)-core is exactly {v : coreness[v] >= q-k} (cores are the
//    coreness level sets), so membership is a comparison, not a peel;
//  - coreness is non-decreasing along the peeling order, so the c-core
//    survivors form a suffix of the stored order, and that restriction
//    *is* the degeneracy ordering of the induced core subgraph (the
//    peel of the remainder proceeds identically), tie-breaks included
//    (id-order compaction preserves the by-id tie rule).
//
// Optional per-level core masks additionally store the membership bits
// for hot (q-k) families so warm loads skip even the comparison scan.
//
// Storage mirrors Graph: the consumer-facing members are spans that
// reference either heap vectors owned by this instance (the
// ComputeGraphPrecompute case) or the snapshot's backing buffer —
// typically the same mmap'ed .kpx file the CSR views read — kept alive
// through a shared handle. Mapped sections cost no private heap; their
// bytes ride the graph's whole-file MappedBytes accounting.

#ifndef KPLEX_GRAPH_PRECOMPUTE_H_
#define KPLEX_GRAPH_PRECOMPUTE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kplex {

struct GraphPrecompute {
  GraphPrecompute() = default;
  // Spans may reference this instance's own owned_* storage, so a
  // member-wise copy would alias the source; moves keep heap buffers
  // (and map nodes) stable, so the views stay valid.
  GraphPrecompute(const GraphPrecompute&) = delete;
  GraphPrecompute& operator=(const GraphPrecompute&) = delete;
  GraphPrecompute(GraphPrecompute&&) = default;
  GraphPrecompute& operator=(GraphPrecompute&&) = default;

  /// Degeneracy peeling order of the full graph (size n, or empty when
  /// the section is absent).
  std::span<const VertexId> order;
  /// coreness[v] = largest c with v in the c-core (size n, or empty).
  std::span<const uint32_t> coreness;
  /// Graph degeneracy (max coreness); meaningful iff coreness present.
  uint32_t degeneracy = 0;
  /// level c -> packed membership bitmask of the c-core, ceil(n/64)
  /// little-endian uint64 words, bit v = vertex v survives.
  std::map<uint32_t, std::span<const uint64_t>> core_masks;

  bool has_order() const { return !order.empty(); }
  bool has_coreness() const { return !coreness.empty(); }
  bool empty() const {
    return order.empty() && coreness.empty() && core_masks.empty();
  }

  /// The stored mask for exactly `level`, or an empty span.
  std::span<const uint64_t> MaskFor(uint32_t level) const {
    auto it = core_masks.find(level);
    return it == core_masks.end() ? std::span<const uint64_t>{} : it->second;
  }

  /// True when the sections are views into a mapped snapshot (zero
  /// private heap; bytes counted under the graph's MappedBytes).
  bool mapped() const { return mapped_; }

  /// Summed bytes of the section views (order + coreness + masks),
  /// regardless of where they live. Informational, for stats/tests.
  std::size_t SectionBytes() const;

  /// Private heap bytes held (catalog budget accounting). Sections
  /// served as views into a snapshot buffer report 0 here — the buffer
  /// is attributed to the Graph sharing it.
  std::size_t MemoryBytes() const;

  /// Compact availability tag for query signatures and stats output:
  /// "none", "order", "core", or "order+core"; stored masks append
  /// "+masks". Availability — not content — so equal-result queries
  /// against the same sections share a cache slot.
  std::string AvailabilityTag() const;

  /// Points the spans at owned heap storage (ComputeGraphPrecompute and
  /// legacy copy-decoding paths).
  void SetOrderOwned(std::vector<VertexId> values);
  void SetCorenessOwned(std::vector<uint32_t> values);
  void AddMaskOwned(uint32_t level, std::vector<uint64_t> mask);

  /// Points the spans at an external buffer kept alive by `backing`
  /// (shared with the Graph decoded from the same snapshot, so the
  /// sections stay readable for this instance's whole lifetime even if
  /// the graph is dropped first). `mapped` says whether the buffer is
  /// file-backed (mmap) rather than heap.
  void SetBacking(std::shared_ptr<const void> backing, bool mapped);
  void SetOrderView(std::span<const VertexId> view) { order = view; }
  void SetCorenessView(std::span<const uint32_t> view) { coreness = view; }
  void AddMaskView(uint32_t level, std::span<const uint64_t> view) {
    core_masks.emplace(level, view);
  }

 private:
  std::vector<VertexId> owned_order_;
  std::vector<uint32_t> owned_coreness_;
  // std::map nodes are stable under map moves, so mask spans stay valid.
  std::map<uint32_t, std::vector<uint64_t>> owned_masks_;
  std::shared_ptr<const void> backing_;
  bool mapped_ = false;
};

/// Computes the sections for `graph`: peeling order, coreness, and a
/// packed core mask per requested level (levels with an empty core are
/// still stored — an all-zero mask is a valid, useful answer).
GraphPrecompute ComputeGraphPrecompute(const Graph& graph,
                                       std::span<const uint32_t> mask_levels);

/// Packs {v : coreness[v] >= level} into ceil(n/64) uint64 words.
std::vector<uint64_t> PackCoreMask(std::span<const uint32_t> coreness,
                                   uint32_t level);

}  // namespace kplex

#endif  // KPLEX_GRAPH_PRECOMPUTE_H_
