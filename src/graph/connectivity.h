// Connected-component analysis and BFS utilities — used by the CLI's
// graph report, the examples, and the tests.

#ifndef KPLEX_GRAPH_CONNECTIVITY_H_
#define KPLEX_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace kplex {

struct ComponentResult {
  /// component[v] = component index (0-based, in order of discovery by
  /// ascending smallest member).
  std::vector<uint32_t> component;
  /// Size of each component.
  std::vector<std::size_t> sizes;

  std::size_t NumComponents() const { return sizes.size(); }
  /// Size of the largest component (0 for the empty graph).
  std::size_t LargestSize() const;
};

/// Labels connected components by BFS.
ComponentResult ConnectedComponents(const Graph& graph);

/// BFS distances from `source` (-1 for unreachable vertices).
std::vector<int> BfsDistances(const Graph& graph, VertexId source);

}  // namespace kplex

#endif  // KPLEX_GRAPH_CONNECTIVITY_H_
