#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "graph/builder.h"

namespace kplex {

Graph GenerateErdosRenyi(std::size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.Build();
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    }
    return builder.Build();
  }
  // Geometric skipping: O(m) expected instead of O(n^2).
  const double log_1mp = std::log1p(-p);
  uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t idx = 0;
  auto pair_of = [&](uint64_t e) -> std::pair<VertexId, VertexId> {
    // Row-major index over the strict upper triangle.
    uint64_t u = 0;
    uint64_t remaining = e;
    uint64_t row_len = n - 1;
    while (remaining >= row_len) {
      remaining -= row_len;
      ++u;
      --row_len;
    }
    return {static_cast<VertexId>(u),
            static_cast<VertexId>(u + 1 + remaining)};
  };
  while (true) {
    double r = rng.NextDouble();
    uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log1p(-r * (1.0 - 1e-12)) /
                                         log_1mp));
    idx += skip;
    if (idx >= total_pairs) break;
    auto [u, v] = pair_of(idx);
    builder.AddEdge(u, v);
    ++idx;
    if (idx >= total_pairs) break;
  }
  return builder.Build();
}

Graph GenerateErdosRenyiM(std::size_t n, std::size_t m, uint64_t seed) {
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> edges;
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  const std::size_t target = static_cast<std::size_t>(
      std::min<uint64_t>(m, max_edges));
  while (edges.size() < target) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  if (n == 0) return builder.Build();
  const std::size_t m0 = std::max<std::size_t>(attach, 1) + 1;
  // `targets` holds one entry per edge endpoint, so sampling uniformly
  // from it is degree-proportional sampling.
  std::vector<VertexId> endpoint_pool;
  // Seed clique on the first m0 vertices.
  const std::size_t seed_size = std::min(m0, n);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::vector<VertexId> chosen;
  for (VertexId v = static_cast<VertexId>(seed_size); v < n; ++v) {
    chosen.clear();
    std::size_t want = std::min(attach, static_cast<std::size_t>(v));
    std::size_t guard = 0;
    while (chosen.size() < want && guard < 64 * want + 64) {
      ++guard;
      VertexId t = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      builder.AddEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.Build();
}

Graph GenerateWattsStrogatz(std::size_t n, std::size_t neighbors,
                            double beta, uint64_t seed) {
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> edges;
  auto norm = [](VertexId a, VertexId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  const std::size_t half = neighbors / 2;
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= half; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (u == v) continue;
      edges.insert(norm(u, v));
    }
  }
  // Rewire each lattice edge with probability beta.
  std::vector<std::pair<VertexId, VertexId>> lattice(edges.begin(),
                                                     edges.end());
  for (const auto& [u, v] : lattice) {
    if (!rng.NextBernoulli(beta)) continue;
    edges.erase(norm(u, v));
    std::size_t guard = 0;
    while (guard++ < 256) {
      VertexId w = static_cast<VertexId>(rng.NextBounded(n));
      if (w == u || edges.count(norm(u, w)) != 0) continue;
      edges.insert(norm(u, w));
      break;
    }
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

Graph GenerateRmat(uint32_t scale, std::size_t num_edges, double a, double b,
                   double c, uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = std::size_t{1} << scale;
  GraphBuilder builder(n);
  for (std::size_t e = 0; e < num_edges; ++e) {
    VertexId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.NextDouble();
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= (VertexId{1} << bit);
      } else if (r < a + b + c) {
        u |= (VertexId{1} << bit);
      } else {
        u |= (VertexId{1} << bit);
        v |= (VertexId{1} << bit);
      }
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

PlantedCommunityGraph GeneratePlantedCommunities(
    const PlantedCommunityConfig& config, uint64_t seed) {
  Rng rng(seed);
  const std::size_t community_total =
      config.num_communities * config.community_size;
  const std::size_t n = community_total + config.background_vertices;

  PlantedCommunityGraph result;
  result.community.assign(n, PlantedCommunityGraph::kNoCommunity);

  GraphBuilder builder(n);
  for (std::size_t ci = 0; ci < config.num_communities; ++ci) {
    const VertexId base = static_cast<VertexId>(ci * config.community_size);
    const std::size_t s = config.community_size;
    for (std::size_t i = 0; i < s; ++i) {
      result.community[base + i] = static_cast<uint32_t>(ci);
    }
    // Start from a clique, then delete `missing_per_vertex` distinct
    // incident edges per vertex round-robin, never letting any vertex
    // exceed its missing budget, so the community stays a
    // (missing_per_vertex + 1)-plex.
    std::vector<std::vector<char>> present(s, std::vector<char>(s, 1));
    std::vector<std::size_t> missing(s, 0);
    for (std::size_t i = 0; i < s; ++i) {
      while (missing[i] < config.missing_per_vertex) {
        std::size_t j = rng.NextBounded(s);
        if (j == i || !present[i][j]) break;  // give up quietly on clashes
        if (missing[j] >= config.missing_per_vertex) break;
        present[i][j] = present[j][i] = 0;
        ++missing[i];
        ++missing[j];
      }
    }
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = i + 1; j < s; ++j) {
        if (present[i][j]) {
          builder.AddEdge(base + static_cast<VertexId>(i),
                          base + static_cast<VertexId>(j));
        }
      }
    }
  }
  // Sparse noise across everything else.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      bool same_community =
          result.community[u] != PlantedCommunityGraph::kNoCommunity &&
          result.community[u] == result.community[v];
      if (same_community) continue;
      if (rng.NextBernoulli(config.noise_probability)) builder.AddEdge(u, v);
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace kplex
