// GraphBuilder accumulates edges (in any order, with duplicates and
// self-loops tolerated) and produces a normalized CSR Graph: undirected,
// simple, sorted adjacency.

#ifndef KPLEX_GRAPH_BUILDER_H_
#define KPLEX_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kplex {

class GraphBuilder {
 public:
  /// Creates a builder for a graph with `num_vertices` vertices
  /// (ids 0 .. num_vertices-1).
  explicit GraphBuilder(std::size_t num_vertices)
      : num_vertices_(num_vertices) {}

  /// Records the undirected edge (u, v). Self-loops are ignored.
  /// Duplicate edges are deduplicated at Build() time.
  void AddEdge(VertexId u, VertexId v) {
    if (u == v) return;
    edges_.emplace_back(u, v);
  }

  std::size_t num_vertices() const { return num_vertices_; }

  /// Normalizes and produces the immutable Graph. The builder is left
  /// empty afterwards.
  Graph Build();

  /// Convenience: builds a graph directly from an edge list.
  static Graph FromEdges(
      std::size_t num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& edges);

 private:
  std::size_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace kplex

#endif  // KPLEX_GRAPH_BUILDER_H_
