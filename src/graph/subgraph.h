// Induced-subgraph extraction with id mappings, used by tests, examples
// and the seed-subgraph builder.

#ifndef KPLEX_GRAPH_SUBGRAPH_H_
#define KPLEX_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace kplex {

struct InducedSubgraph {
  Graph graph;
  /// to_original[new_id] = id in the parent graph.
  std::vector<VertexId> to_original;
};

/// Induced subgraph on `vertices` (must be unique; any order). New ids
/// follow the order of `vertices`.
InducedSubgraph ExtractInduced(const Graph& graph,
                               const std::vector<VertexId>& vertices);

}  // namespace kplex

#endif  // KPLEX_GRAPH_SUBGRAPH_H_
