// Core decomposition and degeneracy ordering by iterated minimum-degree
// peeling. Ties among minimum-degree vertices are broken by vertex id,
// which makes the ordering eta unique, exactly as specified in Section 3
// of the paper.

#ifndef KPLEX_GRAPH_DEGENERACY_H_
#define KPLEX_GRAPH_DEGENERACY_H_

#include <vector>

#include "graph/graph.h"

namespace kplex {

struct DegeneracyResult {
  /// Peeling order eta: order[i] is the i-th removed vertex.
  std::vector<VertexId> order;
  /// rank[v] = position of v in `order` (inverse permutation).
  std::vector<uint32_t> rank;
  /// coreness[v] = largest c such that v belongs to the c-core.
  std::vector<uint32_t> coreness;
  /// Graph degeneracy D = max coreness.
  uint32_t degeneracy = 0;
};

/// Computes coreness values and the deterministic degeneracy ordering.
DegeneracyResult ComputeDegeneracy(const Graph& graph);

}  // namespace kplex

#endif  // KPLEX_GRAPH_DEGENERACY_H_
