#include "graph/connectivity.h"

#include <algorithm>
#include <deque>

namespace kplex {

std::size_t ComponentResult::LargestSize() const {
  std::size_t best = 0;
  for (std::size_t s : sizes) best = std::max(best, s);
  return best;
}

ComponentResult ConnectedComponents(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  ComponentResult result;
  result.component.assign(n, UINT32_MAX);
  std::deque<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (result.component[start] != UINT32_MAX) continue;
    const uint32_t label = static_cast<uint32_t>(result.sizes.size());
    result.sizes.push_back(0);
    result.component[start] = label;
    queue.push_back(start);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      ++result.sizes[label];
      for (VertexId u : graph.Neighbors(v)) {
        if (result.component[u] == UINT32_MAX) {
          result.component[u] = label;
          queue.push_back(u);
        }
      }
    }
  }
  return result;
}

std::vector<int> BfsDistances(const Graph& graph, VertexId source) {
  std::vector<int> dist(graph.NumVertices(), -1);
  if (source >= graph.NumVertices()) return dist;
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace kplex
