#include "graph/graph.h"

#include <algorithm>

namespace kplex {

Graph::Graph(std::vector<uint64_t> offsets, std::vector<VertexId> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    max_degree_ = std::max<std::size_t>(max_degree_, offsets_[v + 1] - offsets_[v]);
  }
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  // Search the shorter adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace kplex
