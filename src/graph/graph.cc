#include "graph/graph.h"

#include <algorithm>
#include <utility>

namespace kplex {

Graph::Graph(std::vector<uint64_t> offsets, std::vector<VertexId> adjacency)
    : owned_offsets_(std::move(offsets)),
      owned_adjacency_(std::move(adjacency)) {
  Rebind();
  ComputeMaxDegree();
}

Graph::Graph(const uint64_t* offsets, std::size_t num_offsets,
             const VertexId* adjacency, std::size_t num_adjacency,
             std::shared_ptr<const void> backing, std::size_t backing_bytes,
             bool mapped)
    : backing_(std::move(backing)), backing_bytes_(backing_bytes),
      mapped_(mapped), offsets_(offsets), num_offsets_(num_offsets),
      adjacency_(adjacency), num_adjacency_(num_adjacency) {
  ComputeMaxDegree();
}

Graph::Graph(const Graph& other)
    : owned_offsets_(other.owned_offsets_),
      owned_adjacency_(other.owned_adjacency_), backing_(other.backing_),
      backing_bytes_(other.backing_bytes_), mapped_(other.mapped_),
      offsets_(other.offsets_), num_offsets_(other.num_offsets_),
      adjacency_(other.adjacency_), num_adjacency_(other.num_adjacency_),
      max_degree_(other.max_degree_) {
  if (backing_ == nullptr) Rebind();  // views must follow the copied vectors
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : owned_offsets_(std::move(other.owned_offsets_)),
      owned_adjacency_(std::move(other.owned_adjacency_)),
      backing_(std::move(other.backing_)),
      backing_bytes_(other.backing_bytes_), mapped_(other.mapped_),
      offsets_(other.offsets_), num_offsets_(other.num_offsets_),
      adjacency_(other.adjacency_), num_adjacency_(other.num_adjacency_),
      max_degree_(other.max_degree_) {
  // Vector moves keep heap buffers alive at the same addresses, so the
  // view members stay valid; Rebind covers the empty-vector corner.
  if (backing_ == nullptr) Rebind();
  other.Rebind();
  other.backing_bytes_ = 0;
  other.mapped_ = false;
  other.max_degree_ = 0;
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    owned_offsets_ = std::move(other.owned_offsets_);
    owned_adjacency_ = std::move(other.owned_adjacency_);
    backing_ = std::move(other.backing_);
    backing_bytes_ = other.backing_bytes_;
    mapped_ = other.mapped_;
    offsets_ = other.offsets_;
    num_offsets_ = other.num_offsets_;
    adjacency_ = other.adjacency_;
    num_adjacency_ = other.num_adjacency_;
    max_degree_ = other.max_degree_;
    if (backing_ == nullptr) Rebind();
    other.Rebind();
    other.backing_bytes_ = 0;
    other.mapped_ = false;
    other.max_degree_ = 0;
  }
  return *this;
}

void Graph::Rebind() {
  offsets_ = owned_offsets_.empty() ? nullptr : owned_offsets_.data();
  num_offsets_ = owned_offsets_.size();
  adjacency_ = owned_adjacency_.empty() ? nullptr : owned_adjacency_.data();
  num_adjacency_ = owned_adjacency_.size();
}

void Graph::ComputeMaxDegree() {
  max_degree_ = 0;
  for (std::size_t v = 0; v + 1 < num_offsets_; ++v) {
    max_degree_ =
        std::max<std::size_t>(max_degree_, offsets_[v + 1] - offsets_[v]);
  }
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  // Search the shorter adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace kplex
