#include "graph/local_graph.h"

namespace kplex {

LocalGraph::LocalGraph(uint32_t size)
    : size_(size), rows_(size, DynamicBitset(size)), degree_(size, 0),
      alive_(size) {
  alive_.SetAll();
}

void LocalGraph::AddEdge(uint32_t u, uint32_t v) {
  if (rows_[u].Test(v)) return;
  rows_[u].Set(v);
  rows_[v].Set(u);
  ++degree_[u];
  ++degree_[v];
}

void LocalGraph::RemoveVertex(uint32_t v) {
  if (!alive_.Test(v)) return;
  alive_.Reset(v);
  rows_[v].ForEach([&](std::size_t u) {
    rows_[u].Reset(v);
    --degree_[u];
  });
  rows_[v].ResetAll();
  degree_[v] = 0;
}

}  // namespace kplex
