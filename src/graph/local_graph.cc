#include "graph/local_graph.h"

namespace kplex {

LocalGraph::LocalGraph(uint32_t size)
    : size_(size), matrix_(size, size), degree_(size, 0), alive_(size) {
  alive_.SetAll();
}

void LocalGraph::AddEdge(uint32_t u, uint32_t v) {
  if (matrix_.Test(u, v)) return;
  matrix_.Set(u, v);
  matrix_.Set(v, u);
  ++degree_[u];
  ++degree_[v];
}

void LocalGraph::RemoveVertex(uint32_t v) {
  if (!alive_.Test(v)) return;
  alive_.Reset(v);
  matrix_.Row(v).ForEach([&](std::size_t u) {
    matrix_.Reset(static_cast<uint32_t>(u), v);
    --degree_[u];
  });
  matrix_.ClearRow(v);
  degree_[v] = 0;
}

}  // namespace kplex
