#include "graph/edge_list_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

#include "graph/builder.h"

namespace kplex {

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }

  std::vector<std::pair<uint64_t, uint64_t>> raw_edges;
  char line[1 << 12];
  std::size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\r' || *p == '\0') {
      continue;  // comment or blank line
    }
    unsigned long long u = 0, v = 0;
    if (std::sscanf(p, "%llu %llu", &u, &v) != 2) {
      std::fclose(f);
      return Status::IoError("parse error in '" + path + "' at line " +
                             std::to_string(line_no));
    }
    raw_edges.emplace_back(u, v);
  }
  std::fclose(f);

  // Compact ids preserving numeric order.
  std::vector<uint64_t> ids;
  ids.reserve(raw_edges.size() * 2);
  for (const auto& [u, v] : raw_edges) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  auto compact = [&](uint64_t raw) -> VertexId {
    return static_cast<VertexId>(
        std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin());
  };

  GraphBuilder builder(ids.size());
  for (const auto& [u, v] : raw_edges) builder.AddEdge(compact(u), compact(v));
  return builder.Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  std::fprintf(f, "# Undirected graph: %zu vertices, %zu edges\n",
               graph.NumVertices(), graph.NumEdges());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(f, "%u\t%u\n", u, v);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace kplex
