#include "graph/edge_list_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <vector>

#include "graph/builder.h"
#include "util/logging.h"

namespace kplex {
namespace {

// Parses a non-negative decimal integer at *p, advancing it. Returns
// false when *p does not start with a digit (covers '-': ids are
// unsigned, and silently wrapping a negative id would corrupt the
// graph) or when the value overflows uint64 (wrapping would likewise
// fabricate a bogus small id).
bool ParseId(const char*& p, uint64_t& out) {
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  uint64_t value = 0;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
    ++p;
  }
  out = value;
  return true;
}

// True when the rest of the line is whitespace (spaces, tabs, CR, LF).
bool OnlyWhitespaceRemains(const char* p) {
  while (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n') ++p;
  return *p == '\0';
}

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }

  std::vector<std::pair<uint64_t, uint64_t>> raw_edges;
  uint64_t self_loops = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\r' || *p == '\0') {
      continue;  // comment or blank line (getline stripped the '\n')
    }
    uint64_t u = 0, v = 0;
    bool ok = ParseId(p, u);
    if (ok) {
      if (*p != ' ' && *p != '\t') ok = false;
      while (*p == ' ' || *p == '\t') ++p;
    }
    ok = ok && ParseId(p, v) && OnlyWhitespaceRemains(p);
    if (!ok) {
      return Status::IoError("parse error in '" + path + "' at line " +
                             std::to_string(line_no));
    }
    // Self-loops are dropped by GraphBuilder, but the ids still enter
    // the vertex set (a loop-only vertex stays an isolated vertex).
    if (u == v) ++self_loops;
    raw_edges.emplace_back(u, v);
  }
  if (f.bad()) {
    return Status::IoError("read error in '" + path + "'");
  }

  // Compact ids preserving numeric order.
  std::vector<uint64_t> ids;
  ids.reserve(raw_edges.size() * 2);
  for (const auto& [u, v] : raw_edges) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  auto compact = [&](uint64_t raw) -> VertexId {
    return static_cast<VertexId>(
        std::lower_bound(ids.begin(), ids.end(), raw) - ids.begin());
  };

  GraphBuilder builder(ids.size());
  for (const auto& [u, v] : raw_edges) builder.AddEdge(compact(u), compact(v));
  Graph graph = builder.Build();

  // Every non-loop raw edge contributes one undirected edge unless it
  // repeated an earlier one (in either orientation).
  const uint64_t duplicates =
      raw_edges.size() - self_loops - graph.NumEdges();
  if (self_loops > 0 || duplicates > 0) {
    KPLEX_LOG(Warning) << "'" << path << "': dropped " << self_loops
                       << " self-loop(s), merged " << duplicates
                       << " duplicate edge(s)";
  }
  return graph;
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  std::fprintf(f, "# Undirected graph: %zu vertices, %zu edges\n",
               graph.NumVertices(), graph.NumEdges());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) std::fprintf(f, "%u\t%u\n", u, v);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace kplex
