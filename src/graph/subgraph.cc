#include "graph/subgraph.h"

#include <unordered_map>

#include "graph/builder.h"

namespace kplex {

InducedSubgraph ExtractInduced(const Graph& graph,
                               const std::vector<VertexId>& vertices) {
  InducedSubgraph result;
  result.to_original = vertices;
  std::unordered_map<VertexId, VertexId> new_id;
  new_id.reserve(vertices.size() * 2);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    new_id.emplace(vertices[i], static_cast<VertexId>(i));
  }
  GraphBuilder builder(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (VertexId u : graph.Neighbors(vertices[i])) {
      auto it = new_id.find(u);
      if (it != new_id.end() && it->second > i) {
        builder.AddEdge(static_cast<VertexId>(i), it->second);
      }
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace kplex
