#include "graph/kcore.h"

#include <deque>

#include "graph/csr_access.h"

namespace kplex {
namespace {

// Compacts `graph` onto the vertices with keep[v] != 0. Neighbor rows
// are filtered in place-order: a subsequence of a strictly ascending row
// is strictly ascending, and id-order compaction preserves comparisons,
// so the result satisfies the Graph invariants without a builder pass.
CoreReduction InducedOnKept(const Graph& graph,
                            const std::vector<char>& keep) {
  const std::size_t n = graph.NumVertices();
  CoreReduction result;
  std::vector<VertexId> new_id(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (keep[v]) {
      new_id[v] = static_cast<VertexId>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }
  if (result.to_original.empty()) return result;

  std::vector<uint64_t> offsets;
  offsets.reserve(result.to_original.size() + 1);
  offsets.push_back(0);
  std::vector<VertexId> adjacency;
  for (VertexId v : result.to_original) {
    for (VertexId u : graph.Neighbors(v)) {
      if (keep[u]) adjacency.push_back(new_id[u]);
    }
    offsets.push_back(adjacency.size());
  }
  result.graph = CsrAccess::FromVectors(std::move(offsets),
                                        std::move(adjacency));
  return result;
}

}  // namespace

CoreReduction ReduceToCore(const Graph& graph, uint32_t c) {
  const std::size_t n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<char> removed(n, 0);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < c) {
      removed[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && --degree[u] < c) {
        removed[u] = 1;
        queue.push_back(u);
      }
    }
  }

  std::vector<char> keep(n, 0);
  for (VertexId v = 0; v < n; ++v) keep[v] = !removed[v];
  return InducedOnKept(graph, keep);
}

CoreReduction ReduceToCoreFromCoreness(const Graph& graph, uint32_t c,
                                       std::span<const uint32_t> coreness) {
  const std::size_t n = graph.NumVertices();
  std::vector<char> keep(n, 0);
  for (std::size_t v = 0; v < n; ++v) keep[v] = coreness[v] >= c;
  return InducedOnKept(graph, keep);
}

CoreReduction ReduceToCoreFromMask(const Graph& graph,
                                   std::span<const uint64_t> mask) {
  const std::size_t n = graph.NumVertices();
  std::vector<char> keep(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    keep[v] = (mask[v / 64] >> (v % 64)) & 1;
  }
  return InducedOnKept(graph, keep);
}

}  // namespace kplex
