#include "graph/kcore.h"

#include <deque>

#include "graph/builder.h"

namespace kplex {

CoreReduction ReduceToCore(const Graph& graph, uint32_t c) {
  const std::size_t n = graph.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<char> removed(n, 0);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < c) {
      removed[v] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && --degree[u] < c) {
        removed[u] = 1;
        queue.push_back(u);
      }
    }
  }

  CoreReduction result;
  std::vector<VertexId> new_id(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!removed[v]) {
      new_id[v] = static_cast<VertexId>(result.to_original.size());
      result.to_original.push_back(v);
    }
  }
  GraphBuilder builder(result.to_original.size());
  for (VertexId v = 0; v < n; ++v) {
    if (removed[v]) continue;
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && v < u) builder.AddEdge(new_id[v], new_id[u]);
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace kplex
