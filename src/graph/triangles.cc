#include "graph/triangles.h"

#include <algorithm>

namespace kplex {

std::vector<uint64_t> CountTrianglesPerVertex(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  std::vector<uint64_t> per_vertex(n, 0);
  // For each edge (u, v) with u < v, intersect sorted neighbor lists and
  // credit every triangle to all three corners once (w > v to count each
  // triangle exactly once).
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      auto nu = graph.Neighbors(u);
      auto nv = graph.Neighbors(v);
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++per_vertex[u];
          ++per_vertex[v];
          ++per_vertex[*iu];
          ++iu;
          ++iv;
        }
      }
    }
  }
  return per_vertex;
}

uint64_t CountTriangles(const Graph& graph) {
  uint64_t total = 0;
  for (uint64_t t : CountTrianglesPerVertex(graph)) total += t;
  return total / 3;
}

double GlobalClusteringCoefficient(const Graph& graph) {
  const uint64_t triangles = CountTriangles(graph);
  uint64_t wedges = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const uint64_t d = graph.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

double AverageLocalClustering(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  if (n == 0) return 0.0;
  std::vector<uint64_t> per_vertex = CountTrianglesPerVertex(graph);
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t d = graph.Degree(v);
    if (d < 2) continue;
    sum += 2.0 * static_cast<double>(per_vertex[v]) /
           (static_cast<double>(d) * (d - 1));
  }
  return sum / static_cast<double>(n);
}

}  // namespace kplex
