// Binary CSR snapshot format. A snapshot is a byte-exact serialization
// of a Graph's CSR arrays behind a small versioned header, so loading is
// two straight reads into pre-sized buffers instead of an edge-list
// re-parse (no tokenizing, no id compaction, no sort). The layout is
// mmap-friendly: a fixed 64-byte header, then the offset array, then the
// adjacency array, each section padded to a 64-byte boundary, all values
// little-endian.
//
//   offset 0    SnapshotHeader (64 bytes)
//   offset 64   uint64_t offsets[n + 1]
//   aligned 64  uint32_t adjacency[2m]
//
// Load validates magic, version, byte order, section sizes, CSR
// monotonicity, vertex-id range, and an FNV-1a content checksum, so a
// truncated or bit-flipped snapshot is rejected instead of producing a
// malformed graph.

#ifndef KPLEX_GRAPH_SNAPSHOT_H_
#define KPLEX_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Current snapshot format version (bumped on layout changes).
inline constexpr uint32_t kSnapshotVersion = 1;

/// Suggested file extension for snapshots.
inline constexpr const char kSnapshotExtension[] = ".kpx";

/// Writes `graph` to `path` in snapshot format (overwrites).
Status SaveSnapshot(const Graph& graph, const std::string& path);

/// Reads a snapshot written by SaveSnapshot. Returns InvalidArgument for
/// malformed or corrupted content and IoError for filesystem failures.
StatusOr<Graph> LoadSnapshot(const std::string& path);

/// True iff the file at `path` starts with the snapshot magic. Cheap
/// sniff used to auto-detect snapshot vs edge-list inputs.
bool LooksLikeSnapshot(const std::string& path);

/// Loads `path` as a snapshot when it carries the snapshot magic and as
/// a SNAP edge list otherwise.
StatusOr<Graph> LoadGraphAuto(const std::string& path);

}  // namespace kplex

#endif  // KPLEX_GRAPH_SNAPSHOT_H_
