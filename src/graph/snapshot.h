// Binary CSR snapshot format (.kpx). A snapshot is a byte-exact
// serialization of a Graph's CSR arrays (plus, in v2, optional
// precomputed reduction sections) behind a versioned header, so loading
// skips the edge-list re-parse — and, for v2, skips copying entirely:
// the 64-byte-aligned sections are mmap'ed and served as zero-copy
// views. Validation still streams the file once (checksums + CSR
// checks), but a load allocates no graph-sized heap and performs no
// memcpy, and resident mapped graphs cost reclaimable page cache —
// many of them share one memory budget.
//
// Two on-disk versions coexist (full byte-level spec, compatibility
// matrix, and worked examples in docs/SNAPSHOT_FORMAT.md):
//
//   v1 (legacy)  fixed 64-byte header, offsets section, adjacency
//                section, whole-content FNV-1a checksum. Loaded through
//                the original buffered-read path into owned vectors.
//   v2 (current) fixed 64-byte header + section table. Required
//                sections: CSR offsets and adjacency. Optional
//                sections: degeneracy order, coreness, per-level core
//                masks (see graph/precompute.h) — these let warm `mine`
//                calls skip the (q-k)-core reduction and ordering.
//                Every section is 64-byte aligned and carries its own
//                FNV-1a checksum; the header checksums the table.
//
// Load validates magic, version, byte order, section bounds/alignment,
// all checksums, CSR monotonicity, and vertex-id ranges, so a truncated
// or bit-flipped snapshot is rejected instead of producing a malformed
// graph.

#ifndef KPLEX_GRAPH_SNAPSHOT_H_
#define KPLEX_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/precompute.h"
#include "util/status.h"

namespace kplex {

/// Current snapshot format version (bumped on layout changes).
inline constexpr uint32_t kSnapshotVersion = 2;
/// The legacy pre-section-table version, still read (never written
/// unless explicitly requested).
inline constexpr uint32_t kSnapshotVersionLegacy = 1;

/// Suggested file extension for snapshots.
inline constexpr const char kSnapshotExtension[] = ".kpx";

struct SnapshotWriteOptions {
  /// On-disk format version: kSnapshotVersion (default) or
  /// kSnapshotVersionLegacy for v1 compatibility output.
  uint32_t version = kSnapshotVersion;
  /// v2 only: also store the degeneracy order + coreness sections (one
  /// degeneracy decomposition at write time buys every future `mine` a
  /// free reduction).
  bool include_precompute = false;
  /// v2 only, implies include_precompute: additionally store a packed
  /// (q-k)-core membership mask per listed level.
  std::vector<uint32_t> core_mask_levels;
};

/// A fully decoded snapshot: the graph plus whatever optional sections
/// the file carried (empty GraphPrecompute when none).
struct LoadedSnapshot {
  Graph graph;
  GraphPrecompute precompute;
  /// On-disk version the file was decoded from.
  uint32_t version = 0;
  /// True when the graph's CSR views are mmap-backed (v2 via mmap);
  /// false for legacy loads and the buffered v2 fallback.
  bool mapped = false;
};

/// Parses a comma-separated core-level list ("4,8,10") into
/// SnapshotWriteOptions::core_mask_levels values — the one parser
/// behind `kplex_cli snapshot --core-levels` and the serve command's
/// `levels=` option. Digits only per entry; empty entries (including a
/// trailing comma) and an empty list are rejected.
StatusOr<std::vector<uint32_t>> ParseCoreLevelList(const std::string& list);

/// Writes `graph` to `path` in snapshot format (overwrites).
Status SaveSnapshot(const Graph& graph, const std::string& path,
                    const SnapshotWriteOptions& options = {});

/// Reads a snapshot written by SaveSnapshot, decoding optional
/// sections. Returns InvalidArgument for malformed or corrupted content
/// and IoError for filesystem failures.
StatusOr<LoadedSnapshot> LoadSnapshotFull(const std::string& path);

/// Graph-only convenience wrapper around LoadSnapshotFull.
StatusOr<Graph> LoadSnapshot(const std::string& path);

/// True iff the file at `path` starts with the snapshot magic. Cheap
/// sniff used to auto-detect snapshot vs edge-list inputs.
bool LooksLikeSnapshot(const std::string& path);

/// Loads `path` as a snapshot when it carries the snapshot magic and as
/// a SNAP edge list otherwise.
StatusOr<Graph> LoadGraphAuto(const std::string& path);

/// LoadGraphAuto preserving snapshot precompute sections (edge lists
/// yield an empty precompute).
StatusOr<LoadedSnapshot> LoadGraphAutoFull(const std::string& path);

}  // namespace kplex

#endif  // KPLEX_GRAPH_SNAPSHOT_H_
