#include "graph/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/csr_access.h"
#include "graph/edge_list_io.h"
#include "util/mmap_file.h"

namespace kplex {
namespace {

constexpr char kMagic[8] = {'K', 'P', 'X', 'S', 'N', 'A', 'P', '\0'};
constexpr uint32_t kByteOrderTag = 0x01020304u;
constexpr std::size_t kSectionAlign = 64;
// Backstop against absurd section counts in crafted headers; a real v2
// file has 2 required sections plus a handful of optional ones.
constexpr uint32_t kMaxSections = 4096;

// v1 layout: header, offsets, adjacency, one whole-content checksum.
struct SnapshotHeaderV1 {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t num_vertices;
  uint64_t num_adjacency;   // directed entries, = 2 * NumEdges()
  uint64_t offsets_bytes;   // (num_vertices + 1) * sizeof(uint64_t)
  uint64_t adjacency_bytes; // num_adjacency * sizeof(VertexId)
  uint64_t checksum;        // FNV-1a over both blobs, offsets first
  uint8_t pad[8];
};
static_assert(sizeof(SnapshotHeaderV1) == kSectionAlign,
              "header must fill exactly one aligned section");

// v2 layout: header, section table, 64-byte-aligned payloads. The
// header checksums the table; each table entry checksums its payload.
struct SnapshotHeaderV2 {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t num_vertices;
  uint64_t num_adjacency;
  uint32_t section_count;
  uint32_t reserved;
  uint64_t table_checksum;  // FNV-1a over the section table bytes
  uint64_t reserved2;
  uint8_t pad[8];
};
static_assert(sizeof(SnapshotHeaderV2) == kSectionAlign,
              "header must fill exactly one aligned section");

// Section identifiers. Readers skip unknown types (forward compat);
// `param` is type-specific: the core-mask level, or the graph
// degeneracy on the coreness section.
enum SectionType : uint32_t {
  kSectionOffsets = 1,    // uint64_t[n + 1]
  kSectionAdjacency = 2,  // VertexId[num_adjacency]
  kSectionOrder = 3,      // VertexId[n], degeneracy peeling order
  kSectionCoreness = 4,   // uint32_t[n]; param = degeneracy
  kSectionCoreMask = 5,   // uint64_t[ceil(n/64)]; param = core level
};

struct SectionEntry {
  uint32_t type;
  uint32_t param;
  uint64_t offset;  // absolute file offset, 64-byte aligned
  uint64_t length;  // payload bytes (unpadded)
  uint64_t checksum;  // FNV-1a over the payload
};
static_assert(sizeof(SectionEntry) == 32, "section table entry is 32 bytes");

std::size_t AlignUp(std::size_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

uint64_t Fnv1a(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

uint64_t SectionChecksum(const void* data, std::size_t bytes) {
  return Fnv1a(kFnvBasis, data, bytes);
}

uint64_t ContentChecksumV1(const uint64_t* offsets, std::size_t offsets_bytes,
                           const VertexId* adjacency,
                           std::size_t adjacency_bytes) {
  uint64_t hash = kFnvBasis;
  hash = Fnv1a(hash, offsets, offsets_bytes);
  hash = Fnv1a(hash, adjacency, adjacency_bytes);
  return hash;
}

Status WritePadding(std::FILE* f, std::size_t bytes) {
  static constexpr char zeros[kSectionAlign] = {};
  if (bytes == 0) return Status::Ok();
  if (std::fwrite(zeros, 1, bytes, f) != bytes) {
    return Status::IoError("short write of snapshot padding");
  }
  return Status::Ok();
}

// Structural CSR validation: monotone offsets bracketing the adjacency
// array, and per-row neighbor lists that are strictly ascending, in
// range, and self-loop free — the invariants Graph::HasEdge's binary
// search and the enumerators rely on. (A checksum match already implies
// an uncorrupted SaveSnapshot product; this rejects handcrafted files.
// Row symmetry is the one invariant not checked — it would cost a
// search per edge.)
Status ValidateCsr(const uint64_t* offsets, uint64_t num_vertices,
                   const VertexId* adjacency, uint64_t num_adjacency,
                   const std::string& path) {
  if (offsets[0] != 0 || offsets[num_vertices] != num_adjacency) {
    return Status::InvalidArgument("snapshot offsets do not bracket the "
                                   "adjacency array in '" + path + "'");
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument("non-monotone snapshot offsets in '" +
                                     path + "'");
    }
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adjacency[i] >= num_vertices ||
          adjacency[i] == static_cast<VertexId>(v) ||
          (i > offsets[v] && adjacency[i - 1] >= adjacency[i])) {
        return Status::InvalidArgument(
            "invalid adjacency row (unsorted, duplicate, self-loop, or "
            "out-of-range id) in '" + path + "'");
      }
    }
  }
  return Status::Ok();
}

// The canonical offsets array of an empty (default-constructed) graph,
// which has no owned offsets to serialize.
constexpr uint64_t kEmptyOffsets[1] = {0};

Status SaveSnapshotV1(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }

  const auto offsets = graph.RawOffsets();
  const auto adjacency = graph.RawAdjacency();
  const uint64_t* offsets_data = offsets.empty() ? kEmptyOffsets
                                                 : offsets.data();
  const std::size_t offsets_count = offsets.empty() ? 1 : offsets.size();

  SnapshotHeaderV1 header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kSnapshotVersionLegacy;
  header.byte_order = kByteOrderTag;
  header.num_vertices = offsets_count - 1;
  header.num_adjacency = adjacency.size();
  header.offsets_bytes = offsets_count * sizeof(uint64_t);
  header.adjacency_bytes = adjacency.size() * sizeof(VertexId);
  header.checksum = ContentChecksumV1(offsets_data, header.offsets_bytes,
                                      adjacency.data(),
                                      header.adjacency_bytes);

  Status status = Status::Ok();
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    status = Status::IoError("short write of snapshot header");
  }
  if (status.ok() &&
      std::fwrite(offsets_data, 1, header.offsets_bytes, f) !=
          header.offsets_bytes) {
    status = Status::IoError("short write of snapshot offsets");
  }
  if (status.ok()) {
    const std::size_t end = sizeof(header) + header.offsets_bytes;
    status = WritePadding(f, AlignUp(end) - end);
  }
  if (status.ok() && header.adjacency_bytes > 0 &&
      std::fwrite(adjacency.data(), 1, header.adjacency_bytes, f) !=
          header.adjacency_bytes) {
    status = Status::IoError("short write of snapshot adjacency");
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("close failed for '" + path + "'");
  }
  return status;
}

Status SaveSnapshotV2(const Graph& graph, const std::string& path,
                      const SnapshotWriteOptions& options) {
  const auto offsets = graph.RawOffsets();
  const auto adjacency = graph.RawAdjacency();
  const uint64_t* offsets_data = offsets.empty() ? kEmptyOffsets
                                                 : offsets.data();
  const std::size_t offsets_count = offsets.empty() ? 1 : offsets.size();

  GraphPrecompute pre;
  const bool with_precompute =
      options.include_precompute || !options.core_mask_levels.empty();
  if (with_precompute) {
    pre = ComputeGraphPrecompute(graph, options.core_mask_levels);
  }

  struct Blob {
    uint32_t type;
    uint32_t param;
    const void* data;
    std::size_t bytes;
  };
  std::vector<Blob> blobs;
  blobs.push_back({kSectionOffsets, 0, offsets_data,
                   offsets_count * sizeof(uint64_t)});
  blobs.push_back({kSectionAdjacency, 0, adjacency.data(),
                   adjacency.size() * sizeof(VertexId)});
  if (with_precompute) {
    blobs.push_back({kSectionOrder, 0, pre.order.data(),
                     pre.order.size() * sizeof(VertexId)});
    blobs.push_back({kSectionCoreness, pre.degeneracy, pre.coreness.data(),
                     pre.coreness.size() * sizeof(uint32_t)});
    for (const auto& [level, mask] : pre.core_masks) {
      blobs.push_back({kSectionCoreMask, level, mask.data(),
                       mask.size() * sizeof(uint64_t)});
    }
  }

  SnapshotHeaderV2 header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kSnapshotVersion;
  header.byte_order = kByteOrderTag;
  header.num_vertices = offsets_count - 1;
  header.num_adjacency = adjacency.size();
  header.section_count = static_cast<uint32_t>(blobs.size());

  std::vector<SectionEntry> table(blobs.size());
  std::size_t pos = AlignUp(sizeof(header) +
                            blobs.size() * sizeof(SectionEntry));
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    table[i].type = blobs[i].type;
    table[i].param = blobs[i].param;
    table[i].offset = pos;
    table[i].length = blobs[i].bytes;
    table[i].checksum = SectionChecksum(blobs[i].data, blobs[i].bytes);
    pos = AlignUp(pos + blobs[i].bytes);
  }
  header.table_checksum =
      SectionChecksum(table.data(), table.size() * sizeof(SectionEntry));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  Status status = Status::Ok();
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    status = Status::IoError("short write of snapshot header");
  }
  if (status.ok() && !table.empty() &&
      std::fwrite(table.data(), sizeof(SectionEntry), table.size(), f) !=
          table.size()) {
    status = Status::IoError("short write of snapshot section table");
  }
  std::size_t written = sizeof(header) + table.size() * sizeof(SectionEntry);
  for (std::size_t i = 0; status.ok() && i < blobs.size(); ++i) {
    status = WritePadding(f, table[i].offset - written);
    if (!status.ok()) break;
    if (blobs[i].bytes > 0 &&
        std::fwrite(blobs[i].data, 1, blobs[i].bytes, f) != blobs[i].bytes) {
      status = Status::IoError("short write of snapshot section");
      break;
    }
    written = table[i].offset + blobs[i].bytes;
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("close failed for '" + path + "'");
  }
  return status;
}

// The original buffered v1 reader, kept verbatim as the legacy path.
StatusOr<LoadedSnapshot> LoadSnapshotV1(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  SnapshotHeaderV1 header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short for a snapshot header");
  }
  if (header.num_vertices > static_cast<uint64_t>(VertexId(-1)) ||
      header.num_adjacency > UINT64_MAX / sizeof(VertexId) ||
      header.offsets_bytes != (header.num_vertices + 1) * sizeof(uint64_t) ||
      header.adjacency_bytes != header.num_adjacency * sizeof(VertexId) ||
      header.num_adjacency % 2 != 0) {
    return Status::InvalidArgument("inconsistent snapshot header in '" +
                                   path + "'");
  }

  // Bound the declared sections by the actual file size *before*
  // allocating anything: a crafted header claiming 2^60 entries must
  // come back as InvalidArgument, not abort the process in bad_alloc.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  const long file_size = std::ftell(f);
  const std::size_t adjacency_pos =
      AlignUp(sizeof(header) + header.offsets_bytes);
  if (file_size < 0 ||
      adjacency_pos + header.adjacency_bytes >
          static_cast<uint64_t>(file_size)) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is shorter than its header declares");
  }

  if (std::fseek(f, sizeof(header), SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  std::vector<uint64_t> offsets(header.num_vertices + 1);
  if (std::fread(offsets.data(), 1, header.offsets_bytes, f) !=
      header.offsets_bytes) {
    return Status::InvalidArgument("truncated snapshot offsets in '" + path +
                                   "'");
  }
  if (std::fseek(f, static_cast<long>(adjacency_pos), SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  std::vector<VertexId> adjacency(header.num_adjacency);
  if (header.adjacency_bytes > 0 &&
      std::fread(adjacency.data(), 1, header.adjacency_bytes, f) !=
          header.adjacency_bytes) {
    return Status::InvalidArgument("truncated snapshot adjacency in '" +
                                   path + "'");
  }

  if (ContentChecksumV1(offsets.data(), header.offsets_bytes,
                        adjacency.data(),
                        header.adjacency_bytes) != header.checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch in '" + path +
                                   "' (corrupted content)");
  }

  KPLEX_RETURN_IF_ERROR(ValidateCsr(offsets.data(), header.num_vertices,
                                    adjacency.data(), header.num_adjacency,
                                    path));

  LoadedSnapshot loaded;
  loaded.version = kSnapshotVersionLegacy;
  if (header.num_vertices > 0) {
    loaded.graph = CsrAccess::FromVectors(std::move(offsets),
                                          std::move(adjacency));
  }
  return loaded;
}

// Decodes a v2 snapshot from `data`/`size` (an mmap'ed file or a loaded
// buffer). On success the graph's CSR arrays are views into the buffer,
// kept alive through `backing`.
StatusOr<LoadedSnapshot> ParseSnapshotV2(const unsigned char* data,
                                         std::size_t size,
                                         std::shared_ptr<const void> backing,
                                         bool mapped,
                                         const std::string& path) {
  SnapshotHeaderV2 header;
  std::memcpy(&header, data, sizeof(header));  // caller checked size >= 64

  // The adjacency bound is file-size-relative, which both prevents the
  // `num_adjacency * sizeof(VertexId)` length comparison below from
  // wrapping (a 2^62 claim times 4 is 0 mod 2^64 and would match a
  // zero-length section) and rejects any claim the file cannot hold.
  if (header.num_vertices > static_cast<uint64_t>(VertexId(-1)) ||
      header.num_adjacency % 2 != 0 ||
      header.num_adjacency > size / sizeof(VertexId) ||
      header.section_count > kMaxSections) {
    return Status::InvalidArgument("inconsistent snapshot header in '" +
                                   path + "'");
  }
  const uint64_t n = header.num_vertices;
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionEntry);
  if (sizeof(header) + table_bytes > size) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is shorter than its section table");
  }
  const auto* table =
      reinterpret_cast<const SectionEntry*>(data + sizeof(header));
  if (SectionChecksum(table, table_bytes) != header.table_checksum) {
    return Status::InvalidArgument("snapshot section-table checksum "
                                   "mismatch in '" + path +
                                   "' (corrupted content)");
  }

  LoadedSnapshot loaded;
  loaded.version = kSnapshotVersion;
  const uint64_t* offsets = nullptr;
  const VertexId* adjacency = nullptr;
  bool saw_adjacency = false;

  for (uint32_t i = 0; i < header.section_count; ++i) {
    const SectionEntry& entry = table[i];
    if (entry.offset % kSectionAlign != 0 || entry.offset > size ||
        entry.length > size - entry.offset) {
      return Status::InvalidArgument(
          "snapshot '" + path +
          "' declares a section outside the file or misaligned");
    }
    const unsigned char* payload = data + entry.offset;
    if (SectionChecksum(payload, entry.length) != entry.checksum) {
      return Status::InvalidArgument("snapshot checksum mismatch in '" +
                                     path + "' (corrupted content)");
    }
    switch (entry.type) {
      case kSectionOffsets:
        if (offsets != nullptr || entry.length != (n + 1) * sizeof(uint64_t)) {
          return Status::InvalidArgument(
              "duplicate or mis-sized offsets section in '" + path + "'");
        }
        offsets = reinterpret_cast<const uint64_t*>(payload);
        break;
      case kSectionAdjacency:
        if (saw_adjacency ||
            entry.length != header.num_adjacency * sizeof(VertexId)) {
          return Status::InvalidArgument(
              "duplicate or mis-sized adjacency section in '" + path + "'");
        }
        adjacency = reinterpret_cast<const VertexId*>(payload);
        saw_adjacency = true;
        break;
      case kSectionOrder:
        // Sections are 64-byte aligned in the file, so reinterpreting
        // the payload as its element type is well-defined; the views
        // stay alive through the precompute's share of `backing`.
        if (!loaded.precompute.order.empty() ||
            entry.length != n * sizeof(VertexId)) {
          return Status::InvalidArgument(
              "duplicate or mis-sized order section in '" + path + "'");
        }
        loaded.precompute.SetOrderView(
            {reinterpret_cast<const VertexId*>(payload), n});
        break;
      case kSectionCoreness:
        if (!loaded.precompute.coreness.empty() ||
            entry.length != n * sizeof(uint32_t)) {
          return Status::InvalidArgument(
              "duplicate or mis-sized coreness section in '" + path + "'");
        }
        loaded.precompute.SetCorenessView(
            {reinterpret_cast<const uint32_t*>(payload), n});
        loaded.precompute.degeneracy = entry.param;
        break;
      case kSectionCoreMask: {
        if (entry.length != ((n + 63) / 64) * sizeof(uint64_t) ||
            loaded.precompute.core_masks.count(entry.param) > 0) {
          return Status::InvalidArgument(
              "duplicate or mis-sized core-mask section in '" + path + "'");
        }
        loaded.precompute.AddMaskView(
            entry.param,
            {reinterpret_cast<const uint64_t*>(payload), (n + 63) / 64});
        break;
      }
      default:
        break;  // unknown section from a newer writer: skip
    }
  }

  if (offsets == nullptr || !saw_adjacency) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is missing its CSR sections");
  }
  KPLEX_RETURN_IF_ERROR(
      ValidateCsr(offsets, n, adjacency, header.num_adjacency, path));

  // The order section indexes into per-vertex arrays downstream; a
  // checksum-valid handcrafted file must not smuggle in out-of-range
  // ids or duplicates, so require a permutation of [0, n).
  if (!loaded.precompute.order.empty()) {
    std::vector<char> seen(n, 0);
    for (VertexId v : loaded.precompute.order) {
      if (v >= n || seen[v]) {
        return Status::InvalidArgument(
            "order section is not a permutation in '" + path + "'");
      }
      seen[v] = 1;
    }
  }
  // Same threat model for masks: a mask is *defined* as the coreness
  // level set, and the reduction stage prefers it over the comparison
  // scan, so an inconsistent handcrafted mask would silently drop
  // vertices from the survivor graph. Masks are only ever consumed
  // alongside coreness, so this check covers every consulted mask.
  if (loaded.precompute.has_coreness()) {
    for (const auto& [level, mask] : loaded.precompute.core_masks) {
      const std::vector<uint64_t> expected =
          PackCoreMask(loaded.precompute.coreness, level);
      if (mask.size() != expected.size() ||
          !std::equal(mask.begin(), mask.end(), expected.begin())) {
        return Status::InvalidArgument(
            "core-mask section for level " + std::to_string(level) +
            " contradicts the coreness section in '" + path + "'");
      }
    }
  }

  // The precompute views reference the same buffer as the CSR views;
  // sharing the handle keeps them independently alive (zero-copy: no
  // section is ever duplicated onto the heap).
  if (!loaded.precompute.empty()) {
    loaded.precompute.SetBacking(backing, mapped);
  }
  if (n > 0) {
    loaded.graph = CsrAccess::FromView(offsets, n + 1, adjacency,
                                       header.num_adjacency,
                                       std::move(backing), size, mapped);
    loaded.mapped = mapped;
  }
  return loaded;
}

// Buffered v2 fallback for platforms (or files) mmap cannot serve: read
// the whole file into one uint64_t-aligned heap buffer and parse views
// into it — still a single allocation and no per-section copies.
StatusOr<LoadedSnapshot> LoadSnapshotV2Buffered(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  const std::size_t size = static_cast<std::size_t>(file_size);
  if (size < sizeof(SnapshotHeaderV2)) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short for a snapshot header");
  }
  // uint64_t elements guarantee alignment for every section type.
  auto buffer = std::make_shared<std::vector<uint64_t>>((size + 7) / 8);
  if (size > 0 && std::fread(buffer->data(), 1, size, f) != size) {
    return Status::IoError("short read of '" + path + "'");
  }
  const auto* data = reinterpret_cast<const unsigned char*>(buffer->data());
  return ParseSnapshotV2(data, size, buffer, /*mapped=*/false, path);
}

}  // namespace

StatusOr<std::vector<uint32_t>> ParseCoreLevelList(const std::string& list) {
  std::vector<uint32_t> levels;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    uint64_t value = 0;
    bool valid = !token.empty() && token.size() <= 10;
    for (char c : token) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!valid || value > UINT32_MAX) {
      return Status::InvalidArgument("malformed core-level entry '" + token +
                                     "' in '" + list + "'");
    }
    levels.push_back(static_cast<uint32_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return levels;
}

Status SaveSnapshot(const Graph& graph, const std::string& path,
                    const SnapshotWriteOptions& options) {
  if (options.version != kSnapshotVersion &&
      options.version != kSnapshotVersionLegacy) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(options.version));
  }
  if (options.version == kSnapshotVersionLegacy &&
      (options.include_precompute || !options.core_mask_levels.empty())) {
    return Status::InvalidArgument(
        "v1 snapshots cannot carry precompute sections");
  }
  // Write to a sibling temp file and rename into place. Two reasons:
  // a reader never sees a half-written snapshot, and — critically —
  // `graph` may be a zero-copy view of a mapping of `path` itself
  // (e.g. re-encoding a snapshot with --precompute onto its own file);
  // truncating the mapped file in place would SIGBUS on the very pages
  // being serialized.
  // (Concurrent writers to one target path remain unsupported, as
  // before; the fixed suffix keeps crash leftovers discoverable.)
  const std::string tmp = path + ".tmp";
  Status written = options.version == kSnapshotVersionLegacy
                       ? SaveSnapshotV1(graph, tmp)
                       : SaveSnapshotV2(graph, tmp, options);
  if (!written.ok()) {
    std::remove(tmp.c_str());
    return written;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot move snapshot into place at '" + path +
                           "'");
  }
  return Status::Ok();
}

StatusOr<LoadedSnapshot> LoadSnapshotFull(const std::string& path) {
  // Sniff the header through buffered IO to pick the decode path; the
  // v2 reader then maps the file (or falls back to one buffered read).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  unsigned char sniff[16];
  const bool have_sniff = std::fread(sniff, sizeof(sniff), 1, f) == 1;
  std::fclose(f);
  if (!have_sniff) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short for a snapshot header");
  }
  if (std::memcmp(sniff, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a kplex snapshot");
  }
  uint32_t version, byte_order;
  std::memcpy(&version, sniff + 8, sizeof(version));
  std::memcpy(&byte_order, sniff + 12, sizeof(byte_order));
  if (byte_order != kByteOrderTag) {
    return Status::InvalidArgument(
        "'" + path + "' was written on a machine with different byte order");
  }
  if (version == kSnapshotVersionLegacy) return LoadSnapshotV1(path);
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) + " in '" +
        path + "' (expected <= " + std::to_string(kSnapshotVersion) + ")");
  }

  auto mapping = MappedFile::Open(path);
  if (mapping.ok()) {
    const MappedFile& file = **mapping;
    if (file.size() < sizeof(SnapshotHeaderV2)) {
      return Status::InvalidArgument("'" + path +
                                     "' is too short for a snapshot header");
    }
    return ParseSnapshotV2(file.data(), file.size(), *mapping,
                           /*mapped=*/true, path);
  }
  return LoadSnapshotV2Buffered(path);
}

StatusOr<Graph> LoadSnapshot(const std::string& path) {
  auto loaded = LoadSnapshotFull(path);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

bool LooksLikeSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kMagic)];
  const bool match =
      std::fread(magic, sizeof(magic), 1, f) == 1 &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  return match;
}

StatusOr<Graph> LoadGraphAuto(const std::string& path) {
  auto loaded = LoadGraphAutoFull(path);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->graph);
}

StatusOr<LoadedSnapshot> LoadGraphAutoFull(const std::string& path) {
  if (LooksLikeSnapshot(path)) return LoadSnapshotFull(path);
  auto parsed = LoadEdgeList(path);
  if (!parsed.ok()) return parsed.status();
  LoadedSnapshot loaded;
  loaded.graph = *std::move(parsed);
  return loaded;
}

}  // namespace kplex
