#include "graph/snapshot.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/edge_list_io.h"

namespace kplex {

/// Befriended by Graph: constructs instances straight from validated CSR
/// arrays, bypassing the GraphBuilder normalization pass.
class SnapshotAccess {
 public:
  static Graph Make(std::vector<uint64_t> offsets,
                    std::vector<VertexId> adjacency) {
    return Graph(std::move(offsets), std::move(adjacency));
  }
};

namespace {

constexpr char kMagic[8] = {'K', 'P', 'X', 'S', 'N', 'A', 'P', '\0'};
constexpr uint32_t kByteOrderTag = 0x01020304u;
constexpr std::size_t kSectionAlign = 64;

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t num_vertices;
  uint64_t num_adjacency;   // directed entries, = 2 * NumEdges()
  uint64_t offsets_bytes;   // (num_vertices + 1) * sizeof(uint64_t)
  uint64_t adjacency_bytes; // num_adjacency * sizeof(VertexId)
  uint64_t checksum;        // FNV-1a over both blobs, offsets first
  uint8_t pad[8];
};
static_assert(sizeof(SnapshotHeader) == kSectionAlign,
              "header must fill exactly one aligned section");

std::size_t AlignUp(std::size_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

uint64_t Fnv1a(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ContentChecksum(const uint64_t* offsets, std::size_t offsets_bytes,
                         const VertexId* adjacency,
                         std::size_t adjacency_bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  hash = Fnv1a(hash, offsets, offsets_bytes);
  hash = Fnv1a(hash, adjacency, adjacency_bytes);
  return hash;
}

Status WritePadding(std::FILE* f, std::size_t bytes) {
  static constexpr char zeros[kSectionAlign] = {};
  if (bytes == 0) return Status::Ok();
  if (std::fwrite(zeros, 1, bytes, f) != bytes) {
    return Status::IoError("short write of snapshot padding");
  }
  return Status::Ok();
}

}  // namespace

Status SaveSnapshot(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }

  const auto offsets = graph.RawOffsets();
  const auto adjacency = graph.RawAdjacency();
  // An empty (default-constructed) graph has no offset array; serialize
  // it as n = 0 with the canonical single-entry offsets [0].
  static constexpr uint64_t kEmptyOffsets[1] = {0};
  const uint64_t* offsets_data = offsets.empty() ? kEmptyOffsets
                                                 : offsets.data();
  const std::size_t offsets_count = offsets.empty() ? 1 : offsets.size();

  SnapshotHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kSnapshotVersion;
  header.byte_order = kByteOrderTag;
  header.num_vertices = offsets_count - 1;
  header.num_adjacency = adjacency.size();
  header.offsets_bytes = offsets_count * sizeof(uint64_t);
  header.adjacency_bytes = adjacency.size() * sizeof(VertexId);
  header.checksum = ContentChecksum(offsets_data, header.offsets_bytes,
                                    adjacency.data(),
                                    header.adjacency_bytes);

  Status status = Status::Ok();
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    status = Status::IoError("short write of snapshot header");
  }
  if (status.ok() &&
      std::fwrite(offsets_data, 1, header.offsets_bytes, f) !=
          header.offsets_bytes) {
    status = Status::IoError("short write of snapshot offsets");
  }
  if (status.ok()) {
    const std::size_t end = sizeof(header) + header.offsets_bytes;
    status = WritePadding(f, AlignUp(end) - end);
  }
  if (status.ok() && header.adjacency_bytes > 0 &&
      std::fwrite(adjacency.data(), 1, header.adjacency_bytes, f) !=
          header.adjacency_bytes) {
    status = Status::IoError("short write of snapshot adjacency");
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("close failed for '" + path + "'");
  }
  return status;
}

StatusOr<Graph> LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  SnapshotHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short for a snapshot header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a kplex snapshot");
  }
  if (header.byte_order != kByteOrderTag) {
    return Status::InvalidArgument(
        "'" + path + "' was written on a machine with different byte order");
  }
  if (header.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(header.version) +
        " in '" + path + "' (expected " + std::to_string(kSnapshotVersion) +
        ")");
  }
  if (header.num_vertices > static_cast<uint64_t>(VertexId(-1)) ||
      header.num_adjacency > UINT64_MAX / sizeof(VertexId) ||
      header.offsets_bytes != (header.num_vertices + 1) * sizeof(uint64_t) ||
      header.adjacency_bytes != header.num_adjacency * sizeof(VertexId) ||
      header.num_adjacency % 2 != 0) {
    return Status::InvalidArgument("inconsistent snapshot header in '" +
                                   path + "'");
  }

  // Bound the declared sections by the actual file size *before*
  // allocating anything: a crafted header claiming 2^60 entries must
  // come back as InvalidArgument, not abort the process in bad_alloc.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  const long file_size = std::ftell(f);
  const std::size_t adjacency_pos =
      AlignUp(sizeof(header) + header.offsets_bytes);
  if (file_size < 0 ||
      adjacency_pos + header.adjacency_bytes >
          static_cast<uint64_t>(file_size)) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is shorter than its header declares");
  }

  if (std::fseek(f, sizeof(header), SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  std::vector<uint64_t> offsets(header.num_vertices + 1);
  if (std::fread(offsets.data(), 1, header.offsets_bytes, f) !=
      header.offsets_bytes) {
    return Status::InvalidArgument("truncated snapshot offsets in '" + path +
                                   "'");
  }
  if (std::fseek(f, static_cast<long>(adjacency_pos), SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  std::vector<VertexId> adjacency(header.num_adjacency);
  if (header.adjacency_bytes > 0 &&
      std::fread(adjacency.data(), 1, header.adjacency_bytes, f) !=
          header.adjacency_bytes) {
    return Status::InvalidArgument("truncated snapshot adjacency in '" +
                                   path + "'");
  }

  if (ContentChecksum(offsets.data(), header.offsets_bytes, adjacency.data(),
                      header.adjacency_bytes) != header.checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch in '" + path +
                                   "' (corrupted content)");
  }

  // Structural CSR validation: monotone offsets bracketing the adjacency
  // array, and per-row neighbor lists that are strictly ascending, in
  // range, and self-loop free — the invariants Graph::HasEdge's binary
  // search and the enumerators rely on. (A checksum match already
  // implies an uncorrupted SaveSnapshot product; this rejects
  // handcrafted files. Row symmetry is the one invariant not checked —
  // it would cost a search per edge.)
  if (offsets.front() != 0 || offsets.back() != header.num_adjacency) {
    return Status::InvalidArgument("snapshot offsets do not bracket the "
                                   "adjacency array in '" + path + "'");
  }
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument("non-monotone snapshot offsets in '" +
                                     path + "'");
    }
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adjacency[i] >= header.num_vertices ||
          adjacency[i] == static_cast<VertexId>(v) ||
          (i > offsets[v] && adjacency[i - 1] >= adjacency[i])) {
        return Status::InvalidArgument(
            "invalid adjacency row (unsorted, duplicate, self-loop, or "
            "out-of-range id) in '" + path + "'");
      }
    }
  }

  if (header.num_vertices == 0) return Graph();
  return SnapshotAccess::Make(std::move(offsets), std::move(adjacency));
}

bool LooksLikeSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kMagic)];
  const bool match =
      std::fread(magic, sizeof(magic), 1, f) == 1 &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  return match;
}

StatusOr<Graph> LoadGraphAuto(const std::string& path) {
  if (LooksLikeSnapshot(path)) return LoadSnapshot(path);
  return LoadEdgeList(path);
}

}  // namespace kplex
