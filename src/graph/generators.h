// Deterministic synthetic graph generators. These are the offline
// stand-ins for the SNAP/LAW datasets of the paper's Table 2 (see
// DESIGN.md section 4): Barabasi-Albert and RMAT produce the heavy-tailed
// degree distributions of social/web graphs, Watts-Strogatz the high
// local clustering, and the planted-community generator produces known
// near-clique ground truth for the examples.

#ifndef KPLEX_GRAPH_GENERATORS_H_
#define KPLEX_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace kplex {

/// Erdos-Renyi G(n, p): each pair independently an edge with prob p.
Graph GenerateErdosRenyi(std::size_t n, double p, uint64_t seed);

/// Erdos-Renyi G(n, m): exactly m distinct uniform edges (m must be
/// feasible).
Graph GenerateErdosRenyiM(std::size_t n, std::size_t m, uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportional to degree.
Graph GenerateBarabasiAlbert(std::size_t n, std::size_t attach,
                             uint64_t seed);

/// Watts-Strogatz small world: ring lattice with `neighbors` (even)
/// nearest neighbors per vertex, each edge rewired with probability beta.
Graph GenerateWattsStrogatz(std::size_t n, std::size_t neighbors,
                            double beta, uint64_t seed);

/// RMAT recursive-matrix generator (web-graph-like skew). 2^scale
/// vertices and ~num_edges edges; (a, b, c) quadrant probabilities with
/// d = 1 - a - b - c.
Graph GenerateRmat(uint32_t scale, std::size_t num_edges, double a, double b,
                   double c, uint64_t seed);

struct PlantedCommunityConfig {
  /// Number of planted communities.
  std::size_t num_communities = 8;
  /// Vertices per community.
  std::size_t community_size = 12;
  /// Per-vertex count of randomly deleted intra-community edges; with
  /// `missing_per_vertex = k - 1` every community is a k-plex.
  std::size_t missing_per_vertex = 1;
  /// Additional background vertices not in any community.
  std::size_t background_vertices = 50;
  /// Probability of a noise edge between any inter-community/background
  /// pair.
  double noise_probability = 0.01;
};

struct PlantedCommunityGraph {
  Graph graph;
  /// community[v] = community index, or kNoCommunity for background.
  std::vector<uint32_t> community;
  static constexpr uint32_t kNoCommunity = 0xffffffffu;
};

/// Plants `num_communities` noisy cliques (each a (missing_per_vertex+1)-
/// plex by construction) in a sparse noise background.
PlantedCommunityGraph GeneratePlantedCommunities(
    const PlantedCommunityConfig& config, uint64_t seed);

}  // namespace kplex

#endif  // KPLEX_GRAPH_GENERATORS_H_
