// CTCP-style core-triangle co-pruning (Chang, Xu, Strash — kPlexS,
// PVLDB 2022; [12] in the paper's Related Work). Iterates two sound
// reductions until fixpoint:
//
//   vertex rule (Theorem 3.5):  deg(v) < q - k            => remove v
//   edge rule  (Theorem 5.1ii): |N(u) ∩ N(v)| < q - 2k    => remove (u,v)
//
// Every k-plex with >= q vertices of the input survives intact in the
// reduced graph, *including its maximality structure* (a deleted edge's
// endpoints can never co-occur in any k-plex with >= q vertices, so no
// maximality test ever depends on it). kPlexS proved the CTCP fixpoint
// is never larger than the reductions of BnB/Maplex/KpLeX; here it is an
// optional preprocessing pass ahead of the enumerators.

#ifndef KPLEX_GRAPH_CTCP_H_
#define KPLEX_GRAPH_CTCP_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kplex {

struct CtcpResult {
  /// The reduced graph (compacted ids).
  Graph graph;
  /// to_original[new_id] = vertex id in the input graph.
  std::vector<VertexId> to_original;
  /// Number of edges deleted by the common-neighbor rule (across all
  /// rounds), excluding edges that vanished with removed vertices.
  uint64_t edges_pruned = 0;
  /// Rounds until fixpoint.
  uint32_t rounds = 0;
};

/// Runs CTCP for parameters (k, q). Requires q >= 2k - 1 for the edge
/// rule to be sound in the form used here.
CtcpResult CtcpReduce(const Graph& graph, uint32_t k, uint32_t q);

}  // namespace kplex

#endif  // KPLEX_GRAPH_CTCP_H_
