// Internal factory befriended by Graph: constructs instances straight
// from *already validated* CSR arrays, bypassing the GraphBuilder
// normalization pass (dedup/sort/compact). Used by the snapshot loader
// and by reduction fast paths that filter an existing CSR (filtering a
// sorted row preserves sortedness, so re-validation would be wasted
// work). Callers must guarantee the Graph invariants: monotone offsets
// bracketing the adjacency array and strictly ascending, self-loop-free,
// in-range neighbor rows.

#ifndef KPLEX_GRAPH_CSR_ACCESS_H_
#define KPLEX_GRAPH_CSR_ACCESS_H_

#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kplex {

class CsrAccess {
 public:
  /// Heap-owning graph from validated CSR vectors.
  static Graph FromVectors(std::vector<uint64_t> offsets,
                           std::vector<VertexId> adjacency) {
    return Graph(std::move(offsets), std::move(adjacency));
  }

  /// Zero-copy graph whose CSR arrays live inside `backing` (an
  /// mmap'ed snapshot or a loaded file buffer). `backing_bytes` is the
  /// buffer size attributed to the graph for accounting; `mapped`
  /// distinguishes file-backed pages from private heap.
  static Graph FromView(const uint64_t* offsets, std::size_t num_offsets,
                        const VertexId* adjacency, std::size_t num_adjacency,
                        std::shared_ptr<const void> backing,
                        std::size_t backing_bytes, bool mapped) {
    return Graph(offsets, num_offsets, adjacency, num_adjacency,
                 std::move(backing), backing_bytes, mapped);
  }
};

}  // namespace kplex

#endif  // KPLEX_GRAPH_CSR_ACCESS_H_
