// Triangle counting and clustering coefficients. Characterizes the local
// density the k-plex miner exploits; the CLI's graph report and the
// dataset-similarity checks use these.

#ifndef KPLEX_GRAPH_TRIANGLES_H_
#define KPLEX_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kplex {

/// Total number of triangles (each counted once). Forward-adjacency
/// merge algorithm, O(sum of d(u) * d(v) over edges) worst case but
/// O(m^{3/2})-ish in practice on sorted CSR.
uint64_t CountTriangles(const Graph& graph);

/// Per-vertex triangle counts (triangles incident to each vertex).
std::vector<uint64_t> CountTrianglesPerVertex(const Graph& graph);

/// Global clustering coefficient: 3 * triangles / open+closed wedges.
/// Returns 0 for graphs without wedges.
double GlobalClusteringCoefficient(const Graph& graph);

/// Average of per-vertex local clustering coefficients (vertices with
/// degree < 2 contribute 0).
double AverageLocalClustering(const Graph& graph);

}  // namespace kplex

#endif  // KPLEX_GRAPH_TRIANGLES_H_
