// Aggregate graph statistics — the columns of the paper's Table 2.

#ifndef KPLEX_GRAPH_STATS_H_
#define KPLEX_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace kplex {

struct GraphStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t max_degree = 0;   // Delta
  uint32_t degeneracy = 0;      // D
  double average_degree = 0.0;
};

/// Computes n, m, Delta, D and the average degree of `graph`.
GraphStats ComputeGraphStats(const Graph& graph);

/// Deterministic content hash of a graph: FNV-1a over the vertex count
/// and the raw CSR arrays, finished with an avalanche. Two graphs hash
/// equal iff they have identical adjacency structure under the same
/// vertex labeling — regardless of how they were loaded (edge list, v1
/// or v2 snapshot), since all loaders produce the same canonical CSR.
/// Never 0 for use as an "unknown" sentinel. One linear pass; the
/// service computes it lazily and caches it per catalog entry. Sharding
/// coordinators use it as the admission check that every worker mines
/// the same bytes (docs/SHARDING.md).
uint64_t GraphContentHash(const Graph& graph);

}  // namespace kplex

#endif  // KPLEX_GRAPH_STATS_H_
