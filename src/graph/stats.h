// Aggregate graph statistics — the columns of the paper's Table 2.

#ifndef KPLEX_GRAPH_STATS_H_
#define KPLEX_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace kplex {

struct GraphStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t max_degree = 0;   // Delta
  uint32_t degeneracy = 0;      // D
  double average_degree = 0.0;
};

/// Computes n, m, Delta, D and the average degree of `graph`.
GraphStats ComputeGraphStats(const Graph& graph);

}  // namespace kplex

#endif  // KPLEX_GRAPH_STATS_H_
