#include "graph/degeneracy.h"

#include <queue>
#include <tuple>

namespace kplex {

DegeneracyResult ComputeDegeneracy(const Graph& graph) {
  const std::size_t n = graph.NumVertices();
  DegeneracyResult result;
  result.order.reserve(n);
  result.rank.assign(n, 0);
  result.coreness.assign(n, 0);

  std::vector<uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);

  // Min-heap on (current degree, vertex id) with lazy deletion. O(m log n),
  // deterministic: the smallest-id vertex among minimum-degree vertices is
  // always peeled first (the paper's within-shell tie rule).
  using Entry = std::pair<uint32_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (VertexId v = 0; v < n; ++v) heap.emplace(degree[v], v);

  std::vector<char> removed(n, 0);
  uint32_t max_core = 0;
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (removed[v] || d != degree[v]) continue;  // stale entry
    removed[v] = 1;
    max_core = std::max(max_core, d);
    result.coreness[v] = max_core;
    result.rank[v] = static_cast<uint32_t>(result.order.size());
    result.order.push_back(v);
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u]) {
        --degree[u];
        heap.emplace(degree[u], u);
      }
    }
  }
  result.degeneracy = max_core;
  return result;
}

}  // namespace kplex
