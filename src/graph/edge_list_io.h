// SNAP-style edge-list I/O. The format accepted is the one used by the
// Stanford Large Network Dataset Collection: '#'-prefixed comment lines,
// then one "u v" pair per line (tabs or spaces). Vertex ids are compacted
// to 0..n-1 preserving their numeric order.

#ifndef KPLEX_GRAPH_EDGE_LIST_IO_H_
#define KPLEX_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Loads a SNAP-format edge list. Tolerates CRLF line endings, tab or
/// space separators, and arbitrary leading whitespace; self-loops are
/// dropped and duplicate edges merged (a warning is logged when either
/// occurs), the graph treated as undirected. Lines that are not two
/// non-negative integers (e.g. trailing junk, negative ids) are
/// rejected with an IoError naming the line.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Writes the graph as "u v" lines (u < v) with a header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace kplex

#endif  // KPLEX_GRAPH_EDGE_LIST_IO_H_
