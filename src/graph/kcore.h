// k-core reduction (Theorem 3.5): every k-plex with at least q vertices
// lies inside the (q-k)-core, so the enumerators first shrink the input
// graph to that core and work on the compacted survivor graph.
//
// Two construction paths produce the same CoreReduction:
//  - ReduceToCore peels the graph (the cold path);
//  - ReduceToCoreFromCoreness / ReduceToCoreFromMask take membership
//    from precomputed snapshot sections and only filter the CSR — no
//    peel, no sort (filtered sorted rows stay sorted).

#ifndef KPLEX_GRAPH_KCORE_H_
#define KPLEX_GRAPH_KCORE_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace kplex {

struct CoreReduction {
  /// The induced subgraph on the c-core, with compacted vertex ids.
  Graph graph;
  /// to_original[new_id] = vertex id in the input graph.
  std::vector<VertexId> to_original;
};

/// Returns the induced subgraph on the c-core of `graph` (the maximal
/// induced subgraph with minimum degree >= c). May be empty.
CoreReduction ReduceToCore(const Graph& graph, uint32_t c);

/// c-core via precomputed coreness values (the c-core is exactly
/// {v : coreness[v] >= c}): skips the peel, filters the CSR directly.
/// `coreness` must have size NumVertices().
CoreReduction ReduceToCoreFromCoreness(const Graph& graph, uint32_t c,
                                       std::span<const uint32_t> coreness);

/// Induced subgraph on the vertices whose bit is set in `mask`
/// (ceil(n/64) packed uint64 words, bit v = keep vertex v).
CoreReduction ReduceToCoreFromMask(const Graph& graph,
                                   std::span<const uint64_t> mask);

}  // namespace kplex

#endif  // KPLEX_GRAPH_KCORE_H_
