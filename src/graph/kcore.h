// k-core reduction (Theorem 3.5): every k-plex with at least q vertices
// lies inside the (q-k)-core, so the enumerators first shrink the input
// graph to that core and work on the compacted survivor graph.

#ifndef KPLEX_GRAPH_KCORE_H_
#define KPLEX_GRAPH_KCORE_H_

#include <vector>

#include "graph/graph.h"

namespace kplex {

struct CoreReduction {
  /// The induced subgraph on the c-core, with compacted vertex ids.
  Graph graph;
  /// to_original[new_id] = vertex id in the input graph.
  std::vector<VertexId> to_original;
};

/// Returns the induced subgraph on the c-core of `graph` (the maximal
/// induced subgraph with minimum degree >= c). May be empty.
CoreReduction ReduceToCore(const Graph& graph, uint32_t c);

}  // namespace kplex

#endif  // KPLEX_GRAPH_KCORE_H_
