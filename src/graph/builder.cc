#include "graph/builder.h"

#include <algorithm>

namespace kplex {

Graph GraphBuilder::Build() {
  // Normalize to (min, max) and deduplicate.
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<uint64_t> offsets(num_vertices_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i <= num_vertices_; ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adjacency(edges_.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  // Sorted edge processing leaves each row sorted except for the
  // interleaving of "as-u" and "as-v" entries; sort rows to be safe.
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    std::sort(adjacency.begin() + offsets[v], adjacency.begin() + offsets[v + 1]);
  }
  edges_.clear();
  return Graph(std::move(offsets), std::move(adjacency));
}

Graph GraphBuilder::FromEdges(
    std::size_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace kplex
