#include "graph/stats.h"

#include "graph/degeneracy.h"

namespace kplex {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.max_degree = graph.MaxDegree();
  stats.degeneracy = ComputeDegeneracy(graph).degeneracy;
  stats.average_degree =
      stats.num_vertices == 0
          ? 0.0
          : 2.0 * static_cast<double>(stats.num_edges) / stats.num_vertices;
  return stats;
}

uint64_t GraphContentHash(const Graph& graph) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t value) {
    // Byte-wise FNV-1a keeps the hash independent of host endianness
    // quirks in wider multiplies (we feed fixed-width values).
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (value >> shift) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(graph.NumVertices());
  for (uint64_t offset : graph.RawOffsets()) mix(offset);
  for (VertexId v : graph.RawAdjacency()) mix(v);
  // Avalanche, and reserve 0 as the "not yet computed" sentinel.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

}  // namespace kplex
