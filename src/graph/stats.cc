#include "graph/stats.h"

#include "graph/degeneracy.h"

namespace kplex {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.NumVertices();
  stats.num_edges = graph.NumEdges();
  stats.max_degree = graph.MaxDegree();
  stats.degeneracy = ComputeDegeneracy(graph).degeneracy;
  stats.average_degree =
      stats.num_vertices == 0
          ? 0.0
          : 2.0 * static_cast<double>(stats.num_edges) / stats.num_vertices;
  return stats;
}

}  // namespace kplex
