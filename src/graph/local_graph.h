// LocalGraph: dense adjacency-matrix representation of a small vertex
// universe (a seed subgraph plus its exclusive-set fringe). The matrix
// is a flat BitMatrix — one contiguous buffer, fixed word stride,
// 64-byte-aligned rows — so the branch-and-bound inner loops stream
// consecutive cache lines through the SIMD-dispatched bit kernels
// instead of chasing one heap allocation per row. Rows are exposed as
// BitSpan views that compose directly with the DynamicBitset P/C/X sets.
//
// Seed subgraphs are dense (Section 4: "since G_i tends to be dense, it
// is efficient when G_i is represented by an adjacency matrix"), which is
// why this representation is used instead of CSR inside tasks.

#ifndef KPLEX_GRAPH_LOCAL_GRAPH_H_
#define KPLEX_GRAPH_LOCAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/bit_matrix.h"
#include "util/bitset.h"

namespace kplex {

class LocalGraph {
 public:
  LocalGraph() = default;
  /// Creates an edgeless universe of `size` local vertices.
  explicit LocalGraph(uint32_t size);

  uint32_t size() const { return size_; }

  /// Adds the undirected edge (u, v); u != v.
  void AddEdge(uint32_t u, uint32_t v);

  bool HasEdge(uint32_t u, uint32_t v) const { return matrix_.Test(u, v); }

  /// Adjacency row of v: a span over the flat matrix, fed straight into
  /// the dispatched kernels by callers.
  BitSpan Row(uint32_t v) const { return matrix_.Row(v); }

  /// Degree of v within the universe.
  uint32_t Degree(uint32_t v) const { return degree_[v]; }

  /// popcount(Row(v) & mask): degree of v restricted to `mask`.
  uint32_t DegreeIn(uint32_t v, BitSpan mask) const {
    return static_cast<uint32_t>(Row(v).AndCount(mask));
  }

  /// Removes vertex v: clears its row and its column bit everywhere.
  /// Degrees are updated. Used by iterated seed-subgraph pruning.
  void RemoveVertex(uint32_t v);

  /// True iff v still has its own slot (not removed).
  bool IsAlive(uint32_t v) const { return alive_.Test(v); }

  /// Bitset of vertices not yet removed.
  const DynamicBitset& AliveMask() const { return alive_; }

 private:
  uint32_t size_ = 0;
  BitMatrix matrix_;
  std::vector<uint32_t> degree_;
  DynamicBitset alive_;
};

}  // namespace kplex

#endif  // KPLEX_GRAPH_LOCAL_GRAPH_H_
