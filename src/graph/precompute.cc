#include "graph/precompute.h"

#include "graph/degeneracy.h"

namespace kplex {

void GraphPrecompute::SetOrderOwned(std::vector<VertexId> values) {
  owned_order_ = std::move(values);
  order = owned_order_;
}

void GraphPrecompute::SetCorenessOwned(std::vector<uint32_t> values) {
  owned_coreness_ = std::move(values);
  coreness = owned_coreness_;
}

void GraphPrecompute::AddMaskOwned(uint32_t level,
                                   std::vector<uint64_t> mask) {
  auto [it, inserted] = owned_masks_.emplace(level, std::move(mask));
  if (inserted) core_masks.emplace(level, it->second);
}

void GraphPrecompute::SetBacking(std::shared_ptr<const void> backing,
                                 bool mapped) {
  backing_ = std::move(backing);
  mapped_ = mapped;
}

std::size_t GraphPrecompute::SectionBytes() const {
  std::size_t bytes = order.size() * sizeof(VertexId) +
                      coreness.size() * sizeof(uint32_t);
  for (const auto& [level, mask] : core_masks) {
    (void)level;
    bytes += mask.size() * sizeof(uint64_t);
  }
  return bytes;
}

std::size_t GraphPrecompute::MemoryBytes() const {
  std::size_t bytes = owned_order_.capacity() * sizeof(VertexId) +
                      owned_coreness_.capacity() * sizeof(uint32_t);
  for (const auto& [level, mask] : owned_masks_) {
    (void)level;
    bytes += mask.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

std::string GraphPrecompute::AvailabilityTag() const {
  std::string tag;
  if (has_order()) tag = "order";
  if (has_coreness()) tag += tag.empty() ? "core" : "+core";
  if (tag.empty()) return "none";
  if (!core_masks.empty()) tag += "+masks";
  return tag;
}

GraphPrecompute ComputeGraphPrecompute(
    const Graph& graph, std::span<const uint32_t> mask_levels) {
  DegeneracyResult degeneracy = ComputeDegeneracy(graph);
  GraphPrecompute pre;
  pre.degeneracy = degeneracy.degeneracy;
  pre.SetOrderOwned(std::move(degeneracy.order));
  for (uint32_t level : mask_levels) {
    pre.AddMaskOwned(level, PackCoreMask(degeneracy.coreness, level));
  }
  pre.SetCorenessOwned(std::move(degeneracy.coreness));
  return pre;
}

std::vector<uint64_t> PackCoreMask(std::span<const uint32_t> coreness,
                                   uint32_t level) {
  std::vector<uint64_t> mask((coreness.size() + 63) / 64, 0);
  for (std::size_t v = 0; v < coreness.size(); ++v) {
    if (coreness[v] >= level) mask[v / 64] |= uint64_t{1} << (v % 64);
  }
  return mask;
}

}  // namespace kplex
