#include "graph/precompute.h"

#include "graph/degeneracy.h"

namespace kplex {

std::size_t GraphPrecompute::MemoryBytes() const {
  std::size_t bytes = order.capacity() * sizeof(VertexId) +
                      coreness.capacity() * sizeof(uint32_t);
  for (const auto& [level, mask] : core_masks) {
    (void)level;
    bytes += mask.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

std::string GraphPrecompute::AvailabilityTag() const {
  std::string tag;
  if (has_order()) tag = "order";
  if (has_coreness()) tag += tag.empty() ? "core" : "+core";
  if (tag.empty()) return "none";
  if (!core_masks.empty()) tag += "+masks";
  return tag;
}

GraphPrecompute ComputeGraphPrecompute(
    const Graph& graph, std::span<const uint32_t> mask_levels) {
  DegeneracyResult degeneracy = ComputeDegeneracy(graph);
  GraphPrecompute pre;
  pre.order = std::move(degeneracy.order);
  pre.coreness = std::move(degeneracy.coreness);
  pre.degeneracy = degeneracy.degeneracy;
  for (uint32_t level : mask_levels) {
    pre.core_masks.emplace(level, PackCoreMask(pre.coreness, level));
  }
  return pre;
}

std::vector<uint64_t> PackCoreMask(std::span<const uint32_t> coreness,
                                   uint32_t level) {
  std::vector<uint64_t> mask((coreness.size() + 63) / 64, 0);
  for (std::size_t v = 0; v < coreness.size(); ++v) {
    if (coreness[v] >= level) mask[v / 64] |= uint64_t{1} << (v % 64);
  }
  return mask;
}

}  // namespace kplex
