#include "graph/ctcp.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/kcore.h"

namespace kplex {
namespace {

// One edge-rule sweep over the current graph; returns the surviving
// edges and counts deletions.
std::vector<std::pair<VertexId, VertexId>> EdgeSweep(const Graph& graph,
                                                     int64_t threshold,
                                                     uint64_t* pruned) {
  std::vector<std::pair<VertexId, VertexId>> kept;
  kept.reserve(graph.NumEdges());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    auto nu = graph.Neighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      // Sorted-merge common-neighbor count.
      auto nv = graph.Neighbors(v);
      int64_t common = 0;
      auto iu = nu.begin();
      auto iv = nv.begin();
      while (iu != nu.end() && iv != nv.end() && common < threshold) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++common;
          ++iu;
          ++iv;
        }
      }
      if (common >= threshold) {
        kept.push_back({u, v});
      } else {
        ++*pruned;
      }
    }
  }
  return kept;
}

}  // namespace

CtcpResult CtcpReduce(const Graph& graph, uint32_t k, uint32_t q) {
  CtcpResult result;
  const uint32_t core_level = q >= k ? q - k : 0;
  const int64_t edge_threshold =
      static_cast<int64_t>(q) - 2 * static_cast<int64_t>(k);

  // Identity mapping to start; composed across rounds.
  Graph current = graph;
  std::vector<VertexId> to_original(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) to_original[v] = v;

  while (true) {
    ++result.rounds;
    bool changed = false;

    // Vertex rule: (q - k)-core.
    CoreReduction core = ReduceToCore(current, core_level);
    if (core.graph.NumVertices() != current.NumVertices()) changed = true;
    std::vector<VertexId> composed(core.to_original.size());
    for (std::size_t i = 0; i < core.to_original.size(); ++i) {
      composed[i] = to_original[core.to_original[i]];
    }
    current = std::move(core.graph);
    to_original = std::move(composed);

    // Edge rule (only binding when q > 2k).
    if (edge_threshold > 0) {
      const uint64_t before = result.edges_pruned;
      auto kept = EdgeSweep(current, edge_threshold, &result.edges_pruned);
      if (result.edges_pruned != before) {
        changed = true;
        current = GraphBuilder::FromEdges(current.NumVertices(), kept);
      }
    }

    if (!changed || current.NumVertices() == 0) break;
  }

  result.graph = std::move(current);
  result.to_original = std::move(to_original);
  return result;
}

}  // namespace kplex
