#include "graph/ctcp.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/kcore.h"
#include "util/bitset.h"

namespace kplex {
namespace {

// One edge-rule sweep over the current graph; returns the surviving
// edges and counts deletions. Triangle (common-neighbor) counts run
// against a bitmap of N(u) that lives across u's whole edge block:
// sparse endpoints scan their list with early exit at the threshold,
// dense endpoints materialize a second bitmap and let the dispatched
// and_count kernel do the word-parallel intersection.
std::vector<std::pair<VertexId, VertexId>> EdgeSweep(const Graph& graph,
                                                     int64_t threshold,
                                                     uint64_t* pruned) {
  const std::size_t n = graph.NumVertices();
  DynamicBitset row_u(n), row_v(n);
  // Word-parallel pays once materializing + clearing N(v) costs less
  // than testing each neighbor: ~2 words of kernel work per 64 bits.
  const std::size_t dense_cutoff = 2 * ((n + 63) / 64);
  std::vector<std::pair<VertexId, VertexId>> kept;
  kept.reserve(graph.NumEdges());
  for (VertexId u = 0; u < n; ++u) {
    auto nu = graph.Neighbors(u);
    bool u_marked = false;
    for (VertexId v : nu) {
      if (v <= u) continue;
      if (!u_marked) {
        for (VertexId w : nu) row_u.Set(w);
        u_marked = true;
      }
      auto nv = graph.Neighbors(v);
      int64_t common = 0;
      if (nv.size() >= dense_cutoff) {
        for (VertexId w : nv) row_v.Set(w);
        common = static_cast<int64_t>(row_u.AndCount(row_v));
        for (VertexId w : nv) row_v.Reset(w);
      } else {
        for (VertexId w : nv) {
          if (row_u.Test(w) && ++common >= threshold) break;
        }
      }
      if (common >= threshold) {
        kept.push_back({u, v});
      } else {
        ++*pruned;
      }
    }
    if (u_marked) {
      for (VertexId w : nu) row_u.Reset(w);
    }
  }
  return kept;
}

}  // namespace

CtcpResult CtcpReduce(const Graph& graph, uint32_t k, uint32_t q) {
  CtcpResult result;
  const uint32_t core_level = q >= k ? q - k : 0;
  const int64_t edge_threshold =
      static_cast<int64_t>(q) - 2 * static_cast<int64_t>(k);

  // Identity mapping to start; composed across rounds.
  Graph current = graph;
  std::vector<VertexId> to_original(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) to_original[v] = v;

  while (true) {
    ++result.rounds;
    bool changed = false;

    // Vertex rule: (q - k)-core.
    CoreReduction core = ReduceToCore(current, core_level);
    if (core.graph.NumVertices() != current.NumVertices()) changed = true;
    std::vector<VertexId> composed(core.to_original.size());
    for (std::size_t i = 0; i < core.to_original.size(); ++i) {
      composed[i] = to_original[core.to_original[i]];
    }
    current = std::move(core.graph);
    to_original = std::move(composed);

    // Edge rule (only binding when q > 2k).
    if (edge_threshold > 0) {
      const uint64_t before = result.edges_pruned;
      auto kept = EdgeSweep(current, edge_threshold, &result.edges_pruned);
      if (result.edges_pruned != before) {
        changed = true;
        current = GraphBuilder::FromEdges(current.NumVertices(), kept);
      }
    }

    if (!changed || current.NumVertices() == 0) break;
  }

  result.graph = std::move(current);
  result.to_original = std::move(to_original);
  return result;
}

}  // namespace kplex
