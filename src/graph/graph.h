// Immutable undirected simple graph in CSR (compressed sparse row) form.
// Neighbor lists are sorted, enabling O(log d) adjacency queries and
// linear-time sorted-merge operations. Build instances via GraphBuilder.
//
// Storage is view-based: accessors read through raw pointer + length
// pairs that reference either heap vectors owned by this instance (the
// GraphBuilder / legacy-snapshot case) or an external backing buffer —
// typically an mmap'ed .kpx snapshot — kept alive through a shared
// handle. A mapped graph costs page-cache residency instead of private
// heap, so many resident graphs share one memory budget.

#ifndef KPLEX_GRAPH_GRAPH_H_
#define KPLEX_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace kplex {

/// Vertex identifier. Graphs are limited to 2^32-1 vertices.
using VertexId = uint32_t;

class Graph {
 public:
  Graph() = default;
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Number of vertices.
  std::size_t NumVertices() const {
    return num_offsets_ == 0 ? 0 : num_offsets_ - 1;
  }

  /// Number of undirected edges.
  std::size_t NumEdges() const { return num_adjacency_ / 2; }

  /// Degree of v.
  std::size_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_ + offsets_[v], adjacency_ + offsets_[v + 1]};
  }

  /// True iff the undirected edge (u, v) exists. O(log deg).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum vertex degree (Delta). O(1); precomputed at build time.
  std::size_t MaxDegree() const { return max_degree_; }

  /// All edges as (u, v) pairs with u < v, in CSR order.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Raw CSR offset array (length NumVertices() + 1, offsets[0] == 0).
  /// Exposed for snapshot serialization and memory accounting.
  std::span<const uint64_t> RawOffsets() const {
    return {offsets_, num_offsets_};
  }

  /// Raw concatenated adjacency array (length 2 * NumEdges()).
  std::span<const VertexId> RawAdjacency() const {
    return {adjacency_, num_adjacency_};
  }

  /// True when the CSR arrays are views into an mmap'ed file rather
  /// than private heap.
  bool IsMapped() const { return mapped_; }

  /// Private heap bytes held by this graph (catalog budget accounting).
  /// Zero-copy mapped graphs report ~0 here; see MappedBytes().
  std::size_t MemoryBytes() const {
    return owned_offsets_.capacity() * sizeof(uint64_t) +
           owned_adjacency_.capacity() * sizeof(VertexId) +
           (mapped_ ? 0 : backing_bytes_);
  }

  /// File-backed bytes served zero-copy (page cache, reclaimable by the
  /// kernel); 0 for heap-owned graphs.
  std::size_t MappedBytes() const { return mapped_ ? backing_bytes_ : 0; }

 private:
  friend class GraphBuilder;
  friend class CsrAccess;

  /// Owning constructor (GraphBuilder, legacy snapshot loads).
  Graph(std::vector<uint64_t> offsets, std::vector<VertexId> adjacency);

  /// View constructor: CSR arrays live inside `backing` (an mmap'ed
  /// file or a loaded buffer) which is kept alive for this graph's
  /// lifetime. `backing_bytes` is the buffer size attributed to this
  /// graph for accounting; `mapped` says whether it is file-backed.
  Graph(const uint64_t* offsets, std::size_t num_offsets,
        const VertexId* adjacency, std::size_t num_adjacency,
        std::shared_ptr<const void> backing, std::size_t backing_bytes,
        bool mapped);

  /// Points the view members at the owned vectors (no-op for
  /// backing-based graphs). Must run after any copy/move of the vectors.
  void Rebind();
  void ComputeMaxDegree();

  std::vector<uint64_t> owned_offsets_;
  std::vector<VertexId> owned_adjacency_;
  std::shared_ptr<const void> backing_;
  std::size_t backing_bytes_ = 0;
  bool mapped_ = false;

  const uint64_t* offsets_ = nullptr;
  std::size_t num_offsets_ = 0;
  const VertexId* adjacency_ = nullptr;
  std::size_t num_adjacency_ = 0;
  std::size_t max_degree_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_GRAPH_GRAPH_H_
