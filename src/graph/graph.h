// Immutable undirected simple graph in CSR (compressed sparse row) form.
// Neighbor lists are sorted, enabling O(log d) adjacency queries and
// linear-time sorted-merge operations. Build instances via GraphBuilder.

#ifndef KPLEX_GRAPH_GRAPH_H_
#define KPLEX_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace kplex {

/// Vertex identifier. Graphs are limited to 2^32-1 vertices.
using VertexId = uint32_t;

class Graph {
 public:
  Graph() = default;

  /// Number of vertices.
  std::size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges.
  std::size_t NumEdges() const { return adjacency_.size() / 2; }

  /// Degree of v.
  std::size_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// True iff the undirected edge (u, v) exists. O(log deg).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum vertex degree (Delta). O(1); precomputed at build time.
  std::size_t MaxDegree() const { return max_degree_; }

  /// All edges as (u, v) pairs with u < v, in CSR order.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Raw CSR offset array (length NumVertices() + 1, offsets[0] == 0).
  /// Exposed for snapshot serialization and memory accounting.
  std::span<const uint64_t> RawOffsets() const { return offsets_; }

  /// Raw concatenated adjacency array (length 2 * NumEdges()).
  std::span<const VertexId> RawAdjacency() const { return adjacency_; }

  /// Heap bytes held by the CSR arrays (catalog memory accounting).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(uint64_t) +
           adjacency_.capacity() * sizeof(VertexId);
  }

 private:
  friend class GraphBuilder;
  friend class SnapshotAccess;

  Graph(std::vector<uint64_t> offsets, std::vector<VertexId> adjacency);

  std::vector<uint64_t> offsets_;
  std::vector<VertexId> adjacency_;
  std::size_t max_degree_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_GRAPH_GRAPH_H_
