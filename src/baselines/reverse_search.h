// Reverse-search enumeration of maximal k-plexes (Berlowitz, Cohen,
// Kimelfeld — SIGMOD 2015; [8] in the paper's Related Work). Instead of
// branch-and-bound set enumeration, it walks the *solution graph*: from
// a maximal k-plex P, neighbor solutions are obtained by injecting an
// outside vertex v, enumerating the maximal k-plexes of the induced
// graph G[P ∪ {v}] (the "input-restricted problem"), and re-maximalizing
// each of them in G. Seeding every vertex's greedy maximalization and
// BFS-ing with a visited set yields every maximal k-plex exactly once.
//
// The paper's claim — "it is less efficient than BK when the goal is to
// enumerate all maximal k-plexes" — is reproduced by
// bench/bench_reverse_search_note. The module exists as a second,
// structurally independent exact enumerator: it shares no search code
// with the branch-and-bound engine, which makes it a powerful
// cross-validation oracle (and it has no q >= 2k - 1 restriction since
// it never uses the two-hop property).

#ifndef KPLEX_BASELINES_REVERSE_SEARCH_H_
#define KPLEX_BASELINES_REVERSE_SEARCH_H_

#include <vector>

#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Greedy maximalization: extends `seed` (must be a k-plex) to a maximal
/// k-plex by repeatedly adding the smallest-id compatible vertex.
/// Deterministic; returns sorted ids.
std::vector<VertexId> MaximalizeKPlex(const Graph& graph,
                                      std::vector<VertexId> seed, uint32_t k);

/// Enumerates every maximal k-plex with at least q vertices (q >= 1;
/// no connectivity requirement) by reverse search. Memory grows with
/// the number of solutions (the visited set), which is the method's
/// inherent cost. Returns the number of emitted plexes.
StatusOr<uint64_t> ReverseSearchEnumerate(const Graph& graph, uint32_t k,
                                          uint32_t q, ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_BASELINES_REVERSE_SEARCH_H_
