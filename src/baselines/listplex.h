// ListPlex baseline (Wang et al., WWW 2022), re-implemented from the
// EDBT paper's characterization (Section 2): it pioneered the
// seed-subgraph sub-tasking scheme that this repository's engine also
// uses, but branches with the FaPlexen scheme (Eq (4)-(6)), picks pivots
// by minimum degree only (no saturation tie-break), and applies neither
// upper-bound pruning nor vertex-pair pruning.
//
// Sharing the engine substrate is deliberate: measured differences
// against "Ours" then isolate exactly the algorithmic deltas the paper
// credits for its speedups (pivot rule, Eq (3) bound, R1, R2).

#ifndef KPLEX_BASELINES_LISTPLEX_H_
#define KPLEX_BASELINES_LISTPLEX_H_

#include "core/enumerator.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// The engine configuration that reproduces ListPlex's search behaviour.
EnumOptions ListPlexOptions(uint32_t k, uint32_t q);

/// Enumerates all maximal k-plexes with >= q vertices, ListPlex-style.
StatusOr<EnumResult> ListPlexEnumerate(const Graph& graph, uint32_t k,
                                       uint32_t q, ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_BASELINES_LISTPLEX_H_
