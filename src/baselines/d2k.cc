#include "baselines/d2k.h"

#include "core/branch.h"
#include "core/seed_graph.h"
#include "graph/degeneracy.h"
#include "graph/kcore.h"
#include "util/timer.h"

namespace kplex {
namespace {

EnumOptions D2kOptions(uint32_t k, uint32_t q) {
  EnumOptions options;
  options.k = k;
  options.q = q;
  options.branching = BranchingScheme::kRepickFromC;
  options.upper_bound = UpperBoundMode::kNone;  // pre-dates bounding
  options.pivot_saturation_tiebreak = false;    // simple pivoting
  options.use_subtask_bound_r1 = false;
  options.use_pair_pruning_r2 = false;
  options.use_seed_pruning = true;  // D2K's diameter-2 seed reduction
  return options;
}

}  // namespace

StatusOr<EnumResult> D2kEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                                  ResultSink& sink) {
  const EnumOptions options = D2kOptions(k, q);
  KPLEX_RETURN_IF_ERROR(ValidateOptions(options));
  WallTimer timer;
  EnumResult result;

  const uint32_t core_level = q >= k ? q - k : 0;
  CoreReduction core = ReduceToCore(graph, core_level);
  if (core.graph.NumVertices() == 0) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  const DegeneracyResult degeneracy = ComputeDegeneracy(core.graph);

  // Like FP, D2K runs one undecomposed task per seed over the whole
  // two-hop candidate set — but with no bound-based pruning at all.
  for (uint32_t idx = 0; idx < core.graph.NumVertices(); ++idx) {
    const VertexId seed = degeneracy.order[idx];
    auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy, seed,
                             options, &result.counters);
    if (!sg.has_value()) continue;

    TaskState task = TaskState::MakeEmpty(*sg);
    task.AddToP(*sg, SeedGraph::kSeed);
    task.c = sg->n1_mask;
    task.c.OrWith(sg->n2_mask);
    task.x = sg->fringe_mask;

    BranchEngine engine(*sg, options, sink, result.counters);
    engine.Run(task);
  }

  result.num_plexes = result.counters.outputs;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
