// Reference enumerators — the ground truth for every correctness test.
//
//  * BruteForceMaximalKPlexes: checks all 2^n subsets directly against
//    Definition 3.1; exact for any q >= 1, usable up to n ~ 20.
//  * BkReferenceEnumerate: Algorithm 1 of the paper (the plain
//    Bron-Kerbosch adaptation over the whole graph, no decomposition,
//    no pivoting, no pruning); exact for any q >= 1, usable for small
//    and moderately sized test graphs.
//
// Neither is meant for production mining — they exist so that the fast
// engine and the baselines can be validated against an implementation
// whose correctness is self-evident.

#ifndef KPLEX_BASELINES_BK_NAIVE_H_
#define KPLEX_BASELINES_BK_NAIVE_H_

#include <vector>

#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Exhaustive subset search. Requires graph.NumVertices() <= 25.
/// Results are sorted vertex lists in lexicographic order.
StatusOr<std::vector<std::vector<VertexId>>> BruteForceMaximalKPlexes(
    const Graph& graph, uint32_t k, uint32_t q);

/// Algorithm 1 (Bron-Kerbosch for k-plexes) over the full graph.
/// Emits every maximal k-plex with at least q vertices exactly once.
uint64_t BkReferenceEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                              ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_BASELINES_BK_NAIVE_H_
