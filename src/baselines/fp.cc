#include "baselines/fp.h"

#include "core/branch.h"
#include "core/seed_graph.h"
#include "graph/degeneracy.h"
#include "graph/kcore.h"
#include "util/timer.h"

namespace kplex {
namespace {

EnumOptions FpOptions(uint32_t k, uint32_t q) {
  EnumOptions options;
  options.k = k;
  options.q = q;
  options.branching = BranchingScheme::kRepickFromC;
  options.upper_bound = UpperBoundMode::kFpSorted;
  options.pivot_saturation_tiebreak = false;
  options.use_subtask_bound_r1 = false;  // no sub-tasks at all
  options.use_pair_pruning_r2 = false;
  options.use_seed_pruning = true;
  return options;
}

}  // namespace

StatusOr<EnumResult> FpEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                                 ResultSink& sink) {
  const EnumOptions options = FpOptions(k, q);
  KPLEX_RETURN_IF_ERROR(ValidateOptions(options));
  WallTimer timer;
  EnumResult result;

  const uint32_t core_level = q >= k ? q - k : 0;
  CoreReduction core = ReduceToCore(graph, core_level);
  if (core.graph.NumVertices() == 0) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  const DegeneracyResult degeneracy = ComputeDegeneracy(core.graph);

  for (uint32_t idx = 0; idx < core.graph.NumVertices(); ++idx) {
    const VertexId seed = degeneracy.order[idx];
    auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy, seed,
                             options, &result.counters);
    if (!sg.has_value()) continue;

    // One monolithic task per seed: P = {v_i}, C = V_i \ {v_i}
    // (neighbors *and* two-hop vertices together), X = the fringe.
    TaskState task = TaskState::MakeEmpty(*sg);
    task.AddToP(*sg, SeedGraph::kSeed);
    task.c = sg->n1_mask;
    task.c.OrWith(sg->n2_mask);
    task.x = sg->fringe_mask;

    BranchEngine engine(*sg, options, sink, result.counters);
    engine.Run(task);
  }

  result.num_plexes = result.counters.outputs;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
