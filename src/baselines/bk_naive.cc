#include "baselines/bk_naive.h"

#include <algorithm>
#include <bit>

#include "util/bitset.h"

namespace kplex {
namespace {

// Adjacency as one mask per vertex (brute force path, n <= 25).
std::vector<uint32_t> AdjacencyMasks(const Graph& graph) {
  std::vector<uint32_t> adj(graph.NumVertices(), 0);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) adj[u] |= (uint32_t{1} << v);
  }
  return adj;
}

bool MaskIsKPlex(const std::vector<uint32_t>& adj, uint32_t mask,
                 uint32_t k) {
  for (uint32_t rest = mask; rest != 0; rest &= rest - 1) {
    const int v = std::countr_zero(rest);
    // Non-neighbors within the set, counting v itself.
    const uint32_t nn = static_cast<uint32_t>(std::popcount(mask)) -
                        static_cast<uint32_t>(std::popcount(mask & adj[v]));
    if (nn > k) return false;
  }
  return true;
}

}  // namespace

StatusOr<std::vector<std::vector<VertexId>>> BruteForceMaximalKPlexes(
    const Graph& graph, uint32_t k, uint32_t q) {
  const std::size_t n = graph.NumVertices();
  if (n > 25) {
    return Status::InvalidArgument(
        "brute force supports at most 25 vertices");
  }
  const std::vector<uint32_t> adj = AdjacencyMasks(graph);
  std::vector<std::vector<VertexId>> results;
  const uint32_t all = n == 32 ? ~uint32_t{0}
                               : ((uint32_t{1} << n) - 1);
  for (uint32_t mask = 1; mask != 0 && mask <= all; ++mask) {
    if (static_cast<uint32_t>(std::popcount(mask)) < q) continue;
    if (!MaskIsKPlex(adj, mask, k)) continue;
    bool maximal = true;
    for (uint32_t v = 0; v < n && maximal; ++v) {
      if ((mask >> v) & 1) continue;
      if (MaskIsKPlex(adj, mask | (uint32_t{1} << v), k)) maximal = false;
    }
    if (!maximal) continue;
    std::vector<VertexId> plex;
    for (uint32_t rest = mask; rest != 0; rest &= rest - 1) {
      plex.push_back(static_cast<VertexId>(std::countr_zero(rest)));
    }
    results.push_back(std::move(plex));
  }
  std::sort(results.begin(), results.end());
  return results;
}

namespace {

// Algorithm 1, literal transcription over bitset sets.
class BkReference {
 public:
  BkReference(const Graph& graph, uint32_t k, uint32_t q, ResultSink& sink)
      : k_(k), q_(q), sink_(&sink), n_(graph.NumVertices()) {
    rows_.assign(n_, DynamicBitset(n_));
    for (VertexId u = 0; u < n_; ++u) {
      for (VertexId v : graph.Neighbors(u)) rows_[u].Set(v);
    }
  }

  uint64_t Run() {
    std::vector<VertexId> p;
    DynamicBitset c(n_), x(n_);
    c.SetAll();
    Recurse(p, c, x);
    return emitted_;
  }

 private:
  bool ExtendsToKPlex(const std::vector<VertexId>& p, VertexId v) const {
    // p ∪ {v}: every member within budget.
    std::size_t v_degree = 0;
    for (VertexId u : p) {
      std::size_t u_degree = rows_[u].Test(v) ? 1 : 0;
      if (rows_[u].Test(v)) ++v_degree;
      for (VertexId w : p) {
        if (w != u && rows_[u].Test(w)) ++u_degree;
      }
      if (p.size() + 1 - u_degree > k_) return false;
    }
    return p.size() + 1 - v_degree <= k_;
  }

  void Recurse(std::vector<VertexId>& p, DynamicBitset c, DynamicBitset x) {
    if (c.None() && x.None()) {
      if (p.size() >= q_) {
        std::vector<VertexId> sorted = p;
        std::sort(sorted.begin(), sorted.end());
        ++emitted_;
        sink_->Emit(sorted);
      }
      return;
    }
    for (std::size_t vi = c.FindFirst(); vi != DynamicBitset::kNpos;
         vi = c.FindNext(vi + 1)) {
      const VertexId v = static_cast<VertexId>(vi);
      c.Reset(vi);
      p.push_back(v);
      DynamicBitset c2(n_), x2(n_);
      c.ForEach([&](std::size_t u) {
        if (ExtendsToKPlex(p, static_cast<VertexId>(u))) c2.Set(u);
      });
      x.ForEach([&](std::size_t u) {
        if (ExtendsToKPlex(p, static_cast<VertexId>(u))) x2.Set(u);
      });
      Recurse(p, std::move(c2), std::move(x2));
      p.pop_back();
      x.Set(vi);
    }
  }

  const uint32_t k_;
  const uint32_t q_;
  ResultSink* sink_;
  const std::size_t n_;
  std::vector<DynamicBitset> rows_;
  uint64_t emitted_ = 0;
};

}  // namespace

uint64_t BkReferenceEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                              ResultSink& sink) {
  if (graph.NumVertices() == 0) return 0;
  return BkReference(graph, k, q, sink).Run();
}

}  // namespace kplex
