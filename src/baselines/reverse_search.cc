#include "baselines/reverse_search.h"

#include <algorithm>
#include <deque>
#include <set>

#include "baselines/bk_naive.h"
#include "core/kplex_verify.h"
#include "graph/subgraph.h"

namespace kplex {
namespace {

// Collects results of the input-restricted problem.
class VectorSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    results_.emplace_back(plex.begin(), plex.end());
  }
  std::vector<std::vector<VertexId>>& results() { return results_; }

 private:
  std::vector<std::vector<VertexId>> results_;
};

}  // namespace

std::vector<VertexId> MaximalizeKPlex(const Graph& graph,
                                      std::vector<VertexId> seed,
                                      uint32_t k) {
  std::vector<char> in_plex(graph.NumVertices(), 0);
  for (VertexId v : seed) in_plex[v] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (in_plex[v]) continue;
      seed.push_back(v);
      if (IsKPlex(graph, seed, k)) {
        in_plex[v] = 1;
        grew = true;
      } else {
        seed.pop_back();
      }
    }
  }
  std::sort(seed.begin(), seed.end());
  return seed;
}

StatusOr<uint64_t> ReverseSearchEnumerate(const Graph& graph, uint32_t k,
                                          uint32_t q, ResultSink& sink) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (q < 1) return Status::InvalidArgument("q must be >= 1");
  const std::size_t n = graph.NumVertices();
  uint64_t emitted = 0;
  if (n == 0) return emitted;

  std::set<std::vector<VertexId>> visited;
  std::deque<std::vector<VertexId>> queue;
  auto discover = [&](std::vector<VertexId> plex) {
    auto [it, inserted] = visited.insert(std::move(plex));
    if (inserted) queue.push_back(*it);
  };

  // Seed the walk from every vertex's maximalization. (One seed suffices
  // when the solution graph is connected under the input-restricted
  // neighbor rule; seeding all vertices keeps correctness independent of
  // that connectivity argument at negligible cost.)
  for (VertexId v = 0; v < n; ++v) {
    discover(MaximalizeKPlex(graph, {v}, k));
  }

  while (!queue.empty()) {
    std::vector<VertexId> current = std::move(queue.front());
    queue.pop_front();
    if (current.size() >= q) {
      ++emitted;
      sink.Emit(current);
    }
    // Neighbor solutions: inject each outside vertex, solve the
    // input-restricted problem on G[current ∪ {v}] exactly, and
    // re-maximalize each restricted solution in G.
    std::vector<char> in_current(n, 0);
    for (VertexId u : current) in_current[u] = 1;
    for (VertexId v = 0; v < n; ++v) {
      if (in_current[v]) continue;
      std::vector<VertexId> universe = current;
      universe.push_back(v);
      std::sort(universe.begin(), universe.end());
      InducedSubgraph restricted = ExtractInduced(graph, universe);
      VectorSink restricted_solutions;
      // The restricted instance is tiny (|P| + 1 vertices); the plain
      // Bron-Kerbosch reference solves it exactly for any q.
      BkReferenceEnumerate(restricted.graph, k, /*q=*/1,
                           restricted_solutions);
      for (auto& local : restricted_solutions.results()) {
        std::vector<VertexId> global;
        global.reserve(local.size());
        for (VertexId lv : local) {
          global.push_back(restricted.to_original[lv]);
        }
        discover(MaximalizeKPlex(graph, std::move(global), k));
      }
    }
  }
  return emitted;
}

}  // namespace kplex
