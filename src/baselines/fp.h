// FP baseline (Dai et al., CIKM 2022), re-implemented from the EDBT
// paper's characterization: FP processes every seed vertex's *entire*
// two-hop candidate set in one branch-and-bound task (no S ⊆ N² sub-task
// decomposition — its complexity is O(n^2 γ_k^n) versus the partitioned
// O(n r1^k r2 γ_k^D)), prunes branches with an upper bound whose
// computation requires sorting the candidate set in every recursion, and
// uses no vertex-pair pruning.
//
// FP's exact bound (Lemma 5 of [16]) is not available offline; we
// substitute the admissible support bound of Theorem 5.5 evaluated over
// sorted candidates, which has the same asymptotic per-call cost
// (O(|C| log |C|)) and comparable strength — see DESIGN.md section 4.

#ifndef KPLEX_BASELINES_FP_H_
#define KPLEX_BASELINES_FP_H_

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Enumerates all maximal k-plexes with >= q vertices, FP-style.
StatusOr<EnumResult> FpEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                                 ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_BASELINES_FP_H_
