// D2K-style baseline (Conte et al., KDD 2018; [15] in the paper): the
// first scalable degeneracy-ordered BK adaptation for k-plexes, with
// two-hop seed subgraphs, simple min-degree pivoting and *no* upper
// bounds, no sub-task decomposition and no vertex-pair rules. It is the
// generation of algorithms that ListPlex and FP superseded; kept as an
// additional reference point for downstream comparisons.

#ifndef KPLEX_BASELINES_D2K_H_
#define KPLEX_BASELINES_D2K_H_

#include "core/enumerator.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Enumerates all maximal k-plexes with >= q vertices, D2K-style.
StatusOr<EnumResult> D2kEnumerate(const Graph& graph, uint32_t k, uint32_t q,
                                  ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_BASELINES_D2K_H_
