#include "baselines/listplex.h"

namespace kplex {

EnumOptions ListPlexOptions(uint32_t k, uint32_t q) {
  EnumOptions options;
  options.k = k;
  options.q = q;
  options.branching = BranchingScheme::kFaplexenAlways;
  options.upper_bound = UpperBoundMode::kNone;
  options.pivot_saturation_tiebreak = false;
  options.use_subtask_bound_r1 = false;
  options.use_pair_pruning_r2 = false;
  // ListPlex constructs the same two-hop seed subgraphs and applies
  // common-neighbor reductions during construction.
  options.use_seed_pruning = true;
  return options;
}

StatusOr<EnumResult> ListPlexEnumerate(const Graph& graph, uint32_t k,
                                       uint32_t q, ResultSink& sink) {
  return EnumerateMaximalKPlexes(graph, ListPlexOptions(k, q), sink);
}

}  // namespace kplex
