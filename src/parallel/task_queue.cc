#include "parallel/task_queue.h"

namespace kplex {

void TaskQueue::Push(ParallelTask&& task) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_front(std::move(task));
}

bool TaskQueue::TryPop(ParallelTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

bool TaskQueue::TrySteal(ParallelTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.back());
  tasks_.pop_back();
  return true;
}

bool TaskQueue::Empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.empty();
}

std::size_t TaskQueue::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace kplex
