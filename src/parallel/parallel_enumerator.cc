#include "parallel/parallel_enumerator.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <memory>
#include <thread>
#include <vector>

#include "core/branch.h"
#include "core/reduction.h"
#include "core/seed_graph.h"
#include "core/subtask.h"
#include "obs/progress_throttle.h"
#include "parallel/task_queue.h"
#include "util/timer.h"

namespace kplex {
namespace {

// Per-thread state is cache-line padded: the engine bumps counters on
// every Branch() call, and unpadded adjacent counters of two workers
// ping-pong a shared line hard enough to erase the parallel speedup.
struct alignas(128) PaddedCounters {
  AlgoCounters value;
};

struct alignas(128) PaddedQueue {
  TaskQueue queue;
};

class ParallelRunner {
 public:
  ParallelRunner(const Graph& reduced, std::vector<VertexId> to_original,
                 DegeneracyResult degeneracy, const EnumOptions& options,
                 const ParallelOptions& parallel_options, ResultSink& sink)
      : graph_(reduced), to_original_(std::move(to_original)),
        degeneracy_(std::move(degeneracy)), options_(options), sink_(sink),
        num_threads_(parallel_options.num_threads > 0
                         ? parallel_options.num_threads
                         : std::max(1u, std::thread::hardware_concurrency())),
        timeout_nanos_(parallel_options.timeout_ms > 0
                           ? static_cast<int64_t>(
                                 parallel_options.timeout_ms * 1e6)
                           : 0),
        // Sharded mining: the stage loop walks only this shard's slice
        // [range_begin_, range_end_) of the canonical seed order, so
        // disjoint ranges partition the result set exactly as in the
        // sequential engine (docs/SHARDING.md).
        range_begin_(static_cast<uint32_t>(std::min<uint64_t>(
            options.seed_range.begin, reduced.NumVertices()))),
        range_end_(static_cast<uint32_t>(std::min<uint64_t>(
            options.seed_range.end, reduced.NumVertices()))),
        seeds_per_stage_(ResolveBatch(parallel_options.seeds_per_stage,
                                      range_end_ - range_begin_,
                                      num_threads_)),
        queues_(num_threads_), counters_(num_threads_),
        barrier_(static_cast<std::ptrdiff_t>(num_threads_),
                 StageReset{this}) {}

  AlgoCounters Run() {
    std::vector<std::thread> workers;
    workers.reserve(num_threads_);
    for (uint32_t t = 0; t < num_threads_; ++t) {
      workers.emplace_back([this, t] { WorkerMain(t); });
    }
    for (auto& w : workers) w.join();
    AlgoCounters merged;
    for (const auto& c : counters_) merged.MergeFrom(c.value);
    return merged;
  }

  /// True when any worker skipped or aborted work due to options.cancel.
  bool observed_cancel() const {
    return observed_cancel_.load(std::memory_order_relaxed);
  }

  /// True when any engine hit options.max_results. Workers then stop
  /// picking up work, but tasks already executing still finish, so the
  /// global output count may overshoot max_results (callers see
  /// stopped_early and can truncate).
  bool stopped_early() const {
    return stopped_early_.load(std::memory_order_relaxed);
  }

 private:
  struct StageReset {
    ParallelRunner* runner;
    void operator()() noexcept {
      runner->OnStageComplete();
      runner->populate_done_.store(0, std::memory_order_release);
    }
  };

  // Runs on the barrier-completion thread while every worker is blocked
  // at the barrier, so reading the per-thread counters is race-free.
  void OnStageComplete() noexcept {
    ++stages_done_;
    if (!options_.progress) return;
    // After a cancel the remaining stages skip their seeds; reporting
    // them as done would show a cancelled run reaching 100%.
    if (observed_cancel_.load(std::memory_order_relaxed)) return;
    const uint64_t n = range_end_ - range_begin_;
    const uint64_t done = std::min<uint64_t>(
        static_cast<uint64_t>(stages_done_) * num_threads_ *
            seeds_per_stage_, n);
    if (!progress_throttle_.ShouldEmit(done, n)) return;
    uint64_t outputs = 0;
    for (const auto& c : counters_) outputs += c.value.outputs;
    options_.progress(done, n, outputs);
  }

  // Checks the shared flag and records an observation: only a run that
  // actually skipped or aborted work reports cancelled (a flag flipped
  // after the last task finished must not taint a complete result).
  bool Cancelled() {
    if (options_.cancel == nullptr ||
        !options_.cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    observed_cancel_.store(true, std::memory_order_relaxed);
    return true;
  }

  static uint32_t ResolveBatch(uint32_t requested, std::size_t n,
                               uint32_t threads) {
    if (requested > 0) return requested;
    // Amortize the stage barrier over enough seeds that per-stage work
    // dwarfs synchronization, while bounding live seed subgraphs.
    const uint64_t target_stages = 64;
    uint64_t batch = n / (static_cast<uint64_t>(threads) * target_stages);
    if (batch < 1) batch = 1;
    if (batch > 32) batch = 32;
    return static_cast<uint32_t>(batch);
  }

  void WorkerMain(uint32_t tid) {
    const uint32_t n = range_end_ - range_begin_;
    const uint32_t per_stage = num_threads_ * seeds_per_stage_;
    const uint32_t stages = (n + per_stage - 1) / per_stage;
    for (uint32_t stage = 0; stage < stages; ++stage) {
      for (uint32_t b = 0; b < seeds_per_stage_; ++b) {
        const uint32_t offset = stage * per_stage + b * num_threads_ + tid;
        if (offset >= n) break;
        const uint32_t seed_index = range_begin_ + offset;
        // Only consult the cancel flag when there is a seed to skip —
        // an observation with no work left would taint a complete run.
        if (Cancelled() || stopped_early()) break;
        PopulateSeed(tid, seed_index);
      }
      // Draining starts as soon as this worker finishes its own builds —
      // other workers' fresh tasks become stealable while stragglers are
      // still constructing their seed subgraphs (no populate barrier).
      populate_done_.fetch_add(1, std::memory_order_acq_rel);
      DrainStage(tid);
      barrier_.arrive_and_wait();  // stage complete; resets populate_done_
    }
  }

  void PopulateSeed(uint32_t tid, uint32_t seed_index) {
    const VertexId seed = degeneracy_.order[seed_index];
    auto built = BuildSeedGraph(graph_, to_original_, degeneracy_, seed,
                                options_, &counters_[tid].value);
    if (!built.has_value()) return;
    auto sg = std::make_shared<const SeedGraph>(std::move(*built));
    EnumerateSubtasks(*sg, options_, counters_[tid].value,
                      [&](TaskState&& state) {
                        queues_[tid].queue.Push(
                            ParallelTask{sg, std::move(state)});
                      });
  }

  void DrainStage(uint32_t tid) {
    ParallelTask task;
    while (true) {
      // The active counter covers the window between the pop and the end
      // of execution so that spawned sub-tasks are never missed by the
      // termination check below.
      active_.fetch_add(1, std::memory_order_acq_rel);
      if (PopOrSteal(tid, task)) {
        // On cancellation or a hit result cap, pending tasks are popped
        // and dropped so the queues empty out and the termination
        // condition fires quickly.
        if (!Cancelled() && !stopped_early()) Execute(tid, std::move(task));
        active_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      active_.fetch_sub(1, std::memory_order_acq_rel);
      if (populate_done_.load(std::memory_order_acquire) == num_threads_ &&
          active_.load(std::memory_order_acquire) == 0 && AllEmpty()) {
        return;
      }
      std::this_thread::yield();
    }
  }

  bool PopOrSteal(uint32_t tid, ParallelTask& out) {
    if (queues_[tid].queue.TryPop(out)) return true;
    for (uint32_t off = 1; off < num_threads_; ++off) {
      const uint32_t victim = (tid + off) % num_threads_;
      if (queues_[victim].queue.TrySteal(out)) return true;
    }
    return false;
  }

  void Execute(uint32_t tid, ParallelTask&& task) {
    BranchEngine engine(*task.seed_graph, options_, sink_,
                        counters_[tid].value);
    if (timeout_nanos_ > 0) {
      // t0 is the moment execution starts: the timeout bounds a task's
      // *processing* time (the straggler criterion), not its queue wait.
      const int64_t deadline = WallTimer::NowNanos() + timeout_nanos_;
      auto seed_graph = task.seed_graph;
      engine.SetTaskTimeout(deadline, [this, tid, seed_graph](
                                          TaskState&& state) {
        queues_[tid].queue.Push(ParallelTask{seed_graph, std::move(state)});
      });
    }
    engine.Run(task.state);
    if (engine.cancelled()) {
      observed_cancel_.store(true, std::memory_order_relaxed);
    }
    if (engine.stopped_early()) {
      stopped_early_.store(true, std::memory_order_relaxed);
    }
  }

  bool AllEmpty() const {
    for (const auto& padded : queues_) {
      if (!padded.queue.Empty()) return false;
    }
    return true;
  }

  const Graph& graph_;
  const std::vector<VertexId> to_original_;
  const DegeneracyResult degeneracy_;
  const EnumOptions& options_;
  ResultSink& sink_;
  const uint32_t num_threads_;
  const int64_t timeout_nanos_;
  const uint32_t range_begin_;  // clamped shard slice of the seed order
  const uint32_t range_end_;
  const uint32_t seeds_per_stage_;

  std::vector<PaddedQueue> queues_;
  std::vector<PaddedCounters> counters_;
  std::atomic<uint32_t> active_{0};
  std::atomic<uint32_t> populate_done_{0};
  std::atomic<bool> observed_cancel_{false};
  std::atomic<bool> stopped_early_{false};
  // Only the barrier-completion thread touches it (one at a time),
  // matching the throttle's single-threaded contract.
  ProgressThrottle progress_throttle_{options_.progress_min_interval_ms};
  uint32_t stages_done_ = 0;  // touched only at barrier completion
  std::barrier<StageReset> barrier_;
};

}  // namespace

StatusOr<EnumResult> ParallelEnumerateMaximalKPlexes(
    const Graph& graph, const EnumOptions& options,
    const ParallelOptions& parallel_options, ResultSink& sink) {
  KPLEX_RETURN_IF_ERROR(ValidateOptions(options));
  WallTimer timer;
  EnumResult result;

  PreparedReduction prepared = PrepareReduction(graph, options,
                                                result.counters);
  CoreReduction& core = prepared.core;
  result.total_seeds = core.graph.NumVertices();
  if (core.graph.NumVertices() == 0) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  ParallelRunner runner(core.graph, std::move(core.to_original),
                        std::move(prepared.ordering), options,
                        parallel_options, sink);
  result.counters.MergeFrom(runner.Run());
  result.cancelled = runner.observed_cancel();
  result.stopped_early = runner.stopped_early();
  result.num_plexes = result.counters.outputs;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
