// Per-thread task queues of the staged parallel engine (Section 6,
// Figure 6). Each worker pushes and pops its own queue from the front
// (depth-first locality: freshly decomposed straggler pieces reuse the
// seed subgraph that is hot in cache) while idle workers steal from the
// back (coarse, older tasks — classic work-stealing discipline).

#ifndef KPLEX_PARALLEL_TASK_QUEUE_H_
#define KPLEX_PARALLEL_TASK_QUEUE_H_

#include <deque>
#include <memory>
#include <mutex>

#include "core/seed_graph.h"
#include "core/task_state.h"

namespace kplex {

/// A unit of parallel work: a branch-and-bound state pinned to its
/// (immutable, shared) seed subgraph.
struct ParallelTask {
  std::shared_ptr<const SeedGraph> seed_graph;
  TaskState state;
};

class TaskQueue {
 public:
  void Push(ParallelTask&& task);

  /// Owner-side pop (front). Returns false when empty.
  bool TryPop(ParallelTask& out);

  /// Thief-side pop (back). Returns false when empty.
  bool TrySteal(ParallelTask& out);

  bool Empty() const;
  std::size_t Size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<ParallelTask> tasks_;
};

}  // namespace kplex

#endif  // KPLEX_PARALLEL_TASK_QUEUE_H_
