// Task-based parallel enumeration (Section 6). The seed vertices are
// processed in stages of M (= thread count): in stage j, worker t builds
// the seed subgraph of seed vertex jM + t, expands its sub-tasks into a
// thread-local queue, drains its own queue first (cache locality on the
// shared seed subgraph) and steals from other workers when idle (load
// balance). A straggler task that runs longer than `timeout_ms`
// re-packages each pending recursive call as a fresh queue task instead
// of executing it, so no single task can serialize a stage.

#ifndef KPLEX_PARALLEL_PARALLEL_ENUMERATOR_H_
#define KPLEX_PARALLEL_PARALLEL_ENUMERATOR_H_

#include <cstdint>

#include "core/enumerator.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

struct ParallelOptions {
  /// Worker threads (M). 0 means std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  /// Straggler timeout tau_time in milliseconds; <= 0 disables the
  /// decomposition (tasks then run to completion as in plain ListPlex/FP
  /// style parallelization). The paper's default is 0.1 ms.
  double timeout_ms = 0.1;
  /// Seeds each worker expands per stage. The paper's Figure 6 uses 1
  /// (M seed subgraphs per stage); batching several amortizes the stage
  /// barrier when seed subgraphs are small and cheap. 0 picks a value
  /// automatically from the graph size. Memory grows with the batch
  /// (that many seed subgraphs live per stage), so the auto value is
  /// capped.
  uint32_t seeds_per_stage = 0;
};

/// Parallel counterpart of EnumerateMaximalKPlexes. The sink must be
/// thread-safe (all sinks in core/sink.h are).
StatusOr<EnumResult> ParallelEnumerateMaximalKPlexes(
    const Graph& graph, const EnumOptions& options,
    const ParallelOptions& parallel_options, ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_PARALLEL_PARALLEL_ENUMERATOR_H_
