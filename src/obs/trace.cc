#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "util/logging.h"
#include "util/timer.h"

namespace kplex {
namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

uint64_t NextTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void RecordSpan(
    uint64_t trace_id, const char* name, double seconds, Histogram* latency,
    const std::vector<std::pair<const char*, std::string>>& attrs) {
  if (latency != nullptr) latency->Observe(seconds);
  if (!TraceEnabled()) return;
  std::string line;
  line.reserve(128);
  char head[128];
  std::snprintf(head, sizeof(head),
                "{\"ts\":%.6f,\"span\":\"%s\","
                "\"trace\":\"0x%016llx\",\"us\":%.1f",
                internal::WallClockSeconds(), name,
                static_cast<unsigned long long>(trace_id), seconds * 1e6);
  line = head;
  for (const auto& attr : attrs) {
    line += ",\"";
    internal::AppendJsonEscaped(&line, attr.first);
    line += "\":\"";
    internal::AppendJsonEscaped(&line, attr.second);
    line += "\"";
  }
  line += "}";
  internal::EmitRawLine(line);
}

TraceSpan::TraceSpan(uint64_t trace_id, const char* name, Histogram* latency)
    : trace_id_(trace_id),
      name_(name),
      latency_(latency),
      start_nanos_(WallTimer::NowNanos()) {}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::AddAttr(const char* key, std::string value) {
  attrs_.emplace_back(key, std::move(value));
}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  const double seconds =
      static_cast<double>(WallTimer::NowNanos() - start_nanos_) * 1e-9;
  RecordSpan(trace_id_, name_, seconds, latency_, attrs_);
}

}  // namespace kplex
