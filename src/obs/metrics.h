#ifndef KPLEX_OBS_METRICS_H_
#define KPLEX_OBS_METRICS_H_

// Process-wide observability: named counters, gauges, and fixed-bucket
// latency histograms behind a single registry.
//
// Design constraints, in order:
//   1. Hot-path writes (Counter::Increment, Histogram::Observe) must be
//      lock-free and safe from any thread: dispatcher workers, the TCP
//      accept loop, and parallel enumeration all write concurrently.
//      Every instrument is a handful of relaxed atomics.
//   2. Instrument references are stable for the process lifetime.
//      `MetricsRegistry::Get*` takes the registry mutex once; callers
//      cache the returned reference (commonly in a function-local
//      static) and never touch the map again.
//   3. Scrapes are approximate by design. `Snapshot()` reads each atomic
//      independently, so a histogram's count/sum/buckets may be torn by
//      a concurrent Observe. Monitoring tolerates off-by-one; the hot
//      path not stalling is worth more than a consistent cut.
//
// Defining KPLEX_OBS_NOOP compiles every write into nothing, which is
// how the bench suite prices the instrumentation (see bench_micro and
// docs/OBSERVABILITY.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kplex {

// Monotonically increasing event count. Relaxed atomics: totals are
// read by scrapes, never used for synchronization.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
#ifndef KPLEX_OBS_NOOP
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed level (queue depth, resident bytes).
class Gauge {
 public:
  void Set(int64_t value) {
#ifndef KPLEX_OBS_NOOP
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  void Add(int64_t delta) {
#ifndef KPLEX_OBS_NOOP
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: ascending upper bounds plus an implicit +Inf
// overflow bucket. Observe is two relaxed fetch_adds and one CAS loop
// (the double-valued sum); percentiles are linear interpolation within
// the covering bucket, computed at scrape time from the bucket counts.
class Histogram {
 public:
  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  // Approximate quantile in [0, 1]. Values landing in the overflow
  // bucket clamp to the largest finite bound; an empty histogram
  // reports 0.
  double Percentile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // ascending; buckets_ has one extra slot
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit-cast double, CAS-accumulated
};

// Upper bounds in seconds spanning 1 microsecond to 1 minute, roughly
// 1-2.5-5 per decade. Every latency histogram in the tree uses these
// unless it asks for its own.
const std::vector<double>& DefaultLatencySecondsBounds();

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;     // finite upper bounds
  std::vector<uint64_t> buckets;  // per-bucket counts; bounds.size() + 1
};

// One scrape of the whole registry, sorted by name within each kind.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  std::size_t SeriesCount() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

// The process-wide instrument table. Get* registers on first use and
// returns the same instrument for the same name forever after; names
// follow the prometheus convention (snake_case, `_total` suffix on
// counters, `_seconds`/`_bytes` units).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` applies only on first registration; empty means
  // DefaultLatencySecondsBounds().
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument in place. References stay valid — this is
  // for test isolation, not for production use. Build-info gauges
  // (kplex_simd_dispatch) are re-published afterwards on the Global()
  // registry: they describe the process, not a run.
  void Reset();

 private:
  // Registers process-constant gauges (e.g. kplex_simd_dispatch, the
  // bitset-kernel ISA selected at startup). Called once from Global().
  void PublishBuildInfo();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Human-oriented one-line-per-series table; also the text-protocol wire
// body for the `metrics` verb:
//   counter <name> <value>
//   gauge <name> <value>
//   histogram <name> count=<n> sum=<s> p50=<s> p95=<s> p99=<s>
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

// Prometheus text exposition format (# TYPE comments, cumulative
// `_bucket{le=...}` series, `_sum` and `_count`).
std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot);

}  // namespace kplex

#endif  // KPLEX_OBS_METRICS_H_
