#ifndef KPLEX_OBS_TRACE_H_
#define KPLEX_OBS_TRACE_H_

// Per-query tracing. Every query/job/shard carries a trace id; the
// pipeline stages it passes through (cache lookup, catalog load,
// enumeration, queue wait, serialization, shard round trips) each
// record a span. A span always feeds its duration into a latency
// histogram; when tracing is enabled (--trace) it additionally emits
// one structured JSON line to stderr:
//
//   {"ts":1754650000.123456,"span":"enumerate","trace":"0x000000000000002a",
//    "us":1234.5,"graph":"kc","k":"2"}
//
// Emission goes through the logging mutex so span lines and --log-json
// log lines interleave without tearing. The disabled path is one
// relaxed atomic load plus a histogram observe — cheap enough to leave
// compiled in everywhere.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace kplex {

/// Turns span emission on or off process-wide (default off). Histograms
/// are fed either way.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

/// Allocates a fresh nonzero trace id. Ids are process-local and
/// monotonic; they exist to correlate span lines, not to be globally
/// unique.
uint64_t NextTraceId();

/// Records one completed span: observes `seconds` into `latency` (when
/// non-null) and, if tracing is enabled, emits the JSON span line.
/// `attrs` are extra string key/value pairs appended to the line.
void RecordSpan(
    uint64_t trace_id, const char* name, double seconds,
    Histogram* latency = nullptr,
    const std::vector<std::pair<const char*, std::string>>& attrs = {});

/// RAII sugar over RecordSpan: times from construction to End() (or the
/// destructor, whichever comes first).
class TraceSpan {
 public:
  TraceSpan(uint64_t trace_id, const char* name,
            Histogram* latency = nullptr);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  void AddAttr(const char* key, std::string value);
  void End();

 private:
  uint64_t trace_id_;
  const char* name_;
  Histogram* latency_;
  int64_t start_nanos_;
  bool ended_ = false;
  std::vector<std::pair<const char*, std::string>> attrs_;
};

}  // namespace kplex

#endif  // KPLEX_OBS_TRACE_H_
