#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/bitset_kernels.h"

namespace kplex {
namespace {

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t DoubleToBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Shortest-ish decimal form; metrics values do not need full
// round-trip precision, they need to be readable and stable.
std::string CompactDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
#ifndef KPLEX_OBS_NOOP
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleToBits(BitsToDouble(observed) + value),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
#else
  (void)value;
#endif
}

double Histogram::Sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Percentile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double next = cumulative + static_cast<double>(in_bucket);
    if (next >= target) {
      if (i == bounds_.size()) {
        // Overflow bucket has no upper bound: clamp to the largest
        // finite bound (or 0 for a bound-less histogram).
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          (target - cumulative) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::min(std::max(fraction, 0.0), 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

const std::vector<double>& DefaultLatencySecondsBounds() {
  static const std::vector<double> kBounds = {
      1e-6,   2.5e-6, 5e-6, 1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3, 1e-2,   2.5e-2, 5e-2, 1e-1,
      2.5e-1, 5e-1,   1.0,  2.5,    5.0,    10.0, 30.0, 60.0};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->PublishBuildInfo();
    return r;
  }();
  return *registry;
}

void MetricsRegistry::PublishBuildInfo() {
  // Which bitset kernel table dispatch selected at startup:
  // 0 = portable word loops, 1 = AVX2, 2 = NEON. Constant for the
  // process lifetime (the KPLEX_SIMD env override is read once).
  GetGauge("kplex_simd_dispatch")
      .Set(static_cast<int64_t>(kernels::DispatchedLevel()));
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencySecondsBounds();
    slot.reset(new Histogram(std::move(bounds)));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snapshot.counters.push_back({entry.first, entry.second->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snapshot.gauges.push_back({entry.first, entry.second->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    const Histogram& histogram = *entry.second;
    HistogramSample sample;
    sample.name = entry.first;
    sample.count = histogram.Count();
    sample.sum = histogram.Sum();
    sample.p50 = histogram.Percentile(0.50);
    sample.p95 = histogram.Percentile(0.95);
    sample.p99 = histogram.Percentile(0.99);
    sample.bounds = histogram.bounds();
    sample.buckets.reserve(sample.bounds.size() + 1);
    for (std::size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.buckets.push_back(histogram.BucketCount(i));
    }
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) {
    entry.second->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& entry : gauges_) {
    entry.second->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& entry : histograms_) {
    Histogram& histogram = *entry.second;
    for (std::size_t i = 0; i <= histogram.bounds_.size(); ++i) {
      histogram.buckets_[i].store(0, std::memory_order_relaxed);
    }
    histogram.count_.store(0, std::memory_order_relaxed);
    histogram.sum_bits_.store(0, std::memory_order_relaxed);
  }
  if (this == &Global()) {
    // Build-info gauges describe the process, not a run; re-publish so
    // a test-suite Reset() does not wipe them.
    for (auto& entry : gauges_) {
      if (entry.first == "kplex_simd_dispatch") {
        entry.second->value_.store(
            static_cast<int64_t>(kernels::DispatchedLevel()),
            std::memory_order_relaxed);
      }
    }
  }
}

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& counter : snapshot.counters) {
    out << "counter " << counter.name << ' ' << counter.value << '\n';
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    out << "gauge " << gauge.name << ' ' << gauge.value << '\n';
  }
  for (const HistogramSample& histogram : snapshot.histograms) {
    out << "histogram " << histogram.name << " count=" << histogram.count
        << " sum=" << CompactDouble(histogram.sum)
        << " p50=" << CompactDouble(histogram.p50)
        << " p95=" << CompactDouble(histogram.p95)
        << " p99=" << CompactDouble(histogram.p99) << '\n';
  }
  return out.str();
}

std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& counter : snapshot.counters) {
    out << "# TYPE " << counter.name << " counter\n"
        << counter.name << ' ' << counter.value << '\n';
  }
  for (const GaugeSample& gauge : snapshot.gauges) {
    out << "# TYPE " << gauge.name << " gauge\n"
        << gauge.name << ' ' << gauge.value << '\n';
  }
  for (const HistogramSample& histogram : snapshot.histograms) {
    out << "# TYPE " << histogram.name << " histogram\n";
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += histogram.buckets[i];
      out << histogram.name << "_bucket{le=\""
          << CompactDouble(histogram.bounds[i]) << "\"} " << cumulative
          << '\n';
    }
    cumulative += histogram.buckets.empty() ? 0 : histogram.buckets.back();
    out << histogram.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << histogram.name << "_sum " << CompactDouble(histogram.sum) << '\n';
    out << histogram.name << "_count " << histogram.count << '\n';
  }
  return out.str();
}

}  // namespace kplex
