#ifndef KPLEX_OBS_PROGRESS_THROTTLE_H_
#define KPLEX_OBS_PROGRESS_THROTTLE_H_

// Rate limiter for the EnumOptions::progress hook. On tiny seeds the
// sequential enumerator would otherwise invoke the hook per seed —
// thousands of calls per second into whatever gauge or UI the caller
// wired up. The throttle lets one invocation through per configured
// interval and always lets the final (done == total) invocation
// through, so the 100% update is never lost. Suppressed invocations
// are counted in kplex_enum_progress_suppressed_total.
//
// Single-threaded by design: each enumeration run owns its throttle
// (the sequential seed loop and the parallel stage barrier both invoke
// progress from one thread at a time).

#include <cstdint>

#include "obs/metrics.h"
#include "util/timer.h"

namespace kplex {

class ProgressThrottle {
 public:
  /// `min_interval_ms` <= 0 disables throttling entirely.
  explicit ProgressThrottle(double min_interval_ms)
      : min_interval_nanos_(min_interval_ms <= 0.0
                                ? 0
                                : static_cast<int64_t>(min_interval_ms *
                                                       1e6)) {}

  /// True when this invocation should reach the hook. The first and the
  /// final (done == total) invocations always pass.
  bool ShouldEmit(uint64_t done, uint64_t total) {
    if (min_interval_nanos_ == 0 || done >= total) return true;
    const int64_t now = WallTimer::NowNanos();
    if (last_emit_nanos_ == 0 || now - last_emit_nanos_ >=
                                     min_interval_nanos_) {
      last_emit_nanos_ = now;
      return true;
    }
    SuppressedCounter().Increment();
    return false;
  }

 private:
  static Counter& SuppressedCounter() {
    static Counter& counter = MetricsRegistry::Global().GetCounter(
        "kplex_enum_progress_suppressed_total");
    return counter;
  }

  int64_t min_interval_nanos_;
  int64_t last_emit_nanos_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_OBS_PROGRESS_THROTTLE_H_
