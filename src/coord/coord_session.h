// CoordSession: the wire adapter of the coordinator daemon. One
// session per connection (the TcpServer's session factory builds
// them), speaking the same v5 text/framed grammar as a worker session
// but dispatching to a shared Coordinator instead of a ServiceApi:
//
//   mine QUERY        run a coordinated mine synchronously (submit +
//                     wait; the response is a normal mine verdict, so
//                     `kplex_cli mine --coordinator` reuses the plain
//                     remote-mine client path unchanged)
//   submit QUERY      enqueue a coordinated mine, return its job id
//   wait ID           block until the coordinated job is terminal
//   jobs              list every coordinated job
//   register H:P      add (or revive) a worker endpoint
//   heartbeat ID      worker liveness refresh
//   drain ID          graceful worker leave
//   workers           the worker roster
//   metrics [FMT]     the daemon's metrics registry
//   hello/help/quit   as on a worker
//
// Everything else (load, mineshard, plan, cancel, stats, ...) is
// refused with a structured InvalidArgument naming the daemon — a
// coordinator schedules work, it does not hold graphs.
//
// Disconnects do NOT cancel coordinated jobs: a job spans every
// worker, other clients may be waiting on it, and a submitter that
// reconnects can `wait` for it — so CancelOutstandingJobs is a no-op.

#ifndef KPLEX_COORD_COORD_SESSION_H_
#define KPLEX_COORD_COORD_SESSION_H_

#include <memory>
#include <ostream>
#include <string>

#include "coord/coordinator.h"
#include "service/protocol.h"
#include "service/wire_session.h"

namespace kplex {

class CoordSession : public WireSession {
 public:
  CoordSession(std::ostream& out, std::shared_ptr<Coordinator> coordinator);

  bool ExecuteLine(const std::string& line) override;
  WireMode mode() const override { return mode_; }
  void CancelOutstandingJobs() override {}

  uint64_t errors() const { return errors_; }

 private:
  bool Dispatch(const Request& request);
  ResponsePayload Execute(const RequestPayload& payload);
  void Fail(const Status& status, uint64_t request_id = 0);

  std::ostream& out_;
  std::shared_ptr<Coordinator> coordinator_;
  WireMode mode_ = WireMode::kText;
  uint64_t errors_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_COORD_COORD_SESSION_H_
