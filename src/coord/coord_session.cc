#include "coord/coord_session.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "service/dispatcher.h"

namespace kplex {
namespace {

/// Shapes a coordinated job as the dispatcher JobInfo the shared
/// response formatters (and the remote-mine client decoders) already
/// understand: the merged totals land in a synthesized QueryResult
/// covering the whole seed space.
JobInfo ToJobInfo(const CoordJobInfo& job) {
  JobInfo info;
  info.id = job.id;
  info.request = job.query;
  if (job.state == "done") {
    info.state = JobState::kDone;
    info.started = true;
  } else if (job.state == "failed") {
    info.state = JobState::kFailed;
    info.started = true;
    info.status = job.status;
  } else if (job.state == "running") {
    info.state = JobState::kRunning;
    info.started = true;
  } else {
    info.state = JobState::kQueued;
  }
  QueryResult& result = info.result;
  result.num_plexes = job.num_plexes;
  result.max_plex_size = static_cast<std::size_t>(job.max_plex_size);
  result.fingerprint = job.fingerprint;
  result.fingerprint_xor = job.fingerprint_xor;
  result.total_seeds = job.total_seeds;
  result.covered_begin = 0;
  result.covered_end = static_cast<uint32_t>(job.total_seeds);
  result.seconds = job.seconds;
  result.compute_seconds = job.seconds;
  return info;
}

ErrorResponse NotACoordinatorVerb(const char* verb) {
  return ErrorResponse{Status::InvalidArgument(
      std::string("'") + verb +
      "' is not a coordinator command; this endpoint schedules work "
      "across workers (connect to a `serve --listen` worker for it)")};
}

}  // namespace

CoordSession::CoordSession(std::ostream& out,
                           std::shared_ptr<Coordinator> coordinator)
    : out_(out), coordinator_(std::move(coordinator)) {}

void CoordSession::Fail(const Status& status, uint64_t request_id) {
  ++errors_;
  if (mode_ == WireMode::kText) {
    out_ << "error: " << status.ToString() << "\n";
  } else {
    Response response;
    response.request_id = request_id;
    response.payload = ErrorResponse{status};
    out_ << FormatFramedResponse(response) << "\n";
  }
}

bool CoordSession::ExecuteLine(const std::string& line) {
  if (mode_ == WireMode::kText) {
    if (IsBlankOrComment(line)) return true;
    auto request = ParseTextRequest(line);
    if (!request.ok()) {
      Fail(request.status());
      return true;
    }
    return Dispatch(*request);
  }
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
  uint64_t error_id = 0;
  auto request = ParseFramedRequest(line, &error_id);
  if (!request.ok()) {
    Fail(request.status(), error_id);
    return true;
  }
  return Dispatch(*request);
}

bool CoordSession::Dispatch(const Request& request) {
  // Match the worker session's quit shape: silent close in text mode,
  // a bye frame in framed mode.
  if (std::holds_alternative<QuitRequest>(request.payload) &&
      mode_ == WireMode::kText) {
    return false;
  }
  Response response;
  response.request_id = request.id;
  response.payload = Execute(request.payload);
  if (std::holds_alternative<ErrorResponse>(response.payload)) ++errors_;
  if (const auto* hello = std::get_if<HelloResponse>(&response.payload)) {
    if (hello->mode.has_value()) mode_ = *hello->mode;
  }
  if (mode_ == WireMode::kText) {
    FormatTextResponse(response, out_);
  } else {
    out_ << FormatFramedResponse(response) << "\n";
  }
  return !std::holds_alternative<ByeResponse>(response.payload);
}

ResponsePayload CoordSession::Execute(const RequestPayload& payload) {
  if (const auto* hello = std::get_if<HelloRequest>(&payload)) {
    if (hello->version == 0) {
      return ErrorResponse{Status::InvalidArgument(
          "unsupported protocol version 0 (this daemon speaks 1.." +
          std::to_string(kProtocolVersion) + ")")};
    }
    HelloResponse response;
    response.version = std::min(hello->version, kProtocolVersion);
    response.mode = hello->mode;
    return response;
  }
  if (const auto* mine = std::get_if<MineRequest>(&payload)) {
    auto id = coordinator_->Submit(mine->query);
    if (!id.ok()) return ErrorResponse{id.status()};
    auto job = coordinator_->Wait(*id);
    if (!job.ok()) return ErrorResponse{job.status()};
    return MineResponse{ToJobInfo(*job)};
  }
  if (const auto* submit = std::get_if<SubmitRequest>(&payload)) {
    auto id = coordinator_->Submit(submit->query);
    if (!id.ok()) return ErrorResponse{id.status()};
    return SubmitResponse{*id, submit->query};
  }
  if (const auto* wait = std::get_if<WaitRequest>(&payload)) {
    if (!wait->job.has_value()) {
      return ErrorResponse{Status::InvalidArgument(
          "the coordinator needs an explicit job id: wait ID")};
    }
    auto job = coordinator_->Wait(*wait->job);
    if (!job.ok()) return ErrorResponse{job.status()};
    return WaitResponse{ToJobInfo(*job)};
  }
  if (std::holds_alternative<JobsRequest>(payload)) {
    JobsResponse response;
    for (const CoordJobInfo& job : coordinator_->Jobs()) {
      response.jobs.push_back(ToJobInfo(job));
    }
    return response;
  }
  if (const auto* metrics = std::get_if<MetricsRequest>(&payload)) {
    if (!metrics->format.empty() && metrics->format != "table" &&
        metrics->format != "prom") {
      return ErrorResponse{Status::InvalidArgument(
          "unknown metrics format '" + metrics->format +
          "' (expected table or prom)")};
    }
    return MetricsResponse{metrics->format,
                           MetricsRegistry::Global().Snapshot()};
  }
  if (const auto* join = std::get_if<RegisterRequest>(&payload)) {
    auto id = coordinator_->AddWorker(join->endpoint);
    if (!id.ok()) return ErrorResponse{id.status()};
    return WorkerAckResponse{*id, "idle"};
  }
  if (const auto* beat = std::get_if<HeartbeatRequest>(&payload)) {
    Status alive = coordinator_->Heartbeat(beat->worker);
    if (!alive.ok()) return ErrorResponse{alive};
    auto record = [&]() -> std::string {
      for (const WorkerRecord& worker : coordinator_->Workers()) {
        if (worker.id == beat->worker) return WorkerStateName(worker.state);
      }
      return "idle";
    }();
    return WorkerAckResponse{beat->worker, record};
  }
  if (const auto* drain = std::get_if<DrainRequest>(&payload)) {
    Status draining = coordinator_->Drain(drain->worker);
    if (!draining.ok()) return ErrorResponse{draining};
    return WorkerAckResponse{drain->worker, "draining"};
  }
  if (std::holds_alternative<WorkersRequest>(payload)) {
    WorkersResponse response;
    for (const WorkerRecord& worker : coordinator_->Workers()) {
      WorkerInfo info;
      info.id = worker.id;
      info.endpoint = worker.endpoint;
      info.state = WorkerStateName(worker.state);
      info.chunks_done = worker.chunks_done;
      info.chunks_failed = worker.chunks_failed;
      response.workers.push_back(std::move(info));
    }
    return response;
  }
  if (std::holds_alternative<HelpRequest>(payload)) return HelpResponse{};
  if (std::holds_alternative<QuitRequest>(payload)) return ByeResponse{};
  return NotACoordinatorVerb(RequestVerbName(payload));
}

}  // namespace kplex
