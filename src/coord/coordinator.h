// Coordinator: the scheduling brain of the coordinator daemon
// (`kplex_cli coordinate`, sharded mining v2). Where the v1
// ShardCoordinator is a one-shot client — W equal ranges, one per
// lane, merge, exit — this class is a long-lived service that owns a
// WorkerPool and runs submitted mines as *two-level chunked* work:
//
//  1. Plan. A `plan` probe against one worker returns the seed-space
//     size, the admission content hash, and per-seed cost signals
//     (degree x coreness in the canonical order). The planner cuts the
//     space into chunks_per_worker x workers cost-balanced chunks —
//     many more chunks than workers, so the queue absorbs most skew.
//     A ctcp mine (whose seed order the probe cannot serve) falls back
//     to uniform chunks from an empty-range mineshard probe.
//
//  2. Execute. One lane thread per schedulable worker pops chunks and
//     round-trips them as shardsubmit + shardwait. When the queue
//     drains while chunks are still in flight, an idle lane *steals*:
//     it picks the longest-running un-stolen chunk and sends
//     `shardstop` to its worker over a fresh ephemeral connection. The
//     victim stops at the next seed boundary and returns a yielded
//     result covering a prefix; the victim's lane merges the prefix
//     and requeues the tail, which the idle lane then picks up.
//
// Every merged piece is a complete answer for a disjoint seed range,
// so the fold (core/sink.h MergeableResult) reproduces the exact
// single-process count and fingerprint; a coverage check asserts the
// merged ranges partition [0, total_seeds) before a job reports done.
//
// Failure taxonomy (per chunk round trip):
//  - transport failure: the chunk may not have completed anywhere —
//    requeue it, mark the worker dead, retire the lane. The job
//    survives as long as one lane does.
//  - FAILED_PRECONDITION at shardsubmit (admission hash mismatch):
//    that worker holds different graph bytes — requeue the chunk,
//    retire the lane; the job survives on matching workers.
//  - any other worker verdict (bad options, failed job, partial
//    non-yield result): deterministic — it would repeat anywhere, so
//    the job aborts.
//
// Jobs run one at a time in submission order (a coordinated mine
// already spans every worker; interleaving two would just thrash).
// Workers may join (register) mid-job — a lane is spawned for them
// immediately — and leave via drain (finish the current chunk, get no
// more) or death (chunk requeued).

#ifndef KPLEX_COORD_COORDINATOR_H_
#define KPLEX_COORD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "coord/worker_pool.h"
#include "service/query_engine.h"
#include "util/status.h"

namespace kplex {

struct CoordinatorOptions {
  /// Chunks planned per schedulable worker. More chunks = finer
  /// balancing granularity but more round-trip overhead.
  uint32_t chunks_per_worker = 8;
  /// Per-socket-operation timeout for lane connections, seconds
  /// (0 = none; a hung worker then pins its lane until it answers).
  double io_timeout_seconds = 0;
  /// Work-stealing. Off, a drained queue just waits for in-flight
  /// chunks to finish (v1 behavior with better planning).
  bool enable_stealing = true;
  /// A chunk younger than this is never stolen — it is about to finish
  /// anyway, and the steal round trip would cost more than it saves.
  double steal_min_seconds = 0.02;
};

/// Terminal record of one chunk assignment that merged.
struct CoordChunkOutcome {
  uint32_t begin = 0;
  uint32_t end = 0;        ///< the range that actually merged (post-steal)
  std::string endpoint;
  uint64_t plexes = 0;
  double seconds = 0;      ///< worker-side wall time
  bool yielded = false;    ///< true: a stolen prefix (its tail requeued)
};

/// One coordinated job as reported by wait/jobs.
struct CoordJobInfo {
  uint64_t id = 0;
  QueryRequest query;
  std::string state;       ///< "queued" | "running" | "done" | "failed"
  Status status;           ///< non-OK when failed
  uint64_t num_plexes = 0;
  uint64_t max_plex_size = 0;
  uint64_t fingerprint = 0;
  uint64_t fingerprint_xor = 0;
  uint64_t content_hash = 0;
  uint64_t total_seeds = 0;
  bool cost_planned = false;  ///< false: uniform fallback (ctcp)
  uint64_t chunks = 0;        ///< chunk assignments merged
  uint64_t steals = 0;        ///< successful steals (yielded prefixes)
  uint64_t requeues = 0;      ///< chunks re-dispatched after a failure
  double seconds = 0;         ///< coordinator wall time, probe included
  std::vector<CoordChunkOutcome> outcomes;  ///< merge order
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Registers (or revives) a worker endpoint; returns its pool id.
  /// If a job is running, a lane for the new worker joins it at once.
  StatusOr<uint64_t> AddWorker(const std::string& endpoint);

  /// Worker lifecycle verbs (see worker_pool.h for semantics).
  Status Heartbeat(uint64_t worker);
  Status Drain(uint64_t worker);
  std::vector<WorkerRecord> Workers() const;

  /// Enqueues one coordinated mine; returns its job id. The query is
  /// validated like v1 (ValidateCoordinatedQuery) and must not carry
  /// its own seed range — the coordinator owns the split.
  StatusOr<uint64_t> Submit(const QueryRequest& query);

  /// Blocks until the job is terminal; NotFound for unknown ids.
  StatusOr<CoordJobInfo> Wait(uint64_t id);

  /// Snapshot of every job, in submission order.
  std::vector<CoordJobInfo> Jobs() const;

  /// Fails the running job (if any), stops the scheduler, joins every
  /// thread. Idempotent; the destructor calls it.
  void Stop();

 private:
  struct JobRun;

  void SchedulerLoop();
  void RunJob(CoordJobInfo& job, const std::shared_ptr<JobRun>& run);
  void LaneMain(const std::shared_ptr<JobRun>& run, uint64_t worker_id,
                std::string endpoint);

  const CoordinatorOptions options_;
  WorkerPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<CoordJobInfo>> jobs_;  // stable addresses
  std::shared_ptr<JobRun> active_run_;  ///< non-null while a job runs
  uint64_t next_job_id_ = 1;
  bool stopping_ = false;
  std::thread scheduler_;
};

}  // namespace kplex

#endif  // KPLEX_COORD_COORDINATOR_H_
