#include "coord/worker_pool.h"

#include <algorithm>

namespace kplex {

const char* WorkerStateName(WorkerState state) {
  switch (state) {
    case WorkerState::kIdle:
      return "idle";
    case WorkerState::kBusy:
      return "busy";
    case WorkerState::kDraining:
      return "draining";
    case WorkerState::kDead:
      return "dead";
  }
  return "unknown";
}

uint64_t WorkerPool::Register(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (WorkerRecord& worker : workers_) {
    if (worker.endpoint == endpoint) {
      worker.state = WorkerState::kIdle;
      return worker.id;
    }
  }
  WorkerRecord worker;
  worker.id = next_id_++;
  worker.endpoint = endpoint;
  worker.state = WorkerState::kIdle;
  workers_.push_back(std::move(worker));
  return workers_.back().id;
}

Status WorkerPool::Heartbeat(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker == nullptr) {
    return Status::NotFound("unknown worker " + std::to_string(id));
  }
  if (worker->state == WorkerState::kDead) {
    worker->state = WorkerState::kIdle;
  }
  return Status::Ok();
}

Status WorkerPool::Drain(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker == nullptr) {
    return Status::NotFound("unknown worker " + std::to_string(id));
  }
  if (worker->state == WorkerState::kDead) {
    return Status::FailedPrecondition("worker " + std::to_string(id) +
                                      " is dead (re-register to revive it)");
  }
  worker->state = WorkerState::kDraining;
  return Status::Ok();
}

void WorkerPool::MarkBusy(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker != nullptr && worker->state == WorkerState::kIdle) {
    worker->state = WorkerState::kBusy;
  }
}

void WorkerPool::MarkIdle(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker != nullptr && worker->state == WorkerState::kBusy) {
    worker->state = WorkerState::kIdle;
  }
}

void WorkerPool::MarkDead(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker != nullptr) worker->state = WorkerState::kDead;
}

void WorkerPool::NoteChunkDone(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker != nullptr) ++worker->chunks_done;
}

void WorkerPool::NoteChunkFailed(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerRecord* worker = FindLocked(id);
  if (worker != nullptr) ++worker->chunks_failed;
}

StatusOr<WorkerRecord> WorkerPool::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const WorkerRecord& worker : workers_) {
    if (worker.id == id) return worker;
  }
  return Status::NotFound("unknown worker " + std::to_string(id));
}

std::vector<WorkerRecord> WorkerPool::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_;
}

std::vector<WorkerRecord> WorkerPool::Schedulable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerRecord> out;
  for (const WorkerRecord& worker : workers_) {
    if (worker.state == WorkerState::kIdle ||
        worker.state == WorkerState::kBusy) {
      out.push_back(worker);
    }
  }
  return out;
}

WorkerRecord* WorkerPool::FindLocked(uint64_t id) {
  for (WorkerRecord& worker : workers_) {
    if (worker.id == id) return &worker;
  }
  return nullptr;
}

}  // namespace kplex
