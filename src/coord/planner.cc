#include "coord/planner.h"

#include <algorithm>

#include "core/seed_plan.h"

namespace kplex {

std::vector<uint64_t> EstimateSeedCosts(const std::vector<uint32_t>& degrees,
                                        const std::vector<uint32_t>& coreness) {
  const std::size_t n = std::min(degrees.size(), coreness.size());
  std::vector<uint64_t> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    costs[i] = SeedPlanCost(degrees[i], coreness[i]);
  }
  return costs;
}

std::vector<CoordChunk> PlanCostChunks(const std::vector<uint64_t>& costs,
                                       uint32_t target_chunks) {
  std::vector<CoordChunk> chunks;
  const uint32_t n = static_cast<uint32_t>(costs.size());
  if (n == 0) return chunks;
  if (target_chunks < 1) target_chunks = 1;

  uint64_t total = 0;
  for (uint64_t cost : costs) total += cost;
  // Every seed costs at least 1 (SeedPlanCost's +1 terms), but guard
  // anyway: a zero total degenerates to one chunk holding everything.
  const uint64_t share = std::max<uint64_t>(1, total / target_chunks);

  CoordChunk current;
  current.begin = 0;
  for (uint32_t i = 0; i < n; ++i) {
    current.est_cost += costs[i];
    current.end = i + 1;
    // Close the chunk once it holds its share — unless it is the last
    // allowed chunk, which must absorb the tail to keep the partition
    // exact.
    if (current.est_cost >= share &&
        chunks.size() + 1 < target_chunks && current.end < n) {
      chunks.push_back(current);
      current = CoordChunk();
      current.begin = i + 1;
    }
  }
  if (current.end > current.begin) chunks.push_back(current);
  return chunks;
}

std::vector<CoordChunk> PlanUniformChunks(uint64_t total_seeds,
                                          uint32_t target_chunks) {
  std::vector<CoordChunk> chunks;
  if (total_seeds == 0) return chunks;
  if (target_chunks < 1) target_chunks = 1;
  for (uint32_t i = 0; i < target_chunks; ++i) {
    CoordChunk chunk;
    chunk.begin = static_cast<uint32_t>(total_seeds * i / target_chunks);
    chunk.end = static_cast<uint32_t>(total_seeds * (i + 1) / target_chunks);
    if (chunk.end <= chunk.begin) continue;  // more chunks than seeds
    chunk.est_cost = chunk.end - chunk.begin;
    chunks.push_back(chunk);
  }
  return chunks;
}

}  // namespace kplex
