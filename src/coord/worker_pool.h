// Worker membership of the coordinator daemon. The pool is the
// daemon's authoritative roster: which `serve --listen` endpoints
// exist, what lifecycle state each is in, and how much work each has
// completed. It is bookkeeping only — connections and scheduling live
// in the coordinator; the pool never touches a socket.
//
// Lifecycle state machine (docs/SHARDING.md has the full diagram):
//
//   register ─> idle <─────────────┐
//                │ chunk assigned  │ chunk finished
//                v                 │
//               busy ──────────────┘
//   idle/busy ── drain ──> draining (finishes its chunk, gets no more)
//   any ──────── transport failure / kill ──> dead
//   dead ─────── heartbeat or re-register ──> idle (worker restarted)
//
// Thread-safety: every method locks internally; Snapshot returns
// copies. Ids are never reused — a worker that re-registers the same
// endpoint revives the existing record (same id), so chunk tallies
// survive a restart.

#ifndef KPLEX_COORD_WORKER_POOL_H_
#define KPLEX_COORD_WORKER_POOL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace kplex {

enum class WorkerState { kIdle, kBusy, kDraining, kDead };

/// Stable lowercase name ("idle", "busy", "draining", "dead").
const char* WorkerStateName(WorkerState state);

struct WorkerRecord {
  uint64_t id = 0;
  std::string endpoint;  ///< "host:port" of the worker's serve socket
  WorkerState state = WorkerState::kIdle;
  uint64_t chunks_done = 0;
  uint64_t chunks_failed = 0;
};

class WorkerPool {
 public:
  /// Adds (or revives) the worker at `endpoint`; returns its id. A
  /// known endpoint keeps its id and returns to kIdle regardless of
  /// prior state — re-registering IS the recovery path after a crash.
  uint64_t Register(const std::string& endpoint);

  /// Liveness refresh. Revives a kDead worker to kIdle (the worker
  /// came back); other states are untouched. NotFound for unknown ids.
  Status Heartbeat(uint64_t id);

  /// Begins a graceful leave: the worker finishes its current chunk
  /// and is never assigned another. NotFound for unknown ids;
  /// FailedPrecondition for an already-dead worker.
  Status Drain(uint64_t id);

  /// State transitions driven by the coordinator's lanes.
  void MarkBusy(uint64_t id);
  void MarkIdle(uint64_t id);  ///< no-op for draining/dead workers
  void MarkDead(uint64_t id);
  void NoteChunkDone(uint64_t id);
  void NoteChunkFailed(uint64_t id);

  /// Current state of one worker; NotFound for unknown ids.
  StatusOr<WorkerRecord> Get(uint64_t id) const;

  /// Every worker ever registered, in registration order.
  std::vector<WorkerRecord> Snapshot() const;

  /// The workers a new chunk may be assigned to (kIdle or kBusy — not
  /// draining, not dead).
  std::vector<WorkerRecord> Schedulable() const;

 private:
  WorkerRecord* FindLocked(uint64_t id);

  mutable std::mutex mutex_;
  std::vector<WorkerRecord> workers_;
  uint64_t next_id_ = 1;
};

}  // namespace kplex

#endif  // KPLEX_COORD_WORKER_POOL_H_
