// Chunk planner of the coordinator daemon (sharded mining v2). The v1
// client splits the seed space into W equal index ranges — fine when
// per-seed work is uniform, terrible on skewed graphs where one hub
// seed costs 100x its neighbors. The v2 planner instead cuts the space
// into *many more chunks than workers* (so the queue itself absorbs
// skew) and sizes each cut by estimated cost, not seed count, using
// the `plan` probe's per-seed signals (core/seed_plan.h: forward
// degree and coreness in the canonical order).
//
// Correctness does not depend on the estimates: any set of chunks that
// partitions [0, total_seeds) merges to the exact single-run
// fingerprint. The estimates only decide where the cuts land, i.e. how
// balanced the schedule starts out; work-stealing (coordinator.h)
// corrects whatever the estimates got wrong.

#ifndef KPLEX_COORD_PLANNER_H_
#define KPLEX_COORD_PLANNER_H_

#include <cstdint>
#include <vector>

namespace kplex {

/// One planned unit of work: a half-open range of canonical seed
/// indices plus the estimated cost it was sized by.
struct CoordChunk {
  uint32_t begin = 0;
  uint32_t end = 0;        ///< half-open: seeds [begin, end)
  uint64_t est_cost = 0;   ///< sum of per-seed estimates (or seed count)
};

/// Per-seed cost estimates from the plan probe's raw signals
/// (SeedPlanCost applied elementwise). The arrays must be the same
/// length; the result has that length.
std::vector<uint64_t> EstimateSeedCosts(const std::vector<uint32_t>& degrees,
                                        const std::vector<uint32_t>& coreness);

/// Cuts [0, costs.size()) into at most target_chunks contiguous,
/// non-empty ranges of roughly equal estimated cost (greedy: a chunk
/// closes once it holds ~total/target of the cost mass). Always returns
/// an exact partition; returns fewer chunks when the cost mass is too
/// concentrated (a single hub seed can exceed the per-chunk share on
/// its own — stealing handles that at run time). Empty costs => no
/// chunks.
std::vector<CoordChunk> PlanCostChunks(const std::vector<uint64_t>& costs,
                                       uint32_t target_chunks);

/// Uniform fallback when no per-seed costs are available (e.g. a ctcp
/// mine, whose seed order the plan probe cannot serve): equal seed
/// counts, est_cost = seed count. Skips empty ranges, so the result
/// has min(target_chunks, total_seeds) chunks.
std::vector<CoordChunk> PlanUniformChunks(uint64_t total_seeds,
                                          uint32_t target_chunks);

}  // namespace kplex

#endif  // KPLEX_COORD_PLANNER_H_
