#include "coord/coordinator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <utility>

#include "coord/planner.h"
#include "core/sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"
#include "service/shard_coordinator.h"
#include "service/tcp_client.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kplex {
namespace {

Counter& CoordChunksTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_coord_chunks_total");
  return counter;
}
Counter& CoordStealsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_coord_steals_total");
  return counter;
}
Counter& CoordRequeuesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_coord_requeues_total");
  return counter;
}
Counter& CoordWorkersJoinedTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_coord_workers_joined_total");
  return counter;
}
Counter& CoordWorkersLeftTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_coord_workers_left_total");
  return counter;
}
Histogram& CoordChunkSeconds() {
  static Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("kplex_coord_chunk_seconds");
  return histogram;
}

/// "host:port" splitter (same grammar ParseEndpointList validates).
Status SplitEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  Status malformed = Status::InvalidArgument(
      "endpoint must be host:port (port 1..65535), got '" + endpoint + "'");
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return malformed;
  }
  uint32_t parsed = 0;
  for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') return malformed;
    parsed = parsed * 10 + static_cast<uint32_t>(c - '0');
    if (parsed > 65535) return malformed;
  }
  if (parsed < 1) return malformed;
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::Ok();
}

Status ConnectWorker(TcpClient& client, const std::string& endpoint,
                     double timeout_seconds) {
  std::string host;
  uint16_t port = 0;
  KPLEX_RETURN_IF_ERROR(SplitEndpoint(endpoint, &host, &port));
  KPLEX_RETURN_IF_ERROR(client.Connect(host, port, timeout_seconds));
  KPLEX_RETURN_IF_ERROR(client.SendLine(
      "hello proto=" + std::to_string(kProtocolVersionCoordination) +
      " mode=framed"));
  auto hello = client.ReadLine();
  if (!hello.ok()) return hello.status();
  auto version = ParseFramedHelloVersion(*hello);
  if (!version.ok()) return version.status();
  if (*version < kProtocolVersionCoordination) {
    return Status::FailedPrecondition(
        "worker " + endpoint + " negotiated protocol v" +
        std::to_string(*version) + " but coordination needs v" +
        std::to_string(kProtocolVersionCoordination) +
        " (upgrade the worker)");
  }
  return Status::Ok();
}

/// One framed round trip keeping socket failures (chunk may not have
/// completed; retryable elsewhere) apart from decoded worker verdicts
/// (deterministic; they would repeat).
struct RoundTrip {
  bool transport_failed = false;
  Status transport_error;
  std::string line;  ///< the response line when transport succeeded
};

RoundTrip RoundTripLine(TcpClient& client, const std::string& request) {
  RoundTrip out;
  Status sent = client.SendLine(request);
  if (!sent.ok()) {
    out.transport_failed = true;
    out.transport_error = sent;
    return out;
  }
  auto line = client.ReadLine();
  if (!line.ok()) {
    out.transport_failed = true;
    out.transport_error = line.status();
    return out;
  }
  out.line = *std::move(line);
  return out;
}

/// What the planning probe learned from one worker.
struct Probe {
  uint64_t content_hash = 0;
  uint64_t total_seeds = 0;
  std::vector<uint64_t> costs;  ///< empty => uniform fallback
  bool transport_failed = false;
  Status transport_error;
  Status verdict;  ///< non-OK: deterministic failure, abort the job
};

/// Probes one worker: `plan` for per-seed costs, or (for ctcp, whose
/// seed order the plan probe refuses) an empty-range mineshard that
/// returns only the hash and the seed-space size.
Probe ProbeWorker(const std::string& endpoint, const QueryRequest& query,
                  double timeout_seconds) {
  Probe probe;
  TcpClient client;
  Status connected = ConnectWorker(client, endpoint, timeout_seconds);
  if (!connected.ok()) {
    probe.transport_failed = true;
    probe.transport_error = connected;
    return probe;
  }
  if (!query.use_ctcp) {
    Request request;
    request.id = 1;
    PlanRequest plan;
    plan.graph = query.graph;
    plan.k = query.k;
    plan.q = query.q;
    request.payload = std::move(plan);
    RoundTrip trip = RoundTripLine(client, FormatFramedRequest(request));
    if (trip.transport_failed) {
      probe.transport_failed = true;
      probe.transport_error = trip.transport_error;
      return probe;
    }
    auto parsed = ParseFramedPlan(trip.line);
    if (!parsed.ok()) {
      probe.verdict = parsed.status();
      return probe;
    }
    probe.content_hash = parsed->content_hash;
    probe.total_seeds = parsed->total_seeds;
    probe.costs = EstimateSeedCosts(parsed->degrees, parsed->coreness);
    return probe;
  }
  // ctcp: the canonical seed order differs from the core ordering, so
  // cost signals are unavailable — an empty shard still reports the
  // admission hash and the seed-space size of the *ctcp* pipeline.
  Request request;
  request.id = 1;
  MineShardRequest shard;
  shard.query = query;
  shard.query.seed_begin = 0;
  shard.query.seed_end = 0;
  shard.expected_hash = 0;
  request.payload = std::move(shard);
  RoundTrip trip = RoundTripLine(client, FormatFramedRequest(request));
  if (trip.transport_failed) {
    probe.transport_failed = true;
    probe.transport_error = trip.transport_error;
    return probe;
  }
  auto parsed = ParseFramedShardResult(trip.line);
  if (!parsed.ok()) {
    probe.verdict = parsed.status();
    return probe;
  }
  probe.content_hash = parsed->content_hash;
  probe.total_seeds = parsed->total_seeds;
  return probe;
}

/// Best-effort steal signal: a fresh ephemeral connection (so the
/// victim lane's own connection stays undisturbed, and a dropped
/// stealer cancels nothing — shardstop submits no jobs). Benign
/// refusals (the shard already finished) count as delivered.
Status SendShardStop(const std::string& endpoint, uint64_t remote_job,
                     double timeout_seconds) {
  TcpClient client;
  KPLEX_RETURN_IF_ERROR(ConnectWorker(client, endpoint, timeout_seconds));
  Request request;
  request.id = 2;
  ShardStopRequest stop;
  stop.job = remote_job;
  request.payload = stop;
  RoundTrip trip = RoundTripLine(client, FormatFramedRequest(request));
  if (trip.transport_failed) return trip.transport_error;
  auto acked = ParseFramedShardStop(trip.line);
  if (!acked.ok() && acked.status().code() != StatusCode::kFailedPrecondition) {
    return acked.status();
  }
  return Status::Ok();
}

}  // namespace

/// Shared fan-out state of one running job: the chunk queue, the
/// in-flight table stealers scan, and the merge fold — all under one
/// mutex. Lanes hold a shared_ptr so a late-joining lane outliving an
/// aborted RunJob never dangles.
struct Coordinator::JobRun {
  std::mutex mutex;
  std::condition_variable cv;

  // Immutable after construction.
  CoordinatorOptions options;
  QueryRequest query;  ///< base query; lanes stamp seed ranges onto it
  uint64_t content_hash = 0;
  uint64_t total_seeds = 0;
  uint64_t trace_id = 0;

  struct PendingChunk {
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  std::deque<PendingChunk> queue;

  struct InFlight {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint64_t worker_id = 0;
    std::string endpoint;
    uint64_t remote_job = 0;  ///< 0 until the shardsubmit ack lands
    int64_t started_nanos = 0;
    bool steal_requested = false;
  };
  std::map<uint64_t, InFlight> in_flight;  // key: local ticket
  uint64_t next_ticket = 1;

  MergeableResult merged;
  std::vector<std::pair<uint32_t, uint32_t>> covered;
  std::vector<CoordChunkOutcome> outcomes;
  uint64_t steals = 0;
  uint64_t requeues = 0;
  uint64_t chunk_count = 0;

  bool failed = false;
  Status failure;
  bool finished = false;  ///< RunJob observed completion (or failure)

  uint32_t active_lanes = 0;
  /// Worker ids that currently have a lane (prevents duplicate lanes
  /// when a live worker re-registers; a dead lane removes itself, so
  /// a restarted worker's re-register gets a fresh lane).
  std::vector<uint64_t> laned_workers;
  /// Live lane sockets, for unblocking lanes parked in a recv when the
  /// job aborts (TcpClient::Shutdown is the cross-thread-safe method).
  std::vector<TcpClient*> lane_clients;
  std::vector<std::thread> lane_threads;

  bool HasLaneLocked(uint64_t worker_id) const {
    return std::find(laned_workers.begin(), laned_workers.end(), worker_id) !=
           laned_workers.end();
  }

  void FailLocked(Status status) {
    if (!failed) {
      failed = true;
      failure = std::move(status);
    }
    for (TcpClient* client : lane_clients) client->Shutdown();
    cv.notify_all();
  }
};

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

Coordinator::~Coordinator() { Stop(); }

StatusOr<uint64_t> Coordinator::AddWorker(const std::string& endpoint) {
  std::string host;
  uint16_t port = 0;
  KPLEX_RETURN_IF_ERROR(SplitEndpoint(endpoint, &host, &port));
  const uint64_t id = pool_.Register(endpoint);
  CoordWorkersJoinedTotal().Increment();
  // A registration during a running job joins it immediately: the new
  // lane pops queued chunks and participates in stealing like any
  // other.
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<JobRun> run = active_run_;
  if (run != nullptr) {
    std::lock_guard<std::mutex> run_lock(run->mutex);
    if (!run->finished && !run->failed && !run->HasLaneLocked(id)) {
      ++run->active_lanes;
      run->laned_workers.push_back(id);
      run->lane_threads.emplace_back(
          [this, run, id, endpoint] { LaneMain(run, id, endpoint); });
    }
  }
  return id;
}

Status Coordinator::Heartbeat(uint64_t worker) {
  return pool_.Heartbeat(worker);
}

Status Coordinator::Drain(uint64_t worker) { return pool_.Drain(worker); }

std::vector<WorkerRecord> Coordinator::Workers() const {
  return pool_.Snapshot();
}

StatusOr<uint64_t> Coordinator::Submit(const QueryRequest& query) {
  KPLEX_RETURN_IF_ERROR(ValidateCoordinatedQuery(query));
  if (query.HasSeedRange()) {
    return Status::InvalidArgument(
        "a coordinated mine owns the seed split; submit the query without "
        "a seed range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::FailedPrecondition("the coordinator is stopping");
  }
  auto job = std::make_unique<CoordJobInfo>();
  job->id = next_job_id_++;
  job->query = query;
  job->query.cancel = nullptr;
  job->query.yield = nullptr;
  job->state = "queued";
  const uint64_t id = job->id;
  jobs_.push_back(std::move(job));
  cv_.notify_all();
  return id;
}

StatusOr<CoordJobInfo> Coordinator::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  CoordJobInfo* job = nullptr;
  for (auto& candidate : jobs_) {
    if (candidate->id == id) {
      job = candidate.get();
      break;
    }
  }
  if (job == nullptr) {
    return Status::NotFound("unknown job " + std::to_string(id));
  }
  cv_.wait(lock,
           [job] { return job->state == "done" || job->state == "failed"; });
  return *job;
}

std::vector<CoordJobInfo> Coordinator::Jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CoordJobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(*job);
  return out;
}

void Coordinator::Stop() {
  std::thread scheduler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !scheduler_.joinable()) return;
    stopping_ = true;
    if (active_run_ != nullptr) {
      std::lock_guard<std::mutex> run_lock(active_run_->mutex);
      active_run_->FailLocked(
          Status::FailedPrecondition("the coordinator is stopping"));
    }
    // Queued jobs will never run; fail them so waiters unblock.
    for (auto& job : jobs_) {
      if (job->state == "queued") {
        job->state = "failed";
        job->status =
            Status::FailedPrecondition("the coordinator is stopping");
      }
    }
    scheduler.swap(scheduler_);
    cv_.notify_all();
  }
  if (scheduler.joinable()) scheduler.join();
}

void Coordinator::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    CoordJobInfo* job = nullptr;
    cv_.wait(lock, [this, &job] {
      if (stopping_) return true;
      for (auto& candidate : jobs_) {
        if (candidate->state == "queued") {
          job = candidate.get();
          return true;
        }
      }
      return false;
    });
    if (stopping_ || job == nullptr) break;
    job->state = "running";
    auto run = std::make_shared<JobRun>();
    run->options = options_;
    run->query = job->query;
    run->trace_id = NextTraceId();
    active_run_ = run;
    lock.unlock();
    RunJob(*job, run);
    lock.lock();
    active_run_.reset();
    cv_.notify_all();
  }
}

void Coordinator::RunJob(CoordJobInfo& job, const std::shared_ptr<JobRun>& run) {
  WallTimer timer;
  auto finish_failed = [this, &job, &timer](Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = "failed";
    job.status = std::move(status);
    job.seconds = timer.ElapsedSeconds();
    cv_.notify_all();
  };

  // Planning probe: first reachable schedulable worker answers; a
  // worker verdict (unknown graph, bad options) is deterministic and
  // fails the job. Mismatched snapshots among the *other* workers are
  // caught per-chunk by the shardsubmit admission hash.
  std::vector<WorkerRecord> workers = pool_.Schedulable();
  if (workers.empty()) {
    finish_failed(Status::FailedPrecondition(
        "no schedulable worker (register at least one `serve --listen` "
        "endpoint)"));
    return;
  }
  Probe probe;
  bool probed = false;
  Status last_transport = Status::Ok();
  for (const WorkerRecord& worker : workers) {
    probe = ProbeWorker(worker.endpoint, run->query,
                        options_.io_timeout_seconds);
    if (probe.transport_failed) {
      last_transport = probe.transport_error;
      pool_.MarkDead(worker.id);
      CoordWorkersLeftTotal().Increment();
      continue;
    }
    if (!probe.verdict.ok()) {
      finish_failed(probe.verdict);
      return;
    }
    probed = true;
    break;
  }
  if (!probed) {
    finish_failed(Status::IoError(
        "the planning probe failed on every schedulable worker (last: " +
        last_transport.ToString() + ")"));
    return;
  }
  run->content_hash = probe.content_hash;
  run->total_seeds = probe.total_seeds;

  workers = pool_.Schedulable();  // minus any the probe killed
  const uint32_t target_chunks =
      std::max<uint32_t>(1, options_.chunks_per_worker) *
      std::max<std::size_t>(1, workers.size());
  std::vector<CoordChunk> chunks =
      probe.costs.empty()
          ? PlanUniformChunks(probe.total_seeds, target_chunks)
          : PlanCostChunks(probe.costs, target_chunks);
  const bool cost_planned = !probe.costs.empty();

  {
    std::unique_lock<std::mutex> lock(run->mutex);
    for (const CoordChunk& chunk : chunks) {
      run->queue.push_back({chunk.begin, chunk.end});
    }
    // Spawn one lane per schedulable worker (an empty seed space skips
    // straight to the empty merge below).
    if (!run->queue.empty()) {
      for (const WorkerRecord& worker : workers) {
        if (run->HasLaneLocked(worker.id)) continue;
        ++run->active_lanes;
        run->laned_workers.push_back(worker.id);
        auto self = run;
        run->lane_threads.emplace_back(
            [this, self, id = worker.id, endpoint = worker.endpoint] {
              LaneMain(self, id, endpoint);
            });
      }
    }

    // Completion wait: all chunks merged, the job failed, or every
    // lane died with work left (requeues with nobody to serve them).
    for (;;) {
      if (run->failed) break;
      if (run->queue.empty() && run->in_flight.empty()) break;
      if (run->active_lanes == 0) {
        uint64_t unfinished = 0;
        for (const auto& pending : run->queue) {
          unfinished += pending.end - pending.begin;
        }
        run->FailLocked(Status::IoError(
            "every worker lane exited with " + std::to_string(unfinished) +
            " seed(s) still unassigned; register a live worker and retry"));
        break;
      }
      run->cv.wait(lock);
    }
    run->finished = true;
    run->cv.notify_all();
  }

  // Join every lane (including late joiners). New lanes cannot appear
  // past this point: AddWorker checks run->finished under run->mutex.
  std::vector<std::thread> lanes;
  {
    std::lock_guard<std::mutex> lock(run->mutex);
    lanes.swap(run->lane_threads);
  }
  for (std::thread& lane : lanes) {
    if (lane.joinable()) lane.join();
  }

  // Collect the outcome under run->mutex, then publish under mutex_.
  // Never hold both: Stop() and AddWorker() take mutex_ before
  // run->mutex, so the reverse order here would deadlock.
  bool run_failed = false;
  Status run_failure;
  bool exact = true;
  uint64_t cursor = 0;
  uint64_t total_seeds = 0;
  {
    std::lock_guard<std::mutex> run_lock(run->mutex);
    run_failed = run->failed;
    run_failure = run->failure;
    total_seeds = run->total_seeds;
    if (!run_failed) {
      // Coverage assertion: the merged spans must partition exactly
      // [0, total_seeds) — anything else means the merge algebra was
      // fed a hole or an overlap and the fingerprint would be silently
      // wrong.
      std::sort(run->covered.begin(), run->covered.end());
      for (const auto& span : run->covered) {
        if (span.first != cursor) {
          exact = false;
          break;
        }
        cursor = span.second;
      }
      if (cursor != total_seeds) exact = false;
    }
  }
  if (run_failed) {
    finish_failed(run_failure);
    return;
  }
  if (!exact) {
    finish_failed(Status::Internal(
        "merged chunk ranges do not partition the seed space (covered " +
        std::to_string(cursor) + " of " + std::to_string(total_seeds) +
        " seeds)"));
    return;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  job.state = "done";
  job.status = Status::Ok();
  job.num_plexes = run->merged.count;
  job.max_plex_size = run->merged.max_plex_size;
  job.fingerprint = run->merged.fingerprint();
  job.fingerprint_xor = run->merged.xor_hash;
  job.content_hash = run->content_hash;
  job.total_seeds = run->total_seeds;
  job.cost_planned = cost_planned;
  job.chunks = run->chunk_count;
  job.steals = run->steals;
  job.requeues = run->requeues;
  job.outcomes = std::move(run->outcomes);
  job.seconds = timer.ElapsedSeconds();
  cv_.notify_all();
}

void Coordinator::LaneMain(const std::shared_ptr<JobRun>& run,
                           uint64_t worker_id, std::string endpoint) {
  TcpClient client;
  Status connected =
      ConnectWorker(client, endpoint, run->options.io_timeout_seconds);
  std::unique_lock<std::mutex> lock(run->mutex);
  if (!connected.ok()) {
    pool_.MarkDead(worker_id);
    CoordWorkersLeftTotal().Increment();
    --run->active_lanes;
    run->laned_workers.erase(std::remove(run->laned_workers.begin(),
                                         run->laned_workers.end(), worker_id),
                             run->laned_workers.end());
    run->cv.notify_all();
    return;
  }
  run->lane_clients.push_back(&client);
  if (run->failed) client.Shutdown();  // aborted while we connected

  bool lane_alive = true;
  bool left_via_drain = false;
  while (lane_alive) {
    if (run->failed || run->finished) break;
    auto record = pool_.Get(worker_id);
    if (!record.ok() || record->state == WorkerState::kDraining ||
        record->state == WorkerState::kDead) {
      left_via_drain = record.ok() &&
                       record->state == WorkerState::kDraining;
      break;
    }
    if (!run->queue.empty()) {
      JobRun::PendingChunk chunk = run->queue.front();
      run->queue.pop_front();
      const uint64_t ticket = run->next_ticket++;
      JobRun::InFlight flight;
      flight.begin = chunk.begin;
      flight.end = chunk.end;
      flight.worker_id = worker_id;
      flight.endpoint = endpoint;
      flight.started_nanos = WallTimer::NowNanos();
      run->in_flight.emplace(ticket, flight);
      pool_.MarkBusy(worker_id);

      // ---- chunk round trip (unlocked) -------------------------------
      lock.unlock();
      Request submit_request;
      submit_request.id = ticket;
      ShardSubmitRequest submit;
      submit.query = run->query;
      submit.query.seed_begin = chunk.begin;
      submit.query.seed_end = chunk.end;
      submit.expected_hash = run->content_hash;
      submit_request.payload = std::move(submit);
      RoundTrip trip =
          RoundTripLine(client, FormatFramedRequest(submit_request));
      StatusOr<ParsedShardSubmit> submitted =
          trip.transport_failed ? StatusOr<ParsedShardSubmit>(
                                      trip.transport_error)
                                : ParseFramedShardSubmit(trip.line);
      lock.lock();

      if (trip.transport_failed || !submitted.ok()) {
        run->in_flight.erase(ticket);
        pool_.NoteChunkFailed(worker_id);
        if (!trip.transport_failed &&
            submitted.status().code() != StatusCode::kFailedPrecondition) {
          // A deterministic verdict (bad options, unknown graph): it
          // would repeat on every worker. Abort the job.
          run->FailLocked(submitted.status());
          break;
        }
        // Transport failure (the worker died) or an admission refusal
        // (this worker holds different graph bytes): requeue the chunk
        // for the surviving, matching lanes and retire this one.
        ++run->requeues;
        CoordRequeuesTotal().Increment();
        run->queue.push_back(chunk);
        pool_.MarkDead(worker_id);
        CoordWorkersLeftTotal().Increment();
        run->cv.notify_all();
        lane_alive = false;
        break;
      }
      {
        auto it = run->in_flight.find(ticket);
        if (it != run->in_flight.end()) {
          it->second.remote_job = submitted->job;
        }
        run->cv.notify_all();  // stealers wait for remote_job
      }
      if (run->failed) break;

      lock.unlock();
      Request wait_request;
      wait_request.id = ticket;
      ShardWaitRequest wait;
      wait.job = submitted->job;
      wait_request.payload = wait;
      WallTimer chunk_timer;
      trip = RoundTripLine(client, FormatFramedRequest(wait_request));
      const double chunk_seconds = chunk_timer.ElapsedSeconds();
      StatusOr<ParsedShardResult> result =
          trip.transport_failed
              ? StatusOr<ParsedShardResult>(trip.transport_error)
              : ParseFramedShardResult(trip.line);
      if (!trip.transport_failed && result.ok()) {
        RecordSpan(run->trace_id, "coord_chunk", chunk_seconds,
                   &CoordChunkSeconds(),
                   {{"range", std::to_string(chunk.begin) + ":" +
                                  std::to_string(chunk.end)},
                    {"endpoint", endpoint}});
      }
      lock.lock();

      run->in_flight.erase(ticket);
      if (run->failed) break;
      if (trip.transport_failed) {
        // The worker vanished mid-chunk; its result never merged, so
        // re-running the whole range elsewhere stays exact.
        ++run->requeues;
        CoordRequeuesTotal().Increment();
        run->queue.push_back(chunk);
        pool_.NoteChunkFailed(worker_id);
        pool_.MarkDead(worker_id);
        CoordWorkersLeftTotal().Increment();
        run->cv.notify_all();
        lane_alive = false;
        break;
      }
      if (!result.ok()) {
        pool_.NoteChunkFailed(worker_id);
        run->FailLocked(result.status());
        break;
      }
      if (result->yielded) {
        // A stolen chunk: the prefix [begin, covered_end) is complete
        // and merges; the tail goes back on the queue for the stealer.
        if (result->covered_begin != chunk.begin ||
            result->covered_end > chunk.end) {
          run->FailLocked(Status::Internal(
              "yielded shard covered " +
              std::to_string(result->covered_begin) + ":" +
              std::to_string(result->covered_end) +
              " outside its assigned range " +
              std::to_string(chunk.begin) + ":" +
              std::to_string(chunk.end)));
          break;
        }
        const uint32_t split =
            static_cast<uint32_t>(result->covered_end);
        if (split > chunk.begin) {
          MergeableResult piece;
          piece.count = result->plexes;
          piece.xor_hash = result->fingerprint_xor;
          piece.max_plex_size = static_cast<std::size_t>(result->max_size);
          run->merged.Merge(piece);
          run->covered.emplace_back(chunk.begin, split);
          CoordChunkOutcome outcome;
          outcome.begin = chunk.begin;
          outcome.end = split;
          outcome.endpoint = endpoint;
          outcome.plexes = result->plexes;
          outcome.seconds = result->seconds;
          outcome.yielded = true;
          run->outcomes.push_back(std::move(outcome));
          ++run->chunk_count;
          ++run->steals;
          CoordChunksTotal().Increment();
          CoordStealsTotal().Increment();
          pool_.NoteChunkDone(worker_id);
        }
        if (split < chunk.end) {
          run->queue.push_back({split, chunk.end});
        }
        pool_.MarkIdle(worker_id);
        run->cv.notify_all();
        continue;
      }
      if (!result->IsComplete()) {
        std::string how = result->state;
        if (result->timed_out) how += ", time limit hit";
        if (result->stopped_early) how += ", result cap hit";
        if (result->cancelled && result->state == "done") how += ", cancelled";
        pool_.NoteChunkFailed(worker_id);
        run->FailLocked(Status::FailedPrecondition(
            "chunk " + std::to_string(chunk.begin) + ":" +
            std::to_string(chunk.end) + " on " + endpoint +
            " is not a complete answer (" + how + ")"));
        break;
      }
      MergeableResult piece;
      piece.count = result->plexes;
      piece.xor_hash = result->fingerprint_xor;
      piece.max_plex_size = static_cast<std::size_t>(result->max_size);
      run->merged.Merge(piece);
      run->covered.emplace_back(chunk.begin, chunk.end);
      CoordChunkOutcome outcome;
      outcome.begin = chunk.begin;
      outcome.end = chunk.end;
      outcome.endpoint = endpoint;
      outcome.plexes = result->plexes;
      outcome.seconds = result->seconds;
      run->outcomes.push_back(std::move(outcome));
      ++run->chunk_count;
      CoordChunksTotal().Increment();
      pool_.NoteChunkDone(worker_id);
      pool_.MarkIdle(worker_id);
      run->cv.notify_all();
      continue;
    }
    if (run->in_flight.empty()) break;  // job drained; RunJob finishes it

    // Queue empty, chunks still running: steal from the
    // longest-running un-stolen chunk so its tail lands back on the
    // queue for this idle lane.
    if (run->options.enable_stealing) {
      uint64_t victim_ticket = 0;
      const JobRun::InFlight* victim = nullptr;
      const int64_t now = WallTimer::NowNanos();
      const int64_t min_age = static_cast<int64_t>(
          run->options.steal_min_seconds * 1e9);
      for (const auto& [ticket, flight] : run->in_flight) {
        if (flight.remote_job == 0 || flight.steal_requested) continue;
        if (now - flight.started_nanos < min_age) continue;
        if (victim == nullptr ||
            flight.started_nanos < victim->started_nanos) {
          victim = &flight;
          victim_ticket = ticket;
        }
      }
      if (victim != nullptr) {
        run->in_flight[victim_ticket].steal_requested = true;
        const std::string victim_endpoint = victim->endpoint;
        const uint64_t victim_job = victim->remote_job;
        lock.unlock();
        Status stopped = SendShardStop(victim_endpoint, victim_job,
                                       run->options.io_timeout_seconds);
        lock.lock();
        if (!stopped.ok()) {
          // The victim may have finished or died; either way its lane
          // settles the chunk. Allow future steal attempts on it.
          auto it = run->in_flight.find(victim_ticket);
          if (it != run->in_flight.end()) {
            it->second.steal_requested = false;
          }
        }
        continue;
      }
    }
    run->cv.wait_for(lock, std::chrono::milliseconds(20));
  }

  if (left_via_drain) CoordWorkersLeftTotal().Increment();
  run->lane_clients.erase(std::remove(run->lane_clients.begin(),
                                      run->lane_clients.end(), &client),
                          run->lane_clients.end());
  run->laned_workers.erase(std::remove(run->laned_workers.begin(),
                                       run->laned_workers.end(), worker_id),
                           run->laned_workers.end());
  --run->active_lanes;
  run->cv.notify_all();
}

}  // namespace kplex
