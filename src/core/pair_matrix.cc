#include "core/pair_matrix.h"

#include <algorithm>

#include "core/seed_graph.h"

namespace kplex {
namespace {

int64_t MaxI64(int64_t a, int64_t b) { return a > b ? a : b; }

}  // namespace

// Theorem 5.13 (both endpoints in N^2_{G_i}(v_i)), appendix A.8:
//   adjacent:     common >= q - k - 2*max{k-2, 0}
//   non-adjacent: common >= q - k - 2*max{k-3, 0}
int64_t PairPruneMatrix::ThresholdN2N2(uint32_t k, uint32_t q,
                                       bool adjacent) {
  const int64_t kk = k, qq = q;
  if (adjacent) return qq - kk - 2 * MaxI64(kk - 2, 0);
  return qq - kk - 2 * MaxI64(kk - 3, 0);
}

// Theorem 5.14 (one endpoint in N^2, one in N^1), appendix A.9:
//   adjacent:     common >= q - (k+1) - max{k-2, 0} - (k-1)
//   non-adjacent: common >= q - (k+1) - max{k-2, 0} - max{k-3, 0}
int64_t PairPruneMatrix::ThresholdN2N1(uint32_t k, uint32_t q,
                                       bool adjacent) {
  const int64_t kk = k, qq = q;
  if (adjacent) return qq - (kk + 1) - MaxI64(kk - 2, 0) - (kk - 1);
  return qq - (kk + 1) - MaxI64(kk - 2, 0) - MaxI64(kk - 3, 0);
}

// Theorem 5.15 (both endpoints in N^1), appendix A.10:
//   adjacent:     common >= q - (k+2) - 2*(k-1)  ( = q - 3k )
//   non-adjacent: common >= q - (k+2) - 2*max{k-2, 0}
int64_t PairPruneMatrix::ThresholdN1N1(uint32_t k, uint32_t q,
                                       bool adjacent) {
  const int64_t kk = k, qq = q;
  if (adjacent) return qq - 3 * kk;
  return qq - (kk + 2) - 2 * MaxI64(kk - 2, 0);
}

PairPruneMatrix BuildPairMatrix(const SeedGraph& sg, uint32_t k,
                                uint32_t q) {
  PairPruneMatrix matrix;
  matrix.rows_.assign(sg.num_vi, DynamicBitset(sg.universe));
  for (auto& row : matrix.rows_) row.SetAll();

  // Common neighbors are always counted inside C_S = N_{G_i}(v_i); the
  // endpoints themselves can never be their own common neighbors, so the
  // C_S^- variants of Theorems 5.14/5.15 need no special handling.
  auto category = [&](uint32_t v) -> int {
    if (v == SeedGraph::kSeed) return 0;
    return sg.n1_mask.Test(v) ? 1 : 2;
  };

  for (uint32_t u = 1; u < sg.num_vi; ++u) {
    const int cu = category(u);
    for (uint32_t v = u + 1; v < sg.num_vi; ++v) {
      const int cv = category(v);
      const bool adjacent = sg.adj.HasEdge(u, v);
      int64_t threshold;
      if (cu == 2 && cv == 2) {
        threshold = PairPruneMatrix::ThresholdN2N2(k, q, adjacent);
      } else if (cu == 1 && cv == 1) {
        threshold = PairPruneMatrix::ThresholdN1N1(k, q, adjacent);
      } else {
        threshold = PairPruneMatrix::ThresholdN2N1(k, q, adjacent);
      }
      if (threshold <= 0) continue;
      const int64_t common = static_cast<int64_t>(
          sg.adj.Row(u).AndCount3(sg.adj.Row(v), sg.n1_mask));
      if (common < threshold) {
        matrix.rows_[u].Reset(v);
        matrix.rows_[v].Reset(u);
        ++matrix.num_pruned_pairs_;
      }
    }
  }
  return matrix;
}

}  // namespace kplex
