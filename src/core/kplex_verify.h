// Direct (definition-level) k-plex predicates. These are O(|P|^2) and are
// used by the reference enumerators, the test oracles, and optional
// output self-verification — never on the mining hot path.

#ifndef KPLEX_CORE_KPLEX_VERIFY_H_
#define KPLEX_CORE_KPLEX_VERIFY_H_

#include <span>

#include "graph/graph.h"

namespace kplex {

/// True iff P induces a k-plex in `graph` (Definition 3.1): every member
/// has at most k non-neighbors in P, counting itself.
bool IsKPlex(const Graph& graph, std::span<const VertexId> plex, uint32_t k);

/// True iff P is a k-plex and no single vertex outside P extends it. By
/// hereditariness this is exactly maximality.
bool IsMaximalKPlex(const Graph& graph, std::span<const VertexId> plex,
                    uint32_t k);

/// True iff the subgraph induced by P is connected (P non-empty).
bool IsConnectedInduced(const Graph& graph, std::span<const VertexId> plex);

/// Diameter of the subgraph induced by P (hops), or -1 if disconnected
/// or empty.
int InducedDiameter(const Graph& graph, std::span<const VertexId> plex);

}  // namespace kplex

#endif  // KPLEX_CORE_KPLEX_VERIFY_H_
