#include "core/branch.h"

#include <algorithm>

namespace kplex {

BranchEngine::BranchEngine(const SeedGraph& sg, const EnumOptions& options,
                           ResultSink& sink, AlgoCounters& counters)
    : sg_(sg), options_(options), sink_(sink), counters_(counters),
      pivot_(sg, options.pivot_saturation_tiebreak),
      saturated_(sg.universe), pc_(sg.universe), sat_pc_(sg.universe) {}

void BranchEngine::Run(TaskState& state) { Branch(state); }

bool BranchEngine::CheckGlobalDeadline() {
  if (aborted_) return true;
  if ((counters_.branch_calls & 0xfff) == 0) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      aborted_ = true;
      cancelled_ = true;
    } else if (global_deadline_nanos_ > 0 &&
               WallTimer::NowNanos() > global_deadline_nanos_) {
      aborted_ = true;
    }
  }
  return aborted_;
}

void BranchEngine::FilterSet(const TaskState& state,
                             const DynamicBitset& saturated,
                             DynamicBitset& set) {
  // Saturated members of P admit only their neighbors.
  saturated.ForEach([&](std::size_t u) {
    set.AndWith(sg_.adj.Row(static_cast<uint32_t>(u)));
  });
  // Per-vertex budget: P ∪ {v} keeps v within k non-neighbors
  // (counting v itself) iff dp[v] + k >= |P| + 1.
  if (state.p_size + 1 > options_.k) {
    const uint32_t need = state.p_size + 1 - options_.k;
    // ForEach iterates on per-word snapshots, so resetting the current
    // bit during iteration is safe.
    set.ForEach([&](std::size_t v) {
      if (state.dp[v] < need) set.Reset(v);
    });
  }
}

void BranchEngine::PrepareInclude(TaskState& state, uint32_t vp) {
  state.AddToP(sg_, vp);
  if (sg_.pairs.has_value()) {
    const DynamicBitset& allowed = sg_.pairs->Row(vp);
    state.c.AndWith(allowed);
    state.x.AndWith(allowed);
  }
}

void BranchEngine::EmitPlex(const DynamicBitset& members) {
  emit_.clear();
  members.ForEach([&](std::size_t v) {
    emit_.push_back(sg_.to_global[v]);
  });
  std::sort(emit_.begin(), emit_.end());
  ++counters_.outputs;
  sink_.Emit(emit_);
  if (options_.max_results > 0 &&
      counters_.outputs >= options_.max_results) {
    stopped_early_ = true;
  }
}

bool BranchEngine::HasExtenderOfPc(const TaskState& state,
                                   const DynamicBitset& pc,
                                   uint32_t pc_size) {
  const uint32_t k = options_.k;
  sat_pc_.ResetAll();
  pc.ForEach([&](std::size_t u) {
    if (pc_size - pivot_.DegreePc(static_cast<uint32_t>(u)) == k) {
      sat_pc_.Set(u);
    }
  });
  for (std::size_t x = state.x.FindFirst(); x != DynamicBitset::kNpos;
       x = state.x.FindNext(x + 1)) {
    const uint32_t dx = static_cast<uint32_t>(
        sg_.adj.Row(static_cast<uint32_t>(x)).AndCountLimit(pc, sg_.vi_words));
    if (dx + k < pc_size + 1) continue;
    if (sat_pc_.IsSubsetOf(sg_.adj.Row(static_cast<uint32_t>(x)))) {
      return true;
    }
  }
  return false;
}

void BranchEngine::Dispatch(TaskState& state) {
  if (TimeoutExpired()) {
    ++counters_.timeout_spawns;
    spawn_(std::move(state));
    return;
  }
  Branch(state);
}

void BranchEngine::Branch(TaskState& state) {
  if (stopped_early_) return;
  ++counters_.branch_calls;
  if (CheckGlobalDeadline()) return;

  // Alg. 3 Lines 2-3: keep only vertices that still combine with P.
  state.ComputeSaturated(sg_, options_.k, saturated_);
  FilterSet(state, saturated_, state.c);
  FilterSet(state, saturated_, state.x);

  const uint32_t c_size = static_cast<uint32_t>(state.c.Count());
  if (c_size == 0) {
    if (state.p_size >= options_.q && state.x.None()) EmitPlex(state.p);
    return;
  }
  // Size feasibility: even taking every candidate cannot reach q.
  if (state.p_size + c_size < options_.q) return;

  // Alg. 3 Lines 7-10: pivot selection.
  pc_ = state.p;
  pc_.OrWith(state.c);
  const PivotResult pivot = pivot_.Select(state, pc_);

  // Alg. 3 Lines 11-14: P ∪ C is already a k-plex — finish here.
  if (pivot.min_degree + options_.k >= state.p_size + c_size) {
    ++counters_.kplex_shortcuts;
    if (state.p_size + c_size >= options_.q &&
        !HasExtenderOfPc(state, pc_, state.p_size + c_size)) {
      EmitPlex(pc_);
    }
    return;
  }

  uint32_t vp = pivot.vertex;
  if (pivot.in_p) {
    if (options_.branching != BranchingScheme::kRepickFromC) {
      BranchFaplexen(state, vp);
      return;
    }
    // Lines 15-16: re-pick among the pivot's non-neighbors in C. That
    // set is non-empty: otherwise the pivot's d_{P∪C} would have
    // triggered the k-plex shortcut above.
    vp = pivot_.RepickFromC(state, vp);
    if (vp == UINT32_MAX) return;  // defensive; unreachable
  }

  bool include_allowed = true;
  if (options_.upper_bound != UpperBoundMode::kNone) {
    const uint32_t ub_support =
        options_.upper_bound == UpperBoundMode::kOurs
            ? UbSupport(sg_, state, vp, options_.k, bound_scratch_)
            : UbSupportSorted(sg_, state, vp, options_.k, bound_scratch_);
    const uint32_t ub =
        std::min(ub_support, UbDegree(sg_, state, vp, options_.k));
    if (ub < options_.q) {
      include_allowed = false;
      ++counters_.ub_prunes;
    }
  }
  BranchBinary(state, vp, include_allowed);
}

void BranchEngine::BranchBinary(TaskState& state, uint32_t vp,
                                bool include_allowed) {
  if (include_allowed) {
    TaskState child = state;
    child.c.Reset(vp);
    PrepareInclude(child, vp);
    Dispatch(child);
  }
  // Exclude branch (Line 20), reusing the parent state.
  state.c.Reset(vp);
  state.x.Set(vp);
  Dispatch(state);
}

void BranchEngine::BranchFaplexen(TaskState& state, uint32_t vp) {
  // Eq (4)-(6). vp lies in P; its non-neighbors in C drive the split.
  ws_.clear();
  state.c.ForEachAndNot(sg_.adj.Row(vp), [&](std::size_t w) {
    ws_.push_back(static_cast<uint32_t>(w));
  });
  if (ws_.empty()) return;  // unreachable: the k-plex shortcut fires first
  int64_t s64 = static_cast<int64_t>(options_.k) -
                static_cast<int64_t>(state.NonNeighborsInP(vp));
  if (s64 < 1) return;  // unreachable for the same reason
  const std::size_t s =
      std::min<std::size_t>(static_cast<std::size_t>(s64), ws_.size());
  const std::size_t ell = ws_.size();
  // `ws_` may be clobbered by recursion below; keep a local copy.
  std::vector<uint32_t> ws(ws_.begin(), ws_.begin() + ell);

  // `run` accumulates the include-prefix w_1 .. w_{i-1}.
  TaskState run = state;
  for (std::size_t i = 1; i <= s; ++i) {
    const uint32_t wi = ws[i - 1];
    {
      // Branch i: keep the prefix, exclude w_i  (Eq (4) for i = 1,
      // Eq (5) otherwise).
      TaskState child = run;
      child.c.Reset(wi);
      child.x.Set(wi);
      Dispatch(child);
    }
    // Extend the prefix with w_i; if that breaks the k-plex property no
    // later branch has a valid P (hereditariness), so stop.
    run.ComputeSaturated(sg_, options_.k, saturated_);
    if (!run.c.Test(wi) ||
        !run.CanAdd(sg_, saturated_, wi, options_.k)) {
      return;
    }
    run.c.Reset(wi);
    PrepareInclude(run, wi);
    if (i == s) {
      // Final branch (Eq (6)): all of w_1..w_s in P. vp is saturated
      // now, so the remaining non-neighbors w_{s+1}..w_l can never join
      // any extension; drop them from C (they need not enter X either:
      // adding one would overflow vp's budget in any superset).
      for (std::size_t j = s; j < ell; ++j) run.c.Reset(ws[j]);
      Dispatch(run);
    }
  }
}

}  // namespace kplex
