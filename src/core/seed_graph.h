// Seed subgraph construction (Section 4, Eq (1) + Section 5 seed-level
// pruning). For a seed vertex v_i in degeneracy order, the SeedGraph
// materializes:
//
//   local id 0                : the seed v_i
//   local ids [1, 1+|N1|)     : N_{G_i}(v_i)   (later neighbors)
//   local ids [.., num_vi)    : N^2_{G_i}(v_i) (later two-hop vertices,
//                               reachable via N1)
//   local ids [num_vi, size)  : the exclusive fringe V'_i (earlier
//                               vertices within two hops, kept only for
//                               maximality checks)
//
// as a dense LocalGraph (adjacency rows over the whole local universe;
// fringe-fringe edges are irrelevant and omitted). Vertices that cannot
// participate in any k-plex of size >= q together with v_i are pruned:
// Corollary 5.2 iterated to a fixpoint on the V_i side, the matching
// Theorem 5.1 common-neighbor conditions on the fringe side.

#ifndef KPLEX_CORE_SEED_GRAPH_H_
#define KPLEX_CORE_SEED_GRAPH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/counters.h"
#include "core/options.h"
#include "core/pair_matrix.h"
#include "graph/degeneracy.h"
#include "graph/graph.h"
#include "graph/local_graph.h"
#include "util/bitset.h"

namespace kplex {

struct SeedGraph {
  /// Local id of the seed vertex; always 0.
  static constexpr uint32_t kSeed = 0;

  /// |V_i| after pruning. Local ids [0, num_vi) form V_i.
  uint32_t num_vi = 0;
  /// Number of surviving N_{G_i}(v_i) vertices; ids [1, 1+num_n1).
  uint32_t num_n1 = 0;
  /// Total local universe size (= num_vi + fringe size).
  uint32_t universe = 0;

  /// Dense adjacency over the local universe.
  LocalGraph adj;
  /// to_global[local] = vertex id in the *original* input graph.
  std::vector<VertexId> to_global;
  /// deg_vi[v] = degree of v within V_i (the d_{G_i} of Theorem 5.3).
  /// Defined for local ids < num_vi.
  std::vector<uint32_t> deg_vi;

  /// Masks over the local universe.
  DynamicBitset vi_mask;  ///< bits [0, num_vi)
  DynamicBitset n1_mask;  ///< bits [1, 1+num_n1)
  DynamicBitset n2_mask;  ///< bits [1+num_n1, num_vi)
  DynamicBitset fringe_mask;  ///< bits [num_vi, universe)

  /// Number of 64-bit words covering V_i (prefix of every bitset); hot
  /// loops restricted to V_i only touch this many words.
  std::size_t vi_words = 0;

  /// Pair-pruning matrix T (present iff R2 enabled).
  std::optional<PairPruneMatrix> pairs;
};

/// Builds the seed graph for the seed at `rank_of_seed` in `order`.
/// `graph` is the (q-k)-core-reduced graph; `to_original` maps its ids
/// back to the input graph (may be empty when graph ids are original).
/// Returns nullopt when the seed provably cannot carry any k-plex of
/// size >= q (e.g. |V_i| < q or deg(v_i)+k < q after pruning).
std::optional<SeedGraph> BuildSeedGraph(
    const Graph& graph, const std::vector<VertexId>& to_original,
    const DegeneracyResult& degeneracy, uint32_t seed_vertex,
    const EnumOptions& options, AlgoCounters* counters);

}  // namespace kplex

#endif  // KPLEX_CORE_SEED_GRAPH_H_
