// Pivot selection (Algorithm 3, Lines 7-10 and 15-16). The pivot is a
// vertex of P ∪ C with minimum degree in G[P ∪ C]; ties are broken by
// maximum number of non-neighbors in P (pushing vertices toward
// saturation, which in turn prunes more candidates), then by smallest
// local id for determinism. When the winner lies in P, the paper's
// default re-picks among its non-neighbors in C with the same rules.

#ifndef KPLEX_CORE_PIVOT_H_
#define KPLEX_CORE_PIVOT_H_

#include <cstdint>
#include <vector>

#include "core/seed_graph.h"
#include "core/task_state.h"
#include "util/bitset.h"

namespace kplex {

struct PivotResult {
  uint32_t vertex = 0;      ///< the selected pivot
  uint32_t min_degree = 0;  ///< its degree within G[P ∪ C]
  bool in_p = false;        ///< whether it lies in P
};

class PivotSelector {
 public:
  /// `saturation_tiebreak` selects the paper's Line-8 tie rule; when
  /// false, ties are broken by smallest local id only.
  explicit PivotSelector(const SeedGraph& sg, bool saturation_tiebreak = true)
      : sg_(&sg), saturation_tiebreak_(saturation_tiebreak) {
    degree_pc_.resize(sg.universe, 0);
  }

  /// Computes d_{P∪C} for all members and selects the pivot. `pc` must
  /// be (state.p | state.c). The degree table remains valid until the
  /// next call and is reused by RepickFromC.
  PivotResult Select(const TaskState& state, const DynamicBitset& pc);

  /// Lines 15-16: re-pick among the non-neighbors of `pivot` in C using
  /// the same rules. Requires Select() to have been called for this
  /// state. The caller guarantees N̄_C(pivot) is non-empty.
  uint32_t RepickFromC(const TaskState& state, uint32_t pivot);

  /// d_{P∪C}(v) from the last Select() call.
  uint32_t DegreePc(uint32_t v) const { return degree_pc_[v]; }

 private:
  const SeedGraph* sg_;
  bool saturation_tiebreak_;
  std::vector<uint32_t> degree_pc_;
};

}  // namespace kplex

#endif  // KPLEX_CORE_PIVOT_H_
