// Upper bounds on the maximum k-plex reachable from the current state
// (Section 5). All bounds are *admissible*: they never under-estimate
// the true maximum, so pruning a branch whose bound is < q is sound.
// Admissibility is property-tested against exhaustive search.

#ifndef KPLEX_CORE_BOUNDS_H_
#define KPLEX_CORE_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "core/seed_graph.h"
#include "core/task_state.h"

namespace kplex {

/// Scratch space reused across bound computations of one engine (the
/// recursion never interleaves two computations).
struct BoundScratch {
  std::vector<int32_t> support;       // sup_P values indexed by local id
  std::vector<uint32_t> sorted_ws;    // candidate ordering for the FP bound
};

/// Theorem 5.3: |P_m| <= min_{u in P ∪ {pivot}} deg_{G_i}(u) + k.
/// Valid for any k-plex of this task that contains P and `pivot`.
uint32_t UbDegree(const SeedGraph& sg, const TaskState& state, uint32_t pivot,
                  uint32_t k);

/// Theorem 5.5 / Algorithm 4: |P_m| <= |P| + sup_P(pivot) + |K| for the
/// branch that adds `pivot` (a candidate in C).
uint32_t UbSupport(const SeedGraph& sg, const TaskState& state,
                   uint32_t pivot, uint32_t k, BoundScratch& scratch);

/// FP-style variant of the support bound: identical admissible K
/// computation, but the candidates are visited in sorted order (fewest
/// non-neighbors in P first), costing an O(|C| log |C|) sort per call —
/// the cost profile the paper attributes to FP's bound (Section 7,
/// Table 5 discussion).
uint32_t UbSupportSorted(const SeedGraph& sg, const TaskState& state,
                         uint32_t pivot, uint32_t k, BoundScratch& scratch);

/// Theorem 5.7 (+ 5.3): upper bound for an initial sub-task
/// P_S = {v_i} ∪ S with candidate set C ⊆ N_{G_i}(v_i):
///   min( |P_S| + |K(v_i)| , min_{v in P_S} deg_{G_i}(v) + k ).
uint32_t UbSubtask(const SeedGraph& sg, const TaskState& state, uint32_t k,
                   BoundScratch& scratch);

}  // namespace kplex

#endif  // KPLEX_CORE_BOUNDS_H_
