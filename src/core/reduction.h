// Shared front half of both enumerator drivers: shrink the input graph
// to the (q-k)-core (Theorem 3.5) — or the CTCP fixpoint — and build
// the seed ordering of the survivors. When EnumOptions carries
// precomputed snapshot sections (graph/precompute.h), both steps are
// served from them instead of recomputed, and the counters record it so
// callers can prove the skip happened.

#ifndef KPLEX_CORE_REDUCTION_H_
#define KPLEX_CORE_REDUCTION_H_

#include "core/counters.h"
#include "core/options.h"
#include "graph/degeneracy.h"
#include "graph/kcore.h"

namespace kplex {

struct PreparedReduction {
  /// Compacted survivor graph + new-id -> original-id map.
  CoreReduction core;
  /// Seed ordering of core.graph (order/rank over compacted ids).
  /// Unpopulated when core.graph is empty (nothing to enumerate).
  DegeneracyResult ordering;
  /// True when the respective step came from options.precompute.
  bool core_precomputed = false;
  bool order_precomputed = false;
};

/// Runs the reduction + ordering stage. Increments
/// counters.core_reductions_precomputed / orderings_precomputed when a
/// precomputed section was consumed. Inconsistent precompute (wrong
/// vertex count) is ignored, never trusted.
PreparedReduction PrepareReduction(const Graph& graph,
                                   const EnumOptions& options,
                                   AlgoCounters& counters);

}  // namespace kplex

#endif  // KPLEX_CORE_REDUCTION_H_
