#include "core/file_sink.h"

namespace kplex {

FileSink::FileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open '" + path + "' for writing");
  }
}

FileSink::~FileSink() { Finish(); }

void FileSink::Emit(std::span<const VertexId> plex) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr || !status_.ok()) return;
  for (std::size_t i = 0; i < plex.size(); ++i) {
    if (std::fprintf(file_, "%s%u", i == 0 ? "" : " ", plex[i]) < 0) {
      status_ = Status::IoError("write failed");
      return;
    }
  }
  if (std::fputc('\n', file_) == EOF) {
    status_ = Status::IoError("write failed");
    return;
  }
  ++count_;
}

Status FileSink::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

}  // namespace kplex
