#include "core/bounds.h"

#include <algorithm>

// Algorithm 4 core, shared by the three support bounds below: greedily
// admit pivot-neighbors in C into K; each admitted candidate decrements
// the support of its scarcest non-neighbor in P, and a candidate whose
// scarcest non-neighbor is exhausted is excluded. The proof of
// Theorem 5.5 shows |K| dominates every feasible candidate subset
// regardless of visit order, so the id-ordered and sorted variants are
// both admissible.

namespace kplex {

uint32_t UbDegree(const SeedGraph& sg, const TaskState& state, uint32_t pivot,
                  uint32_t k) {
  uint32_t min_deg = sg.deg_vi[pivot];
  state.p.ForEach([&](std::size_t u) {
    min_deg = std::min(min_deg, sg.deg_vi[u]);
  });
  return min_deg + k;
}

uint32_t UbSupport(const SeedGraph& sg, const TaskState& state,
                   uint32_t pivot, uint32_t k, BoundScratch& scratch) {
  auto& sup = scratch.support;
  sup.assign(sg.universe, 0);
  state.p.ForEach([&](std::size_t u) {
    sup[u] = state.Support(static_cast<uint32_t>(u), k);
  });

  uint32_t ub = state.p_size +
                static_cast<uint32_t>(state.Support(pivot, k));
  // K: neighbors of the pivot inside C, id order.
  state.c.ForEachAnd(sg.adj.Row(pivot), [&](std::size_t w) {
    int32_t min_sup = INT32_MAX;
    uint32_t argmin = UINT32_MAX;
    state.p.ForEachAndNot(sg.adj.Row(static_cast<uint32_t>(w)),
                          [&](std::size_t u) {
                            if (sup[u] < min_sup) {
                              min_sup = sup[u];
                              argmin = static_cast<uint32_t>(u);
                            }
                          });
    if (argmin == UINT32_MAX) {
      ++ub;  // w constrains nobody in P
    } else if (min_sup > 0) {
      --sup[argmin];
      ++ub;
    }
  });
  return ub;
}

uint32_t UbSupportSorted(const SeedGraph& sg, const TaskState& state,
                         uint32_t pivot, uint32_t k, BoundScratch& scratch) {
  auto& sup = scratch.support;
  sup.assign(sg.universe, 0);
  state.p.ForEach([&](std::size_t u) {
    sup[u] = state.Support(static_cast<uint32_t>(u), k);
  });

  auto& ws = scratch.sorted_ws;
  ws.clear();
  state.c.ForEachAnd(sg.adj.Row(pivot),
                     [&](std::size_t w) { ws.push_back(static_cast<uint32_t>(w)); });
  // The deliberate per-call sort: fewest non-neighbors in P first.
  std::sort(ws.begin(), ws.end(), [&](uint32_t a, uint32_t b) {
    const uint32_t na = state.NonNeighborsInP(a);
    const uint32_t nb = state.NonNeighborsInP(b);
    return na != nb ? na < nb : a < b;
  });

  uint32_t ub = state.p_size +
                static_cast<uint32_t>(state.Support(pivot, k));
  for (uint32_t w : ws) {
    int32_t min_sup = INT32_MAX;
    uint32_t argmin = UINT32_MAX;
    state.p.ForEachAndNot(sg.adj.Row(w), [&](std::size_t u) {
      if (sup[u] < min_sup) {
        min_sup = sup[u];
        argmin = static_cast<uint32_t>(u);
      }
    });
    if (argmin == UINT32_MAX) {
      ++ub;
    } else if (min_sup > 0) {
      --sup[argmin];
      ++ub;
    }
  }
  return ub;
}

uint32_t UbSubtask(const SeedGraph& sg, const TaskState& state, uint32_t k,
                   BoundScratch& scratch) {
  auto& sup = scratch.support;
  sup.assign(sg.universe, 0);
  state.p.ForEach([&](std::size_t u) {
    sup[u] = state.Support(static_cast<uint32_t>(u), k);
  });
  // Theorem 5.7: v_p = v_i with sup forced to 0 — no candidate is a
  // non-neighbor of the seed, so P_m gains only |K| vertices beyond P_S.
  uint32_t k_size = 0;
  state.c.ForEach([&](std::size_t w) {
    int32_t min_sup = INT32_MAX;
    uint32_t argmin = UINT32_MAX;
    state.p.ForEachAndNot(sg.adj.Row(static_cast<uint32_t>(w)),
                          [&](std::size_t u) {
                            if (sup[u] < min_sup) {
                              min_sup = sup[u];
                              argmin = static_cast<uint32_t>(u);
                            }
                          });
    if (argmin == UINT32_MAX) {
      ++k_size;
    } else if (min_sup > 0) {
      --sup[argmin];
      ++k_size;
    }
  });
  const uint32_t ub_support = state.p_size + k_size;

  uint32_t min_deg = UINT32_MAX;
  state.p.ForEach([&](std::size_t u) {
    min_deg = std::min(min_deg, sg.deg_vi[u]);
  });
  const uint32_t ub_degree = min_deg + k;
  return std::min(ub_support, ub_degree);
}

}  // namespace kplex
