#include "core/seed_graph.h"

#include <algorithm>
#include <unordered_map>

namespace kplex {
namespace {

// Iterated Corollary 5.2 pruning over a working adjacency restricted to
// candidate V_i members. `alive` flags are indexed by position in
// `members`; position 0 is the seed.
//
// For u in N_{G_i}(v_i):   prune if |N(u) ∩ N_{G_i}(v_i)| < q - 2k.
// For u in N^2_{G_i}(v_i): prune if |N(u) ∩ N_{G_i}(v_i)| < q - 2k + 2.
// The N^2 threshold is >= 1 for every legal q >= 2k - 1, so two-hop
// vertices that lose their last N1 witness are pruned automatically,
// i.e. the "distance <= 2 within G_i" restriction is re-established on
// every round.
void IteratePruning(const Graph& graph, uint32_t seed,
                    std::vector<VertexId>& n1, std::vector<VertexId>& n2,
                    uint32_t k, uint32_t q, bool use_seed_pruning,
                    AlgoCounters* counters) {
  const int64_t thr_n1 = static_cast<int64_t>(q) - 2 * static_cast<int64_t>(k);
  const int64_t thr_n2 = thr_n1 + 2;

  DynamicBitset in_n1(graph.NumVertices());
  for (VertexId v : n1) in_n1.Set(v);

  bool changed = true;
  while (changed) {
    changed = false;
    if (use_seed_pruning && thr_n1 > 0) {
      std::vector<VertexId> kept;
      kept.reserve(n1.size());
      for (VertexId u : n1) {
        int64_t common = 0;
        for (VertexId w : graph.Neighbors(u)) {
          if (in_n1.Test(w)) ++common;
        }
        if (common >= thr_n1) {
          kept.push_back(u);
        } else {
          in_n1.Reset(u);
          changed = true;
          if (counters != nullptr) ++counters->seed_vertices_pruned;
        }
      }
      n1.swap(kept);
    }
    {
      std::vector<VertexId> kept;
      kept.reserve(n2.size());
      for (VertexId u : n2) {
        int64_t common = 0;
        for (VertexId w : graph.Neighbors(u)) {
          if (in_n1.Test(w)) ++common;
        }
        // Without Corollary 5.2 we still must keep N^2 vertices reachable
        // through a surviving N1 witness (the set-enumeration search space
        // is defined over N^2_{G_i}); threshold 1 encodes exactly that.
        const int64_t thr = use_seed_pruning ? thr_n2 : 1;
        if (common >= thr) {
          kept.push_back(u);
        } else {
          changed = true;
          if (counters != nullptr && use_seed_pruning) {
            ++counters->seed_vertices_pruned;
          }
        }
      }
      n2.swap(kept);
    }
    if (!use_seed_pruning) break;  // N1 never shrinks; one N2 pass suffices
  }
  (void)seed;
}

}  // namespace

std::optional<SeedGraph> BuildSeedGraph(
    const Graph& graph, const std::vector<VertexId>& to_original,
    const DegeneracyResult& degeneracy, uint32_t seed_vertex,
    const EnumOptions& options, AlgoCounters* counters) {
  const uint32_t k = options.k;
  const uint32_t q = options.q;
  const uint32_t seed_rank = degeneracy.rank[seed_vertex];
  auto is_later = [&](VertexId v) {
    return degeneracy.rank[v] > seed_rank;
  };

  // N1: later neighbors of the seed.
  std::vector<VertexId> n1;
  for (VertexId u : graph.Neighbors(seed_vertex)) {
    if (is_later(u)) n1.push_back(u);
  }
  // Quick Theorem 5.3 feasibility at the seed: any result k-plex P
  // containing v_i satisfies |P| <= deg_{G_i}(v_i) + k <= |N1| + k.
  if (n1.size() + k < q) return std::nullopt;

  // N2: later vertices reachable from the seed through an N1 vertex.
  std::vector<char> mark(graph.NumVertices(), 0);
  mark[seed_vertex] = 1;
  for (VertexId u : n1) mark[u] = 1;
  std::vector<VertexId> n2;
  for (VertexId u : n1) {
    for (VertexId w : graph.Neighbors(u)) {
      if (!mark[w] && is_later(w)) {
        mark[w] = 1;
        n2.push_back(w);
      }
    }
  }
  for (VertexId u : n1) mark[u] = 0;
  for (VertexId u : n2) mark[u] = 0;
  mark[seed_vertex] = 0;

  IteratePruning(graph, seed_vertex, n1, n2, k, q, options.use_seed_pruning,
                 counters);
  if (n1.size() + k < q) return std::nullopt;
  if (1 + n1.size() + n2.size() < q) return std::nullopt;

  std::sort(n1.begin(), n1.end());
  std::sort(n2.begin(), n2.end());

  // Fringe V'_i: earlier vertices within two hops, filtered by the
  // Theorem 5.1 common-neighbor conditions (common neighbors restricted
  // to the surviving N1, which is where they must live in any extension
  // of a result of this task).
  DynamicBitset in_n1(graph.NumVertices());
  for (VertexId v : n1) in_n1.Set(v);
  auto common_with_n1 = [&](VertexId x) {
    int64_t c = 0;
    for (VertexId w : graph.Neighbors(x)) {
      if (in_n1.Test(w)) ++c;
    }
    return c;
  };
  const int64_t thr_adj = static_cast<int64_t>(q) - 2 * static_cast<int64_t>(k);
  const int64_t thr_nonadj = thr_adj + 2;

  std::vector<VertexId> fringe;
  {
    std::vector<char> seen(graph.NumVertices(), 0);
    // Earlier direct neighbors.
    for (VertexId x : graph.Neighbors(seed_vertex)) {
      if (is_later(x) || seen[x]) continue;
      seen[x] = 1;
      if (common_with_n1(x) >= thr_adj) fringe.push_back(x);
    }
    // Earlier two-hop vertices (witnessed by a surviving N1 vertex).
    for (VertexId u : n1) {
      for (VertexId x : graph.Neighbors(u)) {
        if (x == seed_vertex || is_later(x) || seen[x]) continue;
        if (graph.HasEdge(seed_vertex, x)) {
          seen[x] = 1;
          continue;  // already handled as a direct neighbor
        }
        seen[x] = 1;
        if (common_with_n1(x) >= thr_nonadj) fringe.push_back(x);
      }
    }
  }
  std::sort(fringe.begin(), fringe.end());

  // Assemble the local universe.
  SeedGraph sg;
  sg.num_n1 = static_cast<uint32_t>(n1.size());
  sg.num_vi = static_cast<uint32_t>(1 + n1.size() + n2.size());
  sg.universe = static_cast<uint32_t>(sg.num_vi + fringe.size());
  sg.vi_words = (sg.num_vi + 63) / 64;

  std::vector<VertexId> local_to_reduced;
  local_to_reduced.reserve(sg.universe);
  local_to_reduced.push_back(seed_vertex);
  local_to_reduced.insert(local_to_reduced.end(), n1.begin(), n1.end());
  local_to_reduced.insert(local_to_reduced.end(), n2.begin(), n2.end());
  local_to_reduced.insert(local_to_reduced.end(), fringe.begin(),
                          fringe.end());

  sg.to_global.resize(sg.universe);
  for (uint32_t i = 0; i < sg.universe; ++i) {
    const VertexId reduced = local_to_reduced[i];
    sg.to_global[i] =
        to_original.empty() ? reduced : to_original[reduced];
  }

  std::unordered_map<VertexId, uint32_t> local_id;
  local_id.reserve(sg.universe * 2);
  for (uint32_t i = 0; i < sg.universe; ++i) {
    local_id.emplace(local_to_reduced[i], i);
  }

  sg.adj = LocalGraph(sg.universe);
  // Only edges with at least one endpoint in V_i matter; iterate V_i
  // members so fringe-fringe edges are skipped.
  for (uint32_t i = 0; i < sg.num_vi; ++i) {
    for (VertexId w : graph.Neighbors(local_to_reduced[i])) {
      auto it = local_id.find(w);
      if (it != local_id.end()) sg.adj.AddEdge(i, it->second);
    }
  }

  sg.vi_mask.ResizeClear(sg.universe);
  sg.n1_mask.ResizeClear(sg.universe);
  sg.n2_mask.ResizeClear(sg.universe);
  sg.fringe_mask.ResizeClear(sg.universe);
  sg.vi_mask.SetRange(0, sg.num_vi);
  sg.n1_mask.SetRange(1, 1 + sg.num_n1);
  sg.n2_mask.SetRange(1 + sg.num_n1, sg.num_vi);
  sg.fringe_mask.SetRange(sg.num_vi, sg.universe);

  sg.deg_vi.resize(sg.num_vi);
  for (uint32_t i = 0; i < sg.num_vi; ++i) {
    // V_i occupies the bit prefix, so the count only walks vi_words.
    sg.deg_vi[i] = static_cast<uint32_t>(
        sg.adj.Row(i).AndCountLimit(sg.vi_mask, sg.vi_words));
  }

  if (options.use_pair_pruning_r2) {
    sg.pairs = BuildPairMatrix(sg, k, q);
    if (counters != nullptr) {
      counters->pair_edges_pruned += sg.pairs->num_pruned_pairs();
    }
  }
  if (counters != nullptr) ++counters->seed_graphs;
  return sg;
}

}  // namespace kplex
