#include "core/max_kplex.h"

#include <algorithm>

#include "core/enumerator.h"
#include "core/kplex_verify.h"
#include "core/sink.h"
#include "graph/degeneracy.h"
#include "util/timer.h"

namespace kplex {
namespace {

// Grows a k-plex greedily from `start`: repeatedly adds the neighbor-of-
// the-plex with the most links into it, as long as the set stays a
// k-plex. O(result^2 * candidates); only used for a lower bound.
std::vector<VertexId> GrowFrom(const Graph& graph, uint32_t k,
                               VertexId start) {
  std::vector<VertexId> plex = {start};
  std::vector<char> in_plex(graph.NumVertices(), 0);
  in_plex[start] = 1;
  while (true) {
    // Candidates: vertices adjacent to someone in the plex.
    VertexId best = 0;
    std::size_t best_links = 0;
    bool have = false;
    for (VertexId member : plex) {
      for (VertexId candidate : graph.Neighbors(member)) {
        if (in_plex[candidate]) continue;
        std::size_t links = 0;
        for (VertexId m : plex) {
          if (graph.HasEdge(candidate, m)) ++links;
        }
        // Candidate budget: misses (|P|+1 - links - 1) + itself.
        if (plex.size() + 1 - links > k) continue;
        if (!have || links > best_links ||
            (links == best_links && candidate < best)) {
          have = true;
          best = candidate;
          best_links = links;
        }
      }
    }
    if (!have) return plex;
    plex.push_back(best);
    if (!IsKPlex(graph, plex, k)) {
      plex.pop_back();
      return plex;
    }
    in_plex[best] = 1;
  }
}

}  // namespace

std::vector<VertexId> GreedyKPlexLowerBound(const Graph& graph, uint32_t k,
                                            std::size_t attempts) {
  if (graph.NumVertices() == 0) return {};
  DegeneracyResult degeneracy = ComputeDegeneracy(graph);
  // The tail of the peeling order holds the highest-coreness vertices —
  // the densest region, where large k-plexes live.
  std::vector<VertexId> best;
  const std::size_t n = graph.NumVertices();
  for (std::size_t i = 0; i < attempts && i < n; ++i) {
    VertexId start = degeneracy.order[n - 1 - i];
    std::vector<VertexId> grown = GrowFrom(graph, k, start);
    if (grown.size() > best.size()) best = std::move(grown);
  }
  std::sort(best.begin(), best.end());
  return best;
}

StatusOr<MaxKPlexResult> FindMaximumKPlex(const Graph& graph, uint32_t k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  WallTimer timer;
  MaxKPlexResult result;

  std::vector<VertexId> incumbent =
      GreedyKPlexLowerBound(graph, k, /*attempts=*/16);

  // Lift the threshold until no strictly larger k-plex exists. Each pass
  // searches with q = max(|incumbent| + 1, 2k - 1) and stops at the
  // first hit; rising q makes every pruning rule stronger, so later
  // passes get cheaper, not costlier.
  while (true) {
    const uint32_t q = std::max<uint32_t>(
        static_cast<uint32_t>(incumbent.size()) + 1, 2 * k - 1);
    EnumOptions options = EnumOptions::Ours(k, q);
    options.max_results = 1;
    CollectingSink sink;
    auto pass = EnumerateMaximalKPlexes(graph, options, sink);
    if (!pass.ok()) return pass.status();
    ++result.passes;
    result.counters.MergeFrom(pass->counters);
    auto found = sink.SortedResults();
    if (found.empty()) break;  // incumbent is maximum
    incumbent = std::move(found.front());
  }

  if (incumbent.size() + 1 >= 2 * k) {
    result.found = true;
    result.plex = std::move(incumbent);
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
