// Sub-task generation (Algorithm 2, Line 7): set-enumeration of
// S ⊆ N²_{G_i}(v_i) with |S| <= k-1. Each node of the enumeration tree
// yields one sub-task <P_S = {v_i} ∪ S, C_S, X_S>; with R2 enabled the
// extension candidates and C_S are filtered through the pair matrix
// (Theorems 5.13 / 5.14), and with R1 enabled sub-tasks whose
// Theorem 5.7 + 5.3 bound falls below q are dropped before dispatch.

#ifndef KPLEX_CORE_SUBTASK_H_
#define KPLEX_CORE_SUBTASK_H_

#include <functional>

#include "core/counters.h"
#include "core/options.h"
#include "core/seed_graph.h"
#include "core/task_state.h"

namespace kplex {

/// Receives each surviving sub-task, ready for BranchEngine::Run.
using TaskConsumer = std::function<void(TaskState&&)>;

/// Enumerates all sub-tasks of the seed graph and hands them to
/// `consume` (in deterministic set-enumeration order).
void EnumerateSubtasks(const SeedGraph& sg, const EnumOptions& options,
                       AlgoCounters& counters, const TaskConsumer& consume);

}  // namespace kplex

#endif  // KPLEX_CORE_SUBTASK_H_
