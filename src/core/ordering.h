// Seed-vertex ordering construction. The engine's correctness only needs
// *some* total order (every maximal k-plex is mined from its minimum-
// order member, whose two-hop seed subgraph contains the rest); the
// degeneracy order is what gives the paper's size bounds. This helper
// materializes the order/rank arrays for each supported ordering.

#ifndef KPLEX_CORE_ORDERING_H_
#define KPLEX_CORE_ORDERING_H_

#include "core/options.h"
#include "graph/degeneracy.h"
#include "graph/graph.h"

namespace kplex {

/// Returns order/rank (and, for kDegeneracy, coreness/degeneracy) for
/// the requested seed ordering.
DegeneracyResult MakeSeedOrdering(const Graph& graph,
                                  VertexOrdering ordering);

}  // namespace kplex

#endif  // KPLEX_CORE_ORDERING_H_
