// Maximum k-plex search — the companion problem the paper's Section 2
// surveys (BS, BnB, KpLeX, Maplex, kPlexS). We solve it by *size
// lifting* on the enumeration engine: a greedy lower bound seeds the
// size threshold, then the engine repeatedly searches for any k-plex
// strictly larger than the incumbent (stopping at the first hit), with
// every Eq (3) / R1 / R2 pruning rule cutting against the risen
// threshold. This is the iterative-threshold strategy of Conte et
// al. [14] implemented on top of a modern bounded search.
//
// The size threshold never drops below 2k - 1, so the returned plex is
// connected; graphs whose maximum k-plex is smaller than that report
// "not found" (every k-plex would be trivial or disconnected).

#ifndef KPLEX_CORE_MAX_KPLEX_H_
#define KPLEX_CORE_MAX_KPLEX_H_

#include <vector>

#include "core/counters.h"
#include "core/options.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

struct MaxKPlexResult {
  /// True iff a k-plex with at least 2k - 1 vertices exists.
  bool found = false;
  /// The maximum k-plex (sorted vertex ids); empty when !found.
  std::vector<VertexId> plex;
  /// Wall time (seconds).
  double seconds = 0.0;
  /// Number of engine passes (threshold lifts) performed.
  uint32_t passes = 0;
  AlgoCounters counters;
};

/// A fast greedy lower bound: grows a k-plex around each of the
/// `attempts` highest-coreness vertices. Returns a valid k-plex (may be
/// empty for edgeless graphs).
std::vector<VertexId> GreedyKPlexLowerBound(const Graph& graph, uint32_t k,
                                            std::size_t attempts);

/// Finds one maximum k-plex with at least 2k - 1 vertices.
StatusOr<MaxKPlexResult> FindMaximumKPlex(const Graph& graph, uint32_t k);

}  // namespace kplex

#endif  // KPLEX_CORE_MAX_KPLEX_H_
