// Instrumentation counters shared by all enumerator variants. They feed
// the ablation analyses and the engine's tests (e.g. asserting that
// enabling a pruning rule can only shrink the number of explored
// branches).

#ifndef KPLEX_CORE_COUNTERS_H_
#define KPLEX_CORE_COUNTERS_H_

#include <cstdint>

namespace kplex {

struct AlgoCounters {
  uint64_t seed_graphs = 0;        ///< seed subgraphs materialized
  uint64_t seed_vertices_pruned = 0;  ///< vertices removed by Corollary 5.2
  uint64_t subtasks = 0;           ///< initial sub-tasks handed to Branch
  uint64_t subtasks_pruned_r1 = 0; ///< sub-tasks killed by Theorem 5.7 bound
  uint64_t branch_calls = 0;       ///< Branch() invocations
  uint64_t ub_prunes = 0;          ///< include-branches killed by Eq (3)
  uint64_t kplex_shortcuts = 0;    ///< P∪C-is-a-k-plex early terminations
  uint64_t outputs = 0;            ///< maximal k-plexes emitted
  uint64_t pair_edges_pruned = 0;  ///< false entries in the pair matrix T
  uint64_t timeout_spawns = 0;     ///< tasks re-packaged by the timeout rule
  uint64_t core_reductions_precomputed = 0;  ///< (q-k)-cores taken from
                                             ///< snapshot sections (no peel)
  uint64_t orderings_precomputed = 0;  ///< seed orderings restricted from
                                       ///< a stored degeneracy order

  void MergeFrom(const AlgoCounters& o) {
    seed_graphs += o.seed_graphs;
    seed_vertices_pruned += o.seed_vertices_pruned;
    subtasks += o.subtasks;
    subtasks_pruned_r1 += o.subtasks_pruned_r1;
    branch_calls += o.branch_calls;
    ub_prunes += o.ub_prunes;
    kplex_shortcuts += o.kplex_shortcuts;
    outputs += o.outputs;
    pair_edges_pruned += o.pair_edges_pruned;
    timeout_spawns += o.timeout_spawns;
    core_reductions_precomputed += o.core_reductions_precomputed;
    orderings_precomputed += o.orderings_precomputed;
  }
};

}  // namespace kplex

#endif  // KPLEX_CORE_COUNTERS_H_
