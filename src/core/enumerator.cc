#include "core/enumerator.h"

#include <algorithm>
#include <string>

#include "core/branch.h"
#include "core/reduction.h"
#include "core/seed_graph.h"
#include "core/subtask.h"
#include "obs/progress_throttle.h"
#include "util/timer.h"

namespace kplex {

Status ValidateOptions(const EnumOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.q + 1 < 2 * options.k) {
    return Status::InvalidArgument(
        "q must be >= 2k - 1 (Definition 3.4 requires it; got k=" +
        std::to_string(options.k) + ", q=" + std::to_string(options.q) + ")");
  }
  if (options.seed_range.begin > options.seed_range.end) {
    return Status::InvalidArgument(
        "seed range begin must be <= end (got " +
        std::to_string(options.seed_range.begin) + ":" +
        std::to_string(options.seed_range.end) + ")");
  }
  return Status::Ok();
}

StatusOr<EnumResult> EnumerateMaximalKPlexes(const Graph& graph,
                                             const EnumOptions& options,
                                             ResultSink& sink) {
  KPLEX_RETURN_IF_ERROR(ValidateOptions(options));
  WallTimer timer;
  EnumResult result;

  // Theorem 3.5: restrict to the (q - k)-core — or, when requested, the
  // strictly stronger CTCP fixpoint — and order the survivors; both
  // steps come from precomputed snapshot sections when available.
  PreparedReduction prepared =
      PrepareReduction(graph, options, result.counters);
  CoreReduction& core = prepared.core;
  if (core.graph.NumVertices() == 0) {
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  const DegeneracyResult& degeneracy = prepared.ordering;

  const int64_t global_deadline =
      options.time_limit_seconds > 0
          ? WallTimer::NowNanos() +
                static_cast<int64_t>(options.time_limit_seconds * 1e9)
          : 0;

  const uint64_t total_seeds = core.graph.NumVertices();
  result.total_seeds = total_seeds;
  // Sharded mining: iterate only this shard's slice of the canonical
  // seed order. Every plex is found from exactly one seed, so disjoint
  // ranges partition the result set (docs/SHARDING.md).
  const uint32_t range_begin = std::min<uint64_t>(
      options.seed_range.begin, total_seeds);
  const uint32_t range_end = static_cast<uint32_t>(std::min<uint64_t>(
      options.seed_range.end, total_seeds));
  const uint64_t shard_seeds = range_end - range_begin;
  result.covered_begin = range_begin;
  result.covered_end = range_end;
  ProgressThrottle progress_throttle(options.progress_min_interval_ms);
  for (uint32_t idx = range_begin; idx < range_end; ++idx) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      break;
    }
    // Work-stealing yield: stop cleanly *before* this seed, so
    // [range_begin, idx) is a complete answer and the coordinator can
    // re-issue [idx, range_end) elsewhere.
    if (options.yield != nullptr &&
        options.yield->load(std::memory_order_relaxed)) {
      result.yielded = true;
      result.covered_end = idx;
      break;
    }
    const VertexId seed = degeneracy.order[idx];
    auto sg = BuildSeedGraph(core.graph, core.to_original, degeneracy, seed,
                             options, &result.counters);
    if (!sg.has_value()) {
      // Pruned seeds still count as processed: `done` must reach
      // `total` on a completed run.
      if (options.progress &&
          progress_throttle.ShouldEmit(idx + 1 - range_begin, shard_seeds)) {
        options.progress(idx + 1 - range_begin, shard_seeds,
                         result.counters.outputs);
      }
      continue;
    }

    const uint64_t outputs_before_seed = result.counters.outputs;
    BranchEngine engine(*sg, options, sink, result.counters);
    if (global_deadline > 0) engine.SetGlobalDeadline(global_deadline);
    EnumerateSubtasks(*sg, options, result.counters,
                      [&](TaskState&& task) { engine.Run(task); });
    if (options.progress &&
        progress_throttle.ShouldEmit(idx + 1 - range_begin, shard_seeds)) {
      options.progress(idx + 1 - range_begin, shard_seeds,
                       result.counters.outputs);
    }
    if (engine.stopped_early()) {
      result.stopped_early = true;
      result.has_resume = true;
      result.resume_seed = idx;
      result.resume_ordinal = result.counters.outputs - outputs_before_seed;
      break;
    }
    if (engine.cancelled()) {
      result.cancelled = true;
      break;
    }
    if (engine.aborted()) {
      result.timed_out = true;
      break;
    }
    if (global_deadline > 0 && WallTimer::NowNanos() > global_deadline) {
      result.timed_out = true;
      break;
    }
  }

  result.num_plexes = result.counters.outputs;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
