// Configuration of the k-plex enumeration engine. The option grid spans
// the paper's algorithm ("Ours"), its branching variant ("Ours_P"), and
// the ablation variants of Tables 5 and 6 (Basic, Basic+R1, Basic+R2,
// Ours\ub, Ours\ub+fp).

#ifndef KPLEX_CORE_OPTIONS_H_
#define KPLEX_CORE_OPTIONS_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace kplex {

struct GraphPrecompute;

/// Half-open range [begin, end) of seed *indices* into the canonical
/// seed order of the reduced graph (the degeneracy order of the
/// (q-k)-core under the default options). Every maximal k-plex is
/// emitted from exactly one seed — the minimum-order member of the plex
/// — so disjoint ranges covering the whole seed space partition the
/// result set: N shards merged equal one full run, exactly. Ranges
/// beyond the seed count are clamped (the full default range
/// [0, UINT32_MAX) always means "everything"), which is what lets a
/// coordinator state ranges without knowing the reduced size first.
/// See docs/SHARDING.md for the composition rules.
struct SeedRange {
  uint32_t begin = 0;
  uint32_t end = UINT32_MAX;  ///< exclusive; clamped to the seed count

  /// True when the range selects every seed (the non-sharded default).
  bool IsFull() const { return begin == 0 && end == UINT32_MAX; }
};

/// Order in which seed vertices are processed (Section 3 / Section 4 of
/// the paper). Degeneracy order is both the complexity-bound enabler and
/// the load-balancing choice; the others exist to reproduce the paper's
/// remark that alternative orderings barely matter for correctness but
/// can hurt the seed-subgraph size bound.
enum class VertexOrdering {
  kDegeneracy,       ///< peeling order, ties by vertex id (the default)
  kById,             ///< plain vertex-id order
  kByDegreeAscending ///< static degree order, ties by vertex id
};

/// How Algorithm 3 branches once the pivot has been selected.
enum class BranchingScheme {
  /// The paper's default ("Ours"): if the pivot lies in P, re-pick a new
  /// pivot among its non-neighbors in C (Alg. 3, Lines 15-16) and use
  /// binary include/exclude branching guarded by the Eq (3) upper bound.
  kRepickFromC,
  /// "Ours_P": when the pivot lies in P, use the FaPlexen-style
  /// multi-way branching Eq (4)-(6) instead of re-picking.
  kFaplexenWhenPivotInP,
  /// FaPlexen/ListPlex branching: Eq (4)-(6) whenever the pivot lies in
  /// P, plain binary branching otherwise, never any upper-bound pruning.
  kFaplexenAlways,
};

/// Which upper bound guards the include-branch (Alg. 3, Lines 17-18).
enum class UpperBoundMode {
  kNone,      ///< no upper-bound pruning ("Ours\ub", ListPlex)
  kOurs,      ///< Eq (3): min(Thm 5.5 support bound, Thm 5.3 degree bound)
  kFpSorted,  ///< FP-style bound requiring an O(|C| log |C|) sort per call
};

struct EnumOptions {
  /// k of the k-plex definition; must be >= 1.
  uint32_t k = 2;
  /// Minimum size of reported maximal k-plexes; must be >= 2k - 1 (the
  /// connectivity/diameter-2 requirement of Definition 3.4).
  uint32_t q = 4;

  BranchingScheme branching = BranchingScheme::kRepickFromC;
  UpperBoundMode upper_bound = UpperBoundMode::kOurs;

  /// The paper's saturation-seeking pivot tie-break (Alg. 3 Line 8:
  /// among minimum-degree vertices prefer maximum d̄_P). Baselines that
  /// predate this contribution disable it and tie-break by id only.
  bool pivot_saturation_tiebreak = true;

  /// R1: Theorem 5.7 + 5.3 upper bound applied to each initial sub-task.
  bool use_subtask_bound_r1 = true;
  /// R2: vertex-pair pruning matrix (Theorems 5.13, 5.14, 5.15).
  bool use_pair_pruning_r2 = true;
  /// Corollary 5.2 iterated common-neighbor pruning of seed subgraphs.
  bool use_seed_pruning = true;

  /// Optional CTCP preprocessing (kPlexS [12]): iterated vertex + edge
  /// reduction of the whole graph before mining. Off by default — the
  /// paper's algorithm uses only the (q-k)-core — but sound with every
  /// variant and strictly stronger when q > 2k.
  bool use_ctcp_preprocess = false;

  /// If > 0, the enumeration aborts (reporting timed_out) after roughly
  /// this many seconds.
  double time_limit_seconds = 0.0;

  /// If > 0, the enumeration stops early (cleanly, not flagged as a
  /// timeout) once this many maximal k-plexes have been emitted. Used
  /// for top-N queries and by the maximum-k-plex solver.
  uint64_t max_results = 0;

  /// Cooperative cancellation hook: when non-null, the engines poll the
  /// flag every few thousand branch calls and unwind promptly once it is
  /// set; the run then reports EnumResult::cancelled (and, unlike a
  /// timeout, is never mistaken for a time-limit stop). The same flag
  /// may be shared by many concurrent runs.
  const std::atomic<bool>* cancel = nullptr;

  /// Cooperative yield hook (sharded mining v2 work-stealing): when
  /// non-null, the *sequential* driver checks the flag at every seed
  /// boundary and, once set, stops cleanly before the next seed. Unlike
  /// cancel, a yielded run is a complete answer for the seeds it did
  /// process — EnumResult reports yielded=true and covered_end, so a
  /// coordinator can merge the covered prefix and re-issue the tail
  /// elsewhere. The parallel engine ignores the flag (its seeds are
  /// interleaved across workers, so no prefix is complete) and simply
  /// runs to completion — a steal against it degrades to a no-op.
  const std::atomic<bool>* yield = nullptr;

  /// Progress hook: invoked as progress(done, total, outputs) after each
  /// processed seed vertex (sequential engine) or each completed stage
  /// (parallel engine, from a single thread at the stage barrier), where
  /// `done`/`total` count seed vertices of the reduced graph and
  /// `outputs` is the number of maximal k-plexes emitted so far. Must be
  /// cheap; a null hook costs nothing.
  std::function<void(uint64_t done, uint64_t total, uint64_t outputs)>
      progress;

  /// Minimum milliseconds between progress invocations (obs/
  /// progress_throttle.h). The first and the final (done == total)
  /// invocations always fire; <= 0 disables throttling (every seed /
  /// stage reports). Suppressed invocations are counted in the
  /// kplex_enum_progress_suppressed_total metric.
  double progress_min_interval_ms = 100.0;

  /// Optional precomputed reduction sections for the *input* graph
  /// (degeneracy order, coreness, per-level core masks), typically
  /// decoded from a v2 snapshot (graph/precompute.h). When present and
  /// size-consistent with the graph, the enumerators derive the
  /// (q-k)-core and the seed ordering from these instead of recomputing
  /// them — the result set is identical either way. Borrowed pointer;
  /// must outlive the run. Ignored under use_ctcp_preprocess (CTCP is a
  /// strictly different reduction).
  const GraphPrecompute* precompute = nullptr;

  /// Shard of the seed space to enumerate (sharded mining). The default
  /// full range is a complete run. The progress hook's done/total then
  /// count the shard's seeds, not the whole reduced graph's.
  SeedRange seed_range;

  /// Seed-vertex processing order. Only kDegeneracy carries the paper's
  /// complexity guarantees; the result *set* is identical under any
  /// ordering (each maximal k-plex is found from its minimum-order
  /// member).
  VertexOrdering ordering = VertexOrdering::kDegeneracy;

  /// Named preset: the paper's full algorithm ("Ours").
  static EnumOptions Ours(uint32_t k, uint32_t q) {
    EnumOptions o;
    o.k = k;
    o.q = q;
    return o;
  }
  /// Named preset: the Ours_P branching variant.
  static EnumOptions OursP(uint32_t k, uint32_t q) {
    EnumOptions o = Ours(k, q);
    o.branching = BranchingScheme::kFaplexenWhenPivotInP;
    return o;
  }
  /// Named preset: Basic = Ours without R1 and R2 (Table 6 baseline).
  static EnumOptions Basic(uint32_t k, uint32_t q) {
    EnumOptions o = Ours(k, q);
    o.use_subtask_bound_r1 = false;
    o.use_pair_pruning_r2 = false;
    return o;
  }
  /// Named preset: Ours without Eq (3) upper-bound pruning (Table 5).
  static EnumOptions OursNoUb(uint32_t k, uint32_t q) {
    EnumOptions o = Ours(k, q);
    o.upper_bound = UpperBoundMode::kNone;
    return o;
  }
  /// Named preset: Ours with the FP-style sorted upper bound (Table 5).
  static EnumOptions OursFpUb(uint32_t k, uint32_t q) {
    EnumOptions o = Ours(k, q);
    o.upper_bound = UpperBoundMode::kFpSorted;
    return o;
  }
};

}  // namespace kplex

#endif  // KPLEX_CORE_OPTIONS_H_
