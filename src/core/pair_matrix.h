// Vertex-pair pruning matrix T (Theorems 5.13, 5.14, 5.15). For every
// pair (u, v) of V_i vertices, T records whether u and v may co-occur in
// a k-plex of size >= q grown from seed v_i. Rows are bitsets over the
// full local universe with all fringe bits set, so AND-ing a candidate
// or exclusive set with Row(u) applies the "only prune vertices of V_i"
// rule for free.
//
// The thresholds implemented are the ones *derived in the appendix
// proofs* (A.8-A.10); for the adjacent case of Theorem 5.14 the main-text
// statement is weaker than its proof, and we use the proof's (tighter,
// still sound) value q - 2k - max{k-2, 0}. Soundness is property-tested
// against exhaustive enumeration in tests/pair_matrix_test.cc.

#ifndef KPLEX_CORE_PAIR_MATRIX_H_
#define KPLEX_CORE_PAIR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/bitset.h"

namespace kplex {

struct SeedGraph;  // seed_graph.h

class PairPruneMatrix {
 public:
  PairPruneMatrix() = default;

  /// Row(u) has bit v set iff the pair (u, v) may co-occur. Defined for
  /// local ids u in [0, num_vi); Row(0) (the seed) is all-true.
  const DynamicBitset& Row(uint32_t u) const { return rows_[u]; }

  uint64_t num_pruned_pairs() const { return num_pruned_pairs_; }

  /// Threshold helpers exposed for tests: minimum number of common
  /// neighbors in C_S required for the pair to survive, by membership
  /// category. Values <= 0 mean "never pruned".
  static int64_t ThresholdN2N2(uint32_t k, uint32_t q, bool adjacent);
  static int64_t ThresholdN2N1(uint32_t k, uint32_t q, bool adjacent);
  static int64_t ThresholdN1N1(uint32_t k, uint32_t q, bool adjacent);

 private:
  friend PairPruneMatrix BuildPairMatrix(const SeedGraph& sg, uint32_t k,
                                         uint32_t q);

  std::vector<DynamicBitset> rows_;
  uint64_t num_pruned_pairs_ = 0;
};

/// Builds T for the (already pruned) seed graph.
PairPruneMatrix BuildPairMatrix(const SeedGraph& sg, uint32_t k, uint32_t q);

}  // namespace kplex

#endif  // KPLEX_CORE_PAIR_MATRIX_H_
