#include "core/ordering.h"

#include <algorithm>
#include <numeric>

namespace kplex {

DegeneracyResult MakeSeedOrdering(const Graph& graph,
                                  VertexOrdering ordering) {
  if (ordering == VertexOrdering::kDegeneracy) {
    return ComputeDegeneracy(graph);
  }
  const std::size_t n = graph.NumVertices();
  DegeneracyResult result;
  result.order.resize(n);
  std::iota(result.order.begin(), result.order.end(), 0);
  if (ordering == VertexOrdering::kByDegreeAscending) {
    std::sort(result.order.begin(), result.order.end(),
              [&](VertexId a, VertexId b) {
                const std::size_t da = graph.Degree(a);
                const std::size_t db = graph.Degree(b);
                return da != db ? da < db : a < b;
              });
  }
  result.rank.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    result.rank[result.order[i]] = i;
  }
  // Coreness is only meaningful for the degeneracy ordering; leave it
  // zeroed (no engine component reads it for the alternatives).
  result.coreness.assign(n, 0);
  result.degeneracy = 0;
  return result;
}

}  // namespace kplex
