#include "core/pivot.h"

namespace kplex {

PivotResult PivotSelector::Select(const TaskState& state,
                                  const DynamicBitset& pc) {
  const SeedGraph& sg = *sg_;
  PivotResult best;
  bool have = false;
  uint32_t best_nonneighbors = 0;
  pc.ForEach([&](std::size_t v) {
    const uint32_t d = static_cast<uint32_t>(
        sg.adj.Row(v).AndCountLimit(pc, sg.vi_words));
    degree_pc_[v] = d;
    const uint32_t nn = saturation_tiebreak_
                            ? state.NonNeighborsInP(static_cast<uint32_t>(v))
                            : 0;
    if (!have || d < best.min_degree ||
        (d == best.min_degree && nn > best_nonneighbors)) {
      have = true;
      best.vertex = static_cast<uint32_t>(v);
      best.min_degree = d;
      best_nonneighbors = nn;
    }
  });
  best.in_p = state.p.Test(best.vertex);
  return best;
}

uint32_t PivotSelector::RepickFromC(const TaskState& state, uint32_t pivot) {
  const SeedGraph& sg = *sg_;
  uint32_t best = UINT32_MAX;
  uint32_t best_degree = 0;
  uint32_t best_nonneighbors = 0;
  state.c.ForEachAndNot(sg.adj.Row(pivot), [&](std::size_t v) {
    const uint32_t d = degree_pc_[v];
    const uint32_t nn = saturation_tiebreak_
                            ? state.NonNeighborsInP(static_cast<uint32_t>(v))
                            : 0;
    if (best == UINT32_MAX || d < best_degree ||
        (d == best_degree && nn > best_nonneighbors)) {
      best = static_cast<uint32_t>(v);
      best_degree = d;
      best_nonneighbors = nn;
    }
  });
  return best;
}

}  // namespace kplex
