// Result sinks: where enumerated maximal k-plexes go. All sinks are
// thread-safe so the sequential and parallel engines share them.

#ifndef KPLEX_CORE_SINK_H_
#define KPLEX_CORE_SINK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/counters.h"
#include "graph/graph.h"

namespace kplex {

/// Receives each maximal k-plex exactly once. `plex` holds original
/// vertex ids, sorted ascending, and is only valid during the call.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Emit(std::span<const VertexId> plex) = 0;
};

/// Counts results and tracks the largest plex seen.
class CountingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    std::size_t sz = plex.size();
    std::size_t prev = max_size_.load(std::memory_order_relaxed);
    while (sz > prev &&
           !max_size_.compare_exchange_weak(prev, sz,
                                            std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::size_t max_size() const {
    return max_size_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<std::size_t> max_size_{0};
};

/// Stores every result. Intended for tests and small workloads.
class CollectingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    std::lock_guard<std::mutex> lock(mutex_);
    results_.emplace_back(plex.begin(), plex.end());
  }

  /// Results sorted lexicographically (canonical order for comparison).
  std::vector<std::vector<VertexId>> SortedResults() const;

  /// Results in emission order — the order a sequential run delivers
  /// them in, which is the order cursor pagination slices.
  std::vector<std::vector<VertexId>> Results() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<VertexId>> results_;
};

/// The multiplier folding the result count into a fingerprint; shared
/// by HashingSink and MergeableResult so both derive the same value.
inline constexpr uint64_t kFingerprintCountMix = 0x9e3779b97f4a7c15ULL;

/// Order-independent content fingerprint: XOR of per-plex hashes plus a
/// count. Two runs produced the same result *set* iff their fingerprints
/// match (up to hash collisions); used to compare algorithm variants on
/// workloads too large to collect.
class HashingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override;

  uint64_t fingerprint() const {
    return xor_hash() ^ (count() * kFingerprintCountMix);
  }
  /// The raw XOR aggregate, before the count is folded in. This is the
  /// mergeable half of the fingerprint: XOR of disjoint shards' raw
  /// hashes (plus summed counts) reconstructs the full-run fingerprint.
  uint64_t xor_hash() const { return hash_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> hash_{0};
  std::atomic<uint64_t> count_{0};
};

/// The mergeable summary of one enumeration (or one shard of one):
/// result count, the raw XOR fingerprint aggregate, the largest plex
/// seen, and the algorithm counters. Merge() is associative and
/// commutative, and for shards over *disjoint* seed ranges it is exact:
/// merging the MergeableResults of ranges that partition [0, total)
/// yields byte-identical count/fingerprint to one full run (each
/// maximal k-plex is emitted by exactly one shard). This is the algebra
/// a sharding coordinator folds ShardResults with — see
/// docs/SHARDING.md.
struct MergeableResult {
  uint64_t count = 0;
  uint64_t xor_hash = 0;        ///< XOR of per-plex hashes
  std::size_t max_plex_size = 0;
  AlgoCounters counters;

  /// Folds another (disjoint) shard in. Associative and commutative.
  void Merge(const MergeableResult& other) {
    count += other.count;
    xor_hash ^= other.xor_hash;
    max_plex_size = std::max(max_plex_size, other.max_plex_size);
    counters.MergeFrom(other.counters);
  }

  /// The composite fingerprint — identical to HashingSink::fingerprint()
  /// of a single run over the union of the merged shards.
  uint64_t fingerprint() const {
    return xor_hash ^ (count * kFingerprintCountMix);
  }
};

/// Adapts a std::function. The callback must be thread-safe if used with
/// the parallel engine.
class CallbackSink : public ResultSink {
 public:
  explicit CallbackSink(std::function<void(std::span<const VertexId>)> fn)
      : fn_(std::move(fn)) {}

  void Emit(std::span<const VertexId> plex) override { fn_(plex); }

 private:
  std::function<void(std::span<const VertexId>)> fn_;
};

/// Server-side selection predicate over emitted plexes. A zero size
/// bound means "unbounded"; `contain` relies on the sink contract that
/// plexes arrive sorted ascending (binary search).
struct PlexFilter {
  uint64_t min_size = 0;
  uint64_t max_size = 0;
  bool has_contain = false;
  VertexId contain = 0;

  bool IsActive() const {
    return min_size > 0 || max_size > 0 || has_contain;
  }

  bool Matches(std::span<const VertexId> plex) const {
    if (min_size > 0 && plex.size() < min_size) return false;
    if (max_size > 0 && plex.size() > max_size) return false;
    if (has_contain &&
        !std::binary_search(plex.begin(), plex.end(), contain)) {
      return false;
    }
    return true;
  }
};

/// Forwards only the plexes a PlexFilter accepts. Stateless beyond the
/// filter, so thread safety is inherited from the inner sink.
class FilteringSink : public ResultSink {
 public:
  FilteringSink(PlexFilter filter, ResultSink& next)
      : filter_(filter), next_(next) {}

  void Emit(std::span<const VertexId> plex) override {
    if (filter_.Matches(plex)) next_.Emit(plex);
  }

 private:
  PlexFilter filter_;
  ResultSink& next_;
};

/// Drops the first `skip` emissions and forwards the rest — the resume
/// half of a cursor: re-enumerating the cursor seed from scratch is
/// deterministic, so skipping the already-delivered prefix continues a
/// truncated run exactly where it stopped.
class SkippingSink : public ResultSink {
 public:
  SkippingSink(uint64_t skip, ResultSink& next) : skip_(skip), next_(next) {}

  void Emit(std::span<const VertexId> plex) override {
    if (seen_.fetch_add(1, std::memory_order_relaxed) >= skip_) {
      next_.Emit(plex);
    }
  }

 private:
  const uint64_t skip_;
  std::atomic<uint64_t> seen_{0};
  ResultSink& next_;
};

/// Keeps the K largest plexes seen (top=K). Ties break deterministically:
/// larger size wins, then the lexicographically smaller vertex list, so
/// the selection is independent of emission order. Call Selected() after
/// the run; it returns the winners best-first.
class TopKSink : public ResultSink {
 public:
  explicit TopKSink(std::size_t k) : k_(k) {}

  void Emit(std::span<const VertexId> plex) override;

  std::vector<std::vector<VertexId>> Selected() const;

 private:
  const std::size_t k_;
  mutable std::mutex mutex_;
  // Heap ordered so the *worst* kept plex is on top, ready to be evicted.
  std::vector<std::vector<VertexId>> heap_;
};

}  // namespace kplex

#endif  // KPLEX_CORE_SINK_H_
