// Result sinks: where enumerated maximal k-plexes go. All sinks are
// thread-safe so the sequential and parallel engines share them.

#ifndef KPLEX_CORE_SINK_H_
#define KPLEX_CORE_SINK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kplex {

/// Receives each maximal k-plex exactly once. `plex` holds original
/// vertex ids, sorted ascending, and is only valid during the call.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Emit(std::span<const VertexId> plex) = 0;
};

/// Counts results and tracks the largest plex seen.
class CountingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    std::size_t sz = plex.size();
    std::size_t prev = max_size_.load(std::memory_order_relaxed);
    while (sz > prev &&
           !max_size_.compare_exchange_weak(prev, sz,
                                            std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::size_t max_size() const {
    return max_size_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<std::size_t> max_size_{0};
};

/// Stores every result. Intended for tests and small workloads.
class CollectingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    std::lock_guard<std::mutex> lock(mutex_);
    results_.emplace_back(plex.begin(), plex.end());
  }

  /// Results sorted lexicographically (canonical order for comparison).
  std::vector<std::vector<VertexId>> SortedResults() const;

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<VertexId>> results_;
};

/// Order-independent content fingerprint: XOR of per-plex hashes plus a
/// count. Two runs produced the same result *set* iff their fingerprints
/// match (up to hash collisions); used to compare algorithm variants on
/// workloads too large to collect.
class HashingSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override;

  uint64_t fingerprint() const {
    return hash_.load(std::memory_order_relaxed) ^
           (count_.load(std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> hash_{0};
  std::atomic<uint64_t> count_{0};
};

/// Adapts a std::function. The callback must be thread-safe if used with
/// the parallel engine.
class CallbackSink : public ResultSink {
 public:
  explicit CallbackSink(std::function<void(std::span<const VertexId>)> fn)
      : fn_(std::move(fn)) {}

  void Emit(std::span<const VertexId> plex) override { fn_(plex); }

 private:
  std::function<void(std::span<const VertexId>)> fn_;
};

}  // namespace kplex

#endif  // KPLEX_CORE_SINK_H_
