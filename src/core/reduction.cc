#include "core/reduction.h"

#include <algorithm>

#include "core/ordering.h"
#include "graph/ctcp.h"
#include "graph/precompute.h"

namespace kplex {
namespace {

// Restricts the stored full-graph peeling order to the survivors of
// `core`. Coreness is non-decreasing along a degeneracy peel, so when
// the survivors are a (q-k)-core they form a suffix of the stored order
// and the restriction *is* the degeneracy ordering of the induced
// subgraph (same by-id tie-breaks: compaction preserves id order). For
// any other survivor set the restriction is still a valid total order,
// which is all correctness needs (every maximal k-plex is mined from
// its minimum-order member).
DegeneracyResult RestrictOrdering(const GraphPrecompute& pre,
                                  const CoreReduction& core,
                                  std::size_t original_n) {
  const std::size_t n = core.to_original.size();
  std::vector<VertexId> new_id(original_n, VertexId(-1));
  for (std::size_t i = 0; i < n; ++i) {
    new_id[core.to_original[i]] = static_cast<VertexId>(i);
  }

  DegeneracyResult result;
  result.order.reserve(n);
  result.rank.assign(n, 0);
  result.coreness.assign(n, 0);
  for (VertexId v : pre.order) {
    const VertexId mapped = new_id[v];
    if (mapped == VertexId(-1)) continue;
    result.rank[mapped] = static_cast<uint32_t>(result.order.size());
    result.order.push_back(mapped);
    // Within its own c-core a vertex keeps its full-graph coreness
    // (cores are nested), so the stored values carry over unchanged.
    result.coreness[mapped] = pre.coreness[v];
    result.degeneracy = std::max(result.degeneracy, pre.coreness[v]);
  }
  return result;
}

}  // namespace

PreparedReduction PrepareReduction(const Graph& graph,
                                   const EnumOptions& options,
                                   AlgoCounters& counters) {
  PreparedReduction out;
  const uint32_t core_level =
      options.q >= options.k ? options.q - options.k : 0;

  const GraphPrecompute* pre =
      options.use_ctcp_preprocess ? nullptr : options.precompute;
  const bool pre_coreness_usable =
      pre != nullptr && pre->has_coreness() &&
      pre->coreness.size() == graph.NumVertices();
  const bool pre_order_usable =
      pre != nullptr && pre->has_order() &&
      pre->order.size() == graph.NumVertices() && pre_coreness_usable;

  if (options.use_ctcp_preprocess) {
    CtcpResult ctcp = CtcpReduce(graph, options.k, options.q);
    out.core.graph = std::move(ctcp.graph);
    out.core.to_original = std::move(ctcp.to_original);
  } else if (pre_coreness_usable) {
    const std::span<const uint64_t> mask = pre->MaskFor(core_level);
    if (!mask.empty() &&
        mask.size() == (graph.NumVertices() + 63) / 64) {
      out.core = ReduceToCoreFromMask(graph, mask);
    } else {
      out.core = ReduceToCoreFromCoreness(graph, core_level, pre->coreness);
    }
    out.core_precomputed = true;
    ++counters.core_reductions_precomputed;
  } else {
    out.core = ReduceToCore(graph, core_level);
  }

  if (out.core.graph.NumVertices() == 0) return out;

  if (options.ordering == VertexOrdering::kDegeneracy && pre_order_usable) {
    out.ordering = RestrictOrdering(*pre, out.core, graph.NumVertices());
    out.order_precomputed = true;
    ++counters.orderings_precomputed;
  } else {
    out.ordering = MakeSeedOrdering(out.core.graph, options.ordering);
  }
  return out;
}

}  // namespace kplex
