#include "core/seed_plan.h"

#include "core/counters.h"
#include "core/enumerator.h"
#include "core/reduction.h"
#include "util/timer.h"

namespace kplex {

uint64_t SeedPlanCost(uint32_t degree, uint32_t coreness) {
  return (static_cast<uint64_t>(degree) + 1) *
         (static_cast<uint64_t>(coreness) + 1);
}

StatusOr<SeedPlan> ComputeSeedPlan(const Graph& graph,
                                   const EnumOptions& options) {
  KPLEX_RETURN_IF_ERROR(ValidateOptions(options));
  WallTimer timer;
  SeedPlan plan;

  AlgoCounters counters;
  PreparedReduction prepared = PrepareReduction(graph, options, counters);
  plan.core_precomputed = prepared.core_precomputed;
  plan.order_precomputed = prepared.order_precomputed;
  const Graph& core = prepared.core.graph;
  const std::size_t n = core.NumVertices();
  plan.total_seeds = n;
  if (n == 0) {
    plan.seconds = timer.ElapsedSeconds();
    return plan;
  }

  const DegeneracyResult& ordering = prepared.ordering;
  plan.degeneracy = ordering.degeneracy;
  plan.degrees.resize(n);
  plan.coreness.resize(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const VertexId seed = ordering.order[idx];
    const uint32_t seed_rank = ordering.rank[seed];
    uint32_t forward = 0;
    for (VertexId w : core.Neighbors(seed)) {
      if (ordering.rank[w] > seed_rank) ++forward;
    }
    plan.degrees[idx] = forward;
    plan.coreness[idx] =
        seed < ordering.coreness.size() ? ordering.coreness[seed] : 0;
  }
  plan.seconds = timer.ElapsedSeconds();
  return plan;
}

}  // namespace kplex
