#include "core/kplex_verify.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace kplex {

bool IsKPlex(const Graph& graph, std::span<const VertexId> plex, uint32_t k) {
  const std::size_t size = plex.size();
  for (VertexId u : plex) {
    std::size_t in_degree = 0;
    for (VertexId v : plex) {
      if (v != u && graph.HasEdge(u, v)) ++in_degree;
    }
    // Non-neighbors including u itself: size - in_degree.
    if (size - in_degree > k) return false;
  }
  return true;
}

bool IsMaximalKPlex(const Graph& graph, std::span<const VertexId> plex,
                    uint32_t k) {
  if (!IsKPlex(graph, plex, k)) return false;
  std::vector<char> in_plex(graph.NumVertices(), 0);
  for (VertexId v : plex) in_plex[v] = 1;
  std::vector<VertexId> extended(plex.begin(), plex.end());
  extended.push_back(0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (in_plex[v]) continue;
    extended.back() = v;
    if (IsKPlex(graph, extended, k)) return false;
  }
  return true;
}

bool IsConnectedInduced(const Graph& graph, std::span<const VertexId> plex) {
  return !plex.empty() && InducedDiameter(graph, plex) >= 0;
}

int InducedDiameter(const Graph& graph, std::span<const VertexId> plex) {
  if (plex.empty()) return -1;
  const std::size_t size = plex.size();
  std::vector<VertexId> sorted(plex.begin(), plex.end());
  std::sort(sorted.begin(), sorted.end());
  auto local_id = [&](VertexId v) -> int {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    if (it == sorted.end() || *it != v) return -1;
    return static_cast<int>(it - sorted.begin());
  };

  int diameter = 0;
  std::vector<int> dist(size);
  for (std::size_t s = 0; s < size; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    std::deque<std::size_t> queue{s};
    while (!queue.empty()) {
      std::size_t u = queue.front();
      queue.pop_front();
      for (VertexId w : graph.Neighbors(sorted[u])) {
        int lw = local_id(w);
        if (lw >= 0 && dist[lw] < 0) {
          dist[lw] = dist[u] + 1;
          queue.push_back(static_cast<std::size_t>(lw));
        }
      }
    }
    for (std::size_t t = 0; t < size; ++t) {
      if (dist[t] < 0) return -1;  // disconnected
      diameter = std::max(diameter, dist[t]);
    }
  }
  return diameter;
}

}  // namespace kplex
