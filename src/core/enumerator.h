// Sequential driver (Algorithm 2): (q-k)-core reduction, degeneracy
// ordering, per-seed subgraph construction, sub-task enumeration and
// branch-and-bound. This is the public entry point of the library for
// single-threaded mining; src/parallel provides the multi-threaded one.

#ifndef KPLEX_CORE_ENUMERATOR_H_
#define KPLEX_CORE_ENUMERATOR_H_

#include <cstdint>

#include "core/counters.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

struct EnumResult {
  /// Number of maximal k-plexes emitted.
  uint64_t num_plexes = 0;
  /// Seed vertices of the *reduced* graph — the size of the canonical
  /// seed space, independent of any options.seed_range restriction. A
  /// sharding coordinator probes this (with an empty range) to plan
  /// ranges that exactly cover [0, total_seeds).
  uint64_t total_seeds = 0;
  /// Wall time of the whole run (seconds).
  double seconds = 0.0;
  /// True when the run stopped early due to options.time_limit_seconds.
  bool timed_out = false;
  /// True when the run stopped cleanly after options.max_results hits.
  bool stopped_early = false;
  /// True when the run was aborted through options.cancel.
  bool cancelled = false;
  /// Resume cursor, set by the sequential driver when the run stopped
  /// at options.max_results: `resume_seed` is the canonical seed index
  /// that was mid-enumeration and `resume_ordinal` the number of plexes
  /// already emitted from that seed. Re-running with seed_range.begin =
  /// resume_seed while dropping the first resume_ordinal emissions
  /// continues the enumeration exactly where it stopped (each seed
  /// re-enumerates deterministically from scratch).
  bool has_resume = false;
  uint32_t resume_seed = 0;
  uint64_t resume_ordinal = 0;
  /// True when the run stopped at a seed boundary because options.yield
  /// was set. A yielded run is a *complete* answer for the covered
  /// range below — the only early stop that is (cancel/timeout abandon
  /// mid-seed work).
  bool yielded = false;
  /// Half-open range of canonical seed indices this run fully
  /// enumerated: the clamped requested range, except covered_end drops
  /// to the yield boundary on a yielded run. Meaningless (equal, empty)
  /// when the run was cancelled or timed out.
  uint32_t covered_begin = 0;
  uint32_t covered_end = 0;
  AlgoCounters counters;
};

/// Validates `options` against Definition 3.4 (k >= 1, q >= 2k - 1) and
/// the seed range (begin <= end).
Status ValidateOptions(const EnumOptions& options);

/// Enumerates all maximal k-plexes of `graph` with at least q vertices,
/// emitting each exactly once (sorted original vertex ids) into `sink`.
StatusOr<EnumResult> EnumerateMaximalKPlexes(const Graph& graph,
                                             const EnumOptions& options,
                                             ResultSink& sink);

}  // namespace kplex

#endif  // KPLEX_CORE_ENUMERATOR_H_
