#include "core/subtask.h"

#include "core/bounds.h"

namespace kplex {
namespace {

class SubtaskEnumerator {
 public:
  SubtaskEnumerator(const SeedGraph& sg, const EnumOptions& options,
                    AlgoCounters& counters, const TaskConsumer& consume)
      : sg_(sg), options_(options), counters_(counters), consume_(consume),
        saturated_(sg.universe) {}

  void Run() {
    TaskState base = TaskState::MakeEmpty(sg_);
    base.AddToP(sg_, SeedGraph::kSeed);
    base.c = sg_.n1_mask;
    base.x = sg_.fringe_mask;
    base.x.OrWith(sg_.n2_mask);
    DynamicBitset ext = sg_.n2_mask;
    Recurse(base, ext, /*s_size=*/0);
  }

 private:
  void EmitSubtask(const TaskState& state) {
    ++counters_.subtasks;
    if (options_.use_subtask_bound_r1) {
      if (UbSubtask(sg_, state, options_.k, bound_scratch_) < options_.q) {
        ++counters_.subtasks_pruned_r1;
        return;
      }
    }
    TaskState task = state;
    consume_(std::move(task));
  }

  // `state` has P = {v_i} ∪ S (a valid k-plex), C and X already filtered
  // through the pair matrix rows of every S member. `ext` holds the N²
  // vertices that may still extend S (pair-compatible, id > last added).
  void Recurse(TaskState& state, const DynamicBitset& ext,
               uint32_t s_size) {
    EmitSubtask(state);
    if (s_size + 1 >= options_.k) return;  // |S| <= k - 1

    for (std::size_t u = ext.FindFirst(); u != DynamicBitset::kNpos;
         u = ext.FindNext(u + 1)) {
      // {v_i} ∪ S ∪ {u} must itself be a k-plex (hereditariness kills
      // the whole subtree otherwise). The saturation mask of the current
      // P is recomputed lazily because recursion below clobbers it.
      state.ComputeSaturated(sg_, options_.k, saturated_);
      if (!state.CanAdd(sg_, saturated_, static_cast<uint32_t>(u),
                        options_.k)) {
        continue;
      }
      TaskState child = state;
      child.x.Reset(u);
      child.AddToP(sg_, static_cast<uint32_t>(u));
      DynamicBitset child_ext = ext;
      child_ext.ResetBelow(u + 1);
      if (sg_.pairs.has_value()) {
        const DynamicBitset& allowed = sg_.pairs->Row(static_cast<uint32_t>(u));
        child.c.AndWith(allowed);   // Theorem 5.14
        child.x.AndWith(allowed);   // dropped pairs cannot extend results
        child_ext.AndWith(allowed); // Theorem 5.13
      }
      Recurse(child, child_ext, s_size + 1);
    }
  }

  const SeedGraph& sg_;
  const EnumOptions& options_;
  AlgoCounters& counters_;
  const TaskConsumer& consume_;
  DynamicBitset saturated_;
  BoundScratch bound_scratch_;
};

}  // namespace

void EnumerateSubtasks(const SeedGraph& sg, const EnumOptions& options,
                       AlgoCounters& counters, const TaskConsumer& consume) {
  SubtaskEnumerator(sg, options, counters, consume).Run();
}

}  // namespace kplex
