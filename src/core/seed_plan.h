// Seed-plan probe: the planning half of sharded mining v2. A
// coordinator that wants cost-balanced chunks needs per-seed cost
// signals *without* enumerating anything. ComputeSeedPlan runs only the
// shared reduction front half (core/reduction.h — (q-k)-core or CTCP
// fixpoint plus the canonical seed ordering, served from precomputed
// snapshot sections when available) and reports, for every seed index
// of the canonical order, two cheap structure signals:
//
//   - forward degree: the seed's neighbor count *later* in the
//     degeneracy order — an upper bound on its candidate pool, the
//     dominant per-seed cost driver;
//   - coreness: how deep the seed sits in the core decomposition —
//     dense-region seeds (the expensive ones) have high coreness.
//
// The planner combines them as cost = (fwd_degree+1) * (coreness+1),
// but the raw arrays are exposed so smarter estimators can evolve
// without a protocol change. total_seeds here is byte-identical to
// EnumResult::total_seeds for the same (graph, options) — the contract
// that lets planned chunk ranges partition the real seed space.

#ifndef KPLEX_CORE_SEED_PLAN_H_
#define KPLEX_CORE_SEED_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

struct SeedPlan {
  /// Seed count of the reduced graph — equals EnumResult::total_seeds.
  uint64_t total_seeds = 0;
  /// Degeneracy of the reduced graph (max coreness).
  uint32_t degeneracy = 0;
  /// degrees[i]: forward degree of the i-th seed of the canonical order
  /// (neighbors with a later position). Size total_seeds.
  std::vector<uint32_t> degrees;
  /// coreness[i]: coreness of the i-th seed. Size total_seeds.
  std::vector<uint32_t> coreness;
  /// True when the respective reduction step was served from
  /// precomputed snapshot sections instead of recomputed.
  bool core_precomputed = false;
  bool order_precomputed = false;
  double seconds = 0;
};

/// Runs the reduction + ordering stage only (no enumeration) and
/// extracts the per-seed planning signals. Honors the same options the
/// enumerators do (k, q, use_ctcp_preprocess, precompute, ordering), so
/// the reported seed order is exactly the one a mine over the same
/// options iterates.
StatusOr<SeedPlan> ComputeSeedPlan(const Graph& graph,
                                   const EnumOptions& options);

/// The planner's default per-seed cost: (degrees[i]+1) * (coreness[i]+1).
uint64_t SeedPlanCost(uint32_t degree, uint32_t coreness);

}  // namespace kplex

#endif  // KPLEX_CORE_SEED_PLAN_H_
