// FileSink: streams each maximal k-plex to disk as one line of
// space-separated vertex ids. Thread-safe (parallel engine emits from
// every worker), buffered, and explicitly flushed/closed through
// Finish() so callers can observe I/O errors.

#ifndef KPLEX_CORE_FILE_SINK_H_
#define KPLEX_CORE_FILE_SINK_H_

#include <cstdio>
#include <mutex>
#include <string>

#include "core/sink.h"
#include "util/status.h"

namespace kplex {

class FileSink : public ResultSink {
 public:
  /// Opens `path` for writing. Check status() before use.
  explicit FileSink(const std::string& path);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  /// OK iff the file opened and no write has failed so far.
  const Status& status() const { return status_; }
  uint64_t count() const { return count_; }

  void Emit(std::span<const VertexId> plex) override;

  /// Flushes and closes; returns the final I/O status. Idempotent.
  Status Finish();

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  Status status_;
  uint64_t count_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_CORE_FILE_SINK_H_
