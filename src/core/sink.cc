#include "core/sink.h"

#include <algorithm>

namespace kplex {
namespace {

uint64_t HashPlex(std::span<const VertexId> plex) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId v : plex) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  // Avalanche so that XOR aggregation mixes well.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::vector<std::vector<VertexId>> CollectingSink::SortedResults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<VertexId>> out = results_;
  std::sort(out.begin(), out.end());
  return out;
}

void HashingSink::Emit(std::span<const VertexId> plex) {
  hash_.fetch_xor(HashPlex(plex), std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace kplex
